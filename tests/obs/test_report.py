"""The HTML campaign dashboard: determinism, golden bytes, and the
convergence-curve acceptance criterion (final point == recovery
distance)."""

from __future__ import annotations

import itertools
import json
import re
from pathlib import Path

import pytest

from repro.obs import (
    EventLog,
    JsonlEventWriter,
    REPORT_SCHEMA,
    render_report,
    write_report,
)

GOLDEN = Path(__file__).parent / "golden" / "report.golden.html"


def _reference_manifest() -> dict:
    """A hand-built two-shard manifest: one recovered trial with
    telemetry, one masked, one diverged, one infra-failed shard, and a
    telemetry-free record as an old manifest would hold."""
    return {
        "schema": 1,
        "fingerprint": "c0ffee" * 10 + "beef",
        "config": {
            "apps": ["wind_sensor"],
            "mode": "stratified",
            "trials": 4,
            "strata": 2,
            "max_sites": None,
            "iterations": 8,
            "burst": 1,
            "seed": 7,
            "shard_size": 2,
            "step_budget": None,
            "step_budget_factor": 64,
            "histogram_bin": 8,
        },
        "site_totals": {"wind_sensor": 40},
        "shards": {
            "wind_sensor:0000": {
                "status": "done",
                "trials": [
                    {
                        "app": "wind_sensor", "site": 3,
                        "verdict": "recovered",
                        "injection_iteration": 2,
                        "recovery_samples": 3,
                        "recovery_iterations": 2,
                        "error_log_size": 0,
                        "telemetry": {
                            "divergence": [0, 0, 2, 1, 0, 0, 0, 0],
                            "convergence": [2, 3, 3, 3, 3, 3],
                        },
                    },
                    {
                        "app": "wind_sensor", "site": 11,
                        "verdict": "masked",
                        "injection_iteration": 1,
                        "recovery_samples": None,
                        "recovery_iterations": None,
                        "error_log_size": 1,
                        "telemetry": {
                            "divergence": [0] * 8,
                            "convergence": None,
                        },
                    },
                ],
                "obs": {
                    "run_seconds": 0.25, "queue_wait_seconds": 0.05,
                    "attempts": 1, "retries": 0, "timeouts": 0,
                    "pid": 4242, "peak_rss_bytes": 44040192,
                },
            },
            "wind_sensor:0001": {
                "status": "done",
                "trials": [
                    {
                        # A pre-telemetry record: no "telemetry" key.
                        "app": "wind_sensor", "site": 23,
                        "verdict": "diverged",
                        "injection_iteration": 4,
                        "recovery_samples": None,
                        "recovery_iterations": None,
                        "error_log_size": 0,
                    },
                ],
                "obs": {
                    "run_seconds": 0.5, "queue_wait_seconds": 0.1,
                    "attempts": 2, "retries": 1, "timeouts": 0,
                },
            },
            "wind_sensor:0002": {
                "status": "infra-failed",
                "reason": "timeout",
                "message": "shard exceeded 120s",
                "attempts": 3,
            },
        },
    }


def _reference_events(path: Path) -> None:
    counter = itertools.count()
    with JsonlEventWriter(path) as writer:
        log = EventLog(
            level="debug", sinks=(writer,),
            clock=lambda: next(counter) * 0.5,
        )
        log.emit("campaign.plan", level="info", planned=3)
        log.emit("trial.corrupted", "fault injected", site=3, iteration=2)
        log.emit(
            "trial.recovered", "outputs re-converged",
            site=3, recovery_samples=3,
        )
        log.emit(
            "campaign.shard", "given up on after retries",
            level="error", shard_id="wind_sensor:0002", attempts=3,
        )


def _reference_bench() -> dict:
    return json.loads(
        (Path(__file__).parent / "golden" / "bench.golden.json").read_text()
    )


def _render(tmp_path: Path) -> str:
    events_path = tmp_path / "events.jsonl"
    _reference_events(events_path)
    manifest_path = tmp_path / "manifest.json"
    manifest_path.write_text(json.dumps(_reference_manifest()))
    return write_report(
        tmp_path / "report.html",
        campaign_path=manifest_path,
        events_path=events_path,
        bench_paths=[
            Path(__file__).parent / "golden" / "bench.golden.json"
        ],
    )


class TestDeterminism:
    def test_identical_inputs_identical_bytes(self, tmp_path):
        first = _render(tmp_path / "a")
        second = _render(tmp_path / "b")
        (tmp_path / "a").mkdir(exist_ok=True)
        assert first == second

    def test_golden_report_is_byte_stable(self, tmp_path):
        (tmp_path / "run").mkdir()
        document = _render(tmp_path / "run")
        assert document == GOLDEN.read_text(encoding="utf-8")

    def test_no_timestamp_unless_asked(self):
        page = render_report(campaign=_reference_manifest())
        assert "Generated:" not in page
        stamped = render_report(
            campaign=_reference_manifest(),
            generated_at="2026-01-01T00:00:00Z",
        )
        assert "Generated: 2026-01-01T00:00:00Z" in stamped


class TestConvergenceCurves:
    def test_final_point_matches_recovery_distance(self):
        """Acceptance: every rendered curve's plateau equals the trial's
        recorded recovery distance in samples."""
        page = render_report(campaign=_reference_manifest())
        curves = re.findall(
            r'<svg[^>]*data-final="(\d+)"[^>]*'
            r'data-recovery-samples="(\d+)"',
            page,
        )
        assert curves, "no convergence curves rendered"
        for final, recorded in curves:
            assert final == recorded

    def test_old_manifest_without_telemetry_still_renders(self):
        manifest = _reference_manifest()
        for shard in manifest["shards"].values():
            for trial in shard.get("trials", []):
                trial.pop("telemetry", None)
        page = render_report(campaign=manifest)
        assert "pre-telemetry" in page
        assert 'data-report-schema="1"' in page

    def test_curve_cap_is_announced(self):
        from repro.obs.report import MAX_CURVES_PER_APP

        manifest = _reference_manifest()
        template = manifest["shards"]["wind_sensor:0000"]["trials"][0]
        many = [
            {**template, "site": site}
            for site in range(MAX_CURVES_PER_APP + 5)
        ]
        manifest["shards"]["wind_sensor:0000"]["trials"] = many
        page = render_report(campaign=manifest)
        assert page.count("<figure") == MAX_CURVES_PER_APP
        assert "5 more recovered trials not plotted" in page


def _distributed_manifest() -> dict:
    """A minimal dist-campaign manifest: one recovered trial carrying
    the per-node divergence matrix (rounds x nodes) and node digests."""
    return {
        "schema": 1,
        "fingerprint": "deadbeef" * 8,
        "config": {"apps": ["herman_bit"], "mode": "exhaustive"},
        "site_totals": {"herman_bit": 548},
        "shards": {
            "herman_bit:0000": {
                "status": "done",
                "trials": [
                    {
                        "app": "herman_bit", "site": 117, "node": 1,
                        "verdict": "recovered",
                        "injection_iteration": 3,
                        "recovery_samples": 10,
                        "recovery_iterations": 2,
                        "error_log_size": 0,
                        "telemetry": {
                            "divergence": [0, 0, 0, 2, 1, 0, 0, 0],
                            "convergence": [5, 10, 10, 10, 10],
                            "node_divergence": [
                                [0, 0, 0, 0, 0],
                                [0, 0, 0, 0, 0],
                                [0, 0, 0, 0, 0],
                                [0, 1, 1, 0, 0],
                                [0, 0, 1, 0, 0],
                                [0, 0, 0, 0, 0],
                                [0, 0, 0, 0, 0],
                                [0, 0, 0, 0, 0],
                            ],
                            "node_digests": ["ab"] * 5,
                        },
                    },
                ],
                "obs": {"run_seconds": 0.1},
            },
        },
    }


class TestPerNodePanel:
    def test_node_strips_rendered(self):
        page = render_report(campaign=_distributed_manifest())
        assert "Per-node divergence" in page
        assert 'data-nodes="5"' in page
        assert 'data-rounds="8"' in page
        assert 'data-node="1"' in page
        # three divergent (round, node) pairs -> three red cells
        assert page.count('class="cell"') == 3
        # the injection-round marker is present
        assert 'class="inject"' in page

    def test_single_node_manifest_has_no_panel(self):
        page = render_report(campaign=_reference_manifest())
        assert "Per-node divergence" not in page


class TestSections:
    def test_all_sections_present(self, tmp_path):
        page = _render(tmp_path)
        for heading in (
            "Campaign configuration", "Verdicts", "Convergence curves",
            "Recovery distance histogram", "Shard timeline", "Events",
            "Benchmark trend",
        ):
            assert heading in page

    def test_infra_failed_shard_marked(self, tmp_path):
        page = _render(tmp_path)
        assert "infra-failed" in page

    def test_html_escaping(self):
        manifest = _reference_manifest()
        page = render_report(
            campaign=manifest, title='<script>alert("x")</script>'
        )
        assert "<script>" not in page
        assert "&lt;script&gt;" in page

    def test_empty_report_says_so(self):
        page = render_report()
        assert "Nothing to report" in page
        assert f'data-report-schema="{REPORT_SCHEMA}"' in page

    def test_zero_trial_manifest_renders_no_trials_page(self, tmp_path):
        """Regression: a checkpoint written before any shard completed
        (or one that planned zero trials) must render a valid page with
        an explicit note, not a table of vacuous zeros."""
        manifest = _reference_manifest()
        manifest["shards"] = {}
        manifest_path = tmp_path / "empty.json"
        manifest_path.write_text(json.dumps(manifest))
        document = write_report(
            tmp_path / "out.html", campaign_path=manifest_path
        )
        assert "No completed trials" in document
        assert "Campaign configuration" in document
        assert f'data-report-schema="{REPORT_SCHEMA}"' in document

    def test_bare_manifest_object_renders(self):
        page = render_report(campaign={})
        assert "No completed trials" in page

    def test_in_flight_manifest_keeps_timeline(self):
        manifest = _reference_manifest()
        for shard in manifest["shards"].values():
            shard["status"] = "running"
        page = render_report(campaign=manifest)
        assert "No completed trials" in page
        assert "Shard timeline" in page

    def test_events_only_report(self, tmp_path):
        events_path = tmp_path / "events.jsonl"
        _reference_events(events_path)
        document = write_report(
            tmp_path / "out.html", events_path=events_path
        )
        assert "Events" in document
        assert "Verdicts" not in document
        assert "campaign.shard" in document


def _chaos_events() -> list[dict]:
    from repro.obs import EventBuffer

    counter = itertools.count()
    buffer = EventBuffer(capacity=64)
    log = EventLog(
        level="debug", sinks=(buffer,), clock=lambda: next(counter) * 0.5
    )
    log.emit(
        "chaos.duplicate_shard", level="warn",
        fault="duplicate-shard", site="campaign.result", key="a:0000",
    )
    log.emit(
        "chaos.torn_manifest", level="warn",
        fault="torn-manifest", site="manifest.checkpoint", key="ck:1",
    )
    log.emit(
        "chaos.recovery", level="info",
        action="duplicate-ignored", site="campaign.result",
    )
    log.emit(
        "chaos.oracle", level="info",
        holds=True, identical=True, clean_complete=True,
        chaos_complete=True, infra_failed=0,
    )
    return list(buffer.records)


class TestChaosPanel:
    def test_chaos_events_render_the_panel(self):
        page = render_report(events=_chaos_events())
        assert "<h2>Chaos</h2>" in page
        assert "Convergence oracle" in page
        assert "Injected faults" in page
        assert "duplicate-shard" in page
        assert "torn-manifest" in page
        assert "Recovery actions" in page
        assert "duplicate-ignored" in page

    def test_chaos_free_events_render_no_panel(self, tmp_path):
        """Fault-free reports must stay byte-identical to builds that
        predate the chaos panel (the golden test pins this too)."""
        events_path = tmp_path / "events.jsonl"
        _reference_events(events_path)
        document = write_report(
            tmp_path / "out.html", events_path=events_path
        )
        assert "Chaos" not in document


TREND_GOLDEN = Path(__file__).parent / "golden" / "trend.golden.html"

_TREND_FINGERPRINT = {
    "python": "3.11.0",
    "implementation": "CPython",
    "platform": "Linux-golden",
    "machine": "x86_64",
    "cpu_count": 4,
    "git_sha": "0" * 40,
}


def _trend_history(directory: Path) -> Path:
    """Three pinned bench payloads with a regression step on check/toy
    between run b and run c; check/other stays flat."""
    from repro.obs.bench import bench_payload, scenario_result_from_samples, \
        write_bench

    directory.mkdir(parents=True, exist_ok=True)
    runs = [
        ("BENCH_a.json", "2026-01-01T00:00:00Z",
         {"check/toy": [1.0, 1.0, 1.0], "check/other": [0.5, 0.5, 0.5]}),
        ("BENCH_b.json", "2026-01-02T00:00:00Z",
         {"check/toy": [1.0, 1.01, 1.02], "check/other": [0.5, 0.5, 0.5]}),
        ("BENCH_c.json", "2026-01-03T00:00:00Z",
         {"check/toy": [2.0, 2.0, 2.0], "check/other": [0.5, 0.5, 0.5]}),
    ]
    for filename, created, scenarios in runs:
        results = [
            scenario_result_from_samples(
                name, "check", samples, counters={"ops": 2}, warmup=1
            )
            for name, samples in sorted(scenarios.items())
        ]
        payload = bench_payload(
            results, suite="golden", warmup=1, repetitions=3,
            fingerprint=dict(_TREND_FINGERPRINT), created_utc=created,
        )
        write_bench(payload, directory / filename)
    return directory


def _render_trend(tmp_path: Path) -> str:
    history = _trend_history(tmp_path / "history")
    return write_report(tmp_path / "report.html", history_dir=history)


class TestTrendPanel:
    def test_golden_trend_panel_is_byte_stable(self, tmp_path):
        """The trajectory page over pinned history payloads, byte for
        byte — sparkline geometry drift must be a conscious golden
        regeneration."""
        document = _render_trend(tmp_path)
        assert document == TREND_GOLDEN.read_text(encoding="utf-8")

    def test_identical_history_identical_bytes(self, tmp_path):
        assert _render_trend(tmp_path / "a") == _render_trend(tmp_path / "b")

    def test_sparklines_and_changepoints_rendered(self, tmp_path):
        document = _render_trend(tmp_path)
        assert "Perf trajectory" in document
        # one sparkline per (scenario, environment) series
        assert document.count('<polyline class="spark"') == 2
        # exactly the injected step is marked, as a regression dot
        assert document.count('circle class="changepoint') == 1
        assert 'class="changepoint regression"' in document
        assert 'data-scenario="check/toy"' in document
        # the changepoint table names the step run and its sha
        assert "Changepoints" in document
        assert "2026-01-03T00:00:00Z" in document
        assert "000000000000" in document

    def test_trend_composes_with_other_sections(self, tmp_path):
        history = _trend_history(tmp_path / "history")
        manifest_path = tmp_path / "manifest.json"
        manifest_path.write_text(json.dumps(_reference_manifest()))
        document = write_report(
            tmp_path / "report.html",
            campaign_path=manifest_path,
            history_dir=history,
        )
        assert "Verdicts" in document
        assert "Perf trajectory" in document

    def test_skipped_history_files_are_named(self, tmp_path):
        import warnings

        history = _trend_history(tmp_path / "history")
        (history / "BENCH_torn.json").write_text('{"schema": 1, "kin')
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            document = write_report(
                tmp_path / "report.html", history_dir=history
            )
        assert "Skipped unreadable history files: BENCH_torn.json." \
            in document

    def test_report_cli_history_flag(self, tmp_path, capsys):
        from repro.cli import main

        history = _trend_history(tmp_path / "history")
        out = tmp_path / "report.html"
        assert main([
            "report", "--history", str(history), "--html", str(out),
        ]) == 0
        assert "report written to" in capsys.readouterr().err
        assert "Perf trajectory" in out.read_text(encoding="utf-8")

    def test_empty_history_dir_renders_no_history_notice(self, tmp_path):
        """An existing-but-empty history directory is a valid state (a
        fresh clone before the first bench run): the page renders with
        an explanatory note instead of the generic empty-report text."""
        history = tmp_path / "history"
        history.mkdir()
        document = write_report(tmp_path / "report.html",
                                history_dir=history)
        assert "Perf trajectory" in document
        assert "No bench history" in document
        assert "repro bench" in document

    def test_missing_history_dir_renders_no_history_notice(self, tmp_path):
        """Regression: --history pointing at a directory that does not
        exist used to raise out of bench_trend; it must render a valid
        'no history' page naming the missing directory."""
        history = tmp_path / "does-not-exist"
        document = write_report(tmp_path / "report.html",
                                history_dir=history)
        assert "No bench history" in document
        assert "does-not-exist" in document

    def test_report_cli_missing_history_dir_exits_zero(self, tmp_path,
                                                       capsys):
        from repro.cli import main

        out = tmp_path / "report.html"
        assert main([
            "report", "--history", str(tmp_path / "nope"),
            "--html", str(out),
        ]) == 0
        assert "report written to" in capsys.readouterr().err
        assert "No bench history" in out.read_text(encoding="utf-8")


MEMORY_REPORT_GOLDEN = (
    Path(__file__).parent / "golden" / "report_memory.golden.html"
)


def _memory_history(directory: Path) -> Path:
    """Three pinned memory-bearing payloads with an allocation step on
    the last run while time stays flat."""
    import statistics

    from repro.obs.bench import bench_payload, \
        scenario_result_from_samples, write_bench

    directory.mkdir(parents=True, exist_ok=True)
    runs = [
        ("BENCH_a.json", "2026-01-01T00:00:00Z", [1000, 1000, 1000]),
        ("BENCH_b.json", "2026-01-02T00:00:00Z", [1005, 1010, 1000]),
        ("BENCH_c.json", "2026-01-03T00:00:00Z", [2000, 2000, 2000]),
    ]
    for filename, created, allocs in runs:
        result = scenario_result_from_samples(
            "check/toy", "check", [1.0, 1.0, 1.0],
            counters={"ops": 2}, warmup=1,
            memory={
                "peak_rss_bytes": 64 * 1048576,
                "alloc_per_rep_bytes": list(allocs),
                "alloc_peak_bytes": max(allocs),
                "alloc_median_bytes": float(statistics.median(allocs)),
                "alloc_stddev_bytes": (
                    float(statistics.stdev(allocs))
                    if len(allocs) > 1 else 0.0
                ),
                "gc_collections": 1,
                "gc_pause_seconds_total": 0.002,
            },
        )
        payload = bench_payload(
            [result], suite="golden", warmup=1, repetitions=3,
            fingerprint=dict(_TREND_FINGERPRINT), created_utc=created,
        )
        write_bench(payload, directory / filename)
    return directory


class TestMemoryPanel:
    def test_memory_panel_renders_for_memory_bearing_bench(self, tmp_path):
        document = write_report(
            tmp_path / "report.html",
            bench_paths=[
                Path(__file__).parent / "golden"
                / "bench_memory.golden.json"
            ],
        )
        assert "<h2>Memory</h2>" in document
        assert "alloc median KiB" in document
        assert "peak RSS MiB" in document

    def test_no_memory_panel_without_memory_sections(self, tmp_path):
        document = write_report(
            tmp_path / "report.html",
            bench_paths=[
                Path(__file__).parent / "golden" / "bench.golden.json"
            ],
        )
        assert "<h2>Memory</h2>" not in document

    def test_memory_trajectory_renders_with_changepoint(self, tmp_path):
        history = _memory_history(tmp_path / "history")
        document = write_report(tmp_path / "report.html",
                                history_dir=history)
        assert "Memory trajectory" in document
        assert 'data-memory-points="3"' in document
        # the injected allocation step lands in the changepoint table
        assert "baseline alloc KiB" in document
        assert "2026-01-03T00:00:00Z" in document

    def test_time_only_history_renders_no_memory_trajectory(self, tmp_path):
        history = _trend_history(tmp_path / "history")
        document = write_report(tmp_path / "report.html",
                                history_dir=history)
        assert "Perf trajectory" in document
        assert "Memory trajectory" not in document

    def test_golden_memory_report_is_byte_stable(self, tmp_path):
        """The memory panel + memory trajectory, byte for byte — layout
        drift must be a conscious golden regeneration."""
        history = _memory_history(tmp_path / "history")
        document = write_report(
            tmp_path / "report.html",
            bench_paths=[
                Path(__file__).parent / "golden"
                / "bench_memory.golden.json"
            ],
            history_dir=history,
        )
        assert document == MEMORY_REPORT_GOLDEN.read_text(encoding="utf-8")
