"""Sinks, renderers, and the pinned JSONL trace schema."""

from __future__ import annotations

import itertools
import json
import threading
from pathlib import Path

import pytest

from repro.obs import (
    JsonlTraceWriter,
    RingBufferSink,
    TraceError,
    TraceWarning,
    Tracer,
    aggregate_trace,
    format_aggregate_table,
    format_forest,
    format_tree,
    orphan_events,
    read_trace,
    trace_root_seconds,
    validate_trace,
)
from repro.obs.sinks import validate_event

GOLDEN = Path(__file__).parent / "golden" / "trace.golden.jsonl"


def _counting_clock(step: float):
    counter = itertools.count()
    return lambda: next(counter) * step


def _write_reference_trace(path: Path) -> None:
    """The reference span tree behind the golden file — deterministic
    because both clocks are injected counters."""
    with JsonlTraceWriter(path) as writer:
        tracer = Tracer(
            sinks=(writer,),
            wall_clock=_counting_clock(1.0),
            cpu_clock=_counting_clock(0.5),
        )
        with tracer.span("repro.check", file="wind_sensor.sj") as root:
            root.count("diagnostics", 0)
            with tracer.span("parse"):
                pass
            with tracer.span("check") as check:
                check.count("methods", 3)
                with tracer.span("flow_check"):
                    pass


class TestRingBuffer:
    def test_keeps_roots_only(self):
        sink = RingBufferSink()
        tracer = Tracer(sinks=(sink,))
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        assert [s.name for s in sink.roots] == ["root"]

    def test_capacity_drops_oldest(self):
        sink = RingBufferSink(capacity=2)
        tracer = Tracer(sinks=(sink,))
        for name in ("a", "b", "c"):
            with tracer.span(name):
                pass
        assert [s.name for s in sink.roots] == ["b", "c"]

    def test_clear(self):
        sink = RingBufferSink()
        tracer = Tracer(sinks=(sink,))
        with tracer.span("a"):
            pass
        sink.clear()
        assert sink.roots == []


class TestJsonlWriter:
    def test_one_valid_event_per_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlTraceWriter(path) as writer:
            tracer = Tracer(sinks=(writer,))
            with tracer.span("root"):
                with tracer.span("child"):
                    pass
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        for line in lines:
            validate_event(json.loads(line))
        # children close first; the root is the last event
        assert json.loads(lines[-1])["parent_id"] is None

    def test_appends_across_writers(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        for _ in range(2):
            with JsonlTraceWriter(path) as writer:
                tracer = Tracer(sinks=(writer,))
                with tracer.span("run"):
                    pass
        assert len(path.read_text().splitlines()) == 2

    def test_concurrent_writes_never_interleave_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlTraceWriter(path) as writer:
            tracer = Tracer(sinks=(writer,))

            def work():
                for _ in range(50):
                    with tracer.span("w", payload="x" * 200):
                        pass

            threads = [threading.Thread(target=work) for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        events = read_trace(path)  # raises if any line is torn
        assert len(events) == 200

    def test_emit_after_close_is_a_noop(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        writer = JsonlTraceWriter(path)
        tracer = Tracer(sinks=(writer,))
        writer.close()
        with tracer.span("late"):
            pass
        assert path.read_text() == ""


class TestFormatTree:
    def test_percentages_relative_to_root(self):
        tracer = Tracer(
            wall_clock=_counting_clock(1.0), cpu_clock=_counting_clock(0.5)
        )
        with tracer.span("root") as root:
            with tracer.span("child"):
                pass
        rendered = format_tree(root)
        lines = rendered.splitlines()
        assert lines[0].startswith("root")
        assert "100.0%" in lines[0]
        assert "└─ child" in lines[1]
        # child: 1 tick of a 3-tick root
        assert "33.3%" in lines[1]

    def test_attrs_and_counters_rendered(self):
        tracer = Tracer()
        with tracer.span("root", file="x.sj") as root:
            root.count("steps", 7)
        rendered = format_tree(root)
        assert "file=x.sj" in rendered
        assert "steps=7" in rendered


class TestTraceValidation:
    def test_reference_trace_round_trips(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        _write_reference_trace(path)
        events = validate_trace(path)
        assert len(events) == 4
        by_name = {event["name"]: event for event in events}
        assert by_name["repro.check"]["parent_id"] is None
        assert by_name["flow_check"]["parent_id"] == by_name["check"]["span_id"]

    def test_golden_trace_is_byte_stable(self, tmp_path):
        """Pins the JSONL wire schema documented in
        docs/OBSERVABILITY.md: key set, key order, value encoding."""
        path = tmp_path / "trace.jsonl"
        _write_reference_trace(path)
        assert path.read_bytes() == GOLDEN.read_bytes()

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(TraceError, match="no span events"):
            validate_trace(path)

    def test_unrooted_trace_warns_but_survives(self, tmp_path):
        """A run killed mid-span leaves children whose root never
        closed.  That partial trace is evidence, not garbage: validation
        warns and returns the events instead of rejecting them (the
        renderer groups the orphans under a synthetic root)."""
        path = tmp_path / "torn.jsonl"
        _write_reference_trace(path)
        events = read_trace(path)
        torn = [e for e in events if e["parent_id"] is not None]
        path.write_text(
            "\n".join(json.dumps(e) for e in torn) + "\n"
        )
        with pytest.warns(TraceWarning, match="orphaned span"):
            survivors = validate_trace(path)
        assert len(survivors) == len(torn)
        assert orphan_events(survivors)

    def test_invalid_json_line_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json\n")
        with pytest.raises(TraceError, match="invalid JSON"):
            read_trace(path)

    def test_missing_keys_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"schema": 1, "event": "span"}) + "\n")
        with pytest.raises(TraceError, match="missing keys"):
            read_trace(path)

    def test_wrong_schema_rejected(self):
        with pytest.raises(TraceError, match="unsupported trace schema"):
            validate_event({
                "schema": 999, "event": "span", "trace_id": "t1",
                "span_id": 1, "parent_id": None, "name": "x",
                "start_seconds": 0, "duration_seconds": 0,
                "cpu_seconds": 0, "attrs": {}, "counters": {},
            })


class TestTruncatedTail:
    """A writer killed mid-``os.write`` leaves a final line without a
    trailing newline; the reader skips it with a warning instead of
    rejecting every complete line before it."""

    def _truncate_tail(self, path: Path, keep: int) -> None:
        text = path.read_text()
        lines = text.splitlines()
        torn = lines[-1][:keep]  # cut mid-JSON, drop the newline
        path.write_text("\n".join(lines[:-1]) + "\n" + torn)

    def test_truncated_final_line_skipped_with_warning(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        _write_reference_trace(path)
        complete = len(read_trace(path))
        self._truncate_tail(path, keep=20)
        with pytest.warns(TraceWarning, match="truncated final line"):
            events = read_trace(path)
        assert len(events) == complete - 1

    def test_valid_unterminated_final_line_still_returned(self, tmp_path):
        # The write made it out entirely except for... nothing: the JSON
        # is complete, only the newline is missing.  Keep it.
        path = tmp_path / "trace.jsonl"
        _write_reference_trace(path)
        complete = len(read_trace(path))
        path.write_text(path.read_text().rstrip("\n"))
        events = read_trace(path)
        assert len(events) == complete

    def test_corrupt_terminated_line_still_raises(self, tmp_path):
        # Corruption on a newline-terminated line was a complete write:
        # that is real damage, not a crashed writer.
        path = tmp_path / "trace.jsonl"
        _write_reference_trace(path)
        lines = path.read_text().splitlines()
        lines[1] = lines[1][:20]
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(TraceError):
            read_trace(path)

    def test_truncated_validation_failure_also_skipped(self, tmp_path):
        # The tail parses as JSON but fails schema validation (e.g. the
        # attrs object was cut off and braces happened to balance) —
        # same treatment as a parse failure.
        path = tmp_path / "trace.jsonl"
        _write_reference_trace(path)
        complete = len(read_trace(path))
        path.write_text(
            path.read_text() + json.dumps({"schema": 1, "event": "span"})
        )
        with pytest.warns(TraceWarning, match="truncated final line"):
            events = read_trace(path)
        assert len(events) == complete

    def test_events_reader_shares_the_tolerance(self, tmp_path):
        from repro.obs import EventLog, JsonlEventWriter, read_events

        path = tmp_path / "events.jsonl"
        with JsonlEventWriter(path) as writer:
            log = EventLog(sinks=(writer,))
            log.emit("one")
            log.emit("two")
        self._truncate_tail(path, keep=10)
        with pytest.warns(TraceWarning, match="truncated final line"):
            records = read_events(path)
        assert [r["name"] for r in records] == ["one"]


class TestAggregate:
    def test_sums_by_name_sorted_by_wall(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        _write_reference_trace(path)
        _write_reference_trace(path)  # appends a second identical tree
        rows = aggregate_trace(read_trace(path))
        assert rows[0]["name"] == "repro.check"  # widest span first
        by_name = {row["name"]: row for row in rows}
        assert by_name["parse"]["count"] == 2
        assert by_name["check"]["counters"] == {"methods": 6}
        assert by_name["parse"]["mean_seconds"] == pytest.approx(
            by_name["parse"]["wall_seconds"] / 2
        )

    def test_self_time_excludes_direct_children(self, tmp_path):
        # reference tree (counting clock, step 1s): root 7s with
        # children parse (1s) and check (3s); check holds flow_check
        # (1s).  Exclusive times: root 3, check 2, parse 1, flow 1.
        path = tmp_path / "trace.jsonl"
        _write_reference_trace(path)
        by_name = {
            row["name"]: row for row in aggregate_trace(read_trace(path))
        }
        assert by_name["repro.check"]["self_seconds"] == pytest.approx(3.0)
        assert by_name["check"]["self_seconds"] == pytest.approx(2.0)
        assert by_name["parse"]["self_seconds"] == pytest.approx(1.0)
        assert by_name["flow_check"]["self_seconds"] == pytest.approx(1.0)

    def test_self_times_sum_to_root_wall(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        _write_reference_trace(path)
        _write_reference_trace(path)
        events = read_trace(path)
        rows = aggregate_trace(events)
        assert sum(row["self_seconds"] for row in rows) == pytest.approx(
            trace_root_seconds(events)
        )
        assert trace_root_seconds(events) == pytest.approx(14.0)

    def test_rows_sorted_by_self_time_then_name(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        _write_reference_trace(path)
        rows = aggregate_trace(read_trace(path))
        keys = [(-row["self_seconds"], row["name"]) for row in rows]
        assert keys == sorted(keys)
        # parse and flow_check tie at 1s self: name breaks the tie
        tied = [row["name"] for row in rows if row["self_seconds"] == 1.0]
        assert tied == sorted(tied)


class TestAggregateTable:
    def test_renders_deterministically(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        _write_reference_trace(path)
        events = read_trace(path)
        rows = aggregate_trace(events)
        first = format_aggregate_table(rows, total_seconds=7.0)
        second = format_aggregate_table(
            aggregate_trace(read_trace(path)), total_seconds=7.0
        )
        assert first == second
        header, *body = first.splitlines()
        assert "self ms" in header and "self%" in header
        assert len(body) == len(rows)

    def test_counters_render_as_stable_ints(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        _write_reference_trace(path)
        table = format_aggregate_table(aggregate_trace(read_trace(path)))
        assert "methods=3" in table
        assert "methods=3.0" not in table
