"""Benchmark harness: deterministic runner, schema, comparator, CLI."""

from __future__ import annotations

import itertools
import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.obs import (
    JsonlTraceWriter,
    Tracer,
    aggregate_trace,
    installed_tracer,
    read_trace,
    trace_root_seconds,
)
from repro.obs.bench import (
    BENCH_SCHEMA,
    BenchError,
    Scenario,
    attribute_benchmarks,
    bench_payload,
    compare_benchmarks,
    dumps_bench,
    format_attribution,
    format_comparison,
    get_scenario,
    read_bench,
    run_scenario,
    run_scenarios,
    scenario_names,
    scenario_result_from_samples,
    validate_bench,
    write_bench,
)
from repro.service import protocol

GOLDEN = Path(__file__).parent / "golden" / "bench.golden.json"

#: A fingerprint pinned for byte-stable golden output.
PINNED_FINGERPRINT = {
    "python": "3.11.0",
    "implementation": "CPython",
    "platform": "Linux-golden",
    "machine": "x86_64",
    "cpu_count": 4,
    "git_sha": "0" * 40,
}

CREATED = "2026-01-01T00:00:00Z"


def _counting_clock(step: float):
    counter = itertools.count()
    return lambda: next(counter) * step


def _toy_scenario(name: str = "check/toy", kind: str = "check") -> Scenario:
    """A registry-independent scenario whose op is free — with a
    counting clock every repetition times exactly one clock step."""
    return Scenario(name, kind, ("small", "full"), lambda: lambda: {"ops": 2})


def _result(name: str, samples, kind: str = "check", warmup: int = 1):
    return scenario_result_from_samples(
        name, kind, samples, counters={"ops": 2}, warmup=warmup
    )


def _payload(results):
    return bench_payload(
        results,
        suite="golden",
        warmup=1,
        repetitions=max(r["repetitions"] for r in results),
        fingerprint=dict(PINNED_FINGERPRINT),
        created_utc=CREATED,
    )


class TestRunner:
    def test_deterministic_with_injected_clock(self):
        result = run_scenario(
            _toy_scenario(),
            warmup=2,
            repetitions=4,
            clock=_counting_clock(0.25),
        )
        assert result["samples_seconds"] == [0.25] * 4
        assert result["min_seconds"] == 0.25
        assert result["median_seconds"] == 0.25
        assert result["mean_seconds"] == 0.25
        assert result["stddev_seconds"] == 0.0
        assert result["counters"] == {"ops": 2.0}
        assert result["warmup"] == 2 and result["repetitions"] == 4

    def test_golden_bench_json(self):
        """The full payload, byte for byte — schema drift must be a
        conscious change to the golden file and BENCH_SCHEMA."""
        results = run_scenarios(
            [_toy_scenario()],
            warmup=1,
            repetitions=3,
            clock=_counting_clock(0.5),
        )
        payload = _payload(results)
        assert dumps_bench(payload) == GOLDEN.read_text(encoding="utf-8")

    def test_scenario_root_span_composes_with_trace(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        with JsonlTraceWriter(trace) as writer:
            with installed_tracer(Tracer(sinks=(writer,))):
                run_scenario(
                    _toy_scenario(),
                    warmup=1,
                    repetitions=2,
                    clock=_counting_clock(0.5),
                )
        events = read_trace(trace)
        roots = [e for e in events if e["parent_id"] is None]
        assert [r["name"] for r in roots] == ["bench.check/toy"]
        assert roots[0]["counters"] == {"repetitions": 2}
        children = [e["name"] for e in events if e["parent_id"] is not None]
        assert children.count("warmup") == 1
        assert children.count("repetition") == 2

    def test_registry_rejects_unknown_names(self):
        with pytest.raises(BenchError, match="unknown scenario"):
            get_scenario("check/nonesuch")
        with pytest.raises(BenchError, match="unknown suite"):
            scenario_names("medium")

    def test_small_suite_is_subset_of_full(self):
        small, full = scenario_names("small"), scenario_names("full")
        assert set(small) < set(full)
        assert "check/wind_sensor" in small
        assert "service-batch/apps" in small


class TestSchema:
    def test_round_trip(self, tmp_path):
        payload = _payload([_result("check/toy", [0.5, 0.5, 0.5])])
        path = write_bench(payload, tmp_path / "BENCH_test.json")
        assert read_bench(path) == payload

    def test_default_filename_uses_utc_stamp(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        payload = _payload([_result("check/toy", [0.5])])
        path = write_bench(payload)
        assert path.name == "BENCH_20260101T000000Z.json"

    def test_schema_violations_rejected(self):
        good = _payload([_result("check/toy", [0.5, 0.5])])
        assert validate_bench(good) is good

        wrong_schema = dict(good, schema=BENCH_SCHEMA + 1)
        with pytest.raises(BenchError, match="unsupported bench schema"):
            validate_bench(wrong_schema)
        with pytest.raises(BenchError, match="kind"):
            validate_bench(dict(good, kind="trace"))
        with pytest.raises(BenchError, match="non-empty list"):
            validate_bench(dict(good, scenarios=[]))
        with pytest.raises(BenchError, match="fingerprint missing"):
            validate_bench(dict(good, fingerprint={"python": "3"}))

        bad_reps = _payload([_result("check/toy", [0.5, 0.5])])
        bad_reps["scenarios"][0]["repetitions"] = 7
        with pytest.raises(BenchError, match="repetitions must equal"):
            validate_bench(bad_reps)

        dupe = _payload(
            [_result("check/toy", [0.5]), _result("check/toy", [0.5])]
        )
        with pytest.raises(BenchError, match="duplicate scenario"):
            validate_bench(dupe)

    def test_unknown_kind_rejected(self):
        with pytest.raises(BenchError, match="unknown scenario kind"):
            scenario_result_from_samples("x", "compile", [0.5])

    def test_read_bench_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(BenchError, match="invalid JSON"):
            read_bench(path)

    def test_protocol_envelope(self):
        payload = _payload([_result("check/toy", [0.5])])
        envelope = protocol.bench_payload(payload)
        protocol.validate_bench_payload(envelope)
        with pytest.raises(protocol.ProtocolError):
            protocol.validate_bench_payload(
                dict(envelope, scenarios=[])
            )


class TestComparator:
    def test_identical_inputs_all_within_noise(self):
        payload = _payload([_result("check/toy", [1.0, 1.0, 1.0])])
        comparison = compare_benchmarks(payload, payload, 10.0)
        assert [r["status"] for r in comparison["rows"]] == ["within-noise"]
        assert comparison["ok"]

    def test_doubled_median_is_a_regression(self):
        old = _payload([_result("check/toy", [1.0, 1.0, 1.0])])
        new = _payload([_result("check/toy", [2.0, 2.0, 2.0])])
        comparison = compare_benchmarks(old, new, 25.0)
        (row,) = comparison["rows"]
        assert row["status"] == "regression"
        assert row["delta_pct"] == pytest.approx(100.0)
        assert comparison["regressions"] == ["check/toy"]
        assert not comparison["ok"]

    def test_halved_median_is_an_improvement(self):
        old = _payload([_result("check/toy", [1.0, 1.0, 1.0])])
        new = _payload([_result("check/toy", [0.5, 0.5, 0.5])])
        comparison = compare_benchmarks(old, new, 25.0)
        assert comparison["improvements"] == ["check/toy"]
        assert comparison["ok"]  # improvements never fail the gate

    def test_shift_below_threshold_is_noise(self):
        old = _payload([_result("check/toy", [1.0, 1.0, 1.0])])
        new = _payload([_result("check/toy", [1.05, 1.05, 1.05])])
        comparison = compare_benchmarks(old, new, 10.0)
        assert [r["status"] for r in comparison["rows"]] == ["within-noise"]

    def test_shift_inside_sample_noise_is_noise(self):
        # +50% median shift, but the samples are so scattered that the
        # combined stddev swallows it — not statistically meaningful.
        old = _payload([_result("check/toy", [0.5, 1.0, 1.5])])
        new = _payload([_result("check/toy", [1.0, 1.5, 2.0])])
        comparison = compare_benchmarks(old, new, 10.0)
        (row,) = comparison["rows"]
        assert row["delta_pct"] == pytest.approx(50.0)
        assert row["status"] == "within-noise"
        assert comparison["ok"]

    def test_missing_scenario_fails_the_gate(self):
        old = _payload(
            [_result("check/toy", [1.0]), _result("infer/toy", [1.0], "infer")]
        )
        new = _payload([_result("check/toy", [1.0])])
        comparison = compare_benchmarks(old, new, 10.0)
        assert comparison["missing"] == ["infer/toy"]
        assert not comparison["ok"]

    def test_added_scenario_is_reported_not_failed(self):
        old = _payload([_result("check/toy", [1.0])])
        new = _payload(
            [_result("check/toy", [1.0]), _result("infer/toy", [1.0], "infer")]
        )
        comparison = compare_benchmarks(old, new, 10.0)
        assert comparison["added"] == ["infer/toy"]
        assert comparison["ok"]

    def test_bad_threshold_rejected(self):
        payload = _payload([_result("check/toy", [1.0])])
        with pytest.raises(BenchError, match="threshold"):
            compare_benchmarks(payload, payload, -1)


class TestBenchCli:
    def test_run_writes_valid_bench(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert main([
            "bench", "--scenario", "check/wind_sensor",
            "--repetitions", "2", "--warmup", "0",
            "--output", str(out),
        ]) == 0
        payload = read_bench(out)
        assert [s["name"] for s in payload["scenarios"]] == [
            "check/wind_sensor"
        ]
        assert "check/wind_sensor" in capsys.readouterr().out

    def test_json_emits_protocol_envelope(self, tmp_path, capsys):
        assert main([
            "bench", "--scenario", "check/wind_sensor",
            "--repetitions", "1", "--warmup", "0", "--json",
            "--output", str(tmp_path / "bench.json"),
        ]) == 0
        envelope = json.loads(capsys.readouterr().out)
        protocol.validate_bench_payload(envelope)

    def test_compare_identical_files_exits_0(self, tmp_path, capsys):
        path = write_bench(
            _payload([_result("check/toy", [1.0, 1.0])]),
            tmp_path / "old.json",
        )
        assert main([
            "bench", "--compare", str(path), "--against", str(path),
        ]) == 0
        assert "within-noise" in capsys.readouterr().out

    def test_compare_2x_slowdown_exits_1(self, tmp_path, capsys):
        old = write_bench(
            _payload([_result("check/toy", [1.0, 1.0])]),
            tmp_path / "old.json",
        )
        new = write_bench(
            _payload([_result("check/toy", [2.0, 2.0])]),
            tmp_path / "new.json",
        )
        assert main([
            "bench", "--compare", str(old), "--against", str(new),
            "--threshold", "25",
        ]) == 1
        assert "regression" in capsys.readouterr().out

    def test_run_then_compare_against_baseline(self, tmp_path, capsys):
        # a real (non-injected) run compared against a generous baseline
        # built from its own output must pass the gate
        out = tmp_path / "run.json"
        assert main([
            "bench", "--scenario", "check/wind_sensor",
            "--repetitions", "2", "--warmup", "0", "--output", str(out),
        ]) == 0
        capsys.readouterr()
        baseline = dict(read_bench(out))
        for entry in baseline["scenarios"]:
            entry["median_seconds"] *= 100
            entry["min_seconds"] *= 100
            entry["mean_seconds"] *= 100
            entry["samples_seconds"] = [
                s * 100 for s in entry["samples_seconds"]
            ]
        baseline_path = write_bench(baseline, tmp_path / "baseline.json")
        assert main([
            "bench", "--scenario", "check/wind_sensor",
            "--repetitions", "2", "--warmup", "0",
            "--output", str(tmp_path / "run2.json"),
            "--compare", str(baseline_path), "--threshold", "25",
        ]) in (0, 1)  # improvement or noise — never a crash
        assert "improvement" in capsys.readouterr().out

    def test_unknown_scenario_exits_2(self, capsys):
        assert main(["bench", "--scenario", "check/nonesuch"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_list_prints_suite(self, capsys):
        assert main(["bench", "--list", "--suite", "small"]) == 0
        out = capsys.readouterr().out
        assert "check/wind_sensor" in out
        assert "service-batch/apps" in out

    def test_report_self_time_table(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        out = tmp_path / "bench.json"
        assert main([
            "bench", "--scenario", "check/wind_sensor",
            "--repetitions", "2", "--warmup", "0",
            "--output", str(out), "--trace", str(trace),
        ]) == 0
        capsys.readouterr()
        assert main(["bench", "--report", str(trace)]) == 0
        table = capsys.readouterr().out
        assert "self ms" in table and "self%" in table
        assert "bench.check/wind_sensor" in table
        # the acceptance criterion: per-name exclusive times sum to the
        # trace's root wall time
        events = read_trace(trace)
        rows = aggregate_trace(events)
        assert sum(r["self_seconds"] for r in rows) == pytest.approx(
            trace_root_seconds(events)
        )

    def test_report_rejects_invalid_trace(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("{nope\n")
        assert main(["bench", "--report", str(bad)]) == 2
        assert "invalid trace" in capsys.readouterr().err

    def test_report_and_compare_are_exclusive(self, tmp_path, capsys):
        assert main([
            "bench", "--report", "x.jsonl", "--compare", "y.json",
        ]) == 2

    def test_against_requires_compare(self, capsys):
        assert main(["bench", "--against", "x.json"]) == 2


def _spans(rows: dict[str, float], count: int = 3) -> list[dict]:
    """Span-table rows from name -> summed self seconds."""
    return [
        {"name": name, "count": count, "self_seconds": seconds,
         "wall_seconds": seconds}
        for name, seconds in sorted(rows.items())
    ]


class TestSpanTables:
    def _spanning_scenario(self) -> Scenario:
        from repro.obs import get_tracer

        def build():
            def op():
                tracer = get_tracer()
                with tracer.span("parse"):
                    pass
                with tracer.span("flow_check"):
                    pass
                return {"ops": 2}
            return op

        return Scenario("check/spanning", "check", ("small",), build)

    def test_run_scenario_collects_span_table(self):
        """span_table=True taps the repetitions with a local tracer —
        no --trace required — and excludes the harness's own spans."""
        result = run_scenario(
            self._spanning_scenario(),
            warmup=2,
            repetitions=3,
            clock=_counting_clock(0.25),
            span_table=True,
        )
        names = {row["name"] for row in result["spans"]}
        assert names == {"parse", "flow_check"}
        by_name = {row["name"]: row for row in result["spans"]}
        # warmup runs are not collected: 3 timed repetitions only
        assert by_name["parse"]["count"] == 3
        validate_bench(_payload([result]))

    def test_span_table_composes_with_installed_tracer(self, tmp_path):
        """With a real tracer installed the sink taps it without
        stealing its other sinks' events."""
        trace = tmp_path / "trace.jsonl"
        with JsonlTraceWriter(trace) as writer:
            with installed_tracer(Tracer(sinks=(writer,))):
                result = run_scenario(
                    self._spanning_scenario(),
                    warmup=1,
                    repetitions=2,
                    clock=_counting_clock(0.25),
                    span_table=True,
                )
        assert {r["name"] for r in result["spans"]} == {
            "parse", "flow_check",
        }
        # the trace file still has the full structure, warmups included
        names = [e["name"] for e in read_trace(trace)]
        assert "bench.check/spanning" in names
        assert "warmup" in names

    def test_validate_bench_rejects_malformed_spans(self):
        base = _result("check/toy", [1.0], warmup=0)
        bad_rows = _payload([dict(base, spans="nope")])
        with pytest.raises(BenchError, match="spans must be a list"):
            validate_bench(bad_rows)
        bad_name = _payload([dict(base, spans=[{"count": 1}])])
        with pytest.raises(BenchError, match="needs a name"):
            validate_bench(bad_name)
        bad_count = _payload([dict(base, spans=[
            {"name": "parse", "count": 1.5, "self_seconds": 0.1,
             "wall_seconds": 0.1},
        ])])
        with pytest.raises(BenchError, match="count must be an int"):
            validate_bench(bad_count)
        bad_seconds = _payload([dict(base, spans=[
            {"name": "parse", "count": 1, "self_seconds": "x",
             "wall_seconds": 0.1},
        ])])
        with pytest.raises(BenchError, match="self_seconds must be a number"):
            validate_bench(bad_seconds)


class TestAttribution:
    """The synthetic two-payload fixture from the issue: one span
    regresses beyond the noise envelope, one drifts within it."""

    def _old(self):
        return _payload([
            scenario_result_from_samples(
                "check/toy", "check", [1.0, 1.0, 1.0],
                counters={"ops": 2}, warmup=1,
                spans=_spans({
                    "parse": 0.3, "flow_check": 0.6, "typecheck": 1.5,
                }),
            ),
        ])

    def _new(self):
        # median 1.6s, stddev exactly 0.1 -> noise envelope 0.1s/rep
        return _payload([
            scenario_result_from_samples(
                "check/toy", "check", [1.5, 1.6, 1.7],
                counters={"ops": 2}, warmup=1,
                spans=_spans({
                    # typecheck +0.5s/rep: the injected regression
                    "typecheck": 3.0,
                    # flow_check +0.05s/rep: inside the noise envelope
                    "flow_check": 0.75,
                    "parse": 0.3,
                }),
            ),
        ])

    def test_regressed_span_ranked_first(self):
        attribution = attribute_benchmarks(self._old(), self._new())
        (scenario,) = attribution["scenarios"]
        assert scenario["status"] == "regression"
        assert scenario["delta_seconds"] == pytest.approx(0.6)
        assert scenario["noise_seconds"] == pytest.approx(0.1)
        (top,) = scenario["spans"]
        assert top["name"] == "typecheck"
        assert top["delta_seconds"] == pytest.approx(0.5)
        assert top["share_pct"] == pytest.approx(83.33, abs=0.01)
        # parse (no shift) and flow_check (+0.05 <= 0.1) are excluded
        assert scenario["excluded_within_noise"] == 2

    def test_attribution_is_deterministic(self):
        first = attribute_benchmarks(self._old(), self._new())
        second = attribute_benchmarks(self._old(), self._new())
        assert first == second
        assert format_attribution(first) == format_attribution(second)

    def test_normalizes_across_repetition_counts(self):
        """Self times are per-repetition before differencing, so a
        2-rep payload joins a 3-rep one without phantom shifts."""
        new = _payload([
            scenario_result_from_samples(
                "check/toy", "check", [1.0, 1.0],
                counters={"ops": 2}, warmup=1,
                # same per-rep spans as _old, summed over 2 reps
                spans=_spans({
                    "parse": 0.2, "flow_check": 0.4, "typecheck": 1.0,
                }, count=2),
            ),
        ])
        attribution = attribute_benchmarks(self._old(), new)
        (scenario,) = attribution["scenarios"]
        assert scenario["spans"] == []
        assert scenario["excluded_within_noise"] == 3

    def test_missing_span_table_lists_scenario_unattributed(self):
        old = self._old()
        new = _payload([_result("check/toy", [1.0, 1.0, 1.0])])
        attribution = attribute_benchmarks(old, new)
        assert attribution["scenarios"] == []
        assert attribution["unattributed"] == ["check/toy"]
        rendered = format_attribution(attribution)
        assert "rerun with --spans" in rendered
        assert "no scenario carried span tables" in rendered

    def test_tie_break_by_name(self):
        old = _payload([
            scenario_result_from_samples(
                "check/toy", "check", [1.0, 1.0, 1.0],
                counters={}, warmup=0,
                spans=_spans({"beta": 0.3, "alpha": 0.3}),
            ),
        ])
        new = _payload([
            scenario_result_from_samples(
                "check/toy", "check", [2.0, 2.0, 2.0],
                counters={}, warmup=0,
                spans=_spans({"beta": 1.8, "alpha": 1.8}),
            ),
        ])
        attribution = attribute_benchmarks(old, new)
        (scenario,) = attribution["scenarios"]
        assert [r["name"] for r in scenario["spans"]] == ["alpha", "beta"]

    def test_format_ranks_and_labels(self):
        rendered = format_attribution(
            attribute_benchmarks(self._old(), self._new())
        )
        assert "check/toy: 1000.00 -> 1600.00 ms (+60.0%, regression)" \
            in rendered
        assert "#1 typecheck" in rendered
        assert "2 span(s) within" in rendered


class TestCompareSymmetricDifference:
    def test_missing_and_added_named_in_rendering(self):
        old = _payload([
            _result("check/toy", [1.0]), _result("check/gone", [1.0]),
        ])
        new = _payload([
            _result("check/toy", [1.0]), _result("check/new", [1.0]),
        ])
        comparison = compare_benchmarks(old, new)
        assert comparison["missing"] == ["check/gone"]
        assert comparison["added"] == ["check/new"]
        rendered = format_comparison(comparison)
        assert "// missing from new run: check/gone" in rendered
        assert "// added in new run: check/new" in rendered

    def test_compare_cli_error_names_missing_scenarios(
        self, tmp_path, capsys
    ):
        old = write_bench(
            _payload([
                _result("check/toy", [1.0]),
                _result("check/gone", [1.0]),
            ]),
            tmp_path / "old.json",
        )
        new = write_bench(
            _payload([_result("check/toy", [1.0])]),
            tmp_path / "new.json",
        )
        assert main([
            "bench", "--compare", str(old), "--against", str(new),
        ]) == 1
        captured = capsys.readouterr()
        assert "// missing from new run: check/gone" in captured.out
        assert (
            "error: scenario(s) missing from the new run: check/gone"
            in captured.err
        )

    def test_compare_json_envelope_carries_symmetric_difference(
        self, tmp_path, capsys
    ):
        old = write_bench(
            _payload([
                _result("check/toy", [1.0]),
                _result("check/gone", [1.0]),
            ]),
            tmp_path / "old.json",
        )
        new = write_bench(
            _payload([
                _result("check/toy", [1.0]),
                _result("check/new", [1.0]),
            ]),
            tmp_path / "new.json",
        )
        assert main([
            "bench", "--compare", str(old), "--against", str(new),
            "--json",
        ]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["version"] == protocol.PROTOCOL_VERSION
        assert document["kind"] == "bench-compare"
        assert document["missing"] == ["check/gone"]
        assert document["added"] == ["check/new"]


class TestAttributionCli:
    def _fixture_paths(self, tmp_path):
        old = _payload([
            scenario_result_from_samples(
                "check/toy", "check", [1.0, 1.0, 1.0],
                counters={"ops": 2}, warmup=1,
                spans=_spans({
                    "parse": 0.3, "flow_check": 0.6, "typecheck": 1.5,
                }),
            ),
        ])
        new = _payload([
            scenario_result_from_samples(
                "check/toy", "check", [1.5, 1.6, 1.7],
                counters={"ops": 2}, warmup=1,
                spans=_spans({
                    "typecheck": 3.0, "flow_check": 0.75, "parse": 0.3,
                }),
            ),
        ])
        return (
            write_bench(old, tmp_path / "old.json"),
            write_bench(new, tmp_path / "new.json"),
        )

    def test_attribute_ranks_injected_regression_first(
        self, tmp_path, capsys
    ):
        old, new = self._fixture_paths(tmp_path)
        assert main([
            "bench", "--attribute", str(old), str(new),
        ]) == 0
        out = capsys.readouterr().out
        assert "#1 typecheck" in out
        assert "regression" in out

    def test_attribute_json_envelope(self, tmp_path, capsys):
        old, new = self._fixture_paths(tmp_path)
        assert main([
            "bench", "--attribute", str(old), str(new), "--json",
        ]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["version"] == protocol.PROTOCOL_VERSION
        assert document["kind"] == "bench-attribution"
        (scenario,) = document["scenarios"]
        assert scenario["spans"][0]["name"] == "typecheck"

    def test_bench_spans_flag_records_span_tables(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert main([
            "bench", "--scenario", "check/wind_sensor",
            "--repetitions", "2", "--warmup", "0",
            "--output", str(out), "--spans",
        ]) == 0
        payload = read_bench(out)
        (scenario,) = payload["scenarios"]
        spans = scenario["spans"]
        assert spans, "expected a span table from --spans"
        names = {row["name"] for row in spans}
        assert "check" in names
        assert not names & {"warmup", "repetition", "bench.check/wind_sensor"}


MEMORY_GOLDEN = Path(__file__).parent / "golden" / "bench_memory.golden.json"


class _SteppingAlloc:
    """A tracemalloc stand-in whose traced count grows by a fixed step
    on every read, so per-repetition peaks are deterministic."""

    def __init__(self, step: int = 512) -> None:
        self.step = step
        self.current = 0
        self.peak = 0

    def read(self):
        self.current += self.step
        self.peak = max(self.peak, self.current)
        return (self.current, self.peak)

    def reset(self) -> None:
        self.peak = self.current


def _fake_monitor(alloc=None, rss: int = 64 * 1048576):
    from repro.obs.resources import ResourceMonitor

    return ResourceMonitor(
        clock=_counting_clock(0.25),
        rss_supplier=lambda: rss,
        track_gc=False,
        alloc_read=(alloc or _SteppingAlloc()).read if alloc is None
        else alloc.read,
        alloc_reset=None if alloc is None else alloc.reset,
    ).start()


def _memory(allocs, *, rss=64 * 1048576, stddev=None, gc=0, pause=0.0):
    import statistics

    return {
        "peak_rss_bytes": rss,
        "alloc_per_rep_bytes": list(allocs),
        "alloc_peak_bytes": max(allocs) if allocs else None,
        "alloc_median_bytes": (
            float(statistics.median(allocs)) if allocs else None
        ),
        "alloc_stddev_bytes": (
            stddev if stddev is not None
            else float(statistics.stdev(allocs)) if len(allocs) > 1 else 0.0
        ),
        "gc_collections": gc,
        "gc_pause_seconds_total": pause,
    }


def _mem_result(name, samples, allocs, *, stddev=None, kind="check"):
    return scenario_result_from_samples(
        name, kind, samples, counters={"ops": 2}, warmup=1,
        memory=_memory(allocs, stddev=stddev),
    )


class TestMemoryTelemetry:
    def test_run_scenario_collects_memory_section(self):
        alloc = _SteppingAlloc(step=512)
        result = run_scenario(
            _toy_scenario(),
            warmup=1,
            repetitions=3,
            clock=_counting_clock(0.5),
            monitor=_fake_monitor(alloc),
        )
        memory = result["memory"]
        assert memory["alloc_per_rep_bytes"] == [512, 512, 512]
        assert memory["alloc_peak_bytes"] == 512
        assert memory["alloc_median_bytes"] == 512.0
        assert memory["alloc_stddev_bytes"] == 0.0
        assert memory["peak_rss_bytes"] == 64 * 1048576
        assert memory["gc_collections"] == 0
        assert memory["gc_pause_seconds_total"] == 0.0

    def test_memory_true_owns_a_scenario_scoped_monitor(self):
        import tracemalloc

        assert not tracemalloc.is_tracing()
        result = run_scenario(
            _toy_scenario(),
            warmup=0,
            repetitions=2,
            clock=_counting_clock(0.5),
            memory=True,
        )
        assert not tracemalloc.is_tracing()  # stopped on the way out
        memory = result["memory"]
        assert len(memory["alloc_per_rep_bytes"]) == 2
        assert all(s >= 0 for s in memory["alloc_per_rep_bytes"])
        assert memory["peak_rss_bytes"] > 0

    def test_golden_bench_memory_json(self):
        """The memory-bearing payload, byte for byte — additive-schema
        drift must be a conscious change to the golden file."""
        results = run_scenarios(
            [_toy_scenario()],
            warmup=1,
            repetitions=3,
            clock=_counting_clock(0.5),
            monitor=_fake_monitor(_SteppingAlloc(step=512)),
        )
        payload = _payload(results)
        validate_bench(payload)
        assert dumps_bench(payload) == MEMORY_GOLDEN.read_text(
            encoding="utf-8"
        )

    def test_memoryless_payload_still_validates(self):
        payload = _payload([_result("check/toy", [0.5, 0.5])])
        assert "memory" not in payload["scenarios"][0]
        assert validate_bench(payload) is payload

    def test_memory_section_violations_rejected(self):
        def with_memory(**overrides):
            result = _mem_result("check/toy", [0.5, 0.5], [100, 200])
            result["memory"].update(overrides)
            return _payload([result])

        with pytest.raises(BenchError, match="alloc_per_rep_bytes"):
            validate_bench(with_memory(alloc_per_rep_bytes="lots"))
        with pytest.raises(BenchError, match="alloc_peak_bytes"):
            validate_bench(with_memory(alloc_peak_bytes=-1))
        with pytest.raises(BenchError, match="alloc_median_bytes"):
            validate_bench(with_memory(alloc_median_bytes=None))
        with pytest.raises(BenchError, match="gc_collections"):
            validate_bench(with_memory(gc_collections=-2))
        with pytest.raises(BenchError, match="gc_pause_seconds_total"):
            validate_bench(with_memory(gc_pause_seconds_total=-0.5))
        with pytest.raises(BenchError, match="memory"):
            result = _mem_result("check/toy", [0.5], [100])
            result["memory"] = "big"
            validate_bench(_payload([result]))

    def test_unknown_future_schema_versions_rejected(self):
        """A payload from a *newer* repro must fail loudly, not
        half-parse: the reader names both versions."""
        good = _payload([_mem_result("check/toy", [0.5], [100])])
        for version in (BENCH_SCHEMA + 1, BENCH_SCHEMA + 7, "1", None):
            with pytest.raises(BenchError, match="unsupported bench schema"):
                validate_bench(dict(good, schema=version))

    def test_memory_round_trips_through_protocol_envelope(self):
        payload = _payload(
            [_mem_result("check/toy", [0.5, 0.5], [100, 200])]
        )
        envelope = protocol.bench_payload(payload)
        protocol.validate_bench_payload(envelope)
        decoded = json.loads(protocol.dumps(envelope))
        assert decoded["scenarios"][0]["memory"] == \
            payload["scenarios"][0]["memory"]

    def test_memory_round_trips_through_file(self, tmp_path):
        payload = _payload([_mem_result("check/toy", [0.5], [100])])
        path = write_bench(payload, tmp_path / "BENCH_mem.json")
        assert read_bench(path) == payload


class TestMemoryComparator:
    def test_identical_memory_is_within_noise_and_ok(self):
        payload = _payload(
            [_mem_result("check/toy", [1.0, 1.0], [1000, 1000])]
        )
        comparison = compare_benchmarks(payload, payload, 10.0)
        (row,) = comparison["memory_rows"]
        assert row["status"] == "within-noise"
        assert comparison["memory_regressions"] == []
        assert comparison["ok"]

    def test_tripled_alloc_median_fails_the_gate(self):
        old = _payload(
            [_mem_result("check/toy", [1.0, 1.0], [1000, 1000], stddev=10.0)]
        )
        new = _payload(
            [_mem_result("check/toy", [1.0, 1.0], [3000, 3000], stddev=10.0)]
        )
        comparison = compare_benchmarks(old, new, 25.0)
        (row,) = comparison["memory_rows"]
        assert row["status"] == "regression"
        assert row["delta_pct"] == pytest.approx(200.0)
        assert comparison["memory_regressions"] == ["check/toy"]
        assert not comparison["ok"]  # time rows alone were fine

    def test_halved_alloc_median_is_an_improvement(self):
        old = _payload(
            [_mem_result("check/toy", [1.0], [2000], stddev=10.0)]
        )
        new = _payload(
            [_mem_result("check/toy", [1.0], [1000], stddev=10.0)]
        )
        comparison = compare_benchmarks(old, new, 25.0)
        assert comparison["memory_improvements"] == ["check/toy"]
        assert comparison["ok"]  # improvements never fail the gate

    def test_shift_inside_byte_noise_envelope_is_noise(self):
        # +100% median shift, but the per-rep scatter swallows it.
        old = _payload(
            [_mem_result("check/toy", [1.0], [1000], stddev=800.0)]
        )
        new = _payload(
            [_mem_result("check/toy", [1.0], [2000], stddev=800.0)]
        )
        comparison = compare_benchmarks(old, new, 10.0)
        (row,) = comparison["memory_rows"]
        assert row["delta_pct"] == pytest.approx(100.0)
        assert row["status"] == "within-noise"
        assert comparison["ok"]

    def test_one_sided_memory_compares_time_only(self):
        """An old payload without a memory section gates on time alone —
        no error, no memory rows."""
        old = _payload([_result("check/toy", [1.0, 1.0])])
        new = _payload(
            [_mem_result("check/toy", [1.0, 1.0], [99999999])]
        )
        comparison = compare_benchmarks(old, new, 10.0)
        assert comparison["memory_rows"] == []
        assert comparison["ok"]
        # and symmetrically
        reverse = compare_benchmarks(new, old, 10.0)
        assert reverse["memory_rows"] == []
        assert reverse["ok"]

    def test_format_comparison_renders_memory_table_only_when_present(self):
        with_memory = compare_benchmarks(
            _payload([_mem_result("check/toy", [1.0], [1000])]),
            _payload([_mem_result("check/toy", [1.0], [1000])]),
            10.0,
        )
        text = format_comparison(with_memory)
        assert "memory status" in text
        assert "byte-noise envelope" in text

        time_only = compare_benchmarks(
            _payload([_result("check/toy", [1.0])]),
            _payload([_result("check/toy", [1.0])]),
            10.0,
        )
        assert "memory" not in format_comparison(time_only)

    def test_format_bench_table_memory_columns_are_conditional(self):
        from repro.obs.bench import format_bench_table

        plain = format_bench_table(_payload([_result("check/toy", [1.0])]))
        assert "alloc KiB" not in plain
        enriched = format_bench_table(
            _payload([_mem_result("check/toy", [1.0], [2048])])
        )
        assert "alloc KiB" in enriched and "rss MiB" in enriched


class TestMemoryCli:
    def test_mem_flag_collects_memory_and_writes_resources(
        self, tmp_path, capsys
    ):
        from repro.obs.resources import read_resources

        out = tmp_path / "bench.json"
        mem = tmp_path / "mem.json"
        assert main([
            "bench", "--scenario", "check/wind_sensor",
            "--repetitions", "2", "--warmup", "0",
            "--output", str(out), "--mem", "--mem-json", str(mem),
        ]) == 0
        (scenario,) = read_bench(out)["scenarios"]
        memory = scenario["memory"]
        assert len(memory["alloc_per_rep_bytes"]) == 2
        assert memory["alloc_peak_bytes"] > 0
        assert memory["peak_rss_bytes"] > 0
        resources = read_resources(mem)
        names = [row["name"] for row in resources["sections"]]
        assert "checker.check" in names
        assert "resources written to" in capsys.readouterr().err

    def test_without_mem_flag_no_memory_section(self, tmp_path):
        out = tmp_path / "bench.json"
        assert main([
            "bench", "--scenario", "check/wind_sensor",
            "--repetitions", "1", "--warmup", "0", "--output", str(out),
        ]) == 0
        (scenario,) = read_bench(out)["scenarios"]
        assert "memory" not in scenario
