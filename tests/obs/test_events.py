"""The structured event log: envelope schema, levels, sampling,
trace correlation, sinks, filtering, and the pinned JSONL golden."""

from __future__ import annotations

import itertools
import json
import logging
import threading
import time
from pathlib import Path

import pytest

from repro.obs import (
    EVENTS_SCHEMA,
    EventBuffer,
    EventError,
    EventLog,
    JsonlEventWriter,
    LoggingBridge,
    NullEventLog,
    Tracer,
    filter_events,
    format_event,
    get_event_log,
    installed_tracer,
    read_events,
    set_event_log,
    validate_events,
)
from repro.obs.events import (
    installed_event_log,
    level_rank,
    validate_event_record,
)

GOLDEN = Path(__file__).parent / "golden" / "events.golden.jsonl"


def _counting_clock(step: float):
    counter = itertools.count()
    return lambda: next(counter) * step


def _write_reference_events(path: Path) -> None:
    """The reference stream behind the golden file — deterministic
    because the event clock, the tracer clocks, and the sampler are all
    counters."""
    with JsonlEventWriter(path) as writer:
        tracer = Tracer(
            wall_clock=_counting_clock(1.0),
            cpu_clock=_counting_clock(0.5),
        )
        log = EventLog(
            level="debug",
            sinks=(writer,),
            clock=_counting_clock(0.25),
            sample={"runtime.iteration": 2},
        )
        with installed_tracer(tracer):
            log.emit(
                "campaign.plan", level="info",
                apps=["wind_sensor"], planned=2,
            )
            with tracer.span("trial", site=3):
                log.emit(
                    "trial.corrupted", "fault injected",
                    level="info", site=3, iteration=1,
                )
                for iteration in range(4):
                    log.emit(
                        "runtime.iteration", level="debug",
                        iteration=iteration, digest="00000000",
                    )
                log.emit(
                    "trial.recovered", "outputs re-converged",
                    level="info", site=3,
                    recovery_samples=2, recovery_iterations=1,
                )
            log.emit(
                "campaign.shard", "given up on after retries",
                level="error", shard_id="wind_sensor:0000", attempts=3,
            )


class TestLevels:
    def test_threshold_drops_quieter_events(self):
        buffer = EventBuffer()
        log = EventLog(level="warn", sinks=(buffer,))
        assert log.emit("a", level="debug") is None
        assert log.emit("b", level="info") is None
        assert log.emit("c", level="warn") is not None
        assert log.emit("d", level="error") is not None
        assert [r["name"] for r in buffer.records] == ["c", "d"]

    def test_enabled_for_matches_emit(self):
        log = EventLog(level="info")
        assert not log.enabled_for("debug")
        assert log.enabled_for("info")
        assert log.enabled_for("error")

    def test_unknown_level_raises(self):
        with pytest.raises(EventError, match="unknown event level"):
            EventLog(level="verbose")
        with pytest.raises(EventError, match="unknown event level"):
            EventLog().emit("x", level="loud")
        with pytest.raises(EventError, match="unknown event level"):
            level_rank("trace")

    def test_seq_not_consumed_by_dropped_events(self):
        buffer = EventBuffer()
        log = EventLog(level="info", sinks=(buffer,))
        log.emit("dropped", level="debug")
        record = log.emit("kept")
        assert record["seq"] == 1


class TestSampling:
    def test_counter_based_keep_one_in_n(self):
        buffer = EventBuffer()
        log = EventLog(
            level="debug", sinks=(buffer,), sample={"tick": 3}
        )
        for index in range(9):
            log.emit("tick", index=index)
        kept = [r["attrs"]["index"] for r in buffer.records]
        assert kept == [0, 3, 6]  # deterministic, not random

    def test_sampling_is_per_name(self):
        buffer = EventBuffer()
        log = EventLog(
            level="debug", sinks=(buffer,), sample={"noisy": 2}
        )
        for _ in range(4):
            log.emit("noisy")
            log.emit("quiet")
        names = [r["name"] for r in buffer.records]
        assert names.count("noisy") == 2
        assert names.count("quiet") == 4

    def test_invalid_sample_interval_rejected(self):
        with pytest.raises(EventError, match="positive"):
            EventLog(sample={"x": 0})
        with pytest.raises(EventError, match="positive"):
            EventLog(sample={"x": "often"})


class TestCorrelation:
    def test_event_carries_active_span_ids(self):
        tracer = Tracer()
        log = EventLog()
        with installed_tracer(tracer):
            outside = log.emit("outside")
            with tracer.span("work") as span:
                inside = log.emit("inside")
        assert outside["trace_id"] is None
        assert outside["span_id"] is None
        assert inside["trace_id"] == span.trace_id
        assert inside["span_id"] == span.span_id

    def test_filter_by_span(self):
        tracer = Tracer()
        log = EventLog()
        records = []
        with installed_tracer(tracer):
            with tracer.span("a") as span_a:
                records.append(log.emit("one"))
            with tracer.span("b"):
                records.append(log.emit("two"))
        picked = filter_events(records, span_id=span_a.span_id)
        assert [r["name"] for r in picked] == ["one"]


class TestInstallation:
    def test_default_is_null_log(self):
        log = get_event_log()
        assert isinstance(log, NullEventLog)
        assert not log.enabled
        assert log.emit("anything", level="error") is None

    def test_set_and_restore(self):
        log = EventLog()
        previous = set_event_log(log)
        try:
            assert get_event_log() is log
        finally:
            set_event_log(previous)
        assert isinstance(get_event_log(), NullEventLog)

    def test_installed_event_log_scopes(self):
        with installed_event_log(EventLog()) as log:
            assert get_event_log() is log
        assert isinstance(get_event_log(), NullEventLog)

    def test_disabled_emit_overhead_is_negligible(self):
        """Acceptance: instrumented hot paths (the runtime event loop)
        pay ~nothing when events are off — same bound as the no-op
        tracer's."""
        log = get_event_log()
        assert isinstance(log, NullEventLog)
        start = time.perf_counter()
        for _ in range(100_000):
            if log.enabled and log.enabled_for("debug"):
                raise AssertionError("null log claims to be enabled")
            log.emit("hot", iteration=0)
        elapsed = time.perf_counter() - start
        assert elapsed < 2.0, f"100k no-op emits took {elapsed:.3f}s"


class TestEventBuffer:
    def test_keeps_last_n(self):
        buffer = EventBuffer(capacity=2)
        log = EventLog(sinks=(buffer,))
        for name in ("a", "b", "c"):
            log.emit(name)
        assert [r["name"] for r in buffer.records] == ["b", "c"]

    def test_clear(self):
        buffer = EventBuffer()
        EventLog(sinks=(buffer,)).emit("x")
        buffer.clear()
        assert buffer.records == []


class TestLoggingBridge:
    def test_forwards_to_stdlib_logging(self, caplog):
        log = EventLog(sinks=(LoggingBridge(),))
        with caplog.at_level(logging.INFO, logger="repro"):
            log.emit("trial.recovered", "re-converged", site=7, samples=2)
        assert len(caplog.records) == 1
        record = caplog.records[0]
        assert record.name == "repro.trial.recovered"
        assert record.levelno == logging.INFO
        assert "re-converged" in record.message
        assert "samples=2 site=7" in record.message  # sorted attrs

    def test_level_mapping(self, caplog):
        log = EventLog(level="debug", sinks=(LoggingBridge(),))
        with caplog.at_level(logging.DEBUG, logger="repro"):
            log.emit("a", level="debug")
            log.emit("b", level="warn")
            log.emit("c", level="error")
        assert [r.levelno for r in caplog.records] == [
            logging.DEBUG, logging.WARNING, logging.ERROR,
        ]

    def test_disabled_logger_costs_no_formatting(self, caplog):
        # below the logger's effective level nothing is rendered
        log = EventLog(sinks=(LoggingBridge(),))
        with caplog.at_level(logging.ERROR, logger="repro"):
            log.emit("quiet", "dropped", level="info")
        assert caplog.records == []


class TestJsonlRoundTrip:
    def test_write_read_validate(self, tmp_path):
        path = tmp_path / "events.jsonl"
        _write_reference_events(path)
        records = validate_events(path)
        assert [r["seq"] for r in records] == list(range(1, len(records) + 1))
        for record in records:
            validate_event_record(record)
            assert record["schema"] == EVENTS_SCHEMA

    def test_golden_events_are_byte_stable(self, tmp_path):
        """Pins the JSONL envelope documented in docs/OBSERVABILITY.md:
        key set, key order, value encoding, sampling behavior."""
        path = tmp_path / "events.jsonl"
        _write_reference_events(path)
        assert path.read_bytes() == GOLDEN.read_bytes()

    def test_sampled_stream_kept_every_other_iteration(self, tmp_path):
        path = tmp_path / "events.jsonl"
        _write_reference_events(path)
        iterations = [
            r["attrs"]["iteration"] for r in read_events(path)
            if r["name"] == "runtime.iteration"
        ]
        assert iterations == [0, 2]

    def test_empty_stream_rejected_by_validate(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(EventError, match="no event records"):
            validate_events(path)

    def test_malformed_record_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"schema": EVENTS_SCHEMA}) + "\n")
        with pytest.raises(EventError, match="missing keys"):
            read_events(path)

    def test_wrong_schema_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        _write_reference_events(path)
        records = read_events(path)
        records[0]["schema"] = 999
        path.write_text("\n".join(json.dumps(r) for r in records) + "\n")
        with pytest.raises(EventError, match="unsupported events schema"):
            read_events(path)

    def test_concurrent_emits_never_interleave_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlEventWriter(path) as writer:
            log = EventLog(sinks=(writer,))

            def work():
                for _ in range(50):
                    log.emit("w", payload="x" * 200)

            threads = [threading.Thread(target=work) for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        records = read_events(path)  # raises if any line is torn
        assert len(records) == 200
        assert sorted(r["seq"] for r in records) == list(range(1, 201))


class TestFilterAndFormat:
    def _records(self):
        buffer = EventBuffer()
        log = EventLog(level="debug", sinks=(buffer,), clock=lambda: 1.5)
        log.emit("runtime.iteration", level="debug", iteration=0)
        log.emit("trial.corrupted", level="info", site=4)
        log.emit("trial.diverged", "never recovered", level="error", site=4)
        return buffer.records

    def test_min_level_floor(self):
        records = self._records()
        assert [r["name"] for r in filter_events(records, min_level="info")] \
            == ["trial.corrupted", "trial.diverged"]

    def test_name_substring(self):
        records = self._records()
        assert [r["name"] for r in filter_events(records, name="trial.")] \
            == ["trial.corrupted", "trial.diverged"]

    def test_tail_applied_after_filters(self):
        records = self._records()
        picked = filter_events(records, min_level="info", tail=1)
        assert [r["name"] for r in picked] == ["trial.diverged"]

    def test_format_event_is_deterministic(self):
        records = self._records()
        line = format_event(records[2])
        assert line == format_event(records[2])
        assert "error" in line
        assert "trial.diverged" in line
        assert "never recovered" in line
        assert "site=4" in line


class TestFollowEvents:
    """`repro events FILE --follow`: a polling tail that tolerates
    in-flight writes and refuses corrupt complete lines."""

    @staticmethod
    def _record(seq: int, name: str = "trial.corrupted") -> dict:
        return {
            "schema": EVENTS_SCHEMA, "event": "log", "seq": seq,
            "time_seconds": float(seq), "level": "info", "name": name,
            "message": "", "trace_id": None, "span_id": None, "attrs": {},
        }

    @classmethod
    def _line(cls, seq: int, **kwargs) -> bytes:
        return (json.dumps(cls._record(seq, **kwargs)) + "\n").encode()

    def _drive(self, path, script):
        """Run follow_events with an injected sleep that executes one
        step of `script` per idle poll, stopping when it runs dry."""
        from repro.obs import follow_events

        steps = iter(script)
        done = []

        def sleep(_seconds):
            step = next(steps, None)
            if step is None:
                done.append(True)
            else:
                step()

        return list(
            follow_events(
                path, sleep=sleep, stop=lambda: bool(done),
                poll_seconds=0.0,
            )
        )

    def test_streams_appended_records(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_bytes(self._line(1))
        script = [
            lambda: path.open("ab").write(self._line(2)),
            lambda: path.open("ab").write(self._line(3)),
        ]
        records = self._drive(path, script)
        assert [r["seq"] for r in records] == [1, 2, 3]

    def test_waits_for_a_file_that_does_not_exist_yet(self, tmp_path):
        path = tmp_path / "later.jsonl"
        script = [lambda: path.write_bytes(self._line(1))]
        records = self._drive(path, script)
        assert [r["seq"] for r in records] == [1]

    def test_truncated_final_line_buffers_until_complete(self, tmp_path):
        """An in-flight os.write (no newline yet) must not be parsed
        half-done — the tail buffers it until the rest lands."""
        path = tmp_path / "events.jsonl"
        whole = self._line(1)
        path.write_bytes(whole[:10])
        script = [lambda: path.open("ab").write(whole[10:])]
        records = self._drive(path, script)
        assert [r["seq"] for r in records] == [1]

    def test_complete_corrupt_line_raises(self, tmp_path):
        from repro.obs import follow_events

        path = tmp_path / "events.jsonl"
        path.write_bytes(b"{torn but newline-terminated\n")
        with pytest.raises(EventError, match="complete line"):
            next(follow_events(path, sleep=lambda _s: None))

    def test_invalid_envelope_on_complete_line_raises(self, tmp_path):
        from repro.obs import follow_events

        path = tmp_path / "events.jsonl"
        path.write_bytes(b'{"schema": 1}\n')
        with pytest.raises(EventError, match="missing keys"):
            next(follow_events(path, sleep=lambda _s: None))

    def test_stop_ends_iteration_cleanly(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_bytes(self._line(1))
        records = self._drive(path, [])  # stop on the first idle poll
        assert [r["seq"] for r in records] == [1]
