"""The HTTP observability plane: endpoint contracts, byte-equality
with the registry's Prometheus exposition, and the null off state."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.obs import MetricsRegistry, NullExporter, maybe_exporter
from repro.obs.exporter import (
    ExporterError,
    MetricsExporter,
    PROMETHEUS_CONTENT_TYPE,
)


def _registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("repro_checks_total", "Checks run").inc(3)
    registry.gauge("repro_inflight", "In-flight requests").set(1)
    return registry


def _get(port: int, path: str):
    try:
        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}{path}", timeout=5
        ) as response:
            return response.status, response.headers, response.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.headers, exc.read()


@pytest.fixture
def exporter():
    registry = _registry()
    events = [
        {"schema": 1, "event": "log", "seq": 1, "time_seconds": 0.0,
         "level": "info", "name": "campaign.plan", "message": "",
         "trace_id": None, "span_id": None, "attrs": {"planned": 3}},
        {"schema": 1, "event": "log", "seq": 2, "time_seconds": 0.5,
         "level": "error", "name": "campaign.shard", "message": "gave up",
         "trace_id": None, "span_id": None, "attrs": {}},
    ]
    with MetricsExporter(
        registry=registry,
        events=lambda: events,
        health=lambda: {"pid": 1234, "uptime_seconds": 1.5},
    ) as running:
        yield running


class TestMetricsEndpoint:
    def test_byte_equal_to_registry_exposition(self, exporter):
        status, headers, body = _get(exporter.port, "/metrics")
        assert status == 200
        assert headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
        assert body == exporter.registry.render_prometheus().encode()
        assert b"repro_checks_total 3" in body

    def test_prepare_runs_before_every_scrape(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("repro_synced", "Synced on scrape")
        calls = []
        with MetricsExporter(
            registry=registry,
            prepare=lambda: (calls.append(1), gauge.set(len(calls))),
        ) as exporter:
            _get(exporter.port, "/metrics")
            _, _, body = _get(exporter.port, "/metrics")
        assert len(calls) == 2
        assert b"repro_synced 2" in body


class TestHealthz:
    def test_health_document(self, exporter):
        status, headers, body = _get(exporter.port, "/healthz")
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        assert json.loads(body) == {
            "ok": True, "pid": 1234, "uptime_seconds": 1.5,
        }

    def test_ok_without_health_callback(self):
        with MetricsExporter(registry=MetricsRegistry()) as exporter:
            _, _, body = _get(exporter.port, "/healthz")
        assert json.loads(body) == {"ok": True}


class TestEvents:
    def test_all_events(self, exporter):
        status, _, body = _get(exporter.port, "/events")
        document = json.loads(body)
        assert status == 200
        assert document["ok"] is True
        assert [e["name"] for e in document["events"]] == [
            "campaign.plan", "campaign.shard",
        ]

    def test_level_and_name_filters(self, exporter):
        _, _, body = _get(exporter.port, "/events?level=error")
        assert [e["name"] for e in json.loads(body)["events"]] == [
            "campaign.shard",
        ]
        _, _, body = _get(exporter.port, "/events?name=campaign.plan")
        assert [e["name"] for e in json.loads(body)["events"]] == [
            "campaign.plan",
        ]

    def test_limit_tails(self, exporter):
        _, _, body = _get(exporter.port, "/events?limit=1")
        assert [e["name"] for e in json.loads(body)["events"]] == [
            "campaign.shard",
        ]

    def test_bad_limit_is_400(self, exporter):
        for bad in ("nope", "-1"):
            status, _, body = _get(exporter.port, f"/events?limit={bad}")
            assert status == 400
            assert "limit must be a non-negative int" in json.loads(
                body
            )["message"]

    def test_bad_level_is_400(self, exporter):
        status, _, body = _get(exporter.port, "/events?level=loud")
        assert status == 400

    def test_404_without_event_ring(self):
        with MetricsExporter(registry=MetricsRegistry()) as exporter:
            status, _, body = _get(exporter.port, "/events")
        assert status == 404
        assert "no event ring" in json.loads(body)["message"]


class TestRouting:
    def test_unknown_path_lists_endpoints(self, exporter):
        status, _, body = _get(exporter.port, "/nope")
        assert status == 404
        message = json.loads(body)["message"]
        for endpoint in ("/metrics", "/healthz", "/events"):
            assert endpoint in message


class TestLifecycle:
    def test_port_before_start_raises(self):
        exporter = MetricsExporter(registry=MetricsRegistry())
        with pytest.raises(ExporterError, match="not started"):
            exporter.port

    def test_start_is_idempotent(self):
        exporter = MetricsExporter(registry=MetricsRegistry()).start()
        try:
            port = exporter.port
            assert exporter.start() is exporter
            assert exporter.port == port
        finally:
            exporter.close()

    def test_close_is_idempotent(self):
        exporter = MetricsExporter(registry=MetricsRegistry()).start()
        exporter.close()
        exporter.close()
        with pytest.raises(ExporterError):
            exporter.port

    def test_bind_failure_raises_exporter_error(self):
        with MetricsExporter(registry=MetricsRegistry()) as holder:
            taken = holder.port
            with pytest.raises(ExporterError, match="cannot bind"):
                MetricsExporter(
                    registry=MetricsRegistry(), port=taken
                ).start()


class TestMaybeExporter:
    def test_none_port_is_the_null_exporter(self):
        exporter = maybe_exporter(None, registry=MetricsRegistry())
        assert isinstance(exporter, NullExporter)
        assert exporter.enabled is False
        assert exporter.port is None

    def test_zero_port_is_a_started_ephemeral_bind(self):
        with maybe_exporter(0, registry=_registry()) as exporter:
            assert exporter.enabled is True
            assert exporter.port > 0
            status, _, _ = _get(exporter.port, "/healthz")
            assert status == 200

    def test_null_exporter_lifecycle_is_a_noop(self):
        exporter = NullExporter()
        assert exporter.start() is exporter
        exporter.close()
        with exporter as entered:
            assert entered is exporter
