"""Cross-process trace propagation: traceparent framing, remote-parent
adoption, the worker tracer, and the merge that stitches per-worker
files into one causally-linked multi-process trace."""

from __future__ import annotations

import itertools
import os
import time
from pathlib import Path

import pytest

from repro.obs import (
    JsonlTraceWriter,
    NullTracer,
    PropagationError,
    TraceContext,
    TraceWarning,
    Tracer,
    aggregate_trace,
    build_forest,
    current_context,
    format_forest,
    get_tracer,
    installed_tracer,
    merge_traces,
    orphan_events,
    read_trace,
    shard_trace_payload,
    span_event,
    trace_root_seconds,
    validate_trace,
    worker_traced,
)
from repro.obs.exporter import NullExporter
from repro.obs.propagate import reset_worker_tracers

GOLDEN = Path(__file__).parent / "golden" / "merged_trace.golden.jsonl"


def _counting_clock(step: float):
    counter = itertools.count()
    return lambda: next(counter) * step


class TestTraceContext:
    def test_round_trip(self):
        context = TraceContext(trace_id="t1", span_id=7)
        header = context.to_traceparent()
        assert header == "00-t1-7-01"
        assert TraceContext.from_traceparent(header) == context

    @pytest.mark.parametrize("header,match", [
        ("00-t1-7", "4 '-'-separated fields"),
        ("00-t1-7-01-extra", "4 '-'-separated fields"),
        ("99-t1-7-01", "version"),
        ("00-t1-7-00", "flags"),
        ("00--7-01", "non-empty"),
        ("00-t1-seven-01", "must be an int"),
    ])
    def test_malformed_rejected(self, header, match):
        with pytest.raises(PropagationError, match=match):
            TraceContext.from_traceparent(header)

    def test_non_string_rejected(self):
        with pytest.raises(PropagationError, match="must be a string"):
            TraceContext.from_traceparent({"trace_id": "t1"})


class TestCurrentContext:
    def test_none_without_a_span(self):
        assert isinstance(get_tracer(), NullTracer)
        assert current_context() is None

    def test_snapshots_the_active_span(self):
        with installed_tracer(Tracer()) as tracer:
            assert current_context() is None
            with tracer.span("outer") as outer:
                context = current_context()
                assert context == TraceContext(outer.trace_id, outer.span_id)
            assert current_context() is None


class TestAttached:
    def test_root_adopts_remote_context(self):
        tracer = Tracer()
        remote = TraceContext(trace_id="t9", span_id=42)
        with tracer.attached(remote):
            with tracer.span("worker.shard") as span:
                pass
        assert span.trace_id == "t9"
        assert span.remote_parent == 42
        assert span.parent is None  # still a local root

    def test_non_roots_untouched(self):
        tracer = Tracer()
        with tracer.attached(TraceContext("t9", 42)):
            with tracer.span("root"), tracer.span("child") as child:
                pass
        assert child.remote_parent is None
        assert child.parent is not None

    def test_event_carries_remote_parent_marker(self):
        tracer = Tracer()
        with tracer.attached(TraceContext("t9", 42)):
            with tracer.span("worker.shard") as span:
                pass
        event = span_event(span)
        assert event["parent_id"] == 42
        assert event["remote_parent"] is True

    def test_local_span_event_has_no_marker(self):
        tracer = Tracer()
        with tracer.span("local") as span:
            pass
        assert "remote_parent" not in span_event(span)

    def test_attach_none_is_a_noop(self):
        tracer = Tracer()
        with tracer.attached(None):
            with tracer.span("root") as span:
                pass
        assert span.remote_parent is None

    def test_restores_previous_context(self):
        tracer = Tracer()
        with tracer.attached(TraceContext("t1", 1)):
            with tracer.attached(TraceContext("t2", 2)):
                with tracer.span("inner") as inner:
                    pass
            with tracer.span("outer") as outer:
                pass
        assert inner.trace_id == "t2"
        assert outer.trace_id == "t1"

    def test_null_tracer_attach_is_a_noop_cm(self):
        with NullTracer().attached(TraceContext("t1", 1)):
            pass


class TestShardTracePayload:
    def test_none_without_trace_dir(self):
        assert shard_trace_payload(None) is None

    def test_none_without_an_active_span(self):
        assert isinstance(get_tracer(), NullTracer)
        assert shard_trace_payload("/tmp/w") is None

    def test_carries_dir_and_traceparent(self, tmp_path):
        with installed_tracer(Tracer()) as tracer:
            with tracer.span("campaign_drive") as drive:
                payload = shard_trace_payload(tmp_path)
        assert payload == {
            "dir": str(tmp_path),
            "traceparent": f"00-{drive.trace_id}-{drive.span_id}-01",
        }


class TestWorkerTraced:
    def test_no_payload_is_a_noop(self):
        before = get_tracer()
        with worker_traced(None) as span:
            assert span is None
            assert get_tracer() is before

    def test_writes_an_attached_worker_file(self, tmp_path):
        trace = {"dir": str(tmp_path), "traceparent": "00-t5-3-01"}
        try:
            with worker_traced(trace, shard_id="a:0000", app="x") as span:
                assert span is not None
                assert span.trace_id == "t5"
                with get_tracer().span("trial"):
                    pass
        finally:
            reset_worker_tracers()
        path = tmp_path / f"worker-{os.getpid()}.trace.jsonl"
        events = read_trace(path)
        assert [e["name"] for e in events] == ["trial", "worker.shard"]
        shard = events[1]
        assert shard["remote_parent"] is True
        assert shard["parent_id"] == 3
        assert shard["attrs"]["shard_id"] == "a:0000"
        assert shard["attrs"]["pid"] == os.getpid()
        assert events[0]["parent_id"] == shard["span_id"]

    def test_tracer_is_cached_across_shards(self, tmp_path):
        trace = {"dir": str(tmp_path), "traceparent": "00-t5-3-01"}
        try:
            with worker_traced(trace) as first:
                pass
            with worker_traced(trace) as second:
                pass
        finally:
            reset_worker_tracers()
        # One file, one tracer: span ids stay unique across shards.
        assert first.span_id != second.span_id
        path = tmp_path / f"worker-{os.getpid()}.trace.jsonl"
        assert len(read_trace(path)) == 2

    def test_bad_traceparent_raises(self, tmp_path):
        trace = {"dir": str(tmp_path), "traceparent": "nope"}
        with pytest.raises(PropagationError):
            with worker_traced(trace):
                pass


def _write_two_worker_campaign(tmp_path: Path) -> Path:
    """The deterministic fixture behind the golden merged trace: a
    driver trace (campaign root > campaign_drive) plus two fake-pid
    worker files, each a worker.shard root attached under campaign_drive
    with one trial child.  All clocks are injected counters, so every
    byte is pinned."""
    driver_path = tmp_path / "campaign.trace.jsonl"
    worker_dir = tmp_path / "campaign.trace.jsonl.workers"
    with JsonlTraceWriter(driver_path) as writer:
        driver = Tracer(
            sinks=(writer,),
            wall_clock=_counting_clock(1.0),
            cpu_clock=_counting_clock(0.5),
        )
        with driver.span("repro.campaign", mode="stratified"):
            with driver.span("campaign_drive", shards=2) as drive:
                context = TraceContext(drive.trace_id, drive.span_id)
                for pid, shard_id in ((101, "app:0000"), (102, "app:0001")):
                    worker_path = worker_dir / f"worker-{pid}.trace.jsonl"
                    with JsonlTraceWriter(worker_path) as worker_writer:
                        worker = Tracer(
                            sinks=(worker_writer,),
                            wall_clock=_counting_clock(1.0),
                            cpu_clock=_counting_clock(0.5),
                        )
                        with worker.attached(context):
                            with worker.span(
                                "worker.shard", pid=pid, shard_id=shard_id
                            ) as shard:
                                with worker.span("trial", site=3):
                                    pass
                                shard.count("trials", 1)
    merged = tmp_path / "merged.trace.jsonl"
    merge_traces(driver_path, worker_dir, output=merged, driver_pid=77)
    return merged


class TestMergeTraces:
    def test_golden_merged_trace_is_byte_stable(self, tmp_path):
        """Pins the merged multi-process wire form: renumbering, the
        kept remote_parent edges, pid provenance, worker-before-driver
        event order."""
        merged = _write_two_worker_campaign(tmp_path)
        assert merged.read_bytes() == GOLDEN.read_bytes()

    def test_merged_trace_is_schema_valid_and_fully_linked(self, tmp_path):
        merged = _write_two_worker_campaign(tmp_path)
        events = validate_trace(merged)  # no TraceWarning: no orphans
        assert not orphan_events(events)
        assert len(events) == 6
        assert {event["pid"] for event in events} == {77, 101, 102}

    def test_every_worker_span_reaches_the_campaign_root(self, tmp_path):
        merged = _write_two_worker_campaign(tmp_path)
        events = read_trace(merged)
        roots = build_forest(events)
        assert [root.name for root in roots] == ["repro.campaign"]
        names = [span.name for span in roots[0].walk()]
        assert names.count("worker.shard") == 2
        assert names.count("trial") == 2

    def test_worker_ids_renumbered_above_drivers(self, tmp_path):
        merged = _write_two_worker_campaign(tmp_path)
        events = read_trace(merged)
        driver_ids = {e["span_id"] for e in events if e["pid"] == 77}
        worker_ids = {e["span_id"] for e in events if e["pid"] != 77}
        assert max(driver_ids) < min(worker_ids)
        assert len(worker_ids) == 4  # no collisions across workers

    def test_self_times_sum_to_root_wall_time(self, tmp_path):
        """The aggregate_trace invariant survives the merge: every
        child second (worker spans included) is subtracted from exactly
        one parent."""
        merged = _write_two_worker_campaign(tmp_path)
        events = read_trace(merged)
        rows = aggregate_trace(events)
        total_self = sum(row["self_seconds"] for row in rows)
        assert total_self == pytest.approx(trace_root_seconds(events))

    def test_merge_in_place(self, tmp_path):
        merged = _write_two_worker_campaign(tmp_path)
        driver_path = tmp_path / "campaign.trace.jsonl"
        worker_dir = tmp_path / "campaign.trace.jsonl.workers"
        merge_traces(
            driver_path, worker_dir, output=driver_path, driver_pid=77
        )
        assert driver_path.read_bytes() == merged.read_bytes()

    def test_dangling_worker_parent_stays_a_collision_free_orphan(
        self, tmp_path
    ):
        """A worker killed mid-shard leaves a trial whose worker.shard
        parent never closed; the merge must keep it, renumbered onto an
        id no real span holds."""
        driver_path = tmp_path / "driver.jsonl"
        worker_dir = tmp_path / "workers"
        with JsonlTraceWriter(driver_path) as writer:
            driver = Tracer(
                sinks=(writer,),
                wall_clock=_counting_clock(1.0),
                cpu_clock=_counting_clock(0.5),
            )
            with driver.span("repro.campaign"):
                pass
        with JsonlTraceWriter(worker_dir / "worker-101.trace.jsonl") as w:
            worker = Tracer(
                sinks=(w,),
                wall_clock=_counting_clock(1.0),
                cpu_clock=_counting_clock(0.5),
            )
            with worker.span("worker.shard"), worker.span("trial"):
                pass  # both close...
        events = read_trace(worker_dir / "worker-101.trace.jsonl")
        # ...then drop the shard root, as a SIGKILL mid-write would.
        import json

        (worker_dir / "worker-101.trace.jsonl").write_text(
            json.dumps(events[0], sort_keys=True, separators=(",", ":"))
            + "\n"
        )
        merged = merge_traces(driver_path, worker_dir, driver_pid=77)
        orphans = orphan_events(merged)
        assert len(orphans) == 1
        present = {event["span_id"] for event in merged}
        assert orphans[0]["parent_id"] not in present

    def test_unparseable_worker_file_name_rejected(self, tmp_path):
        driver_path = tmp_path / "driver.jsonl"
        with JsonlTraceWriter(driver_path) as writer:
            tracer = Tracer(sinks=(writer,))
            with tracer.span("root"):
                pass
        worker_dir = tmp_path / "workers"
        worker_dir.mkdir()
        (worker_dir / "worker-banana.trace.jsonl").write_text("")
        with pytest.raises(PropagationError, match="cannot recover its pid"):
            merge_traces(driver_path, worker_dir)


class TestOrphanForest:
    def test_orphans_grouped_per_pid_under_synthetic_roots(self):
        def span(span_id, parent_id, name, pid=None, start=0.0):
            event = {
                "schema": 1, "event": "span", "trace_id": "t1",
                "span_id": span_id, "parent_id": parent_id, "name": name,
                "start_seconds": start, "duration_seconds": 1.0,
                "cpu_seconds": 0.5, "attrs": {}, "counters": {},
            }
            if pid is not None:
                event["pid"] = pid
            return event

        events = [
            span(1, None, "root"),
            span(2, 99, "lost-a", pid=101),
            span(3, 99, "lost-b", pid=101, start=2.0),
            span(4, 98, "lost-c", pid=102),
        ]
        roots = build_forest(events)
        assert [r.name for r in roots] == ["root", "<orphaned>", "<orphaned>"]
        by_pid = {r.attrs.get("pid"): r for r in roots[1:]}
        assert sorted(by_pid) == [101, 102]
        assert [c.name for c in by_pid[101].children] == ["lost-a", "lost-b"]
        assert by_pid[101].duration_seconds == 2.0  # sum of children
        rendered = format_forest(events)
        assert rendered.count("<orphaned>") == 2
        assert "lost-c" in rendered

    def test_orphans_without_pid_share_one_root(self):
        events = [
            {
                "schema": 1, "event": "span", "trace_id": "t1",
                "span_id": i, "parent_id": 99, "name": f"lost-{i}",
                "start_seconds": 0.0, "duration_seconds": 1.0,
                "cpu_seconds": 0.0, "attrs": {}, "counters": {},
            }
            for i in (1, 2)
        ]
        roots = build_forest(events)
        assert [r.name for r in roots] == ["<orphaned>"]
        assert len(roots[0].children) == 2


class TestOffStateOverhead:
    def test_propagation_off_is_negligible(self):
        """Acceptance: with tracing off, the propagation hooks on the
        client/campaign hot paths — a context snapshot, an attach, an
        exporter lifecycle — must cost no more than the no-op tracer
        itself (same generous CI-proof bound as
        test_noop_overhead_is_negligible)."""
        tracer = get_tracer()
        assert isinstance(tracer, NullTracer)
        exporter = NullExporter()
        start = time.perf_counter()
        for _ in range(100_000):
            current_context()          # client request stamping
            with tracer.attached(None):  # daemon dispatch
                pass
            exporter.start()           # campaign/serve off state
            exporter.close()
        elapsed = time.perf_counter() - start
        assert elapsed < 2.0, f"100k off-state iterations took {elapsed:.3f}s"

    def test_shard_payload_off_state_is_cheap_and_absent(self):
        assert isinstance(get_tracer(), NullTracer)
        start = time.perf_counter()
        for _ in range(100_000):
            assert shard_trace_payload("dir") is None
        elapsed = time.perf_counter() - start
        assert elapsed < 2.0, f"100k payload stamps took {elapsed:.3f}s"
