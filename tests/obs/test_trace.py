"""Tracer semantics: nesting, thread-locality, and no-op cost."""

from __future__ import annotations

import threading
import time

import pytest

from repro.obs import (
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    installed_tracer,
    set_tracer,
    span_event,
    timed_span,
)
from repro.obs.trace import TRACE_SCHEMA, _NULL_SPAN


class _ListSink:
    def __init__(self):
        self.spans = []

    def emit(self, span):
        self.spans.append(span)


class TestNesting:
    def test_parent_child_links(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("child") as child:
                with tracer.span("grandchild") as grand:
                    pass
        assert child.parent is root
        assert grand.parent is child
        assert root.children == [child]
        assert child.children == [grand]
        assert root.is_root and not child.is_root
        assert all(s.closed for s in (root, child, grand))

    def test_trace_id_shared_within_tree_fresh_across_roots(self):
        tracer = Tracer()
        with tracer.span("a") as a:
            with tracer.span("a.1") as a1:
                pass
        with tracer.span("b") as b:
            pass
        assert a.trace_id == a1.trace_id
        assert a.trace_id != b.trace_id
        assert a.span_id != a1.span_id != b.span_id

    def test_attrs_and_counters(self):
        tracer = Tracer()
        with tracer.span("work", file="x.sj") as span:
            span.set_attr("mode", "sinfer")
            span.count("steps", 3)
            span.count("steps")
            span.count("hits")
        assert span.attrs == {"file": "x.sj", "mode": "sinfer"}
        assert span.counters == {"steps": 4, "hits": 1}

    def test_child_seconds_sums_by_name(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("round"):
                pass
            with tracer.span("round"):
                pass
            with tracer.span("emit"):
                pass
        totals = root.child_seconds()
        assert set(totals) == {"round", "emit"}
        assert totals["round"] >= 0.0

    def test_walk_is_preorder(self):
        tracer = Tracer()
        with tracer.span("r") as root:
            with tracer.span("a"):
                with tracer.span("a1"):
                    pass
            with tracer.span("b"):
                pass
        assert [s.name for s in root.walk()] == ["r", "a", "a1", "b"]

    def test_span_closes_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom") as span:
                raise RuntimeError("x")
        assert span.closed

    def test_sink_sees_children_before_parents_root_last(self):
        sink = _ListSink()
        tracer = Tracer(sinks=(sink,))
        with tracer.span("root"):
            with tracer.span("child"):
                with tracer.span("grandchild"):
                    pass
        assert [s.name for s in sink.spans] == ["grandchild", "child", "root"]
        event = span_event(sink.spans[-1])
        assert event["schema"] == TRACE_SCHEMA
        assert event["parent_id"] is None
        assert event["event"] == "span"


class TestThreadLocality:
    def test_two_threads_grow_disjoint_well_nested_trees(self):
        tracer = Tracer()
        roots: dict[str, Span] = {}
        barrier = threading.Barrier(2)

        def work(label: str) -> None:
            barrier.wait()
            with tracer.span(f"root.{label}") as root:
                for index in range(3):
                    with tracer.span("phase", index=index):
                        time.sleep(0.001)
            roots[label] = root

        threads = [
            threading.Thread(target=work, args=(label,)) for label in "ab"
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        a, b = roots["a"], roots["b"]
        assert a.trace_id != b.trace_id
        assert {s.name for s in a.walk()} == {"root.a", "phase"}
        assert {s.name for s in b.walk()} == {"root.b", "phase"}
        assert len(a.children) == len(b.children) == 3
        ids_a = {s.span_id for s in a.walk()}
        ids_b = {s.span_id for s in b.walk()}
        assert not (ids_a & ids_b)
        for root in (a, b):
            for child in root.children:
                assert child.parent is root
                assert child.trace_id == root.trace_id


class TestNullTracer:
    def test_default_tracer_is_disabled(self):
        tracer = get_tracer()
        assert isinstance(tracer, NullTracer)
        assert tracer.enabled is False

    def test_span_is_one_shared_noop(self):
        tracer = NullTracer()
        span = tracer.span("anything", attr=1)
        assert span is tracer.span("other")
        assert span is _NULL_SPAN
        with span as inner:
            inner.set_attr("x", 1)
            inner.count("y")
        assert inner.attrs == {} and inner.counters == {}

    def test_installed_tracer_restores_previous(self):
        before = get_tracer()
        tracer = Tracer()
        with installed_tracer(tracer) as installed:
            assert installed is tracer
            assert get_tracer() is tracer
        assert get_tracer() is before

    def test_set_tracer_none_restores_default(self):
        previous = set_tracer(Tracer())
        try:
            set_tracer(None)
            assert isinstance(get_tracer(), NullTracer)
        finally:
            set_tracer(previous)

    def test_noop_overhead_is_negligible(self):
        """Acceptance: the disabled tracer must not measurably slow hot
        paths.  100k no-op spans must stay far below any per-check cost
        (generous absolute bound to survive slow CI machines)."""
        tracer = get_tracer()
        assert isinstance(tracer, NullTracer)
        start = time.perf_counter()
        for _ in range(100_000):
            with tracer.span("hot"):
                pass
        elapsed = time.perf_counter() - start
        assert elapsed < 2.0, f"100k no-op spans took {elapsed:.3f}s"


class TestTimedSpan:
    def test_accumulates_even_without_tracer(self):
        timings: dict[str, float] = {}
        assert isinstance(get_tracer(), NullTracer)
        with timed_span("parse", timings):
            time.sleep(0.002)
        with timed_span("parse", timings):
            pass
        assert timings["parse"] >= 0.002

    def test_opens_a_real_span_when_tracing(self):
        sink = _ListSink()
        timings: dict[str, float] = {}
        with installed_tracer(Tracer(sinks=(sink,))):
            with timed_span("phase", timings, mode="sinfer"):
                pass
        assert [s.name for s in sink.spans] == ["phase"]
        assert sink.spans[0].attrs == {"mode": "sinfer"}
        assert "phase" in timings
