"""Bench history store: ingestion tolerance, trend series splitting,
the noise-aware changepoint detector, and the `bench trend` CLI."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.obs.bench import (
    BenchError,
    bench_payload,
    scenario_result_from_samples,
    write_bench,
)
from repro.obs.events import EventBuffer, EventLog, installed_event_log
from repro.obs.history import (
    HistoryWarning,
    bench_trend,
    detect_changepoints,
    env_key,
    format_trend_table,
    load_history,
    sparkline,
    trend_series,
)
from repro.service import protocol

PINNED_FINGERPRINT = {
    "python": "3.11.0",
    "implementation": "CPython",
    "platform": "Linux-golden",
    "machine": "x86_64",
    "cpu_count": 4,
    "git_sha": "0" * 40,
}


def _payload(created: str, scenarios: dict, *, git_sha: str = "0" * 40,
             fingerprint: dict | None = None) -> dict:
    """One bench payload; ``scenarios`` maps name -> list of samples."""
    results = [
        scenario_result_from_samples(
            name, "check", samples, counters={"ops": 2}, warmup=1
        )
        for name, samples in sorted(scenarios.items())
    ]
    print_ = dict(fingerprint or PINNED_FINGERPRINT, git_sha=git_sha)
    return bench_payload(
        results,
        suite="golden",
        warmup=1,
        repetitions=max(r["repetitions"] for r in results),
        fingerprint=print_,
        created_utc=created,
    )


def _point(median: float, stddev: float, *, file: str = "BENCH_x.json",
           created: str = "2026-01-01T00:00:00Z",
           git_sha: str = "0" * 40) -> dict:
    return {
        "file": file,
        "created_utc": created,
        "git_sha": git_sha,
        "median_seconds": median,
        "stddev_seconds": stddev,
        "repetitions": 3,
    }


def _seed_history(directory: Path) -> None:
    """Three well-formed payloads: a regression step on check/toy
    between run 2 and run 3, check/other flat throughout."""
    runs = [
        ("BENCH_a.json", "2026-01-01T00:00:00Z",
         {"check/toy": [1.0, 1.0, 1.0], "check/other": [0.5, 0.5, 0.5]}),
        ("BENCH_b.json", "2026-01-02T00:00:00Z",
         {"check/toy": [1.0, 1.01, 1.02], "check/other": [0.5, 0.5, 0.5]}),
        ("BENCH_c.json", "2026-01-03T00:00:00Z",
         {"check/toy": [2.0, 2.0, 2.0], "check/other": [0.5, 0.5, 0.5]}),
    ]
    for filename, created, scenarios in runs:
        write_bench(_payload(created, scenarios), directory / filename)


class TestEnvKey:
    def test_stable_and_sha_insensitive(self):
        key = env_key(PINNED_FINGERPRINT)
        assert key == env_key(dict(PINNED_FINGERPRINT, git_sha="f" * 40))
        assert len(key) == 12

    def test_environment_change_changes_key(self):
        other = dict(PINNED_FINGERPRINT, python="3.12.0")
        assert env_key(other) != env_key(PINNED_FINGERPRINT)


class TestLoadHistory:
    def test_orders_by_created_then_filename(self, tmp_path):
        write_bench(_payload("2026-01-02T00:00:00Z", {"check/toy": [1.0]}),
                    tmp_path / "BENCH_older_name.json")
        write_bench(_payload("2026-01-01T00:00:00Z", {"check/toy": [1.0]}),
                    tmp_path / "BENCH_z.json")
        payloads, skipped = load_history(tmp_path)
        assert [name for name, _ in payloads] == [
            "BENCH_z.json", "BENCH_older_name.json",
        ]
        assert skipped == []

    def test_not_a_directory_raises(self, tmp_path):
        with pytest.raises(BenchError, match="not a directory"):
            load_history(tmp_path / "missing")

    def test_torn_and_wrong_schema_files_are_skipped(self, tmp_path):
        """Mirrors the JSONL readers' crash tolerance: one bad file
        warns and is recorded, the trend survives."""
        write_bench(_payload("2026-01-01T00:00:00Z", {"check/toy": [1.0]}),
                    tmp_path / "BENCH_good.json")
        (tmp_path / "BENCH_torn.json").write_text('{"schema": 1, "kin')
        (tmp_path / "BENCH_alien.json").write_text(
            json.dumps({"schema": 999, "kind": "bench"})
        )
        buffer = EventBuffer(capacity=16)
        with installed_event_log(EventLog(sinks=(buffer,))):
            with pytest.warns(HistoryWarning):
                payloads, skipped = load_history(tmp_path)
        assert [name for name, _ in payloads] == ["BENCH_good.json"]
        assert sorted(s["file"] for s in skipped) == [
            "BENCH_alien.json", "BENCH_torn.json",
        ]
        assert all(s["reason"] for s in skipped)
        events = [e for e in buffer.records
                  if e["name"] == "bench.history.skipped"]
        assert len(events) == 2
        assert all(e["level"] == "warn" for e in events)


class TestTrendSeries:
    def test_one_series_per_scenario_environment(self, tmp_path):
        write_bench(_payload("2026-01-01T00:00:00Z", {"check/toy": [1.0]}),
                    tmp_path / "BENCH_a.json")
        write_bench(
            _payload(
                "2026-01-02T00:00:00Z", {"check/toy": [1.0]},
                fingerprint=dict(PINNED_FINGERPRINT, python="3.12.0"),
            ),
            tmp_path / "BENCH_b.json",
        )
        payloads, _ = load_history(tmp_path)
        series = trend_series(payloads)
        assert len(series) == 2  # same scenario, two environments
        assert {len(s["points"]) for s in series} == {1}
        assert {s["scenario"] for s in series} == {"check/toy"}

    def test_points_are_chronological(self, tmp_path):
        _seed_history(tmp_path)
        payloads, _ = load_history(tmp_path)
        (toy,) = [s for s in trend_series(payloads)
                  if s["scenario"] == "check/toy"]
        assert [p["file"] for p in toy["points"]] == [
            "BENCH_a.json", "BENCH_b.json", "BENCH_c.json",
        ]


class TestChangepoints:
    def test_step_regression_detected_once(self):
        points = [
            _point(1.0, 0.01), _point(1.0, 0.01),
            _point(2.0, 0.01, file="BENCH_step.json"),
            _point(2.0, 0.01), _point(2.0, 0.01),
        ]
        (cp,) = detect_changepoints(points)
        assert cp["index"] == 2
        assert cp["file"] == "BENCH_step.json"
        assert cp["direction"] == "regression"
        assert cp["delta_pct"] == pytest.approx(100.0)
        assert cp["baseline_median_seconds"] == pytest.approx(1.0)

    def test_improvement_direction(self):
        points = [_point(2.0, 0.01), _point(2.0, 0.01), _point(1.0, 0.01)]
        (cp,) = detect_changepoints(points)
        assert cp["direction"] == "improvement"
        assert cp["delta_pct"] == pytest.approx(-50.0)

    def test_shift_within_noise_envelope_ignored(self):
        # 20% shift, but the stddev envelope swallows it
        points = [_point(1.0, 0.15), _point(1.2, 0.15)]
        assert detect_changepoints(points) == []

    def test_shift_below_threshold_pct_ignored(self):
        # beyond noise, but only a 5% move
        points = [_point(1.0, 0.001), _point(1.05, 0.001)]
        assert detect_changepoints(points) == []
        assert len(detect_changepoints(points, threshold_pct=2.0)) == 1

    def test_segment_restarts_after_changepoint(self):
        """After a step the new level is the baseline: a return to the
        old level is itself a changepoint (an improvement)."""
        points = [
            _point(1.0, 0.01), _point(1.0, 0.01),
            _point(2.0, 0.01), _point(2.0, 0.01),
            _point(1.0, 0.01),
        ]
        cps = detect_changepoints(points)
        assert [cp["index"] for cp in cps] == [2, 4]
        assert [cp["direction"] for cp in cps] == [
            "regression", "improvement",
        ]

    def test_negative_threshold_rejected(self):
        with pytest.raises(BenchError, match="threshold_pct"):
            detect_changepoints([], threshold_pct=-1)


class TestBenchTrend:
    def test_trend_document(self, tmp_path):
        _seed_history(tmp_path)
        trend = bench_trend(tmp_path)
        assert trend["payloads"] == 3
        assert trend["files"] == [
            "BENCH_a.json", "BENCH_b.json", "BENCH_c.json",
        ]
        assert trend["skipped"] == []
        by_name = {s["scenario"]: s for s in trend["series"]}
        (cp,) = by_name["check/toy"]["changepoints"]
        assert cp["file"] == "BENCH_c.json"
        assert cp["direction"] == "regression"
        assert by_name["check/other"]["changepoints"] == []
        assert by_name["check/toy"]["net_delta_pct"] == pytest.approx(100.0)

    def test_format_table_deterministic(self, tmp_path):
        _seed_history(tmp_path)
        trend = bench_trend(tmp_path)
        table = format_trend_table(trend)
        assert table == format_trend_table(bench_trend(tmp_path))
        assert "check/toy" in table
        assert "+100.0%" in table
        assert "i2:+" in table  # the changepoint mark on the step run
        assert "1 regression changepoint(s)" in table

    def test_empty_history_renders_notice(self, tmp_path):
        table = format_trend_table(bench_trend(tmp_path))
        assert "no bench payloads" in table


class TestSparkline:
    def test_min_and_max_hit_the_ramp_ends(self):
        line = sparkline([1.0, 2.0, 3.0])
        assert line[0] == "▁" and line[-1] == "█"

    def test_flat_series_renders_mid_ramp(self):
        assert sparkline([1.0, 1.0, 1.0]) == "▄▄▄"

    def test_empty(self):
        assert sparkline([]) == ""


class TestTrendCli:
    def test_bench_trend_table(self, tmp_path, capsys):
        _seed_history(tmp_path)
        assert main(["bench", "trend", "--history", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "check/toy" in out and "changepoints" in out

    def test_bench_trend_json_envelope(self, tmp_path, capsys):
        _seed_history(tmp_path)
        assert main([
            "bench", "trend", "--history", str(tmp_path), "--json",
        ]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["version"] == protocol.PROTOCOL_VERSION
        assert document["kind"] == "bench-trend"
        assert document["payloads"] == 3
        assert {s["scenario"] for s in document["series"]} == {
            "check/toy", "check/other",
        }

    def test_bench_trend_missing_directory_fails(self, tmp_path, capsys):
        assert main([
            "bench", "trend", "--history", str(tmp_path / "nope"),
        ]) == 2
        assert "not a directory" in capsys.readouterr().err

    def test_checked_in_history_renders(self, capsys):
        """The seeded benchmarks/history/ payloads must always produce a
        healthy trend table (the CI bench-smoke step relies on it)."""
        history = Path(__file__).resolve().parents[2] / "benchmarks/history"
        assert main(["bench", "trend", "--history", str(history)]) == 0
        out = capsys.readouterr().out
        assert "4 payload(s)" in out
        assert "0 file(s) skipped" in out
        # the seeded BENCH_run4.json carries memory telemetry, so a
        # fresh clone renders the memory series out of the box
        assert "mem trend" in out
        assert "point(s) with allocation telemetry" in out


def _mem_payload(created: str, scenarios: dict) -> dict:
    """One bench payload; ``scenarios`` maps name -> (samples, allocs);
    ``allocs=None`` leaves that scenario without a memory section."""
    import statistics

    results = []
    for name, (samples, allocs) in sorted(scenarios.items()):
        memory = None
        if allocs is not None:
            memory = {
                "peak_rss_bytes": 64 * 1048576,
                "alloc_per_rep_bytes": list(allocs),
                "alloc_peak_bytes": max(allocs),
                "alloc_median_bytes": float(statistics.median(allocs)),
                "alloc_stddev_bytes": (
                    float(statistics.stdev(allocs))
                    if len(allocs) > 1 else 0.0
                ),
                "gc_collections": 1,
                "gc_pause_seconds_total": 0.001,
            }
        results.append(scenario_result_from_samples(
            name, "check", samples, counters={"ops": 2}, warmup=1,
            memory=memory,
        ))
    return bench_payload(
        results,
        suite="golden",
        warmup=1,
        repetitions=max(r["repetitions"] for r in results),
        fingerprint=dict(PINNED_FINGERPRINT),
        created_utc=created,
    )


def _seed_memory_history(directory: Path) -> None:
    """Four payloads: the first predates memory telemetry, then a flat
    allocation series with a step regression on the last run.  Time
    stays flat throughout."""
    flat = [1.0, 1.0, 1.0]
    runs = [
        ("BENCH_a.json", "2026-01-01T00:00:00Z", (flat, None)),
        ("BENCH_b.json", "2026-01-02T00:00:00Z", (flat, [1000, 1000, 1000])),
        ("BENCH_c.json", "2026-01-03T00:00:00Z", (flat, [1005, 1010, 1000])),
        ("BENCH_d.json", "2026-01-04T00:00:00Z", (flat, [2000, 2000, 2000])),
    ]
    for filename, created, spec in runs:
        write_bench(
            _mem_payload(created, {"check/toy": spec}),
            directory / filename,
        )


class TestMemoryTrend:
    def test_points_carry_memory_fields(self, tmp_path):
        _seed_memory_history(tmp_path)
        payloads, _ = load_history(tmp_path)
        (entry,) = trend_series(payloads)
        points = entry["points"]
        assert [p["alloc_median_bytes"] for p in points] == [
            None, 1000.0, 1005.0, 2000.0,
        ]
        assert points[0]["peak_rss_bytes"] is None
        assert points[1]["peak_rss_bytes"] == 64 * 1048576
        assert points[1]["alloc_stddev_bytes"] == 0.0

    def test_memory_step_detected_with_index_remapped(self, tmp_path):
        """The allocation step on run d must be flagged even though the
        memory subseries skips the telemetry-free first payload — the
        changepoint index refers to the full point list."""
        _seed_memory_history(tmp_path)
        trend = bench_trend(tmp_path)
        (entry,) = trend["series"]
        assert entry["changepoints"] == []  # time stayed flat
        (cp,) = entry["memory_changepoints"]
        assert cp["file"] == "BENCH_d.json"
        assert cp["direction"] == "regression"
        assert cp["index"] == 3  # position among all four points
        assert entry["memory_points"] == 3
        assert entry["net_memory_delta_pct"] == pytest.approx(100.0)

    def test_memoryless_history_has_no_memory_series(self, tmp_path):
        _seed_history(tmp_path)
        trend = bench_trend(tmp_path)
        for entry in trend["series"]:
            assert entry["memory_changepoints"] == []
            assert entry["memory_points"] == 0
            assert entry["net_memory_delta_pct"] is None

    def test_format_table_memory_columns_are_conditional(self, tmp_path):
        _seed_memory_history(tmp_path)
        table = format_trend_table(bench_trend(tmp_path))
        assert "mem trend" in table
        assert "mem changepoints" in table
        assert "point(s) with allocation telemetry" in table

        plain_dir = tmp_path / "plain"
        plain_dir.mkdir()
        _seed_history(plain_dir)
        plain = format_trend_table(bench_trend(plain_dir))
        assert "mem trend" not in plain
        assert "allocation telemetry" not in plain


class TestScenarioFilter:
    def test_filter_to_one_scenario(self, tmp_path):
        _seed_history(tmp_path)
        trend = bench_trend(tmp_path, scenarios=["check/toy"])
        assert [s["scenario"] for s in trend["series"]] == ["check/toy"]

    def test_unknown_scenario_names_available_series(self, tmp_path):
        _seed_history(tmp_path)
        with pytest.raises(BenchError, match="no history for scenario"):
            bench_trend(tmp_path, scenarios=["check/nope"])
        try:
            bench_trend(tmp_path, scenarios=["check/nope"])
        except BenchError as exc:
            assert "check/other" in str(exc)
            assert "check/toy" in str(exc)

    def test_trend_cli_scenario_flag(self, tmp_path, capsys):
        _seed_history(tmp_path)
        assert main([
            "bench", "trend", "--history", str(tmp_path),
            "--scenario", "check/other",
        ]) == 0
        out = capsys.readouterr().out
        assert "check/other" in out
        assert "check/toy" not in out

    def test_trend_cli_unknown_scenario_exits_2(self, tmp_path, capsys):
        _seed_history(tmp_path)
        assert main([
            "bench", "trend", "--history", str(tmp_path),
            "--scenario", "check/nope",
        ]) == 2
        assert "no history for scenario" in capsys.readouterr().err
