"""Memory & resource telemetry: the monitor's attribution and GC
accounting under injected suppliers, the null monitor's pinned off-state
cost, and the MEM_*.json schema, byte for byte."""

import itertools
import json
import time
from pathlib import Path

import pytest

from repro.obs.resources import (
    RESOURCES_SCHEMA,
    NullResourceMonitor,
    ResourceError,
    ResourceMonitor,
    dumps_resources,
    format_resources_table,
    get_resource_monitor,
    installed_resource_monitor,
    peak_rss_bytes,
    read_resources,
    resources_payload,
    set_resource_monitor,
    validate_resources,
    write_resources,
)

GOLDEN = Path(__file__).parent / "golden" / "resources.golden.json"

PINNED_FINGERPRINT = {
    "python": "3.11.0",
    "implementation": "CPython",
    "platform": "Linux-golden",
    "machine": "x86_64",
    "cpu_count": 4,
    "git_sha": "0" * 40,
}

CREATED = "2026-01-01T00:00:00Z"


def _counting_clock(step: float):
    counter = itertools.count()
    return lambda: next(counter) * step


class _FakeAlloc:
    """A scripted allocator: tests mutate ``current`` between reads and
    the peak tracks the high-water mark, exactly like tracemalloc."""

    def __init__(self) -> None:
        self.current = 0
        self.peak = 0

    def read(self):
        self.peak = max(self.peak, self.current)
        return (self.current, self.peak)

    def reset(self) -> None:
        self.peak = self.current


def _pinned_monitor(alloc=None):
    return ResourceMonitor(
        clock=_counting_clock(0.5),
        rss_supplier=lambda: 67108864,
        track_gc=False,
        alloc_read=(alloc or _FakeAlloc()).read if alloc is None
        else alloc.read,
        alloc_reset=None if alloc is None else alloc.reset,
    )


def _golden_payload() -> dict:
    """One fully deterministic monitoring run: a section, a sample,
    one manually driven GC pause, and a watched cache."""
    alloc = _FakeAlloc()
    monitor = _pinned_monitor(alloc)
    monitor.start()  # clock tick 0 -> started_at 0.0
    with monitor.section("checker.check"):
        alloc.current += 4096
    with monitor.section("infer.fixpoint"):
        alloc.current += 1024
    monitor.begin_sample()
    alloc.current += 2048
    assert monitor.end_sample() == 2048
    alloc.current -= 2048
    # track_gc=False keeps the live gc.callbacks out; the hook itself
    # is deterministic when driven by hand.
    monitor._on_gc("start", {"generation": 2})  # tick 1 -> 0.5
    monitor._on_gc("stop", {"generation": 2})   # tick 2 -> 1.0
    monitor.watch_cache("memory", lambda: {"entries": 3, "bytes": 2048})
    monitor.stop()  # tick 3 -> duration 1.5
    return monitor.payload(
        fingerprint=dict(PINNED_FINGERPRINT), created_utc=CREATED
    )


class TestResourceMonitor:
    def test_section_attribution(self):
        alloc = _FakeAlloc()
        monitor = _pinned_monitor(alloc).start()
        with monitor.section("checker.check"):
            alloc.current += 100
        with monitor.section("checker.check"):
            alloc.current += 50
        with monitor.section("infer.fixpoint"):
            alloc.current -= 30
        assert monitor.sections() == [
            {"name": "checker.check", "count": 2, "net_alloc_bytes": 150},
            {"name": "infer.fixpoint", "count": 1, "net_alloc_bytes": -30},
        ]

    def test_section_counts_without_alloc_supplier(self):
        monitor = ResourceMonitor(
            clock=_counting_clock(0.5),
            rss_supplier=lambda: None,
            trace_allocations=False,
            track_gc=False,
        ).start()
        with monitor.section("interpreter.step"):
            pass
        assert monitor.sections() == [
            {"name": "interpreter.step", "count": 1, "net_alloc_bytes": 0},
        ]
        assert monitor.alloc_snapshot() == (None, None)
        assert monitor.peak_rss() is None

    def test_per_repetition_sampling_resets_peak(self):
        alloc = _FakeAlloc()
        monitor = _pinned_monitor(alloc).start()
        alloc.current = 1000
        monitor.begin_sample()
        alloc.current = 5000
        assert monitor.end_sample() == 4000
        alloc.current = 1000
        monitor.begin_sample()  # reset: old 5000 peak must not leak
        alloc.current = 1500
        assert monitor.end_sample() == 500

    def test_gc_pause_accounting_with_injected_clock(self):
        monitor = _pinned_monitor()
        monitor.start()  # tick 0
        monitor._on_gc("start", {"generation": 0})  # tick 1: 0.5
        monitor._on_gc("stop", {"generation": 0})   # tick 2: 1.0
        monitor._on_gc("start", {"generation": 2})  # tick 3: 1.5
        monitor._on_gc("stop", {"generation": 2})   # tick 4: 2.0
        snapshot = monitor.gc_snapshot()
        assert snapshot["collections"] == 2
        assert snapshot["pause_seconds_total"] == pytest.approx(1.0)
        assert snapshot["collections_by_generation"] == {"0": 1, "2": 1}

    def test_real_gc_callback_registers_and_unregisters(self):
        import gc

        monitor = ResourceMonitor(trace_allocations=False)
        with monitor:
            assert monitor._on_gc in gc.callbacks
            gc.collect()
        assert monitor._on_gc not in gc.callbacks
        assert monitor.gc_snapshot()["collections"] >= 1

    def test_stop_freezes_duration_and_is_idempotent(self):
        monitor = _pinned_monitor()
        monitor.start()  # tick 0
        monitor.start()  # idempotent: no extra tick consumed for start_at
        monitor.stop()   # tick 1 -> duration 0.5
        monitor.stop()
        assert monitor.snapshot()["duration_seconds"] == pytest.approx(0.5)

    def test_cache_occupancy_tolerates_raising_supplier(self):
        monitor = _pinned_monitor().start()
        monitor.watch_cache("memory", lambda: {"entries": 2, "bytes": 64})
        monitor.watch_cache("disk", lambda: (_ for _ in ()).throw(OSError()))
        assert monitor.cache_occupancy() == {
            "disk": {"entries": 0, "bytes": 0},
            "memory": {"entries": 2, "bytes": 64},
        }

    def test_owned_tracemalloc_lifecycle(self):
        import tracemalloc

        assert not tracemalloc.is_tracing()
        monitor = ResourceMonitor(track_gc=False)
        with monitor:
            assert tracemalloc.is_tracing()
            blob = bytearray(1 << 16)
            current, peak = monitor.alloc_snapshot()
            assert peak >= len(blob)
        assert not tracemalloc.is_tracing()
        # The final reading is frozen so post-stop payloads keep it.
        current, peak = monitor.alloc_snapshot()
        assert peak is not None and peak >= 1 << 16

    def test_peak_rss_bytes_is_plausible(self):
        rss = peak_rss_bytes()
        assert rss is not None
        assert rss > 1 << 20  # a Python process holds well over a MiB


class TestNullResourceMonitor:
    def test_default_monitor_is_null(self):
        assert isinstance(get_resource_monitor(), NullResourceMonitor)
        assert get_resource_monitor().enabled is False

    def test_sections_share_one_noop_object(self):
        null = NullResourceMonitor()
        assert null.section("a") is null.section("b")
        with null.section("interpreter.step"):
            pass
        assert null.sections() == []
        assert null.end_sample() is None
        assert null.cache_occupancy() == {}
        assert null.peak_rss() is None
        assert null.alloc_snapshot() == (None, None)
        assert null.gc_snapshot()["collections"] == 0

    def test_installed_monitor_restores_previous(self):
        monitor = _pinned_monitor()
        before = get_resource_monitor()
        with installed_resource_monitor(monitor):
            assert get_resource_monitor() is monitor
        assert get_resource_monitor() is before

    def test_set_none_restores_null(self):
        previous = set_resource_monitor(_pinned_monitor())
        set_resource_monitor(None)
        assert isinstance(get_resource_monitor(), NullResourceMonitor)
        assert isinstance(previous, NullResourceMonitor)

    def test_noop_overhead_is_negligible(self):
        """The pin the CI mem-smoke step relies on: 100k disabled
        sections must stay under the same bound as the null tracer,
        event log, and profiler — the anchors share their hot-loop
        placement."""
        monitor = get_resource_monitor()
        assert isinstance(monitor, NullResourceMonitor)
        start = time.perf_counter()
        for _ in range(100_000):
            with monitor.section("interpreter.step"):
                pass
        elapsed = time.perf_counter() - start
        assert elapsed < 2.0, f"no-op section overhead too high: {elapsed:.3f}s"


class TestSchema:
    def test_golden_resources_json(self):
        """The full payload, byte for byte — schema drift must be a
        conscious change to the golden file and RESOURCES_SCHEMA."""
        assert dumps_resources(_golden_payload()) == GOLDEN.read_text(
            encoding="utf-8"
        )

    def test_round_trip(self, tmp_path):
        payload = _golden_payload()
        path = write_resources(payload, tmp_path / "MEM_test.json")
        assert read_resources(path) == payload

    def test_default_filename_convention(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        path = write_resources(_golden_payload())
        assert path.name == "MEM_20260101T000000Z.json"

    def test_validate_accepts_golden(self):
        assert validate_resources(_golden_payload())["kind"] == "resources"

    @pytest.mark.parametrize("mutate, message", [
        (lambda p: p.update(schema=99), "unsupported resources schema"),
        (lambda p: p.update(kind="bench"), "unknown resources kind"),
        (lambda p: p.update(created_utc=7), "created_utc"),
        (lambda p: p["fingerprint"].pop("python"), "fingerprint missing"),
        (lambda p: p.update(duration_seconds=-1), "duration_seconds"),
        (lambda p: p.update(peak_rss_bytes=-5), "peak_rss_bytes"),
        (lambda p: p.update(alloc_peak_bytes="big"), "alloc_peak_bytes"),
        (lambda p: p["gc"].update(collections=-1), "gc.collections"),
        (lambda p: p["gc"].update(pause_seconds_total=None),
         "pause_seconds_total"),
        (lambda p: p["sections"].append({"name": 3}), "sections"),
        (lambda p: p["caches"].update(disk={"entries": -1, "bytes": 0}),
         "cache 'disk'"),
    ])
    def test_validate_rejects_malformed(self, mutate, message):
        payload = json.loads(dumps_resources(_golden_payload()))
        mutate(payload)
        with pytest.raises(ResourceError, match=message):
            validate_resources(payload)

    def test_read_rejects_invalid_json(self, tmp_path):
        torn = tmp_path / "MEM_torn.json"
        torn.write_text('{"schema": 1, "kin')
        with pytest.raises(ResourceError, match="invalid JSON"):
            read_resources(torn)

    def test_payload_nulls_without_allocation_tracing(self):
        monitor = ResourceMonitor(
            clock=_counting_clock(0.5),
            rss_supplier=lambda: 1024,
            trace_allocations=False,
            track_gc=False,
        )
        with monitor:
            pass
        payload = resources_payload(
            monitor.snapshot(),
            fingerprint=dict(PINNED_FINGERPRINT),
            created_utc=CREATED,
        )
        validate_resources(payload)
        assert payload["alloc_current_bytes"] is None
        assert payload["alloc_peak_bytes"] is None
        assert payload["peak_rss_bytes"] == 1024


class TestRendering:
    def test_table_is_deterministic(self):
        table = format_resources_table(_golden_payload())
        assert table == format_resources_table(_golden_payload())
        assert "checker.check" in table
        assert "infer.fixpoint" in table
        assert "peak rss 64.0 MiB" in table
        assert "1 gc collection(s)" in table

    def test_table_without_sections_or_caches(self):
        monitor = ResourceMonitor(
            clock=_counting_clock(0.5),
            rss_supplier=lambda: None,
            trace_allocations=False,
            track_gc=False,
        )
        with monitor:
            pass
        payload = resources_payload(
            monitor.snapshot(),
            fingerprint=dict(PINNED_FINGERPRINT),
            created_utc=CREATED,
        )
        table = format_resources_table(payload)
        assert "peak rss - MiB" in table
        assert "section" not in table


class TestAnchors:
    def test_checker_attributes_to_installed_monitor(self):
        from repro.apps import load_app
        from repro.core.checker import SJavaChecker

        bundle = load_app("wind_sensor")
        monitor = ResourceMonitor(track_gc=False)
        with monitor, installed_resource_monitor(monitor):
            SJavaChecker(bundle.info).run()
        names = [row["name"] for row in monitor.sections()]
        assert "checker.check" in names
