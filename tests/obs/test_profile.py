"""Sampling profiler: deterministic sampling, golden payload, the
NullProfiler overhead pin, and the --profile-json CLI surface."""

from __future__ import annotations

import itertools
import json
import threading
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.obs.profile import (
    DEFAULT_INTERVAL,
    MAX_STACK_DEPTH,
    NullProfiler,
    PROFILE_SCHEMA,
    ProfileError,
    SamplingProfiler,
    _stack_of,
    aggregate_profile,
    dumps_profile,
    format_profile_table,
    get_profiler,
    installed_profiler,
    profile_payload,
    read_profile,
    section_counts,
    set_profiler,
    validate_profile,
    write_profile,
)

GOLDEN = Path(__file__).parent / "golden" / "profile.golden.json"

PINNED_FINGERPRINT = {
    "python": "3.11.0",
    "implementation": "CPython",
    "platform": "Linux-golden",
    "machine": "x86_64",
    "cpu_count": 4,
    "git_sha": "0" * 40,
}

CREATED = "2026-01-01T00:00:00Z"


def _counting_clock(step: float):
    counter = itertools.count()
    return lambda: next(counter) * step


def _golden_samples() -> list[dict]:
    """Hand-built aggregates as the sampler would produce them: count
    descending, then section, then stack."""
    return [
        {
            "section": "interpreter.step",
            "stack": ["repro.cli.main", "repro.runtime.interpreter.run",
                      "repro.runtime.interpreter.eval"],
            "count": 5,
        },
        {
            "section": "checker.check",
            "stack": ["repro.cli.main", "repro.core.checker.run"],
            "count": 2,
        },
        {
            "section": None,
            "stack": ["repro.cli.main"],
            "count": 1,
        },
    ]


def _golden_payload() -> dict:
    return profile_payload(
        _golden_samples(),
        interval_seconds=0.005,
        duration_seconds=0.04,
        fingerprint=dict(PINNED_FINGERPRINT),
        created_utc=CREATED,
    )


def _probe_frame():
    """A real frame captured inside a recognizably named function."""
    import sys

    def golden_probe_leaf():
        return sys._getframe()

    return golden_probe_leaf()


class TestStackOf:
    def test_root_first_module_function_names(self):
        frame = _probe_frame()
        stack = _stack_of(frame)
        assert stack[-1] == "tests.obs.test_profile.golden_probe_leaf"
        assert stack[-2] == "tests.obs.test_profile._probe_frame"
        assert all("." in name for name in stack)

    def test_truncates_at_max_depth(self):
        frame = _probe_frame()
        assert len(_stack_of(frame, max_depth=2)) == 2
        assert len(_stack_of(frame)) <= MAX_STACK_DEPTH


class TestSampler:
    def _manual(self, frames=None):
        """A profiler driven by hand: no sampler thread, injected clock
        and frame supplier."""
        return SamplingProfiler(
            interval_seconds=0.005,
            clock=_counting_clock(0.5),
            frames=frames if frames is not None else lambda: {},
        )

    def test_section_labels_samples(self):
        tid = threading.get_ident()
        frame = _probe_frame()
        profiler = self._manual(frames=lambda: {tid: frame})
        with profiler.section("interpreter.step"):
            assert profiler.sample_now() == 1
            assert profiler.sample_now() == 1
        (sample,) = profiler.samples()
        assert sample["section"] == "interpreter.step"
        assert sample["count"] == 2
        assert sample["stack"][-1].endswith("golden_probe_leaf")

    def test_sections_nest_innermost_wins(self):
        tid = threading.get_ident()
        frame = _probe_frame()
        profiler = self._manual(frames=lambda: {tid: frame})
        with profiler.section("checker.check"):
            with profiler.section("infer.fixpoint"):
                profiler.sample_now()
            profiler.sample_now()
        sections = {s["section"] for s in profiler.samples()}
        assert sections == {"checker.check", "infer.fixpoint"}

    def test_sample_outside_sections_is_unattributed(self):
        tid = threading.get_ident()
        frame = _probe_frame()
        profiler = self._manual(frames=lambda: {tid: frame})
        with profiler.section("x"):
            pass  # registers the thread, then leaves the section
        profiler.sample_now()
        (sample,) = profiler.samples()
        assert sample["section"] is None

    def test_unregistered_threads_are_not_sampled(self):
        frame = _probe_frame()
        profiler = self._manual(frames=lambda: {99999: frame})
        assert profiler.sample_now() == 0

    def test_payload_duration_from_injected_clock(self):
        profiler = self._manual()
        profiler.start()
        profiler.stop()
        payload = profiler.payload(
            fingerprint=dict(PINNED_FINGERPRINT), created_utc=CREATED
        )
        # counting clock: start reads 0.0, stop reads 0.5
        assert payload["duration_seconds"] == 0.5
        assert payload["sample_count"] == 0
        validate_profile(payload)

    def test_live_thread_sampling_smoke(self):
        """A real sampler thread over a busy loop records samples and
        attributes them to the open section."""
        profiler = SamplingProfiler(interval_seconds=0.001)
        deadline = time.monotonic() + 0.25
        with profiler:
            with profiler.section("interpreter.step"):
                while time.monotonic() < deadline and not profiler.sample_count:
                    sum(range(1000))
        assert profiler.sample_count > 0
        counts = section_counts(profiler.payload())
        assert "interpreter.step" in counts

    def test_bad_interval_rejected(self):
        with pytest.raises(ProfileError, match="interval_seconds"):
            SamplingProfiler(interval_seconds=0)

    def test_sample_survives_concurrent_section_pop(self):
        """The profiled thread pops its section stack without the lock,
        so the pop can land between the sampler's truthiness check and
        the ``[-1]`` read; the sample must come out unattributed rather
        than raise and kill the sampler thread."""

        class PoppedUnderneath(list):
            # Truthy like a one-entry stack, but by the time the
            # sampler indexes it the owning thread has emptied it.
            def __getitem__(self, index):
                raise IndexError("pop won the race")

        tid = threading.get_ident()
        frame = _probe_frame()
        profiler = self._manual(frames=lambda: {tid: frame})
        with profiler._lock:
            profiler._targets.add(tid)
            profiler._sections[tid] = PoppedUnderneath(["interpreter.step"])
        assert profiler.sample_now() == 1
        (sample,) = profiler.samples()
        assert sample["section"] is None


class TestNullProfiler:
    def test_default_profiler_is_null(self):
        assert isinstance(get_profiler(), NullProfiler)
        assert not get_profiler().enabled

    def test_installed_profiler_restores_previous(self):
        profiler = SamplingProfiler(
            interval_seconds=0.005, frames=lambda: {}
        )
        before = get_profiler()
        with installed_profiler(profiler):
            assert get_profiler() is profiler
        assert get_profiler() is before

    def test_set_profiler_none_restores_null(self):
        previous = set_profiler(
            SamplingProfiler(interval_seconds=0.005, frames=lambda: {})
        )
        set_profiler(None)
        assert isinstance(get_profiler(), NullProfiler)
        assert isinstance(previous, NullProfiler)

    def test_noop_overhead_is_negligible(self):
        """The pin the CI profile-smoke step relies on: 100k disabled
        sections must stay under the same bound as the null tracer —
        the anchors sit inside the interpreter's event loop."""
        profiler = get_profiler()
        assert isinstance(profiler, NullProfiler)
        start = time.perf_counter()
        for _ in range(100_000):
            with profiler.section("interpreter.step"):
                pass
        elapsed = time.perf_counter() - start
        assert elapsed < 2.0, f"no-op section overhead too high: {elapsed:.3f}s"


class TestSchema:
    def test_golden_profile_json(self):
        """The full payload, byte for byte — schema drift must be a
        conscious change to the golden file and PROFILE_SCHEMA."""
        assert dumps_profile(_golden_payload()) == GOLDEN.read_text(
            encoding="utf-8"
        )

    def test_round_trip(self, tmp_path):
        payload = _golden_payload()
        path = write_profile(payload, tmp_path / "PROFILE_test.json")
        assert read_profile(path) == payload

    def test_default_filename_uses_utc_stamp(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        path = write_profile(_golden_payload())
        assert path.name == "PROFILE_20260101T000000Z.json"

    def test_empty_sample_list_is_valid(self):
        payload = profile_payload(
            [], interval_seconds=DEFAULT_INTERVAL, duration_seconds=0.0,
            fingerprint=dict(PINNED_FINGERPRINT), created_utc=CREATED,
        )
        assert validate_profile(payload) is payload

    def test_schema_violations_rejected(self):
        good = _golden_payload()
        assert validate_profile(good) is good
        with pytest.raises(ProfileError, match="unsupported profile schema"):
            validate_profile(dict(good, schema=PROFILE_SCHEMA + 1))
        with pytest.raises(ProfileError, match="kind"):
            validate_profile(dict(good, kind="bench"))
        with pytest.raises(ProfileError, match="fingerprint missing"):
            validate_profile(dict(good, fingerprint={"python": "3"}))
        with pytest.raises(ProfileError, match="sample_count"):
            validate_profile(dict(good, sample_count=99))
        bad_stack = _golden_payload()
        bad_stack["samples"][0]["stack"] = [""]
        with pytest.raises(ProfileError, match="stack"):
            validate_profile(bad_stack)
        bad_count = _golden_payload()
        bad_count["samples"][0]["count"] = 0
        with pytest.raises(ProfileError, match="positive int"):
            validate_profile(bad_count)

    def test_read_profile_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(ProfileError, match="invalid JSON"):
            read_profile(path)


class TestAggregation:
    def test_self_and_total_counts(self):
        rows = aggregate_profile(_golden_payload())
        by_name = {row["function"]: row for row in rows}
        # leaf of the 5-count stack: self == total == 5
        leaf = by_name["repro.runtime.interpreter.eval"]
        assert leaf["self_count"] == 5 and leaf["total_count"] == 5
        # root frame appears on every stack, innermost only once
        root = by_name["repro.cli.main"]
        assert root["self_count"] == 1
        assert root["total_count"] == 8
        # ranked by self count descending
        assert rows[0]["function"] == "repro.runtime.interpreter.eval"

    def test_section_counts(self):
        counts = section_counts(_golden_payload())
        assert counts == {
            "interpreter.step": 5,
            "checker.check": 2,
            "<unattributed>": 1,
        }

    def test_format_table_is_deterministic(self):
        payload = _golden_payload()
        first = format_profile_table(payload)
        assert first == format_profile_table(payload)
        assert "interpreter.step" in first
        assert "repro.runtime.interpreter.eval" in first
        assert "// 8 samples" in first


class TestProfileCli:
    def test_check_profile_json_writes_valid_payload(self, tmp_path, capsys):
        out = tmp_path / "profile.json"
        assert main([
            "check", "src/repro/apps/programs/wind_sensor.sj",
            "--profile-json", str(out),
        ]) == 0
        assert "profile written to" in capsys.readouterr().err
        payload = read_profile(out)
        assert payload["schema"] == PROFILE_SCHEMA

    def test_bench_profile_json_composes(self, tmp_path, capsys):
        out = tmp_path / "profile.json"
        assert main([
            "bench", "--scenario", "interpreter-step/wind_sensor",
            "--warmup", "0", "--repetitions", "1",
            "--output", str(tmp_path / "bench.json"),
            "--profile-json", str(out),
            "--profile-interval", "0.001",
        ]) == 0
        read_profile(out)  # must validate, sampled or not

    @pytest.mark.parametrize("interval", ["0", "-0.5"])
    def test_non_positive_interval_is_a_clean_cli_error(
        self, tmp_path, capsys, interval
    ):
        """An explicit ``--profile-interval 0`` must be rejected, not
        silently swapped for the default; negatives get the same clean
        ``error:`` + exit 2 instead of a traceback."""
        out = tmp_path / "p.json"
        assert main([
            "check", "src/repro/apps/programs/wind_sensor.sj",
            "--profile-json", str(out),
            "--profile-interval", interval,
        ]) == 2
        assert "error: interval_seconds must be > 0" in capsys.readouterr().err
        assert not out.exists()

    def test_profiler_not_leaked_after_cli(self, tmp_path):
        main([
            "check", "src/repro/apps/programs/wind_sensor.sj",
            "--profile-json", str(tmp_path / "p.json"),
        ])
        assert isinstance(get_profiler(), NullProfiler)
