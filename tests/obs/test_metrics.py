"""MetricsRegistry: counters, gauges, histograms, expositions."""

from __future__ import annotations

import pytest

from repro.obs import (
    DEFAULT_TIME_BUCKETS,
    METRICS_SCHEMA,
    MetricsRegistry,
    global_registry,
)
from repro.obs.metrics import format_bound


class TestCounters:
    def test_inc_and_get_or_create(self):
        registry = MetricsRegistry()
        registry.counter("repro_requests_total").inc()
        registry.counter("repro_requests_total").inc(2)
        assert registry.counter("repro_requests_total").value == 3

    def test_counters_only_go_up(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("c").inc(-1)

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.histogram("x")

    def test_invalid_name_raises(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="invalid metric name"):
            registry.counter("bad name")
        with pytest.raises(ValueError, match="invalid metric name"):
            registry.counter("0leading")


class TestGauges:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(5)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value == 4


class TestHistograms:
    def test_cumulative_buckets_end_with_inf(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.sum == pytest.approx(6.05)
        assert hist.cumulative_buckets() == [
            ("0.1", 1), ("1", 3), ("+Inf", 4)
        ]

    def test_boundary_value_lands_in_its_bucket(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0,))
        hist.observe(1.0)  # le="1" is inclusive, Prometheus-style
        assert hist.cumulative_buckets()[0] == ("1", 1)

    def test_unsorted_boundaries_raise(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("h", buckets=(1.0, 0.5))
        with pytest.raises(ValueError):
            registry.histogram("h2", buckets=())

    def test_default_buckets_cover_sub_ms_to_ten_s(self):
        assert DEFAULT_TIME_BUCKETS[0] <= 0.001
        assert DEFAULT_TIME_BUCKETS[-1] >= 10.0

    def test_format_bound(self):
        assert format_bound(0.001) == "0.001"
        assert format_bound(1.0) == "1"
        assert format_bound(2.5) == "2.5"


class TestHistogramQuantiles:
    def _hist(self, boundaries=(1.0, 2.0, 4.0)):
        registry = MetricsRegistry()
        return registry.histogram("repro_q_seconds", buckets=boundaries)

    def test_empty_histogram_has_no_quantiles(self):
        hist = self._hist()
        assert hist.quantile(0.5) is None
        assert hist.quantiles() == {"p50": None, "p95": None, "p99": None}

    def test_linear_interpolation_within_a_bucket(self):
        # four observations in the (0, 10] bucket: the p50 estimate sits
        # halfway up the bucket — 5.0 — whatever the raw values were.
        hist = self._hist(boundaries=(10.0,))
        for value in (1.0, 2.0, 3.0, 4.0):
            hist.observe(value)
        assert hist.quantile(0.5) == pytest.approx(5.0)

    def test_quantile_walks_cumulative_buckets(self):
        hist = self._hist()  # boundaries 1, 2, 4
        for value in (0.5, 1.5, 3.0, 10.0):  # one per bucket incl. +Inf
            hist.observe(value)
        assert hist.quantile(0.25) == pytest.approx(1.0)
        assert hist.quantile(0.5) == pytest.approx(2.0)
        # the target rank falls into the open +Inf bucket: clamp to the
        # top boundary (documented as an under-estimate)
        assert hist.quantile(0.99) == pytest.approx(4.0)

    def test_out_of_range_quantile_rejected(self):
        with pytest.raises(ValueError, match="quantile"):
            self._hist().quantile(1.5)
        with pytest.raises(ValueError, match="quantile"):
            self._hist().quantile(-0.1)

    def test_empty_histogram_extreme_quantiles_are_none(self):
        # q=0 and q=1 are valid requests; an empty histogram still has
        # no answer for them (never 0.0, never NaN, never a raise).
        hist = self._hist()
        assert hist.quantile(0.0) is None
        assert hist.quantile(1.0) is None

    def test_snapshot_of_empty_histogram_is_well_formed(self):
        registry = MetricsRegistry()
        registry.histogram("repro_empty_seconds", buckets=(1.0,))
        entry = registry.snapshot()["histograms"]["repro_empty_seconds"]
        assert entry["count"] == 0
        assert entry["sum"] == 0.0
        assert entry["p50"] is None
        assert entry["p95"] is None
        assert entry["p99"] is None

    def test_prometheus_rendering_of_empty_histogram(self):
        registry = MetricsRegistry()
        registry.histogram("repro_empty_seconds", buckets=(1.0,))
        text = registry.render_prometheus()
        assert "repro_empty_seconds_count 0" in text
        assert "nan" not in text.lower()

    def test_snapshot_includes_estimates(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_s_seconds", buckets=(10.0,))
        for value in (1.0, 2.0, 3.0, 4.0):
            hist.observe(value)
        entry = registry.snapshot()["histograms"]["repro_s_seconds"]
        assert entry["p50"] == pytest.approx(5.0)
        assert entry["p95"] == pytest.approx(9.5)
        assert entry["p99"] == pytest.approx(9.9)


class TestExposition:
    def _populated(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("repro_requests_total", "requests").inc(7)
        registry.gauge("repro_cache_entries", "cache size").set(3)
        hist = registry.histogram(
            "repro_exec_seconds", "exec latency", buckets=(0.1, 1.0)
        )
        hist.observe(0.05)
        hist.observe(0.5)
        return registry

    def test_snapshot_schema_and_contents(self):
        snapshot = self._populated().snapshot()
        assert snapshot["schema"] == METRICS_SCHEMA
        assert snapshot["counters"] == {"repro_requests_total": 7}
        assert snapshot["gauges"] == {"repro_cache_entries": 3}
        hist = snapshot["histograms"]["repro_exec_seconds"]
        assert hist["count"] == 2
        assert hist["sum"] == pytest.approx(0.55)
        assert hist["buckets"] == {"0.1": 1, "1": 2, "+Inf": 2}

    def test_prometheus_rendering(self):
        text = self._populated().render_prometheus()
        lines = text.splitlines()
        assert "# TYPE repro_requests_total counter" in lines
        assert "repro_requests_total 7" in lines
        assert "# TYPE repro_cache_entries gauge" in lines
        assert "repro_cache_entries 3" in lines
        assert "# TYPE repro_exec_seconds histogram" in lines
        assert 'repro_exec_seconds_bucket{le="0.1"} 1' in lines
        assert 'repro_exec_seconds_bucket{le="1"} 2' in lines
        assert 'repro_exec_seconds_bucket{le="+Inf"} 2' in lines
        assert "repro_exec_seconds_sum 0.55" in lines
        assert "repro_exec_seconds_count 2" in lines
        assert "# HELP repro_requests_total requests" in lines
        assert text.endswith("\n")

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_prometheus() == ""
        snapshot = MetricsRegistry().snapshot()
        assert snapshot["counters"] == {}

    def test_reset_drops_everything(self):
        registry = self._populated()
        registry.reset()
        assert registry.snapshot()["counters"] == {}


class TestGlobalRegistry:
    def test_is_a_stable_singleton(self):
        assert global_registry() is global_registry()
        assert isinstance(global_registry(), MetricsRegistry)
