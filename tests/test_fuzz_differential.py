"""Differential fuzzing of the two execution backends.

Random well-formed programs (the generator from ``test_fuzz``) must
produce byte-identical outputs, iteration marks and error logs on the
tree-walking interpreter and the closure-compiling runner — in strict
mode, in crash-avoidance mode, and under fault injection (site numbering
must agree for injections to land identically).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.apps import DIST_APP_NAMES
from repro.runtime import ErrorInjector, Interpreter, RuntimeOptions
from repro.runtime.compiler import CompiledRunner
from repro.runtime.devices import IterationKeyedDevice
from tests.conftest import analyze
from tests.test_fuzz import programs


def observe(backend, info, injector=None):
    engine = backend(
        info,
        IterationKeyedDevice(lambda n, i, k: (i * 13 + k) % 17, iterations=6),
        options=RuntimeOptions(ignore_errors=True),
        injector=injector,
    )
    engine.run()
    return engine.sink.values, engine.iteration_marks, engine.error_log


class TestBackendEquivalence:
    @given(programs(annotated=False))
    @settings(max_examples=80, deadline=None)
    def test_clean_outputs_identical(self, source):
        info = analyze(source)
        assert observe(Interpreter, info) == observe(CompiledRunner, info)

    @given(programs(annotated=False))
    @settings(max_examples=50, deadline=None)
    def test_injected_outputs_identical(self, source):
        info = analyze(source)
        results = []
        injectors = []
        for backend in (Interpreter, CompiledRunner):
            injector = ErrorInjector(target_step=11, seed=3, burst=2)
            injectors.append(injector)
            results.append(observe(backend, info, injector))
        assert results[0] == results[1]
        # the injectable-site numbering agrees exactly
        assert injectors[0].step == injectors[1].step
        assert injectors[0].injected_at == injectors[1].injected_at


class TestDistributedBackendEquivalence:
    """The fabric runs each node activation on an unchanged single-node
    backend; a whole multi-node simulation must therefore be
    backend-independent down to the per-node state digests."""

    @pytest.mark.parametrize("app", DIST_APP_NAMES)
    def test_clean_fabric_digests_identical(self, app):
        from repro.dist import dist_app_experiment

        results = []
        for engine in (Interpreter, CompiledRunner):
            experiment = dist_app_experiment(app, engine=engine)
            sim = experiment.reference()
            results.append((
                sim.trajectory,
                [sim.node_digest(i) for i in range(experiment.nodes)],
            ))
        assert results[0] == results[1]

    def test_injected_fabric_trials_identical(self):
        from repro.dist import dist_app_experiment
        from repro.runtime.campaign import trial_record

        records = []
        for engine in (Interpreter, CompiledRunner):
            experiment = dist_app_experiment("herman_bit", engine=engine)
            site = experiment.total_steps() // 2
            records.append(
                trial_record("herman_bit", experiment.trial_at(site, seed=2))
            )
        assert records[0] == records[1]
