"""Benchmark application tests (Section 6.1/6.2): every app checks,
runs, strips, re-infers, and self-stabilizes under injected faults."""

import pytest

from repro.apps import (
    APP_NAMES,
    app_device_factory,
    app_source,
    load_app,
    strip_location_annotations,
)
from repro.core.checker import SJavaChecker
from repro.infer import infer_annotations
from repro.runtime import Interpreter, RuntimeOptions, StabilizationExperiment


class TestChecking:
    def test_all_apps_self_stabilize(self, apps):
        for name, app in apps.items():
            report = SJavaChecker(app.info).run()
            assert report.self_stabilizing, f"{name}:\n{report.format()}"

    def test_all_apps_have_event_loop(self, apps):
        for app in apps.values():
            assert app.info.event_loop is not None

    def test_unknown_app_raises(self):
        with pytest.raises(KeyError):
            app_source("nope")


class TestStripping:
    @pytest.mark.parametrize("name", APP_NAMES)
    def test_stripping_removes_location_annotations(self, name):
        stripped = app_source(name, annotated=False)
        for marker in ("@LATTICE", "@LOC", "@THISLOC", "@RETURNLOC",
                       "@PCLOC", "@METHODDEFAULT", "@DELTA("):
            assert marker not in stripped, f"{marker} left in {name}"

    def test_stripping_preserves_semantic_annotations(self):
        stripped = app_source("mp3_decoder", annotated=False)
        assert "@TRUSTED" in stripped

    def test_stripped_program_runs_identically(self):
        for name in APP_NAMES:
            annotated = load_app(name)
            stripped = load_app(name, annotated=False)
            out_a = Interpreter(
                annotated.info, app_device_factory(name, 10)()
            ).run()
            out_b = Interpreter(
                stripped.info, app_device_factory(name, 10)()
            ).run()
            assert out_a == out_b, name

    def test_strip_is_idempotent(self):
        source = app_source("wind_sensor", annotated=False)
        assert strip_location_annotations(source) == source


class TestExecution:
    @pytest.mark.parametrize("name", APP_NAMES)
    def test_app_produces_output(self, name, apps):
        interp = Interpreter(
            apps[name].info,
            app_device_factory(name, 12)(),
            options=RuntimeOptions(ignore_errors=True),
        )
        out = interp.run()
        assert out
        assert interp.iteration == 12
        assert not interp.error_log

    def test_mp3_emits_pcm_per_frame(self, apps):
        interp = Interpreter(apps["mp3_decoder"].info,
                             app_device_factory("mp3_decoder", 5)())
        out = interp.run()
        assert len(out) == 5 * 16  # 8 PCM samples × 2 granules per frame

    def test_eye_tracker_emits_directions(self, apps):
        out = Interpreter(apps["eye_tracker"].info,
                          app_device_factory("eye_tracker", 20)()).run()
        assert all(0 <= d <= 8 for d in out)

    def test_robot_alternates_move_speed(self, apps):
        out = Interpreter(apps["sumo_robot"].info,
                          app_device_factory("sumo_robot", 10)()).run()
        moves, speeds = out[0::2], out[1::2]
        assert all(m in (0, 1, 2, 3) for m in moves)
        assert all(3 <= s <= 9 for s in speeds)


class TestSelfStabilization:
    """Scaled-down versions of the Section 6.2 experiments; the full runs
    live in benchmarks/."""

    def _experiment(self, name, iterations):
        app = load_app(name)
        return StabilizationExperiment(
            app.info,
            app_device_factory(name, iterations),
            options=RuntimeOptions(ignore_errors=True),
        )

    def test_wind_sensor_recovers_within_bin_depth(self):
        exp = self._experiment("wind_sensor", 30)
        trials = exp.run_trials(15, seed=1)
        for trial in trials:
            if trial.corrupted_output and not trial.diverged:
                assert trial.recovery_iterations <= 3

    def test_eye_tracker_recovers_within_history_depth(self):
        exp = self._experiment("eye_tracker", 30)
        trials = exp.run_trials(15, seed=2)
        recovered = [t for t in trials if t.corrupted_output and not t.diverged]
        assert recovered
        assert all(t.recovery_iterations <= 3 for t in recovered)

    def test_robot_recovers_next_iteration(self):
        exp = self._experiment("sumo_robot", 30)
        trials = exp.run_trials(15, seed=3)
        recovered = [t for t in trials if t.corrupted_output and not t.diverged]
        assert recovered
        # Section 6.2.3: the controller resumed normal behavior in the
        # next iteration after the error
        assert all(t.recovery_iterations <= 1 for t in recovered)

    def test_mp3_recovery_bounded_by_window_depth(self):
        exp = self._experiment("mp3_decoder", 16)
        trials = exp.run_trials(10, seed=4)
        recovered = [t for t in trials if t.corrupted_output and not t.diverged]
        assert recovered
        # window buffer holds 4 granules = 2 frames; plus the injection
        # frame: recovery within 3 frames (the paper's hard bound shape)
        assert all(t.recovery_iterations <= 3 for t in recovered)
        total = len(exp.reference_groups())
        for trial in trials:
            if trial.diverged:
                assert trial.injection_iteration >= total - 3


class TestInference:
    @pytest.mark.parametrize("name", APP_NAMES)
    def test_inferred_apps_run_identically(self, name):
        from repro.lang import parse_program, resolve_program, typecheck_program

        stripped = load_app(name, annotated=False)
        result = infer_annotations(stripped.info, mode="sinfer", verify=False)
        program = parse_program(result.annotated_source)
        info = resolve_program(program)
        typecheck_program(info)
        out_inferred = Interpreter(info, app_device_factory(name, 8)()).run()
        out_manual = Interpreter(
            load_app(name).info, app_device_factory(name, 8)()
        ).run()
        assert out_inferred == out_manual
