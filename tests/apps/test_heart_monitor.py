"""Heart monitor app tests: the Section 1.2 safety-critical scenario and
the @METHODDEFAULT feature in anger."""

from repro.apps import app_device_factory, load_app
from repro.core.environment import LocationWorld
from repro.core.errors import DiagnosticSink
from repro.runtime import RuntimeOptions, StabilizationExperiment
from repro.runtime.compiler import CompiledRunner


class TestChecking:
    def test_self_stabilizing(self, apps):
        from repro.core.checker import SJavaChecker

        report = SJavaChecker(apps["heart_monitor"].info).run()
        assert report.self_stabilizing, report.format()

    def test_methoddefault_shared_by_helpers(self, apps):
        world = LocationWorld(apps["heart_monitor"].info, DiagnosticSink())
        condition = world.env_of("HeartMonitor", "condition")
        clamp = world.env_of("HeartMonitor", "clampSignal")
        # both helpers picked up the class-default lattice
        for env in (condition, clamp):
            assert env.lattice.lt("MOUT", "MTMP")
            assert env.lattice.lt("MTMP", "MIN")
            assert env.lattice.is_shared("MTMP")
        # while the annotated monitor loop has its own lattice
        monitor = world.env_of("HeartMonitor", "monitor")
        assert monitor.lattice.lt("HM", "RAWV")


class TestBehavior:
    def test_alarm_codes_in_range(self, apps):
        engine = CompiledRunner(
            apps["heart_monitor"].info,
            app_device_factory("heart_monitor", 30)(),
        )
        out = engine.run()
        alarms = out[0::2]
        assert all(a in (0, 1, 2, 3) for a in alarms)
        rates = out[1::2]
        assert all(r > 0.0 for r in rates)

    def test_recovery_within_interval_history(self):
        app = load_app("heart_monitor")
        experiment = StabilizationExperiment(
            app.info,
            app_device_factory("heart_monitor", 40),
            options=RuntimeOptions(ignore_errors=True),
        )
        trials = experiment.run_trials(25, seed=4)
        recovered = [
            t for t in trials if t.corrupted_output and not t.diverged
        ]
        assert recovered
        # deepest state: the 3-beat interval buffer
        assert all(t.recovery_iterations <= 3 for t in recovered)
        total = len(experiment.reference_groups())
        for trial in trials:
            if trial.diverged:
                assert trial.injection_iteration >= total - 3

    def test_inference_on_methoddefault_program(self):
        from repro.infer import infer_annotations

        app = load_app("heart_monitor", annotated=False)
        result = infer_annotations(app.info, mode="sinfer")
        assert result.verified, result.check_report.format()
        # inference emits per-method lattices in place of the default
        assert result.annotated_source.count("@LATTICE(") >= 3
