"""Daemon shutdown with requests in flight: graceful drain, no torn
protocol lines, and the socket file reclaimed afterwards."""

from __future__ import annotations

import threading
from pathlib import Path

from repro.service import protocol
from repro.service.cache import ResultCache
from repro.service.client import ReproClient
from repro.service.server import ReproServer


class HeldServer:
    """A daemon whose dispatch blocks until released — a request frozen
    between dispatch and response write, which is exactly the window a
    careless shutdown would tear."""

    def __init__(self, path):
        self.server = ReproServer(path, cache=ResultCache())
        self.thread = self.server.start()
        self.entered = threading.Event()
        self.release = threading.Event()
        original = self.server.dispatch

        def held_dispatch(line: str) -> dict:
            self.entered.set()
            self.release.wait(timeout=10)
            return original(line)

        self.server.dispatch = held_dispatch  # type: ignore[method-assign]

    def stop(self, **close_kwargs):
        self.release.set()
        self.server.shutdown()
        self.thread.join(timeout=5)
        self.server.close(**close_kwargs)


class TestInflightAccounting:
    def test_inflight_tracks_the_dispatch_window(self, tmp_path):
        held = HeldServer(tmp_path / "d.sock")
        try:
            assert held.server.inflight() == 0
            responses: list[dict] = []
            client_thread = threading.Thread(
                target=lambda: responses.append(
                    ReproClient(held.server.socket_path)
                    .connect().status()
                ),
                daemon=True,
            )
            client_thread.start()
            assert held.entered.wait(timeout=5)
            assert held.server.inflight() == 1
            assert not held.server.drain(timeout=0.1)  # still held
            held.release.set()
            client_thread.join(timeout=5)
            assert held.server.inflight() == 0
            assert held.server.drain(timeout=1.0)
            assert responses and responses[0]["ok"]
        finally:
            held.stop()


class TestGracefulShutdown:
    def test_close_drains_and_the_response_is_never_torn(self, tmp_path):
        """Shutdown starts while a request is mid-dispatch; close()
        waits for it, and the client still receives one complete,
        parseable protocol line."""
        held = HeldServer(tmp_path / "d.sock")
        socket_path = held.server.socket_path
        responses: list[dict] = []
        client_thread = threading.Thread(
            target=lambda: responses.append(
                ReproClient(socket_path).connect().status()
            ),
            daemon=True,
        )
        client_thread.start()
        assert held.entered.wait(timeout=5)

        closed = threading.Event()

        def shut_down() -> None:
            held.server.shutdown()
            held.server.close(drain_timeout=10.0)
            closed.set()

        closer = threading.Thread(target=shut_down, daemon=True)
        closer.start()
        assert not closed.wait(timeout=0.3), (
            "close() must wait for the in-flight request"
        )
        held.release.set()
        assert closed.wait(timeout=5)
        client_thread.join(timeout=5)
        held.thread.join(timeout=5)
        (response,) = responses
        assert response["ok"] and response["op"] == "status"
        protocol.validate_version(response)  # a whole, valid line
        assert not Path(socket_path).exists()

    def test_drain_timeout_is_reported_and_socket_reclaimed(self, tmp_path):
        """A request that never finishes cannot hold shutdown hostage:
        close() times out, emits daemon.drain_timeout, and the socket
        path is still released for the next daemon."""
        path = tmp_path / "d.sock"
        held = HeldServer(path)

        def doomed_request() -> None:
            try:
                ReproClient(path).connect().status()
            except Exception:
                pass  # the daemon goes down under it; that is the point

        client_thread = threading.Thread(target=doomed_request, daemon=True)
        client_thread.start()
        assert held.entered.wait(timeout=5)
        held.server.shutdown()
        held.thread.join(timeout=5)
        held.server.close(drain_timeout=0.2)
        warnings = [
            e for e in held.server.event_buffer.records
            if e["name"] == "daemon.drain_timeout"
        ]
        assert warnings and warnings[0]["attrs"]["inflight"] == 1
        assert not path.exists()
        # The address is immediately reusable.
        held.release.set()
        client_thread.join(timeout=5)
        fresh = ReproServer(path, cache=ResultCache())
        thread = fresh.start()
        try:
            assert ReproClient(path).connect().status()["ok"]
        finally:
            fresh.shutdown()
            thread.join(timeout=5)
            fresh.close()
