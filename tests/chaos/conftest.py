"""Fixtures for the chaos-harness tests."""

from __future__ import annotations

import pytest

from repro.apps import app_source


@pytest.fixture(scope="session")
def wind_source() -> str:
    return app_source("wind_sensor")
