"""Client deadline budget and mid-request drop recovery.

The deadline tests run on an injected fake clock, so exhausting a
multi-second budget costs no wall time; the drop tests run against a
real daemon with planned socket-drop faults on both ends of the wire.
"""

from __future__ import annotations

import pytest

from repro.chaos import ChaosConfig, ChaosInjector, installed_chaos
from repro.obs import EventBuffer, EventLog, installed_event_log
from repro.service.cache import ResultCache
from repro.service.client import (
    DeadlineExceeded,
    ReproClient,
    ServiceError,
    protocol,
)
from repro.service.server import ReproServer


class FakeTime:
    """A clock that only moves when someone sleeps on it."""

    def __init__(self) -> None:
        self.now = 0.0
        self.slept: list[float] = []

    def clock(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.slept.append(seconds)
        self.now += seconds


def start_server(path):
    server = ReproServer(path, cache=ResultCache())
    thread = server.start()
    return server, thread


def stop_server(server, thread):
    server.shutdown()
    thread.join(timeout=5)
    server.close()


class TestDeadlineBudget:
    def test_unbounded_retries_require_a_deadline(self, tmp_path):
        with pytest.raises(ValueError, match="op_deadline"):
            ReproClient(tmp_path / "x.sock", connect_retries=None)

    def test_deadline_bounds_an_endless_connect_loop(self, tmp_path):
        """connect_retries=None retries forever in attempt-count terms;
        the total deadline budget is what stops it."""
        fake = FakeTime()
        client = ReproClient(
            tmp_path / "absent.sock",
            connect_retries=None,
            op_deadline=2.0,
            connect_backoff=0.5,
            backoff_cap=0.5,
            clock=fake.clock,
            sleep=fake.sleep,
        )
        with pytest.raises(DeadlineExceeded, match="2.000s exceeded"):
            client.connect()
        # Four 0.5s backoffs spend the 2.0s budget exactly.
        assert fake.slept == [0.5, 0.5, 0.5, 0.5]

    def test_deadline_error_carries_a_protocol_envelope(self, tmp_path):
        fake = FakeTime()
        client = ReproClient(
            tmp_path / "absent.sock",
            connect_retries=None,
            op_deadline=1.0,
            clock=fake.clock,
            sleep=fake.sleep,
        )
        with pytest.raises(DeadlineExceeded) as excinfo:
            client.request({"op": "status"})
        envelope = excinfo.value.envelope
        assert envelope["kind"] == "error"
        assert envelope["error"] == "deadline-exceeded"
        assert envelope["version"] == protocol.PROTOCOL_VERSION
        assert "deadline" in envelope["message"]

    def test_backoff_sleeps_are_clipped_to_the_budget(self, tmp_path):
        """A 10s backoff step never sleeps past the 1s deadline."""
        fake = FakeTime()
        client = ReproClient(
            tmp_path / "absent.sock",
            connect_retries=None,
            op_deadline=1.0,
            connect_backoff=10.0,
            clock=fake.clock,
            sleep=fake.sleep,
        )
        with pytest.raises(DeadlineExceeded):
            client.connect()
        assert fake.slept == [1.0]

    def test_finite_retries_without_deadline_still_work(self, tmp_path):
        """The pre-deadline behavior is unchanged: a bounded attempt
        count surfaces the plain connect error, not DeadlineExceeded."""
        fake = FakeTime()
        client = ReproClient(
            tmp_path / "absent.sock", connect_retries=2,
            clock=fake.clock, sleep=fake.sleep,
        )
        with pytest.raises(ServiceError, match="3 attempt") as excinfo:
            client.connect()
        assert not isinstance(excinfo.value, DeadlineExceeded)


class TestDropRecovery:
    def test_client_side_drop_is_retried_once(self, tmp_path):
        """An injected connection reset after the request is sent: the
        client reconnects, replays the request once, and the caller
        never sees the drop — only the chaos.recovery event does."""
        server, thread = start_server(tmp_path / "daemon.sock")
        buffer = EventBuffer(capacity=128)
        injector = ChaosInjector(
            ChaosConfig(rate=1.0, faults=("socket-drop",),
                        sites=("client.request",))
        )
        try:
            with installed_event_log(
                EventLog(level="debug", sinks=(buffer,))
            ):
                with installed_chaos(injector):
                    with ReproClient(server.socket_path) as client:
                        response = client.status()
            assert response["ok"]
        finally:
            stop_server(server, thread)
        [recovery] = [
            e for e in buffer.records
            if e["name"] == "chaos.recovery"
            and e["attrs"]["action"] == "client-reconnected"
        ]
        assert recovery["attrs"]["site"] == "client.request"
        assert injector.summary()["by_fault"] == {"socket-drop": 1}

    def test_server_side_drop_is_retried_once(self, tmp_path):
        """The daemon executes the request but its response never ships
        (crash-between-dispatch-and-write): the client sees EOF and
        replays on a fresh connection."""
        server, thread = start_server(tmp_path / "daemon.sock")
        injector = ChaosInjector(
            ChaosConfig(rate=1.0, faults=("socket-drop",),
                        sites=("server.response",), max_fires=1)
        )
        try:
            with installed_chaos(injector):
                with ReproClient(server.socket_path) as client:
                    response = client.status()
            assert response["ok"]
            # The replayed request got a fresh server-side request id.
            assert response["request_id"] == 2
        finally:
            stop_server(server, thread)
        assert injector.summary()["by_fault"] == {"socket-drop": 1}

    def test_drop_after_deadline_surfaces_deadline_exceeded(self, tmp_path):
        """No budget left when the retry would start: the client gives
        up with DeadlineExceeded instead of replaying.  The clock jumps
        past the deadline while the dropped request is in flight."""
        server, thread = start_server(tmp_path / "daemon.sock")
        now = {"t": 0.0}

        def racing_clock() -> float:
            # 3s pass per observation against a 5s budget: the check
            # before the send still has budget, the check after the
            # drop does not.
            now["t"] += 3.0
            return now["t"]

        injector = ChaosInjector(
            ChaosConfig(rate=1.0, faults=("socket-drop",),
                        sites=("client.request",))
        )
        try:
            client = ReproClient(
                server.socket_path, op_deadline=5.0, clock=racing_clock,
            )
            with installed_chaos(injector):
                with client:
                    with pytest.raises(DeadlineExceeded):
                        client.status()
        finally:
            stop_server(server, thread)
