"""CLI surface of the chaos harness: ``repro chaos``."""

from __future__ import annotations

import json
import shutil

from repro.apps import programs_dir
from repro.cli import main
from repro.service import protocol


def campaign_args(tmp_path, *extra: str) -> list[str]:
    return [
        "chaos",
        "--apps", "wind_sensor", "--trials", "8", "--strata", "4",
        "--iterations", "12", "--seed", "7", "--shard-size", "2",
        "--faults", "duplicate-shard,torn-manifest,slow-io",
        "--slow-io-seconds", "0",
        "--work-dir", str(tmp_path / "work"),
        *extra,
    ]


class TestChaosCampaignCli:
    def test_holding_oracle_exits_zero_with_json_payload(
        self, tmp_path, capsys
    ):
        assert main(campaign_args(tmp_path, "--json")) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "chaos"
        assert payload["kind_detail"] == "campaign"
        assert payload["oracle"]["holds"] is True
        assert payload["faults"]["injected"] > 0
        assert payload["chaos_config"]["rate"] == 1.0

    def test_human_output_states_the_verdict(self, tmp_path, capsys):
        assert main(campaign_args(tmp_path)) == 0
        out = capsys.readouterr().out
        assert "chaos oracle: HOLDS" in out
        assert "faults injected" in out

    def test_report_file_written(self, tmp_path, capsys):
        report_path = tmp_path / "chaos.json"
        assert main(
            campaign_args(tmp_path, "--report", str(report_path))
        ) == 0
        capsys.readouterr()
        payload = protocol.loads(report_path.read_text())
        assert payload["kind"] == "chaos"
        assert payload["oracle"]["holds"] is True

    def test_unknown_fault_is_a_usage_error(self, tmp_path, capsys):
        args = campaign_args(tmp_path)
        args[args.index("duplicate-shard,torn-manifest,slow-io")] = "gremlins"
        assert main(args) == 2
        assert "unknown fault" in capsys.readouterr().err

    def test_unknown_app_is_a_usage_error(self, tmp_path, capsys):
        assert main(
            campaign_args(tmp_path) + ["--apps", "toaster"]
        ) == 2
        assert "toaster" in capsys.readouterr().err


class TestChaosBatchCli:
    def test_batch_oracle_over_corrupted_cache_holds(self, tmp_path, capsys):
        target = tmp_path / "programs"
        target.mkdir()
        shutil.copy(programs_dir() / "wind_sensor.sj", target)
        assert main([
            "chaos", "--batch", str(target),
            "--faults", "cache-corrupt,slow-io",
            "--slow-io-seconds", "0",
            "--work-dir", str(tmp_path / "work"),
            "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind_detail"] == "batch"
        assert payload["oracle"]["holds"] is True
        assert payload["faults"]["injected"] > 0
        assert payload["clean"]["files"] == payload["chaos"]["files"]
