"""Disk cache under chaos: slow-io latency, planned corruption, and the
quarantine-then-heal recovery loop."""

from __future__ import annotations

import json

from repro.chaos import ChaosConfig, ChaosInjector, installed_chaos
from repro.core.checker import check_program
from repro.obs import EventBuffer, EventLog, installed_event_log
from repro.service.cache import ResultCache


class TestSlowIO:
    def test_slow_io_delays_disk_reads_and_writes(self, tmp_path, wind_source):
        slept: list[float] = []
        injector = ChaosInjector(
            ChaosConfig(
                rate=1.0, faults=("slow-io",), sites=("cache.",),
                slow_io_seconds=0.25,
            ),
            sleep=slept.append,
        )
        report = check_program(wind_source)
        with installed_chaos(injector):
            ResultCache(disk_dir=tmp_path).put(wind_source, report)
            assert ResultCache(disk_dir=tmp_path).get(wind_source) is not None
        # One injected stall on the write path, one on the read path.
        assert slept == [0.25, 0.25]
        assert injector.summary()["by_fault"] == {"slow-io": 2}


class TestCacheCorrupt:
    def test_corrupt_entry_quarantines_then_heals(self, tmp_path, wind_source):
        """A planned cache-corrupt fault truncates the stored entry; the
        next lookup is a miss (never a wrong verdict), the slot is
        quarantined, and the following store heals it — all visible as
        chaos.* events."""
        report = check_program(wind_source)
        buffer = EventBuffer(capacity=64)
        injector = ChaosInjector(
            ChaosConfig(rate=1.0, faults=("cache-corrupt",))
        )
        with installed_event_log(EventLog(level="debug", sinks=(buffer,))):
            with installed_chaos(injector):
                cache = ResultCache(disk_dir=tmp_path)
                cache.put(wind_source, report)
                (entry,) = tmp_path.glob("*.json")
                with entry.open() as handle:
                    try:
                        json.load(handle)
                    except ValueError:
                        truncated = True
                    else:
                        truncated = False
                assert truncated, "the planned fault should tear the entry"
                # A fresh instance (cold memory tier) must treat the torn
                # entry as a miss and quarantine it.
                fresh = ResultCache(disk_dir=tmp_path)
                assert fresh.get(wind_source) is None
                assert not entry.exists()
                # The corrupt fault is exactly-once per key: the re-store
                # lands intact and the slot heals.
                fresh.put(wind_source, report)
                healed = ResultCache(disk_dir=tmp_path).get(wind_source)
                assert healed is not None and healed.self_stabilizing
        names = [e["name"] for e in buffer.records]
        assert "chaos.cache_corrupt" in names
        [recovery] = [
            e for e in buffer.records
            if e["name"] == "chaos.recovery"
            and e["attrs"]["action"] == "cache-entry-quarantined"
        ]
        assert recovery["attrs"]["site"] == "cache.entry"
        assert injector.summary()["by_fault"] == {"cache-corrupt": 1}
