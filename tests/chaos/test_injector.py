"""ChaosInjector: pure seeded plans, exactly-once execution, events."""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.chaos import (
    FAULTS,
    ChaosConfig,
    ChaosError,
    ChaosInjector,
    NullChaosInjector,
    chaos_recovery,
    get_chaos,
    installed_chaos,
    parse_faults,
    set_chaos,
)
from repro.obs import EventBuffer, EventLog, installed_event_log


def injector(**overrides) -> ChaosInjector:
    return ChaosInjector(ChaosConfig(**overrides))


class TestParseFaults:
    def test_all_expands_to_every_class(self):
        assert parse_faults("all") == FAULTS

    def test_subset_round_trips(self):
        assert parse_faults("worker-crash, slow-io") == (
            "worker-crash", "slow-io"
        )

    def test_unknown_fault_fails_loudly(self):
        with pytest.raises(ChaosError, match="unknown fault"):
            parse_faults("worker-crash,disk-melt")

    def test_empty_spec_is_rejected(self):
        with pytest.raises(ChaosError, match="at least one"):
            parse_faults(" , ")


class TestConfig:
    def test_round_trips_through_dict(self):
        config = ChaosConfig(
            seed=3, rate=0.5, faults=("slow-io",), sites=("cache.",),
            state_dir=None, max_fires=7, hang_seconds=1.5,
            slow_io_seconds=0.25,
        )
        assert ChaosConfig.from_dict(config.to_dict()) == config

    def test_rate_out_of_range_is_rejected(self):
        with pytest.raises(ChaosError, match="rate"):
            ChaosConfig(rate=1.5)

    def test_unknown_fault_is_rejected(self):
        with pytest.raises(ChaosError, match="unknown fault"):
            ChaosConfig(faults=("nope",))


class TestPurePlan:
    def test_decision_is_a_pure_function_of_seed_site_key(self):
        a, b = injector(seed=11), injector(seed=11)
        decisions = [
            a.decide("slow-io", "cache.read", str(k)) for k in range(64)
        ]
        assert decisions == [
            b.decide("slow-io", "cache.read", str(k)) for k in range(64)
        ]

    def test_different_seeds_plan_different_faults(self):
        a, b = injector(seed=0, rate=0.5), injector(seed=1, rate=0.5)
        plan = lambda inj: [
            inj.decide("slow-io", "cache.read", str(k)) for k in range(128)
        ]
        assert plan(a) != plan(b)

    def test_rate_zero_plans_nothing(self):
        inj = injector(rate=0.0)
        assert not any(
            inj.decide(fault, "anywhere", str(k))
            for fault in FAULTS for k in range(32)
        )

    def test_rate_one_plans_everything_enabled(self):
        inj = injector(rate=1.0, faults=("slow-io",))
        assert all(
            inj.decide("slow-io", "s", str(k)) for k in range(32)
        )
        assert not inj.decide("worker-crash", "s", "0")

    def test_sites_prefix_allowlist(self):
        inj = injector(rate=1.0, sites=("cache.",))
        assert inj.decide("slow-io", "cache.read", "k")
        assert not inj.decide("slow-io", "manifest.checkpoint", "k")

    def test_roll_is_roughly_uniform(self):
        inj = injector(rate=0.25)
        hits = sum(
            inj.decide("slow-io", "site", str(k)) for k in range(2000)
        )
        assert 350 < hits < 650  # 500 expected


class TestExactlyOnce:
    def test_in_memory_fire_claims_once(self):
        inj = injector(rate=1.0, faults=("slow-io",))
        assert inj.fire("slow-io", "s", "k")
        assert not inj.fire("slow-io", "s", "k")
        assert inj.summary() == {"injected": 1, "by_fault": {"slow-io": 1}}

    def test_ledger_survives_across_instances(self, tmp_path):
        config = dict(
            rate=1.0, faults=("slow-io",), state_dir=str(tmp_path / "ledger")
        )
        first = injector(**config)
        assert first.fire("slow-io", "s", "k")
        # A second injector (a retried worker, a fresh process) sees the
        # marker the first one fsynced before executing the fault.
        second = injector(**config)
        assert not second.fire("slow-io", "s", "k")
        [record] = second.fired()
        assert record["fault"] == "slow-io"
        assert record["site"] == "s"
        assert record["key"] == "k"
        assert record["pid"] == os.getpid()

    def test_max_fires_bounds_the_fault_budget(self):
        inj = injector(rate=1.0, faults=("slow-io",), max_fires=2)
        fired = [inj.fire("slow-io", "s", str(k)) for k in range(5)]
        assert fired == [True, True, False, False, False]

    def test_max_fires_bounds_the_ledger_too(self, tmp_path):
        inj = injector(
            rate=1.0, faults=("slow-io",), max_fires=1,
            state_dir=str(tmp_path),
        )
        assert inj.fire("slow-io", "s", "a")
        assert not inj.fire("slow-io", "s", "b")
        assert len(list(tmp_path.glob("*.json"))) == 1

    def test_torn_ledger_marker_is_skipped_by_fired(self, tmp_path):
        inj = injector(rate=1.0, faults=("slow-io",), state_dir=str(tmp_path))
        assert inj.fire("slow-io", "s", "k")
        (tmp_path / "torn.json").write_text('{"fault": ')
        assert len(inj.fired()) == 1


class TestProbes:
    def test_slow_point_sleeps_the_configured_latency(self):
        slept = []
        inj = ChaosInjector(
            ChaosConfig(rate=1.0, faults=("slow-io",), slow_io_seconds=0.25),
            sleep=slept.append,
        )
        inj.slow_point("cache.read", "k")
        assert slept == [0.25]
        inj.slow_point("cache.read", "k")  # claimed: no second sleep
        assert slept == [0.25]

    def test_hang_point_sleeps_hang_seconds(self):
        slept = []
        inj = ChaosInjector(
            ChaosConfig(rate=1.0, faults=("worker-hang",), hang_seconds=9.0),
            sleep=slept.append,
        )
        inj.hang_point("worker.shard", "s:0000")
        assert slept == [9.0]

    def test_corrupt_bytes_truncates_to_half(self):
        inj = injector(rate=1.0, faults=("cache-corrupt",))
        blob = b"x" * 100
        assert inj.corrupt_bytes("cache.entry", "k", blob) == b"x" * 50
        # Exactly-once: the same entry is not corrupted twice.
        assert inj.corrupt_bytes("cache.entry", "k", blob) is None

    def test_torn_write_variant_is_deterministic(self):
        variants = [
            injector(rate=1.0, faults=("torn-manifest",)).torn_write(
                "manifest.checkpoint", f"m:{k}"
            )
            for k in range(16)
        ]
        assert set(variants) <= {"truncate", "no-rename"}
        assert variants == [
            injector(rate=1.0, faults=("torn-manifest",)).torn_write(
                "manifest.checkpoint", f"m:{k}"
            )
            for k in range(16)
        ]
        assert len(set(variants)) == 2  # both tear modes exercised

    def test_duplicate_and_drop_points(self):
        inj = injector(rate=1.0, faults=("duplicate-shard", "socket-drop"))
        assert inj.duplicate_point("campaign.result", "s:0000")
        assert not inj.duplicate_point("campaign.result", "s:0000")
        assert inj.drop_point("client.request", "check:1")
        assert not inj.drop_point("client.request", "check:1")


class TestObservability:
    def test_fire_emits_chaos_event_and_counters(self):
        buffer = EventBuffer(capacity=16)
        with installed_event_log(EventLog(level="debug", sinks=(buffer,))):
            inj = injector(rate=1.0, faults=("slow-io",))
            inj.fire("slow-io", "cache.read", "k", seconds=0.05)
        [event] = [
            e for e in buffer.records if e["name"] == "chaos.slow_io"
        ]
        assert event["level"] == "warn"
        assert event["attrs"]["site"] == "cache.read"
        assert event["attrs"]["key"] == "k"

    def test_chaos_recovery_emits_event(self):
        buffer = EventBuffer(capacity=16)
        with installed_event_log(EventLog(level="debug", sinks=(buffer,))):
            chaos_recovery("duplicate-ignored", "campaign.result", shard_id="x")
        [event] = buffer.records
        assert event["name"] == "chaos.recovery"
        assert event["attrs"]["action"] == "duplicate-ignored"
        assert event["attrs"]["site"] == "campaign.result"


class TestWorkerPayload:
    def test_none_without_state_dir(self):
        assert injector(rate=1.0).worker_payload() is None

    def test_none_without_worker_faults(self, tmp_path):
        inj = injector(
            rate=1.0, faults=("torn-manifest",), state_dir=str(tmp_path)
        )
        assert inj.worker_payload() is None

    def test_ships_worker_faults_and_slow_io_only(self, tmp_path):
        inj = injector(
            rate=1.0,
            faults=("worker-crash", "torn-manifest", "slow-io"),
            state_dir=str(tmp_path),
        )
        payload = inj.worker_payload()
        worker = ChaosConfig.from_dict(payload)
        assert set(worker.faults) == {"worker-crash", "slow-io"}
        assert worker.seed == inj.config.seed
        assert worker.state_dir == str(tmp_path)
        json.dumps(payload)  # must be picklable/plain


class TestGlobalInstallation:
    def test_default_is_null(self):
        assert isinstance(get_chaos(), NullChaosInjector)

    def test_installed_chaos_restores_previous(self):
        before = get_chaos()
        inj = injector(rate=0.0)
        with installed_chaos(inj):
            assert get_chaos() is inj
        assert get_chaos() is before

    def test_set_chaos_none_restores_the_null_default(self):
        set_chaos(injector(rate=0.0))
        set_chaos(None)
        assert isinstance(get_chaos(), NullChaosInjector)


class TestNullInjector:
    def test_every_probe_is_a_no_op(self):
        null = NullChaosInjector()
        assert not null.enabled
        assert not null.decide("slow-io", "s", "k")
        assert not null.fire("slow-io", "s", "k")
        assert null.crash_point("s", "k") is None
        assert null.hang_point("s", "k") is None
        assert null.slow_point("s", "k") is None
        assert null.corrupt_bytes("s", "k", b"data") is None
        assert null.torn_write("s", "k") is None
        assert not null.duplicate_point("s", "k")
        assert not null.drop_point("s", "k")
        assert null.fired() == []
        assert null.summary() == {"injected": 0, "by_fault": {}}
        assert null.worker_payload() is None

    def test_disabled_probe_overhead_is_negligible(self):
        """Acceptance: chaos probes sit on manifest writes, cache
        lookups, and the daemon request path — with chaos off they pay
        one global read and a no-op call, same bound as the null tracer
        and null event log."""
        null = get_chaos()
        assert isinstance(null, NullChaosInjector)
        start = time.perf_counter()
        for k in range(100_000):
            chaos = get_chaos()
            if chaos.drop_point("client.request", k):
                raise AssertionError("null injector fired")
        elapsed = time.perf_counter() - start
        assert elapsed < 2.0, f"100k no-op probes took {elapsed:.3f}s"
