"""Campaign under chaos: the convergence oracle and the hardened
driver paths (duplicate delivery, torn manifest, worker crash/hang).

Worker-fault tests spawn real process pools and kill/hang real workers,
so they use tiny campaigns; everything else runs in-process with
targeted fault classes.
"""

from __future__ import annotations

import json

import pytest

from repro.chaos import (
    ChaosConfig,
    ChaosInjector,
    NullChaosInjector,
    installed_chaos,
    run_campaign_oracle,
)
from repro.obs import EventBuffer, EventLog, installed_event_log
from repro.runtime.campaign import CampaignConfig, CampaignRunner

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


def tiny_config(**overrides) -> CampaignConfig:
    base = dict(
        apps=("wind_sensor",),
        mode="stratified",
        trials=8,
        strata=4,
        iterations=12,
        seed=7,
        shard_size=2,
    )
    base.update(overrides)
    return CampaignConfig(**base)


def clean_report(config: CampaignConfig) -> dict:
    with installed_chaos(NullChaosInjector()):
        return CampaignRunner(config=config).run()


def apps_blob(report: dict) -> str:
    return json.dumps(report["apps"], sort_keys=True)


class TestDuplicateShard:
    def test_duplicates_are_ignored_not_double_counted(self, tmp_path):
        config = tiny_config()
        baseline = clean_report(config)
        buffer = EventBuffer(capacity=256)
        injector = ChaosInjector(
            ChaosConfig(rate=1.0, faults=("duplicate-shard",))
        )
        with installed_event_log(EventLog(level="debug", sinks=(buffer,))):
            with installed_chaos(injector):
                report = CampaignRunner(
                    config=config, checkpoint_path=tmp_path / "ck.json"
                ).run()
        assert apps_blob(report) == apps_blob(baseline)
        assert report["complete"]
        # Every shard was delivered twice; every second delivery was
        # discarded and recorded as a recovery action.
        duplicates = [
            e for e in buffer.records
            if e["name"] == "chaos.recovery"
            and e["attrs"]["action"] == "duplicate-ignored"
        ]
        assert len(duplicates) == injector.summary()["injected"] > 0


class TestTornManifest:
    def test_torn_checkpoints_self_heal_and_stats_match(self, tmp_path):
        config = tiny_config()
        baseline = clean_report(config)
        injector = ChaosInjector(
            ChaosConfig(rate=0.5, faults=("torn-manifest",))
        )
        with installed_chaos(injector):
            report = CampaignRunner(
                config=config, checkpoint_path=tmp_path / "ck.json"
            ).run()
        assert apps_blob(report) == apps_blob(baseline)
        assert injector.summary()["injected"] > 0

    def test_resume_after_torn_final_checkpoint(self, tmp_path):
        """Tear every checkpoint write, stop mid-campaign, then resume
        without chaos: the torn file is quarantined, the sweep restarts,
        and the final statistics still match the fault-free run."""
        config = tiny_config()
        baseline = clean_report(config)
        checkpoint = tmp_path / "ck.json"
        injector = ChaosInjector(
            ChaosConfig(rate=1.0, faults=("torn-manifest",))
        )
        with installed_chaos(injector):
            CampaignRunner(
                config=config,
                checkpoint_path=checkpoint,
                stop_after_shards=2,
            ).run()
        assert injector.summary()["injected"] > 0
        with installed_chaos(NullChaosInjector()):
            report = CampaignRunner(
                config=config, checkpoint_path=checkpoint
            ).run()
        assert report["complete"]
        assert apps_blob(report) == apps_blob(baseline)
        # Either the interrupted run left valid JSON (no-rename tear:
        # stale target) and resume picked it up, or it left garbage
        # (truncate tear) and resume quarantined it.
        healed = json.loads(checkpoint.read_text())
        assert healed["fingerprint"] == config.fingerprint()


class TestWorkerFaults:
    def test_crashed_and_hung_workers_converge_to_clean_stats(self, tmp_path):
        """The acceptance test for WORKER_FAULTS: SIGKILLs and hangs in
        real pool workers, exactly-once via the cross-process ledger,
        and the chaotic stats still match the fault-free run."""
        config = tiny_config(trials=4, strata=2, shard_size=2)
        baseline = clean_report(config)
        injector = ChaosInjector(ChaosConfig(
            rate=0.5,
            faults=("worker-crash", "worker-hang"),
            state_dir=str(tmp_path / "ledger"),
            hang_seconds=8.0,
            max_fires=2,
        ))
        with installed_chaos(injector):
            report = CampaignRunner(
                config=config,
                checkpoint_path=tmp_path / "ck.json",
                max_workers=2,
                shard_timeout=5.0,
                max_retries=6,
            ).run()
        assert report["complete"]
        assert report["shards"]["infra_failed"] == 0
        assert apps_blob(report) == apps_blob(baseline)
        assert injector.summary()["injected"] > 0


class TestCampaignOracle:
    def test_oracle_holds_in_process(self, tmp_path):
        result = run_campaign_oracle(
            tiny_config(),
            ChaosConfig(
                rate=1.0,
                faults=("duplicate-shard", "torn-manifest", "slow-io"),
                slow_io_seconds=0.0,
            ),
            work_dir=tmp_path,
        )
        assert result["oracle"]["holds"]
        assert result["oracle"]["identical"]
        assert result["oracle"]["infra_failed"] == 0
        assert result["faults"]["injected"] > 0
        assert result["kind_detail"] == "campaign"

    def test_oracle_emits_verdict_event_and_replays_worker_faults(
        self, tmp_path
    ):
        buffer = EventBuffer(capacity=512)
        with installed_event_log(EventLog(level="debug", sinks=(buffer,))):
            result = run_campaign_oracle(
                tiny_config(trials=4, strata=2),
                ChaosConfig(rate=1.0, faults=("duplicate-shard",)),
                work_dir=tmp_path,
            )
        assert result["oracle"]["holds"]
        [verdict] = [
            e for e in buffer.records if e["name"] == "chaos.oracle"
        ]
        assert verdict["level"] == "info"
        assert verdict["attrs"]["holds"] is True
        # Every injected fault is visible as a chaos.* event.
        injected_events = [
            e for e in buffer.records
            if e["name"].startswith("chaos.")
            and e["name"] not in ("chaos.recovery", "chaos.oracle")
            and "fault" in e["attrs"]
        ]
        assert len(injected_events) >= result["faults"]["injected"]

    def test_oracle_reports_a_violation_honestly(self, tmp_path, monkeypatch):
        """A chaos run whose stats diverge must yield holds=False, not
        a masked pass.  Forced by making the chaotic run drop a shard
        record (simulating a dedupe bug)."""
        from repro.runtime import campaign as campaign_mod

        original = campaign_mod.CampaignRunner._settle
        state = {"dropped": False}

        def lossy_settle(self, shard, result, settled, attempts, tracer):
            if self._chaos.enabled and not state["dropped"]:
                state["dropped"] = True
                return  # lose the first chaotic shard silently
            return original(self, shard, result, settled, attempts, tracer)

        monkeypatch.setattr(
            campaign_mod.CampaignRunner, "_settle", lossy_settle
        )
        result = run_campaign_oracle(
            tiny_config(trials=4, strata=2),
            ChaosConfig(rate=0.0),
            work_dir=tmp_path,
        )
        assert not result["oracle"]["holds"]
        assert not result["oracle"]["identical"]
