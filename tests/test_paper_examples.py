"""Integration tests built directly from the paper's worked examples.

* Fig. 2.1 / Section 2.1 — the wind direction sensor: annotations type
  check, and an erroneous value leaves the bin within three iterations;
* Section 2.3.1 — the specific flows the text walks through;
* Fig. 5.1 / 5.15 — the weather index example: inference produces
  verifiable annotations with this-rooted composite locations for the
  f1..f6 temporaries (the Fig. 5.6 cycle-avoidance story);
* Fig. 5.12 — merge points appear when flows combine;
* Section 4.1.7 — delta locations order between fields.
"""

from repro.apps import app_device_factory, load_app
from repro.core.checker import SJavaChecker
from repro.infer import infer_annotations
from repro.runtime import Interpreter, RuntimeOptions, StabilizationExperiment
from repro.runtime.devices import ScriptedDevice
from tests.conftest import assert_stabilizing


class TestWindSensorFig21:
    def test_annotations_check(self, apps):
        report = SJavaChecker(apps["wind_sensor"].info).run()
        assert report.self_stabilizing

    def test_median_discards_outlier(self, apps):
        # Section 2.1.1: the median of the last three readings discards
        # an invalid direction value
        device = ScriptedDevice({"readSensor": [4, 4, 99, 4, 4]})
        interp = Interpreter(apps["wind_sensor"].info, device)
        outputs = interp.run()
        # once the bin holds {4, 99, 4}, the median is still 4
        assert outputs[3] == 4

    def test_erroneous_value_leaves_within_three_iterations(self, apps):
        # Section 2.1.2: "the program would return to the correct
        # execution after, at most, three iterations of the main loop"
        experiment = StabilizationExperiment(
            load_app("wind_sensor").info,
            app_device_factory("wind_sensor", 40),
            options=RuntimeOptions(ignore_errors=True),
        )
        trials = experiment.run_trials(25, seed=0)
        for trial in trials:
            if trial.corrupted_output and not trial.diverged:
                assert trial.recovery_iterations <= 3

    def test_flow_documented_in_section_231(self):
        # "the assignment to this.dir in line 30 is valid because the
        # location type ⟨CAOBJ,TMP⟩ of the source is higher than the
        # location ⟨CAOBJ,DIR⟩ of the destination" — and the reverse is
        # not valid:
        reversed_flow = load_app("wind_sensor").source.replace(
            "this.dir = majorDir;", "majorDir = this.dir;"
        )
        from repro.core.checker import check_program

        report = check_program(reversed_flow)
        assert not report.self_stabilizing


class TestWeatherIndexCh5:
    def test_manual_annotations_check(self, apps):
        report = SJavaChecker(apps["weather_index"].info).run()
        assert report.self_stabilizing

    def test_inference_reproduces_fig_5_15_structure(self):
        app = load_app("weather_index", annotated=False)
        result = infer_annotations(app.info, mode="sinfer")
        assert result.verified
        source = result.annotated_source
        # Fig. 5.15: the method lattice orders this below inTemp and the
        # temporaries get composite locations rooted at this
        assert '@LATTICE("inTemp<PC,this<inTemp")' in source
        for temp in ("f1", "f2", "f3", "f4", "f5", "f6"):
            assert f'@LOC("this,' in source  # composite, this-rooted
        # interface fields keep their own locations (Section 5.1.2)
        for field_name in ("prevTemp", "avgTemp", "curHum", "index"):
            assert f'@LOC("{field_name}")' in source

    def test_merge_point_between_avgtemp_and_curhum(self):
        # Fig. 5.9 / Fig. 5.12: combining avgTemp and curHum requires a
        # location strictly below both (the paper's Loc20 merge node)
        app = load_app("weather_index", annotated=False)
        result = infer_annotations(app.info, mode="sinfer", verify=False)
        weather = result.lattices["class Weather"]
        meet = weather.glb("avgTemp", "curHum")
        assert meet not in ("avgTemp", "curHum", "index")
        assert weather.lt("index", meet)

    def test_smoothing_state_recovers_in_one_iteration(self):
        # prevTemp is the only cross-iteration state: depth 1
        experiment = StabilizationExperiment(
            load_app("weather_index").info,
            app_device_factory("weather_index", 30),
            options=RuntimeOptions(ignore_errors=True),
        )
        trials = experiment.run_trials(20, seed=5)
        recovered = [
            t for t in trials if t.corrupted_output and not t.diverged
        ]
        assert recovered
        assert all(t.recovery_iterations <= 2 for t in recovered)


class TestDeltaLocationsSection417:
    def test_delta_replaces_explicit_middle_location(self):
        # Section 4.1.7: ⟨WDOBJ,DIR1⟩ can be replaced by
        # delta(⟨WDOBJ,DIR0⟩)
        assert_stabilizing('''
        @LATTICE("DIR2<DIR1,DIR1<DIR0")
        class WindRec {
          @LOC("DIR0") public int dir0;
          @LOC("DIR1") public int dir1;
          @LOC("DIR2") public int dir2;
        }
        @LATTICE("BINL")
        class Main {
          @LOC("BINL") WindRec bin = new WindRec();
          @LATTICE("B<X,X<IN") @THISLOC("X")
          void run() {
            SSJAVA:
            while (true) {
              @LOC("IN") int v = Device.readSensor();
              bin.dir0 = v;
              @DELTA("X,BINL,DIR0") int mid = bin.dir0;
              bin.dir1 = mid;
              bin.dir2 = bin.dir1;
              SJ.broadcast(bin.dir2);
            }
          }
        }
        ''')


class TestUsageScenariosSection12:
    """The three usage scenarios of Section 1.2, dynamically."""

    def test_multimedia_streaming_failures_are_transient(self):
        # "Self-stabilizing decoders might fail to decode short periods
        # of a stream, but these failures will only be transient and the
        # remainder of the stream will be correctly decoded."
        app = load_app("mp3_decoder")
        experiment = StabilizationExperiment(
            app.info,
            app_device_factory("mp3_decoder", 20),
            options=RuntimeOptions(ignore_errors=True),
        )
        trial = None
        for seed in range(30):
            candidate = experiment.trial(seed)
            if candidate.corrupted_output and not candidate.diverged:
                trial = candidate
                break
        assert trial is not None
        assert trial.recovery_iterations <= 3

    def test_embedded_controller_returns_to_correct_operation(self):
        app = load_app("sumo_robot")
        experiment = StabilizationExperiment(
            app.info,
            app_device_factory("sumo_robot", 30),
            options=RuntimeOptions(ignore_errors=True),
        )
        trials = experiment.run_trials(15, seed=9)
        assert all(
            not t.diverged or t.injection_iteration >= 29 for t in trials
        )
