"""Topologies: shapes, neighbor tables, BFS distances, validation."""

from __future__ import annotations

import pytest

from repro.dist import TOPOLOGY_KINDS, TopologyError, make_topology


class TestRing:
    def test_shape(self):
        topo = make_topology("ring:5")
        assert topo.kind == "ring"
        assert topo.nodes == 5
        assert topo.diameter == 2
        for node in range(5):
            assert sorted(topo.neighbors[node]) == sorted(
                [(node - 1) % 5, (node + 1) % 5]
            )

    def test_left_is_the_predecessor(self):
        topo = make_topology("ring:5")
        assert topo.left(0) == 4
        assert topo.left(3) == 2

    def test_left_rejected_off_ring(self):
        with pytest.raises(TopologyError):
            make_topology("line:4").left(1)

    def test_minimum_size(self):
        with pytest.raises(TopologyError):
            make_topology("ring:2")


class TestLine:
    def test_shape(self):
        topo = make_topology("line:7")
        assert topo.nodes == 7
        assert topo.diameter == 6
        assert topo.neighbors[0] == (1,)
        assert topo.neighbors[6] == (5,)
        assert sorted(topo.neighbors[3]) == [2, 4]


class TestGrid:
    def test_shape(self):
        topo = make_topology("grid:3x3")
        assert topo.nodes == 9
        assert topo.diameter == 4
        # row-major: corners have degree 2, the center degree 4
        assert len(topo.neighbors[0]) == 2
        assert len(topo.neighbors[4]) == 4
        assert sorted(topo.neighbors[4]) == [1, 3, 5, 7]

    def test_max_degree(self):
        assert make_topology("grid:3x3").max_degree == 4
        assert make_topology("ring:5").max_degree == 2


class TestDistances:
    def test_bfs_symmetry_and_triangle(self):
        topo = make_topology("grid:3x3")
        for a in range(topo.nodes):
            for b in range(topo.nodes):
                assert topo.distance(a, b) == topo.distance(b, a)
                assert topo.distance(a, b) <= topo.diameter

    def test_ring_distance(self):
        topo = make_topology("ring:5")
        assert topo.distance(0, 2) == 2
        assert topo.distance(0, 3) == 2  # the short way around


class TestParsing:
    def test_kinds_exported(self):
        assert set(TOPOLOGY_KINDS) == {"ring", "line", "grid"}

    @pytest.mark.parametrize("spec", [
        "ring", "ring:", "ring:abc", "torus:5", "grid:3", "grid:0x3",
        "line:1", "",
    ])
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(TopologyError):
            make_topology(spec)

    def test_topologies_are_cached(self):
        assert make_topology("ring:5") is make_topology("ring:5")
