"""Acceptance: every distributed app stabilizes.

Two layers: *state-level* sweeps drive the fabric straight from
corrupted committed states (exhaustive where the state space allows —
all 2^5 Herman configurations, every single-node corruption of the
converged Dijkstra/gradient/channel states), and *campaign-level*
sweeps run the ordinary fault-injection driver over composite sites and
assert no diverged or timeout verdicts."""

from __future__ import annotations

import itertools
import random

import pytest

from repro.apps import DIST_APP_NAMES
from repro.dist import dist_app_experiment
from repro.runtime.campaign import CampaignConfig, CampaignRunner


def _legit(experiment, states, reference_states) -> bool:
    spec = experiment.spec
    return spec.legitimate(
        list(states),
        list(reference_states),
        experiment.topology,
        spec.params(experiment.topology),
    )


class TestHermanExhaustive:
    @pytest.mark.parametrize("app", ["herman_bit", "herman_pass"])
    def test_every_initial_configuration_converges_to_one_token(self, app):
        """Truly exhaustive at N=5: all 2^5 bit vectors.  Legitimacy
        (exactly one token on the odd ring) must be reached and must be
        absorbing."""
        experiment = dist_app_experiment(app)
        window = experiment.horizon()
        for bits in itertools.product((0, 1), repeat=experiment.nodes):
            initial = [(b,) for b in bits]
            sim = experiment.simulate(window, initial=initial)
            legit = [_legit(experiment, s, s) for s in sim.trajectory]
            assert legit[-1], f"{app} failed to converge from {bits}"
            first = legit.index(True)
            assert all(legit[first:]), (
                f"{app}: legitimacy not absorbing from {bits}"
            )


class TestDijkstraRing:
    def test_every_single_node_corruption_regains_single_privilege(self):
        experiment = dist_app_experiment("dijkstra_ring")
        k = experiment.spec.params(experiment.topology)["k"]
        base = experiment.reference().trajectory[-1]
        assert _legit(experiment, base, base)
        for node in range(experiment.nodes):
            for value in range(k):
                if (value,) == base[node]:
                    continue
                initial = list(base)
                initial[node] = (value,)
                sim = experiment.simulate(
                    experiment.recovery_window,
                    initial=initial,
                    start_round=experiment.rounds,
                )
                legit = [_legit(experiment, s, s) for s in sim.trajectory]
                assert legit[-1], (
                    f"node {node} corrupted to {value} never re-stabilized"
                )
                first = legit.index(True)
                assert all(legit[first:])

    def test_arbitrary_states_regain_single_privilege(self):
        experiment = dist_app_experiment("dijkstra_ring")
        rng = random.Random(0)
        for _ in range(20):
            initial = [
                (rng.randrange(0, 9999),) for _ in range(experiment.nodes)
            ]
            sim = experiment.simulate(
                experiment.recovery_window, initial=initial
            )
            assert _legit(experiment, sim.trajectory[-1], sim.trajectory[-1])


class TestGradientBound:
    def test_single_fault_heals_within_diameter_plus_one_rounds(self):
        """The documented convergence bound: a converged hop-count field
        with one corrupted node returns to the exact fixed point within
        diameter + 1 synchronous rounds, for every node and a corrupt
        alphabet spanning false-low, false-high, and clamp extremes."""
        experiment = dist_app_experiment("gradient_field")
        topo = experiment.topology
        fixed = experiment.reference().trajectory[-1]
        bound = topo.diameter + 1
        for node in range(topo.nodes):
            for value in (0, 1, 3, 9998):
                if (value,) == fixed[node]:
                    continue
                initial = list(fixed)
                initial[node] = (value,)
                sim = experiment.simulate(
                    bound + 3,
                    initial=initial,
                    start_round=experiment.rounds,
                )
                healed = [
                    i for i, states in enumerate(sim.trajectory)
                    if tuple(states) == tuple(fixed)
                ]
                assert healed, f"node {node} <- {value} never healed"
                rounds_to_heal = healed[0] + 1
                assert rounds_to_heal <= bound, (
                    f"node {node} <- {value}: {rounds_to_heal} rounds "
                    f"> diameter+1 = {bound}"
                )
                assert all(
                    tuple(s) == tuple(fixed)
                    for s in sim.trajectory[healed[0]:]
                ), "healing must be permanent"


class TestChannelCompositionality:
    def test_every_single_node_corruption_recovers(self):
        """The composed three-gradient channel re-stabilizes from a
        corruption of any node's full composite state."""
        experiment = dist_app_experiment("gradient_channel")
        fixed = experiment.reference().trajectory[-1]
        for node in range(experiment.nodes):
            for value in ((0, 0, 0), (9998, 9998, 9998), (1, 2, 0), (7, 0, 5)):
                if value == fixed[node]:
                    continue
                initial = list(fixed)
                initial[node] = value
                sim = experiment.simulate(
                    experiment.recovery_window,
                    initial=initial,
                    start_round=experiment.rounds,
                )
                assert tuple(sim.trajectory[-1]) == tuple(fixed), (
                    f"channel stuck after corrupting node {node} to {value}"
                )


class TestCampaignSweeps:
    @pytest.mark.parametrize("app", DIST_APP_NAMES)
    def test_thinned_exhaustive_sweep_has_no_diverged_verdicts(
        self, app, tmp_path
    ):
        """The campaign driver itself, over composite (node x site)
        corruption sites evenly thinned across the space: every node is
        hit, nothing diverges, nothing times out."""
        config = CampaignConfig(
            apps=(app,),
            mode="exhaustive",
            max_sites=20,
            seed=3,
            shard_size=10,
            step_budget_factor=64,
        )
        runner = CampaignRunner(
            config=config, checkpoint_path=tmp_path / "ck.json"
        )
        report = runner.run()
        assert report["complete"] is True
        (entry,) = report["apps"]
        assert entry["diverged"] == 0
        assert entry["timeout"] == 0
        assert entry["injected"] > 0
        import json

        manifest = json.loads((tmp_path / "ck.json").read_text())
        nodes_hit = {
            trial.get("node")
            for shard in manifest["shards"].values()
            for trial in shard.get("trials", [])
        }
        experiment = dist_app_experiment(app)
        assert nodes_hit == set(range(experiment.nodes))
