"""The fabric itself: schedulers, coins, determinism, composite sites."""

from __future__ import annotations

import pytest

from repro.dist import (
    SCHEDULER_NAMES,
    coin_bit,
    dist_app_experiment,
    make_scheduler,
)
from repro.dist.scheduler import SchedulerError


class TestSchedulers:
    def test_unknown_rejected(self):
        with pytest.raises(SchedulerError):
            make_scheduler("chaotic")

    def test_only_synchronous_double_buffers(self):
        for name in SCHEDULER_NAMES:
            assert make_scheduler(name).synchronous == (name == "synchronous")

    def test_sweeps_are_in_node_order(self):
        for name in ("synchronous", "round-robin"):
            assert make_scheduler(name).order(3, 5) == [0, 1, 2, 3, 4]

    def test_random_is_a_permutation_depending_only_on_round_and_seed(self):
        sched = make_scheduler("random", seed=9)
        again = make_scheduler("random", seed=9)
        orders = [sched.order(r, 6) for r in range(20)]
        assert [again.order(r, 6) for r in range(20)] == orders
        for order in orders:
            assert sorted(order) == list(range(6))
        assert len({tuple(o) for o in orders}) > 1  # actually shuffles
        assert make_scheduler("random", seed=10).order(0, 6) != orders[0] or \
            make_scheduler("random", seed=10).order(1, 6) != orders[1]

    def test_biased_daemon_starves_high_ids(self):
        sched = make_scheduler("biased", seed=0)
        draws = [n for r in range(200) for n in sched.order(r, 5)]
        assert all(0 <= n < 5 for n in draws)
        assert draws.count(0) > 3 * draws.count(4)


class TestCoin:
    def test_deterministic(self):
        assert coin_bit(0, 7, 3) == coin_bit(0, 7, 3)

    def test_bits_are_balanced_and_uncorrelated_across_rounds(self):
        """The regression that motivates SHA-256 here: a CRC32 LSB over
        near-identical keys is linearly correlated, which makes Herman
        tokens march in lockstep and never annihilate."""
        bits = [coin_bit(0, r, n) for r in range(100) for n in range(5)]
        ones = sum(bits)
        assert 180 < ones < 320
        # per-round coin vectors must not collapse to a couple of
        # patterns (the CRC32 failure mode produced exactly two)
        patterns = {
            tuple(coin_bit(0, r, n) for n in range(5)) for r in range(100)
        }
        assert len(patterns) > 10


class TestSimulationDeterminism:
    def test_same_experiment_same_trajectory(self):
        a = dist_app_experiment("gradient_field")
        b = dist_app_experiment("gradient_field")
        ra, rb = a.reference(), b.reference()
        assert ra.trajectory == rb.trajectory
        assert ra.steps == rb.steps
        assert [ra.node_digest(i) for i in range(a.nodes)] == \
            [rb.node_digest(i) for i in range(b.nodes)]

    def test_trajectory_has_one_committed_state_per_round(self):
        experiment = dist_app_experiment("herman_bit")
        reference = experiment.reference()
        assert len(reference.trajectory) == experiment.horizon()
        assert all(
            len(states) == experiment.nodes
            for states in reference.trajectory
        )

    def test_node_trace_matches_trajectory_column(self):
        experiment = dist_app_experiment("dijkstra_ring")
        reference = experiment.reference()
        trace = reference.node_trace(2)
        assert trace == [states[2] for states in reference.trajectory]


class TestCompositeSites:
    def test_total_is_the_sum_of_per_node_counts(self):
        experiment = dist_app_experiment("herman_bit")
        counts = experiment.node_site_counts()
        assert len(counts) == experiment.nodes
        assert all(c > 0 for c in counts)
        assert experiment.total_steps() == sum(counts)

    def test_site_location_round_trips(self):
        experiment = dist_app_experiment("gradient_channel")
        total = experiment.total_steps()
        for site in (0, 1, total // 3, total // 2, total - 1):
            node, local = experiment.site_location(site)
            assert 0 <= node < experiment.nodes
            assert experiment.site_of(node, local) == site

    def test_out_of_range_site_reports_not_injected(self):
        experiment = dist_app_experiment("herman_bit")
        trial = experiment.trial_at(experiment.total_steps() + 10, seed=0)
        assert trial.injection_iteration is None
        assert trial.corrupted_output is False
        assert trial.diverged is False

    def test_trials_record_the_target_node(self):
        experiment = dist_app_experiment("herman_bit")
        site = experiment.total_steps() - 1
        node, _ = experiment.site_location(site)
        trial = experiment.trial_at(site, seed=3)
        assert trial.node == node
        assert trial.node_divergence is not None
        assert len(trial.node_divergence[0]) == experiment.nodes
        assert trial.node_digests is not None
        assert len(trial.node_digests) == experiment.nodes
