"""Distributed campaigns through the ordinary driver: composite-site
sweeps, checkpoint/resume, and the additive manifest schema (old
single-node manifests keep loading and resuming)."""

from __future__ import annotations

import json

from repro.dist import dist_app_experiment
from repro.obs.report import render_report
from repro.runtime.campaign import (
    CampaignConfig,
    CampaignRunner,
    trial_record,
    trial_telemetry,
)


def dist_config(**overrides) -> CampaignConfig:
    base = dict(
        apps=("herman_bit",),
        mode="stratified",
        trials=6,
        strata=3,
        seed=5,
        shard_size=2,
        step_budget_factor=64,
    )
    base.update(overrides)
    return CampaignConfig(**base)


class TestDistCampaignRun:
    def test_run_completes_and_records_nodes(self, tmp_path):
        checkpoint = tmp_path / "ck.json"
        report = CampaignRunner(
            config=dist_config(), checkpoint_path=checkpoint
        ).run()
        assert report["complete"] is True
        (entry,) = report["apps"]
        assert entry["trials"] == 6
        assert entry["diverged"] == 0
        manifest = json.loads(checkpoint.read_text())
        records = [
            trial for shard in manifest["shards"].values()
            for trial in shard.get("trials", [])
        ]
        assert records
        for record in records:
            assert "node" in record
            telemetry = trial_telemetry(record)
            if record["verdict"] in ("masked", "recovered"):
                assert telemetry["node_divergence"] is not None
                assert telemetry["node_digests"] is not None
                assert len(telemetry["node_digests"]) == 5

    def test_interrupted_dist_campaign_resumes_identically(self, tmp_path):
        config = dist_config()
        baseline = CampaignRunner(
            config=config, checkpoint_path=tmp_path / "base.json"
        ).run()
        checkpoint = tmp_path / "ck.json"
        first = CampaignRunner(
            config=config, checkpoint_path=checkpoint, stop_after_shards=1
        )
        assert first.run()["complete"] is False
        second = CampaignRunner(config=config, checkpoint_path=checkpoint)
        resumed = second.run()
        assert second.executed_shards == 2
        assert resumed["complete"] is True
        assert resumed["apps"] == baseline["apps"]

    def test_mixed_single_node_and_dist_campaign(self, tmp_path):
        config = dist_config(
            apps=("wind_sensor", "herman_bit"), trials=4, strata=2
        )
        report = CampaignRunner(
            config=config, checkpoint_path=tmp_path / "ck.json"
        ).run()
        assert report["complete"] is True
        assert [entry["app"] for entry in report["apps"]] == [
            "wind_sensor", "herman_bit",
        ]

    def test_dist_manifest_renders_with_per_node_panel(self, tmp_path):
        checkpoint = tmp_path / "ck.json"
        CampaignRunner(
            config=dist_config(mode="exhaustive", max_sites=8, trials=0),
            checkpoint_path=checkpoint,
        ).run()
        manifest = json.loads(checkpoint.read_text())
        page = render_report(campaign=manifest)
        assert "Per-node divergence" in page


class TestAdditiveSchema:
    def test_single_node_records_lack_dist_keys(self):
        """The dist keys are strictly additive: a single-node trial
        record is exactly the old shape (no ``node``, no per-node
        telemetry), so manifests written by this build stay readable by
        old readers and vice versa."""
        from repro.apps import resolve_experiment

        experiment = resolve_experiment("wind_sensor", 12)
        record = trial_record(
            "wind_sensor", experiment.trial_at(3, seed=0)
        )
        assert "node" not in record
        telemetry = trial_telemetry(record)
        assert telemetry["node_divergence"] is None
        assert telemetry["node_digests"] is None

    def test_dist_records_are_a_superset(self):
        experiment = dist_app_experiment("herman_bit")
        site = experiment.total_steps() // 2
        record = trial_record("herman_bit", experiment.trial_at(site, seed=1))
        for key in (
            "app", "site", "verdict", "injection_iteration",
            "recovery_samples", "recovery_iterations", "error_log_size",
        ):
            assert key in record
        assert isinstance(record["node"], int)

    def test_old_single_node_manifest_still_resumes(self, tmp_path):
        """A pre-dist manifest (single-node apps, records without the
        ``node`` key) written by the same config still loads and resumes
        to completion — the config fingerprint gained no new fields."""
        config = CampaignConfig(
            apps=("wind_sensor",), mode="stratified", trials=4, strata=2,
            seed=7, shard_size=2,
        )
        checkpoint = tmp_path / "old.json"
        partial = CampaignRunner(
            config=config, checkpoint_path=checkpoint, stop_after_shards=1
        )
        partial.run()
        manifest = json.loads(checkpoint.read_text())
        for shard in manifest["shards"].values():
            for trial in shard.get("trials", []):
                trial.pop("node", None)
                telemetry = trial.get("telemetry")
                if telemetry:
                    telemetry.pop("node_divergence", None)
                    telemetry.pop("node_digests", None)
        checkpoint.write_text(json.dumps(manifest))
        resumed = CampaignRunner(config=config, checkpoint_path=checkpoint)
        report = resumed.run()
        assert report["complete"] is True
        assert resumed.executed_shards == 1
