"""Diagnostic infrastructure tests."""

from repro.core.errors import (
    Check,
    Diagnostic,
    DiagnosticSink,
    Severity,
    first_error,
)
from repro.lang import ast


class TestDiagnostic:
    def test_str_with_position_and_context(self):
        diag = Diagnostic(
            Severity.ERROR, Check.FLOW_DOWN, "bad flow", 3, 7, "C.m"
        )
        text = str(diag)
        assert "error(flow-down)" in text
        assert "3:7" in text
        assert "[C.m]" in text
        assert "bad flow" in text

    def test_str_without_position(self):
        diag = Diagnostic(Severity.WARNING, Check.SHARED, "msg")
        assert "-" in str(diag)
        assert "warning(shared)" in str(diag)


class TestSink:
    def test_report_with_node_position(self):
        sink = DiagnosticSink()
        node = ast.IntLit(value=1, line=5, col=2)
        sink.report(Check.EVICTION, "stale", node=node, context="X.m")
        diag = sink.diagnostics[0]
        assert (diag.line, diag.col) == (5, 2)
        assert diag.context == "X.m"

    def test_severity_filters(self):
        sink = DiagnosticSink()
        sink.report(Check.LATTICE, "err")
        sink.report(Check.LATTICE, "warn", severity=Severity.WARNING)
        sink.report(Check.LATTICE, "info", severity=Severity.INFO)
        assert len(sink.errors()) == 1
        assert len(sink.warnings()) == 1
        assert len(sink.diagnostics) == 3

    def test_ok_property(self):
        sink = DiagnosticSink()
        assert sink.ok
        sink.report(Check.LINEAR, "w", severity=Severity.WARNING)
        assert sink.ok
        sink.report(Check.LINEAR, "e")
        assert not sink.ok

    def test_extend_merges(self):
        first, second = DiagnosticSink(), DiagnosticSink()
        first.report(Check.LATTICE, "a")
        second.report(Check.SHARED, "b")
        first.extend(second)
        assert len(first.diagnostics) == 2

    def test_first_error_helper(self):
        sink = DiagnosticSink()
        assert first_error(sink) is None
        sink.report(Check.TERMINATION, "warn", severity=Severity.WARNING)
        sink.report(Check.TERMINATION, "boom")
        found = first_error(sink)
        assert found is not None and found.message == "boom"
