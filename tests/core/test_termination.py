"""Loop termination analysis tests (Section 4.3)."""

from tests.conftest import assert_rejected, assert_stabilizing, loop_program


class TestInductionPatterns:
    def test_canonical_for_loop(self):
        assert_stabilizing(loop_program(
            '@LOC("ACC") int acc = 0;'
            'for (@LOC("I") int i = 0; i < 10; i++) { acc = acc + i; }'
            '@LOC("B") int out = acc; SJ.broadcast(out);',
            lattice="ACC<I,I<X2,X2<IN,B<ACC,I*,ACC*",
        ))

    def test_while_with_increment(self):
        assert_stabilizing(loop_program(
            '@LOC("I") int i = 0;'
            'while (i < 5) { i++; }'
            '@LOC("B") int out = 1; SJ.broadcast(out);',
            lattice="I<X2,X2<IN,I*",
        ))

    def test_decrementing_loop(self):
        assert_stabilizing(loop_program(
            '@LOC("I") int i = 8;'
            'while (i > 0) { i--; }'
            'SJ.broadcast(1);',
            lattice="I<X2,X2<IN,I*",
        ))

    def test_explicit_step_assignment(self):
        assert_stabilizing(loop_program(
            '@LOC("I") int i = 0;'
            'while (i <= 20) { i = i + 4; }'
            'SJ.broadcast(1);',
            lattice="I<X2,X2<IN,I*",
        ))

    def test_flipped_comparison(self):
        assert_stabilizing(loop_program(
            '@LOC("I") int i = 0;'
            'while (10 > i) { i++; }'
            'SJ.broadcast(1);',
            lattice="I<X2,X2<IN,I*",
        ))

    def test_guard_in_conjunction(self):
        assert_stabilizing(loop_program(
            '@LOC("IN") int v = Device.readSensor();'
            '@LOC("I") int i = 0;'
            'while (i < 10 && v > 0) { i++; }'
            'SJ.broadcast(1);',
            lattice="I<X2,X2<IN,I*",
        ))


class TestRejectedLoops:
    def test_no_induction_variable(self):
        assert_rejected(loop_program(
            '@LOC("IN") int v = Device.readSensor();'
            'while (v > 0) { SJ.broadcast(v); }'
        ), "termination")

    def test_wrong_direction(self):
        assert_rejected(loop_program(
            '@LOC("I") int i = 0;'
            'while (i < 10) { i--; }'
            'SJ.broadcast(1);',
            lattice="I<X2,X2<IN,I*",
        ), "termination")

    def test_conditional_step_rejected(self):
        assert_rejected(loop_program(
            '@LOC("IN") int v = Device.readSensor();'
            '@LOC("I") int i = 0;'
            'while (i < 10) { if (v > 0) { i++; } }'
            'SJ.broadcast(1);',
            lattice="I<X2,X2<IN,I*",
        ), "termination")

    def test_non_invariant_bound_rejected(self):
        assert_rejected(loop_program(
            '@LOC("I") int i = 0;'
            '@LOC("N") int n = 10;'
            'while (i < n) { i++; n = n + 1; }'
            'SJ.broadcast(1);',
            lattice="I<X2,X2<IN,N<I,I*,N*",
        ), "termination")

    def test_irregular_update_disqualifies(self):
        assert_rejected(loop_program(
            '@LOC("IN") int v = Device.readSensor();'
            '@LOC("I") int i = 0;'
            'while (i < 10) { i++; i = v; }'
            'SJ.broadcast(1);',
            lattice="I<X2,X2<IN,I*",
        ), "termination")

    def test_recursion_rejected(self):
        source = '''
        class Main {
          @LATTICE("B<X,X<IN") @THISLOC("X")
          void run() {
            SSJAVA:
            while (true) {
              @LOC("IN") int v = Device.readSensor();
              @LOC("B") int r = fact(v);
              SJ.broadcast(r);
            }
          }
          @LATTICE("FR<FP,FTHIS") @THISLOC("FTHIS") @RETURNLOC("FR")
          int fact(@LOC("FP") int n) {
            @LOC("FR") int r = 1;
            if (n > 1) { r = fact(n - 1); }
            return r;
          }
        }
        '''
        assert_rejected(source, "termination")


class TestEscapeHatches:
    def test_maxloop_accepted(self):
        assert_stabilizing(loop_program(
            '@LOC("IN") int v = Device.readSensor();'
            '@LOC("I") int i = 0;'
            '@MAXLOOP(100) while (i < v) { if (v > 1) { i++; } }'
            'SJ.broadcast(1);',
            lattice="I<X2,X2<IN,I*",
        ))

    def test_maxloop_needs_positive_bound(self):
        assert_rejected(loop_program(
            '@MAXLOOP(0) while (true) { break; }'
            'SJ.broadcast(1);'
        ), "termination")

    def test_terminate_label_trusted(self):
        assert_stabilizing(loop_program(
            '@LOC("IN") int v = Device.readSensor();'
            '@LOC("I") int i = 0;'
            'TERMINATE_scan: while (i < v) { i = i * 2 + 1; }'
            'SJ.broadcast(1);',
            lattice="I<X2,X2<IN,I*",
        ))

    def test_array_length_bound_accepted(self):
        source = loop_program(
            '@LOC("IN") float v = Device.readTemp();'
            'for (@LOC("I") int i = 0; i < data.length; i++) { data[i] = v; }'
            'SJ.broadcast(1.0);',
            lattice="ARRV<X2? ",
        )
        source = '''
        @LATTICE("ARRF,ARRF*")
        class Main {
          @LOC("ARRF") float[] data = new float[4];
          @LATTICE("B<X,X<I,I<IN,I*") @THISLOC("X")
          void run() {
            SSJAVA:
            while (true) {
              @LOC("IN") float v = Device.readTemp();
              for (@LOC("I") int i = 0; i < data.length; i++) { data[i] = v; }
              SJ.broadcast(data[0]);
            }
          }
        }
        '''
        assert_stabilizing(source)
