"""Object-lifetime bound tests (the Chapter 8 memory-management
extension)."""

from repro.core.lifetime import lifetime_bounds
from tests.conftest import analyze


SOURCE = '''
@LATTICE("LOW<HIGH")
class Rec {
  @LOC("HIGH") int hi;
  @LOC("LOW") int lo;
}
@LATTICE("DEEP<SHALLOW")
class Main {
  @LOC("SHALLOW") Rec shallow;
  @LOC("DEEP") Rec deep;
  @LATTICE("TMP<X,X<IN") @THISLOC("X")
  void run() {
    SSJAVA:
    while (true) {
      @LOC("IN") int v = Device.readSensor();
      shallow = new Rec();
      deep = new Rec();
      shallow.hi = v;
      deep.lo = shallow.hi;
      @LOC("TMP") Rec scratch = new Rec();
      scratch.hi = v;
      SJ.broadcast(deep.lo);
    }
  }
}
'''


class TestLifetimeBounds:
    def test_every_allocation_bounded(self):
        bounds = lifetime_bounds(analyze(SOURCE))
        assert len(bounds) == 3
        assert all(b.iterations < 10**6 for b in bounds)

    def test_deeper_location_means_longer_bound(self):
        bounds = {b.description: b for b in lifetime_bounds(analyze(SOURCE))}
        shallow = next(
            b for b in bounds.values() if "'shallow'" in b.description
        )
        deep = next(b for b in bounds.values() if "'deep'" in b.description)
        # SHALLOW has DEEP below it: strictly more turnover levels
        assert shallow.iterations > deep.iterations

    def test_local_only_allocation_dies_with_iteration(self):
        bounds = lifetime_bounds(analyze(SOURCE))
        scratch = next(b for b in bounds if "'scratch'" in b.description)
        # stored at a method-level location: bound is the chain below TMP
        assert scratch.iterations <= 3

    def test_no_event_loop_gives_no_bounds(self):
        assert lifetime_bounds(analyze("class T { void m() { } }")) == []

    def test_allocation_outside_loop_scope_ignored(self):
        source = '''
        class Helper { }
        class Main {
          void run() {
            SSJAVA: while (true) { SJ.broadcast(1); }
          }
          void unused() { Helper h = new Helper(); }
        }
        '''
        assert lifetime_bounds(analyze(source)) == []

    def test_bounds_cover_benchmark_apps(self):
        from repro.apps import load_app

        bounds = lifetime_bounds(load_app("wind_sensor").info)
        # the wind sensor allocates nothing inside the loop
        assert all(b.iterations >= 1 for b in bounds)
