"""Annotation grammar tests (Fig. 3.3)."""

import pytest

from repro.core import annotations as anns
from repro.lang import parse_program


class TestLatticeDecl:
    def test_single_ordering(self):
        decl = anns.parse_lattice_decl("A<B")
        assert decl.orderings == (anns.OrderEntry("A", "B"),)

    def test_multiple_orderings(self):
        decl = anns.parse_lattice_decl("A<B, B<C")
        assert len(decl.orderings) == 2

    def test_shared_entries(self):
        decl = anns.parse_lattice_decl("A<B,I*,J*")
        assert decl.shared == ("I", "J")

    def test_standalone_entries(self):
        decl = anns.parse_lattice_decl("A<B,C")
        assert decl.standalone == ("C",)

    def test_standalone_not_duplicated_when_shared(self):
        decl = anns.parse_lattice_decl("S*,S")
        assert decl.shared == ("S",)
        assert decl.standalone == ()

    def test_empty_payload(self):
        decl = anns.parse_lattice_decl("")
        assert decl.orderings == () and decl.shared == ()

    def test_whitespace_tolerated(self):
        decl = anns.parse_lattice_decl("  A < B ,  C* ")
        assert decl.orderings[0] == anns.OrderEntry("A", "B")
        assert decl.shared == ("C",)

    def test_all_names(self):
        decl = anns.parse_lattice_decl("A<B,S*,X")
        assert decl.all_names() == {"A", "B", "S", "X"}

    def test_invalid_name_rejected(self):
        with pytest.raises(anns.AnnotationSyntaxError):
            anns.parse_lattice_decl("A<9bad")

    def test_empty_entry_rejected(self):
        with pytest.raises(anns.AnnotationSyntaxError):
            anns.parse_lattice_decl("A<B,,C<D")


class TestLocSpec:
    def test_single_element(self):
        spec = anns.parse_loc_spec("IN")
        assert spec.elements == (anns.LocElementRef("IN"),)
        assert spec.delta_depth == 0

    def test_composite(self):
        spec = anns.parse_loc_spec("CAOBJ,TMP")
        assert [e.name for e in spec.elements] == ["CAOBJ", "TMP"]

    def test_class_qualified(self):
        spec = anns.parse_loc_spec("WDOBJ,WindRec.DIR0")
        assert spec.elements[1].class_name == "WindRec"
        assert spec.elements[1].name == "DIR0"

    def test_delta_wrapping(self):
        spec = anns.parse_loc_spec("DELTA(WDOBJ,DIR0)")
        assert spec.delta_depth == 1
        assert [e.name for e in spec.elements] == ["WDOBJ", "DIR0"]

    def test_nested_delta(self):
        spec = anns.parse_loc_spec("DELTA(DELTA(X))")
        assert spec.delta_depth == 2

    def test_unbalanced_parens(self):
        with pytest.raises(anns.AnnotationSyntaxError):
            anns.parse_loc_spec("DELTA(X")

    def test_empty_rejected(self):
        with pytest.raises(anns.AnnotationSyntaxError):
            anns.parse_loc_spec("  ")

    def test_str_roundtrip(self):
        spec = anns.parse_loc_spec("DELTA(A,B)")
        assert str(spec) == "DELTA(A,B)"


class TestSingleLoc:
    def test_simple(self):
        assert anns.parse_single_loc("BIN") == "BIN"

    def test_composite_rejected(self):
        with pytest.raises(anns.AnnotationSyntaxError):
            anns.parse_single_loc("A,B")

    def test_delta_rejected(self):
        with pytest.raises(anns.AnnotationSyntaxError):
            anns.parse_single_loc("DELTA(A)")

    def test_qualified_rejected(self):
        with pytest.raises(anns.AnnotationSyntaxError):
            anns.parse_single_loc("C.A")


class TestAnnotationCounting:
    SOURCE = '''
    @LATTICE("A<B")
    class T {
      @LOC("A") int f;
      @LATTICE("X<Y") @THISLOC("X") @RETURNLOC("Y")
      int m(@LOC("Y") int p) {
        @LOC("X") int v = p;
        return v;
      }
    }
    @METHODDEFAULT("P<Q")
    class U { }
    '''

    def test_counts(self):
        program = parse_program(self.SOURCE)
        counts = anns.count_annotations(program)
        # @LOC ×3 (field, param, var) + @THISLOC + @RETURNLOC = 5
        assert counts.loc == 5
        assert counts.lattice == 2
        assert counts.method_default == 1

    def test_by_name_breakdown(self):
        program = parse_program(self.SOURCE)
        counts = anns.count_annotations(program)
        assert counts.by_name["LOC"] == 3
        assert counts.by_name["THISLOC"] == 1
