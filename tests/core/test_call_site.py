"""Method invocation checking tests (Section 4.1.5, Fig. 4.2)."""

from tests.conftest import assert_rejected, assert_stabilizing


def caller_callee(caller_body: str, callee: str, lattice: str = "B<X,X<IN") -> str:
    return f'''
    class Main {{
      @LATTICE("{lattice}")
      @THISLOC("X")
      void run() {{
        SSJAVA:
        while (true) {{
          {caller_body}
        }}
      }}
      {callee}
    }}
    '''


class TestParameterOrdering:
    CALLEE = '''
      @LATTICE("RR<CO,CO<CI,CTHIS")
      @THISLOC("CTHIS")
      @RETURNLOC("RR")
      int compute(@LOC("CI") int hi, @LOC("CO") int lo) {
        @LOC("RR") int r = hi + lo;
        return r;
      }
    '''

    def test_arguments_respect_callee_ordering(self):
        assert_stabilizing(caller_callee(
            '@LOC("IN") int v = Device.readSensor();'
            '@LOC("MID") int m = v;'
            '@LOC("B") int out = compute(v, m);'
            'SJ.broadcast(out);',
            self.CALLEE,
            lattice="B<MID,MID<X,X<IN",
        ))

    def test_violating_argument_order_rejected(self):
        # callee flows hi → lo, so passing (low, high) is unsafe
        assert_rejected(caller_callee(
            '@LOC("IN") int v = Device.readSensor();'
            '@LOC("MID") int m = v;'
            '@LOC("B") int out = compute(m, v);'
            'SJ.broadcast(out);',
            self.CALLEE,
            lattice="B<MID,MID<X,X<IN",
        ), "call-site")

    def test_unrelated_params_are_unconstrained(self):
        callee = '''
          @LATTICE("R1<P1,R2<P2,R1<P2,CTHIS")
          @THISLOC("CTHIS")
          @RETURNLOC("R1")
          int pick(@LOC("P1") int a, @LOC("P2") int b) {
            @LOC("R1") int r = a;
            return r;
          }
        '''
        # arguments at incomparable locations are fine when the callee
        # never flows between the parameters
        assert_stabilizing(caller_callee(
            '@LOC("L1") int x = Device.readSensor();'
            '@LOC("L2") int y = Device.readSensor();'
            '@LOC("B") int out = pick(x, y);'
            'SJ.broadcast(out);',
            callee.replace("R1<P2,", ""),
            lattice="B<L1,B<L2,L1<X,L2<X,X<IN",
        ))


class TestReturnLocation:
    def test_return_location_is_glb_of_relevant_args(self):
        callee = '''
          @LATTICE("RL<P,CTHIS")
          @THISLOC("CTHIS")
          @RETURNLOC("RL")
          int half(@LOC("P") int v) {
            @LOC("RL") int r = v / 2;
            return r;
          }
        '''
        # result must land strictly below the argument's location
        assert_stabilizing(caller_callee(
            '@LOC("IN") int v = Device.readSensor();'
            '@LOC("B") int h = half(v);'
            'SJ.broadcast(h);',
            callee,
        ))

    def test_storing_result_at_arg_level_rejected(self):
        callee = '''
          @LATTICE("RL<P,CTHIS")
          @THISLOC("CTHIS")
          @RETURNLOC("RL")
          int half(@LOC("P") int v) {
            @LOC("RL") int r = v / 2;
            return r;
          }
        '''
        assert_rejected(caller_callee(
            '@LOC("IN") int v = Device.readSensor();'
            '@LOC("MID") int m = v;'
            'm = half(m);'
            'SJ.broadcast(m);',
            callee,
            lattice="B<MID,MID<X,X<IN",
        ), "flow-down")

    def test_callee_return_value_checked_against_returnloc(self):
        source = '''
        class Main {
          @LATTICE("B<X,X<IN") @THISLOC("X")
          void run() {
            SSJAVA:
            while (true) {
              @LOC("B") int b = bad();
              SJ.broadcast(b);
            }
          }
          @LATTICE("LOW<HI,CTHIS")
          @THISLOC("CTHIS")
          @RETURNLOC("HI")
          int bad() {
            @LOC("HI") int h = 3;
            @LOC("LOW") int l = h;
            return l;
          }
        }
        '''
        assert_rejected(source, "flow-down")

    def test_missing_returnloc_is_conservative(self):
        # without @RETURNLOC the caller assumes the result could carry any
        # argument's data: storing it above an argument must fail
        callee = '''
          @LATTICE("R<P,CTHIS")
          @THISLOC("CTHIS")
          int opaque(@LOC("P") int v) {
            @LOC("R") int r = v;
            return r;
          }
        '''
        assert_rejected(caller_callee(
            '@LOC("MID") int m = Device.readSensor();'
            '@LOC("IN") int high = opaque(m);'
            'SJ.broadcast(high);',
            callee,
            lattice="B<MID,MID<X,X<IN",
        ), "flow-down")


class TestThisRelativeParameters:
    SOURCE = '''
    @LATTICE("G<F")
    class Store {{
      @LOC("F") int f;
      @LOC("G") int g;
      @LATTICE("STHIS")
      @THISLOC("STHIS")
      void put(@LOC("STHIS,F") int v) {{
        this.g = v;
      }}
    }}
    @LATTICE("STO")
    class Main {{
      @LOC("STO") Store store = new Store();
      @LATTICE("{lattice}")
      @THISLOC("X")
      void run() {{
        SSJAVA:
        while (true) {{
          @LOC("IN") int v = Device.readSensor();
          store.f = v;
          {body}
          SJ.broadcast(store.g);
        }}
      }}
    }}
    '''

    def test_argument_at_field_level_accepted(self):
        assert_stabilizing(self.SOURCE.format(
            lattice="X<IN", body="store.put(store.f);"
        ))

    def test_argument_below_field_level_rejected(self):
        assert_rejected(self.SOURCE.format(
            lattice="LOWV<X,X<IN",
            body='@LOC("LOWV") int low = 1; store.put(low);',
        ), "call-site")


class TestImplicitCallConstraints:
    def test_call_under_branch_needs_pcloc(self):
        source = '''
        @LATTICE("TGT")
        class Sink {
          @LOC("TGT") int t;
          @LATTICE("STHIS<SV") @THISLOC("STHIS")
          void put(@LOC("SV") int v) { this.t = v; }
        }
        @LATTICE("SNK")
        class Main {
          @LOC("SNK") Sink sink = new Sink();
          @LATTICE("B<X,X<IN") @THISLOC("X")
          void run() {
            SSJAVA:
            while (true) {
              @LOC("IN") int v = Device.readSensor();
              if (v > 0) { sink.put(v); }
              SJ.broadcast(sink.t);
            }
          }
        }
        '''
        assert_rejected(source, "implicit-flow")

    def test_call_under_branch_with_pcloc_ok(self):
        source = '''
        @LATTICE("TGT")
        class Sink {
          @LOC("TGT") int t;
          @LATTICE("STHIS<SV,SV<SPC") @THISLOC("STHIS") @PCLOC("SPC")
          void put(@LOC("SV") int v) { this.t = v; }
        }
        @LATTICE("SNK")
        class Main {
          @LOC("SNK") Sink sink = new Sink();
          @LATTICE("B<X,X<IN") @THISLOC("X")
          void run() {
            SSJAVA:
            while (true) {
              @LOC("IN") int v = Device.readSensor();
              if (v > 0) { sink.put(v); }
              if (v <= 0) { sink.put(v); }
              SJ.broadcast(v);
            }
          }
        }
        '''
        assert_stabilizing(source)


class TestTrustedCode:
    def test_trusted_method_results_are_top(self):
        source = '''
        @TRUSTED
        class Src {
          int offset;
          int next() { offset = offset + 1; return Device.readSensor(); }
        }
        @LATTICE("SRC")
        class Main {
          @LOC("SRC") Src src = new Src();
          @LATTICE("B<X,X<IN") @THISLOC("X")
          void run() {
            SSJAVA:
            while (true) {
              @LOC("IN") int v = src.next();
              @LOC("B") int out = v;
              SJ.broadcast(out);
            }
          }
        }
        '''
        assert_stabilizing(source)

    def test_trusted_bodies_not_checked(self):
        # the trusted body violates the flow-down rule internally; the
        # checker must not complain
        source = '''
        @TRUSTED
        class Src {
          int a; int b;
          int next() { a = b; b = a; return 1; }
        }
        @LATTICE("SRC")
        class Main {
          @LOC("SRC") Src src = new Src();
          @LATTICE("B<X,X<IN") @THISLOC("X")
          void run() {
            SSJAVA:
            while (true) {
              @LOC("IN") int v = src.next();
              SJ.broadcast(v);
            }
          }
        }
        '''
        assert_stabilizing(source)
