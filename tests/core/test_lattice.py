"""Lattice machinery tests (Section 3.2)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.lattice import (
    BOTTOM,
    Lattice,
    LatticeError,
    NotALatticeError,
    TOP,
)


def chain(*names: str) -> Lattice:
    """A chain lattice: names[0] < names[1] < ... (lowest first)."""
    lattice = Lattice(name="chain")
    for low, high in zip(names, names[1:]):
        lattice.add_ordering(low, high)
    return lattice


class TestOrdering:
    def test_direct_ordering(self):
        lattice = chain("a", "b")
        assert lattice.lt("a", "b")
        assert not lattice.lt("b", "a")

    def test_transitivity(self):
        lattice = chain("a", "b", "c")
        assert lattice.lt("a", "c")

    def test_strict_vs_reflexive(self):
        lattice = chain("a", "b")
        assert not lattice.lt("a", "a")
        assert lattice.leq("a", "a")

    def test_top_above_everything(self):
        lattice = chain("a", "b")
        assert lattice.lt("a", TOP)
        assert lattice.lt("b", TOP)
        assert lattice.lt(BOTTOM, TOP)

    def test_bottom_below_everything(self):
        lattice = chain("a", "b")
        assert lattice.lt(BOTTOM, "a")

    def test_incomparable_elements(self):
        lattice = Lattice(pairs=[("a", "t"), ("b", "t")])
        assert not lattice.comparable("a", "b")

    def test_unknown_element_raises(self):
        with pytest.raises(LatticeError):
            chain("a", "b").lt("a", "zz")

    def test_self_ordering_rejected(self):
        with pytest.raises(LatticeError):
            Lattice().add_ordering("a", "a")

    def test_cycle_detected(self):
        lattice = Lattice(pairs=[("a", "b"), ("b", "c"), ("c", "a")])
        with pytest.raises(LatticeError):
            lattice.validate()


class TestGlbLub:
    def test_glb_of_comparable(self):
        lattice = chain("a", "b", "c")
        assert lattice.glb("a", "c") == "a"
        assert lattice.glb("c", "a") == "a"

    def test_glb_of_diamond(self):
        lattice = Lattice(
            pairs=[("bot", "l"), ("bot", "r"), ("l", "top"), ("r", "top")]
        )
        assert lattice.glb("l", "r") == "bot"
        assert lattice.lub("l", "r") == "top"

    def test_glb_falls_to_bottom(self):
        lattice = Lattice(pairs=[("a", "t"), ("b", "t")])
        assert lattice.glb("a", "b") == BOTTOM

    def test_lub_rises_to_top(self):
        lattice = Lattice(pairs=[("b", "x"), ("b", "y")])
        assert lattice.lub("x", "y") == TOP

    def test_ambiguous_glb_raises(self):
        # two maximal common lower bounds
        lattice = Lattice(
            pairs=[("m1", "a"), ("m1", "b"), ("m2", "a"), ("m2", "b")]
        )
        with pytest.raises(NotALatticeError):
            lattice.glb("a", "b")

    def test_glb_with_extremes(self):
        lattice = chain("a")
        lattice.add_element("a")
        assert lattice.glb("a", TOP) == "a"
        assert lattice.glb("a", BOTTOM) == BOTTOM

    def test_idempotent(self):
        lattice = chain("a", "b")
        assert lattice.glb("a", "a") == "a"
        assert lattice.lub("b", "b") == "b"


class TestSharedAndDelta:
    def test_shared_marking(self):
        lattice = Lattice(shared=["s"])
        assert lattice.is_shared("s")
        assert not lattice.is_shared(TOP)

    def test_insert_below(self):
        lattice = chain("low", "high")
        lattice.insert_below("d", "high")
        assert lattice.lt("d", "high")
        assert lattice.lt("low", "d")

    def test_insert_below_chains(self):
        lattice = chain("a", "b", "c")
        lattice.insert_below("d", "b")
        assert lattice.lt("d", "c")  # transitively below c
        assert lattice.lt("a", "d")

    def test_insert_below_unknown_raises(self):
        with pytest.raises(LatticeError):
            Lattice().insert_below("d", "missing")


class TestStructure:
    def test_height_of_chain(self):
        # TOP > c > b > a > BOTTOM: 5 elements on the longest chain
        assert chain("a", "b", "c").height() == 5

    def test_height_empty(self):
        assert Lattice().height() == 2  # TOP > BOTTOM

    def test_user_elements_exclude_extremes(self):
        lattice = chain("a", "b")
        assert lattice.user_elements() == {"a", "b"}

    def test_direct_edges(self):
        lattice = chain("a", "b")
        assert lattice.direct_edges() == [("a", "b")]

    def test_contains(self):
        lattice = chain("a", "b")
        assert "a" in lattice
        assert "zz" not in lattice


@st.composite
def random_dags(draw):
    """Random acyclic ordering declarations over a small element set."""
    size = draw(st.integers(min_value=2, max_value=7))
    names = [f"n{i}" for i in range(size)]
    pairs = []
    for i in range(size):
        for j in range(i + 1, size):
            if draw(st.booleans()):
                pairs.append((names[i], names[j]))  # ni < nj: acyclic by index
    return names, pairs


class TestProperties:
    @given(random_dags())
    @settings(max_examples=60, deadline=None)
    def test_strictness_antisymmetry(self, dag):
        names, pairs = dag
        lattice = Lattice(pairs=pairs)
        for a in names:
            lattice.add_element(a)
        for a in names:
            for b in names:
                assert not (lattice.lt(a, b) and lattice.lt(b, a))

    @given(random_dags())
    @settings(max_examples=60, deadline=None)
    def test_transitivity_property(self, dag):
        names, pairs = dag
        lattice = Lattice(pairs=pairs)
        for a in names:
            lattice.add_element(a)
        for a in names:
            for b in names:
                for c in names:
                    if lattice.lt(a, b) and lattice.lt(b, c):
                        assert lattice.lt(a, c)

    @given(random_dags())
    @settings(max_examples=60, deadline=None)
    def test_glb_is_lower_bound_when_defined(self, dag):
        names, pairs = dag
        lattice = Lattice(pairs=pairs)
        for a in names:
            lattice.add_element(a)
        for a in names:
            for b in names:
                try:
                    meet = lattice.glb(a, b)
                except NotALatticeError:
                    continue
                assert lattice.leq(meet, a)
                assert lattice.leq(meet, b)
