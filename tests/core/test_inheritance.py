"""Inheritance checking tests (Section 3.5)."""

from tests.conftest import assert_rejected, assert_stabilizing


def with_subclass(sub_class: str, body: str = "SJ.broadcast(1);") -> str:
    return f'''
    @LATTICE("LO<HI")
    class Base {{
      @LOC("HI") int hi;
      @LOC("LO") int lo;
      @LATTICE("BT<BV") @THISLOC("BT")
      void set(@LOC("BV") int v) {{ this.hi = v; }}
    }}
    {sub_class}
    @LATTICE("OBJ")
    class Main {{
      @LOC("OBJ") Base obj = new Base();
      @LATTICE("B<X,X<IN") @THISLOC("X")
      void run() {{
        SSJAVA:
        while (true) {{
          @LOC("IN") int v = Device.readSensor();
          obj.set(v);
          obj.lo = obj.hi;
          {body}
        }}
      }}
    }}
    '''


class TestFieldHierarchy:
    def test_subclass_inherits_parent_lattice(self):
        assert_stabilizing(with_subclass(
            '@LATTICE("EXTRA<LO") class Sub extends Base '
            '{ @LOC("EXTRA") int extra; }'
        ))

    def test_subclass_adding_parent_ordering_rejected(self):
        # the parent leaves nothing unordered here, so order two fresh
        # parent-level names: use a parent with incomparable locations
        source = '''
        @LATTICE("A<T,B<T")
        class Base { @LOC("A") int a; @LOC("B") int b; @LOC("T") int t; }
        @LATTICE("A<B")
        class Sub extends Base { }
        class Main {
          @LATTICE("B2<X,X<IN") @THISLOC("X")
          void run() { SSJAVA: while (true) { SJ.broadcast(1); } }
        }
        '''
        assert_rejected(source, "inheritance")

    def test_contradictory_subclass_ordering_is_cycle(self):
        source = '''
        @LATTICE("A<B")
        class Base { @LOC("A") int a; @LOC("B") int b; }
        @LATTICE("B<A")
        class Sub extends Base { }
        class Main {
          @LATTICE("B2<X,X<IN") @THISLOC("X")
          void run() { SSJAVA: while (true) { SJ.broadcast(1); } }
        }
        '''
        assert_rejected(source, "lattice")


class TestOverrides:
    def test_matching_override_ok(self):
        assert_stabilizing(with_subclass(
            'class Sub extends Base { '
            '@LATTICE("BT<BV") @THISLOC("BT") '
            'void set(@LOC("BV") int v) { this.hi = v; } }'
        ))

    def test_override_with_different_param_loc_rejected(self):
        assert_rejected(with_subclass(
            'class Sub extends Base { '
            '@LATTICE("BT<OTHER") @THISLOC("BT") '
            'void set(@LOC("OTHER") int v) { this.hi = v; } }'
        ), "inheritance")

    def test_override_with_different_thisloc_rejected(self):
        assert_rejected(with_subclass(
            'class Sub extends Base { '
            '@LATTICE("ELSEWHERE<BV") @THISLOC("ELSEWHERE") '
            'void set(@LOC("BV") int v) { this.hi = v; } }'
        ), "inheritance")

    def test_override_dropping_lattice_order_rejected(self):
        assert_rejected(with_subclass(
            'class Sub extends Base { '
            '@LATTICE("BT,BV") @THISLOC("BT") '
            'void set(@LOC("BV") int v) { } }'
        ), "inheritance")
