"""Location environment resolution tests (Sections 2.2, 3.6)."""

from repro.core import composite as cl
from repro.core.environment import LocationWorld
from repro.core.errors import DiagnosticSink
from tests.conftest import analyze


def world_for(source: str):
    info = analyze(source)
    sink = DiagnosticSink()
    return LocationWorld(info, sink), sink


SOURCE = '''
@LATTICE("LO<HI,S*")
class Rec {
  @LOC("HI") int hi;
  @LOC("LO") int lo;
  @LOC("S") int counter;
}
@METHODDEFAULT("DEF1<DEF2")
class Main {
  @LATTICE("A<B,B<C")
  @THISLOC("A")
  @RETURNLOC("A")
  @PCLOC("C")
  int annotated(@LOC("C") int input) {
    @LOC("B") int mid = input;
    @LOC("A,HI") int deep = 0;
    return mid;
  }
  void defaulted() { }
}
'''


class TestFieldEnvironments:
    def test_field_lattice_built(self):
        world, _ = world_for(SOURCE)
        lattice = world.field_lattice("Rec")
        assert lattice.lt("LO", "HI")
        assert lattice.is_shared("S")

    def test_field_elements(self):
        world, _ = world_for(SOURCE)
        assert world.field_element("Rec", "hi") == "HI"
        assert world.field_element("Rec", "counter") == "S"
        assert world.field_element("Rec", "missing") is None

    def test_undeclared_field_loc_warns_and_registers(self):
        world, sink = world_for(
            '@LATTICE("A<B") class T { @LOC("ELSEWHERE") int f; } '
            "class M { void run() { SSJAVA: while (true) { } } }"
        )
        assert sink.warnings()
        assert world.field_element("T", "f") == "ELSEWHERE"


class TestMethodEnvironments:
    def test_method_lattice_from_annotation(self):
        world, _ = world_for(SOURCE)
        env = world.env_of("Main", "annotated")
        assert env.lattice.lt("A", "C")

    def test_method_default_lattice(self):
        world, _ = world_for(SOURCE)
        env = world.env_of("Main", "defaulted")
        assert env.lattice.lt("DEF1", "DEF2")

    def test_this_and_pc_and_return(self):
        world, _ = world_for(SOURCE)
        env = world.env_of("Main", "annotated")
        this = world.this_location(env)
        assert isinstance(this, cl.CompositeLocation)
        assert this.elements == ("A",)
        pc = world.pc_location(env)
        assert pc.elements == ("C",)
        ret = world.return_location(env)
        assert ret.elements == ("A",)

    def test_default_pc_is_top(self):
        world, _ = world_for(SOURCE)
        env = world.env_of("Main", "defaulted")
        assert isinstance(world.pc_location(env), cl.TopLocType)

    def test_default_return_is_bottom(self):
        world, _ = world_for(SOURCE)
        env = world.env_of("Main", "defaulted")
        assert isinstance(world.return_location(env), cl.BotLocType)

    def test_param_location(self):
        world, _ = world_for(SOURCE)
        env = world.env_of("Main", "annotated")
        param = env.method.params[0]
        loc = world.param_location(env, param)
        assert loc.elements == ("C",)

    def test_composite_var_location(self):
        world, _ = world_for(SOURCE)
        env = world.env_of("Main", "annotated")
        loc = world.var_location(env, "deep")
        assert loc.elements == ("A", "HI")
        assert loc.lattices[1] is world.field_lattice("Rec")

    def test_unknown_var_gives_none(self):
        world, _ = world_for(SOURCE)
        env = world.env_of("Main", "annotated")
        assert world.var_location(env, "nothere") is None

    def test_ambiguous_field_element_reported(self):
        world, sink = world_for(
            '@LATTICE("P<Q") class A { @LOC("P") int x; } '
            '@LATTICE("P<R") class B { @LOC("P") int y; } '
            'class M { @LATTICE("T<U") @THISLOC("T") void run() { '
            '@LOC("T,P") int v = 0; '
            "SSJAVA: while (true) { SJ.broadcast(v); } } }"
        )
        env = world.env_of("M", "run")
        # resolving "T,P" is ambiguous between classes A and B
        assert world.var_location(env, "v") is None
        assert any("ambiguous" in d.message for d in sink.errors())

    def test_qualified_element_disambiguates(self):
        world, sink = world_for(
            '@LATTICE("P<Q") class A { @LOC("P") int x; } '
            '@LATTICE("P<R") class B { @LOC("P") int y; } '
            'class M { @LATTICE("T<U") @THISLOC("T") void run() { '
            '@LOC("T,A.P") int v = 0; '
            "SSJAVA: while (true) { SJ.broadcast(v); } } }"
        )
        env = world.env_of("M", "run")
        loc = world.var_location(env, "v")
        assert loc is not None
        assert loc.lattices[1] is world.field_lattice("A")


class TestDelta:
    def test_delta_inserts_fresh_element(self):
        world, _ = world_for(SOURCE)
        env = world.env_of("Main", "annotated")
        base = world.var_location(env, "deep")  # ⟨A, HI⟩
        delta = world.delta(base)
        assert cl.lt(delta, base)
        lo = cl.CompositeLocation(
            ("A", "LO"), (env.lattice, world.field_lattice("Rec"))
        )
        assert cl.lt(lo, delta)

    def test_delta_is_deterministic(self):
        world, _ = world_for(SOURCE)
        env = world.env_of("Main", "annotated")
        base = world.var_location(env, "deep")
        assert world.delta(base) == world.delta(base)

    def test_trusted_marking(self):
        world, _ = world_for(
            "@TRUSTED class S { void go() { } } "
            "class M { void run() { SSJAVA: while (true) { } } }"
        )
        env = world.env_of("S", "go")
        assert env.trusted
