"""Shared-location extension tests (Sections 4.1.8 and 4.2.2)."""

from tests.conftest import assert_rejected, assert_stabilizing, loop_program


class TestSharedVariables:
    def test_cleared_each_iteration_ok(self):
        assert_stabilizing(loop_program(
            '@LOC("S") int acc = Device.readSensor();'
            'acc = acc + 1;'
            'SJ.broadcast(acc);',
            lattice="S<IN,S*",
        ))

    def test_never_cleared_rejected(self):
        # acc only ever receives same-shared values: corrupt data circulates
        source = '''
        class Main {
          @LATTICE("B<X,X<IN,S<IN,S*")
          @THISLOC("X")
          void run() {
            @LOC("S") int acc = 0;
            SSJAVA:
            while (true) {
              @LOC("IN") int v = Device.readSensor();
              acc = acc + 1;
              SJ.broadcast(acc);
            }
          }
        }
        '''
        assert_rejected(source, "shared")

    def test_loop_index_pattern_ok(self):
        assert_stabilizing(loop_program(
            '@LOC("ACC") int acc = 0;'
            'for (@LOC("I") int i = 0; i < 4; i++) { acc = acc + i; }'
            'SJ.broadcast(acc);',
            lattice="ACC<I,I<X2,X2<IN,I*,ACC*",
        ))


class TestSharedFields:
    SOURCE = '''
    @LATTICE("{class_lattice}")
    class Main {{
      @LOC("S") int stateA;
      @LOC("S") int stateB;
      @LATTICE("B<X,X<IN")
      @THISLOC("X")
      void run() {{
        SSJAVA:
        while (true) {{
          @LOC("IN") int v = Device.readSensor();
          {body}
        }}
      }}
    }}
    '''

    def test_group_cleared_simultaneously_ok(self):
        assert_stabilizing(self.SOURCE.format(
            class_lattice="S,S*",
            body="stateA = v; stateB = v - 1;"
                 "stateA = stateB; "
                 "SJ.broadcast(stateA);",
        ))

    def test_one_member_never_cleared_rejected(self):
        assert_rejected(self.SOURCE.format(
            class_lattice="S,S*",
            body="stateA = v; stateB = stateA; SJ.broadcast(stateB);",
        ), "shared")

    def test_untouched_group_ignored(self):
        # group members never written inside the loop: no constraint
        assert_stabilizing(self.SOURCE.format(
            class_lattice="S,S*",
            body="SJ.broadcast(v);",
        ))

    def test_shared_array_cleared_by_fill_loop(self):
        source = '''
        @LATTICE("ARRF,ARRF*")
        class Main {
          @LOC("ARRF") float[] ring = new float[4];
          @LATTICE("B<X,X<I,I<IN,I*")
          @THISLOC("X")
          void run() {
            SSJAVA:
            while (true) {
              @LOC("IN") float v = Device.readTemp();
              for (@LOC("I") int i = 0; i < ring.length; i++) { ring[i] = v; }
              ring[0] = ring[1] + ring[2];
              SJ.broadcast(ring[0]);
            }
          }
        }
        '''
        assert_stabilizing(source)

    def test_shared_array_only_shuffled_rejected(self):
        source = '''
        @LATTICE("ARRF,ARRF*")
        class Main {
          @LOC("ARRF") float[] ring = new float[4];
          @LATTICE("B<X,X<I,I<IN,I*")
          @THISLOC("X")
          void run() {
            SSJAVA:
            while (true) {
              @LOC("IN") float v = Device.readTemp();
              ring[0] = ring[1] + ring[2];
              SJ.broadcast(ring[0]);
            }
          }
        }
        '''
        assert_rejected(source, "shared")
