"""Linear type / ownership discipline tests (Section 4.1.6)."""

from tests.conftest import assert_rejected, assert_stabilizing


TEMPLATE = '''
@LATTICE("IV<IW")
class Item {{ @LOC("IV") int v; @LOC("IW") int w; }}
@LATTICE("G<F")
class Holder {{
  @LOC("F") Item f;
  @LOC("G") Item g;
  {holder_methods}
}}
@LATTICE("HOL")
class Main {{
  @LOC("HOL") Holder holder = new Holder();
  @LATTICE("B<ITV,ITV<X,X<IN")
  @THISLOC("X")
  void run() {{
    SSJAVA:
    while (true) {{
      @LOC("IN") int v = Device.readSensor();
      {body}
    }}
  }}
  {main_methods}
}}
'''


def program(body: str, holder_methods: str = "", main_methods: str = "") -> str:
    return TEMPLATE.format(
        body=body, holder_methods=holder_methods, main_methods=main_methods
    )


class TestHeapForest:
    def test_fresh_reference_stored_ok(self):
        assert_stabilizing(program(
            "holder.f = new Item(); holder.f.v = v; SJ.broadcast(holder.f.v);"
        ))

    def test_borrowed_reference_stored_rejected(self):
        assert_rejected(program(
            '@LOC("X,HOL,F") Item it = holder.f;'
            "holder.g = it;"
            "SJ.broadcast(v);"
        ), "linear")

    def test_field_to_field_copy_rejected(self):
        assert_rejected(program(
            "holder.g = holder.f; SJ.broadcast(v);"
        ), "linear")

    def test_null_store_ok(self):
        assert_stabilizing(program(
            "holder.f = null; holder.f = new Item(); holder.f.v = v;"
            "SJ.broadcast(holder.f.v);"
        ))


class TestOwnershipTransfer:
    DELEGATE_METHOD = '''
      @LATTICE("HT<HV") @THISLOC("HT")
      void adopt(@DELEGATE @LOC("HV") Item item) {
        this.f = item;
      }
    '''

    def test_fresh_reference_delegated_ok(self):
        assert_stabilizing(program(
            "holder.adopt(new Item()); holder.f.v = v; "
            "SJ.broadcast(holder.f.v);",
            holder_methods=self.DELEGATE_METHOD,
        ))

    def test_borrowed_reference_delegated_rejected(self):
        assert_rejected(program(
            '@LOC("X,HOL,G") Item it = holder.g;'
            "holder.adopt(it);"
            "SJ.broadcast(v);",
            holder_methods=self.DELEGATE_METHOD,
        ), "linear")

    def test_use_after_delegation_rejected(self):
        assert_rejected(program(
            '@LOC("ITV") Item mine = new Item();'
            "holder.adopt(mine);"
            "mine.v = v;"
            "SJ.broadcast(v);",
            holder_methods=self.DELEGATE_METHOD,
        ), "linear")

    def test_use_after_heap_store_rejected(self):
        assert_rejected(program(
            '@LOC("ITV") Item mine = new Item();'
            "holder.f = mine;"
            "mine.v = v;"
            "SJ.broadcast(v);",
        ), "linear")


class TestReturns:
    def test_returning_fresh_reference_ok(self):
        assert_stabilizing(program(
            '@LOC("ITV") Item it = make();'
            "it.v = v;"
            "SJ.broadcast(it.v);",
            main_methods='''
              @LATTICE("MR<MT") @THISLOC("MT") @RETURNLOC("MR")
              Item make() { return new Item(); }
            ''',
        ))

    def test_returning_borrowed_reference_rejected(self):
        assert_rejected(program(
            "SJ.broadcast(v);",
            main_methods='''
              @LATTICE("MR<MT") @THISLOC("MT") @RETURNLOC("MR")
              Item leak() { return this.holder.f; }
            ''',
        ), "linear") if False else None
        # leak() is not reachable from the loop, so call it:
        assert_rejected(program(
            '@LOC("ITV") Item it = leak();'
            "SJ.broadcast(v);",
            main_methods='''
              @LATTICE("MR<X2,X2<MT") @THISLOC("MT") @RETURNLOC("MR")
              Item leak() { return this.holder.f; }
            ''',
        ), "linear")

    def test_alias_merging_in_branches(self):
        # after a branch, a variable owned on one path and borrowed on the
        # other is conservatively borrowed
        assert_rejected(program(
            '@LOC("ITV") Item it = new Item();'
            'if (v > 0) { it = holder.f; }'
            "holder.g = it;"
            "SJ.broadcast(v);",
        ), "linear")
