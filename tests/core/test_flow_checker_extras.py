"""Additional flow-checker coverage: @GLOBALLOC, deep composite paths,
@PCLOC inside method bodies, and nested object graphs."""

from tests.conftest import assert_rejected, assert_stabilizing


class TestGlobalLoc:
    SOURCE = '''
    class Main {{
      static int tick;
      @LATTICE("B<GLB,GLB<X,X<IN") @THISLOC("X") {global_ann}
      void run() {{
        SSJAVA:
        while (true) {{
          @LOC("IN") int v = Device.readSensor();
          tick = v;
          @LOC("B") int out = tick;
          SJ.broadcast(out);
        }}
      }}
    }}
    '''

    def test_mutable_static_with_globalloc(self):
        assert_stabilizing(self.SOURCE.format(global_ann='@GLOBALLOC("GLB")'))

    def test_mutable_static_without_globalloc_rejected(self):
        assert_rejected(self.SOURCE.format(global_ann=""), "flow-down")

    def test_globalloc_respects_ordering(self):
        # writing a static at GLB from something below it must fail
        source = '''
        class Main {
          static int tick;
          @LATTICE("B<GLB,GLB<X,X<IN") @THISLOC("X") @GLOBALLOC("GLB")
          void run() {
            SSJAVA:
            while (true) {
              @LOC("IN") int v = Device.readSensor();
              @LOC("B") int low = 1;
              tick = low;
              SJ.broadcast(tick);
            }
          }
        }
        '''
        assert_rejected(source, "flow-down")


class TestDeepCompositePaths:
    SOURCE = '''
    @LATTICE("IV<IW")
    class Inner {{ @LOC("IW") int w; @LOC("IV") int v; }}
    @LATTICE("OLOW<OHIGH")
    class Outer {{
      @LOC("OHIGH") Inner high = new Inner();
      @LOC("OLOW") Inner low = new Inner();
    }}
    @LATTICE("ROOT")
    class Main {{
      @LOC("ROOT") Outer outer = new Outer();
      @LATTICE("B<X,X<IN") @THISLOC("X")
      void run() {{
        SSJAVA:
        while (true) {{
          @LOC("IN") int v = Device.readSensor();
          {body}
        }}
      }}
    }}
    '''

    def test_three_level_descent(self):
        assert_stabilizing(self.SOURCE.format(body='''
          outer.high.w = v;
          outer.high.v = outer.high.w;
          outer.low.w = outer.high.v;
          outer.low.v = outer.low.w;
          SJ.broadcast(outer.low.v);
        '''))

    def test_cross_object_upward_flow_rejected(self):
        assert_rejected(self.SOURCE.format(body='''
          outer.low.w = v;
          outer.high.w = outer.low.w;
          SJ.broadcast(outer.high.w);
        '''), "flow-down")

    def test_inner_field_upward_flow_rejected(self):
        assert_rejected(self.SOURCE.format(body='''
          outer.high.v = v;
          outer.high.w = outer.high.v;
          SJ.broadcast(outer.high.w);
        '''), "flow-down")


class TestPcLocInMethodBodies:
    def test_pcloc_constrains_callee_writes(self):
        # the callee declares a PCLOC below one of its own locations and
        # then writes above it: rejected inside the callee itself
        source = '''
        @LATTICE("T")
        class Main {
          @LOC("T") int t;
          @LATTICE("B<X,X<IN") @THISLOC("X")
          void run() {
            SSJAVA:
            while (true) {
              @LOC("IN") int v = Device.readSensor();
              t = v;
              helper(v);
              SJ.broadcast(t);
            }
          }
          @LATTICE("HIGHV<SPC,SPC<HV,HTHIS") @THISLOC("HTHIS") @PCLOC("SPC")
          void helper(@LOC("HV") int v) {
            @LOC("HIGHV") int fine = v;
            SJ.broadcast(fine);
          }
        }
        '''
        assert_stabilizing(source)
        broken = source.replace(
            '@LATTICE("HIGHV<SPC,SPC<HV,HTHIS")',
            '@LATTICE("SPC<HIGHV,HIGHV<HV,HTHIS")',
        )
        assert_rejected(broken, "implicit-flow")


class TestStringsAndBooleans:
    def test_string_values_flow_down(self):
        assert_stabilizing('''
        class Main {
          @LATTICE("B<MSG,MSG<X,X<IN") @THISLOC("X")
          void run() {
            SSJAVA:
            while (true) {
              @LOC("IN") int v = Device.readSensor();
              @LOC("MSG") String msg = "v=" + v;
              @LOC("B") String out = msg + "!";
              SJ.broadcast(out);
            }
          }
        }
        ''')

    def test_boolean_conditions_carry_information(self):
        assert_rejected('''
        class Main {
          @LATTICE("B<FLAG,FLAG<X,X<IN") @THISLOC("X")
          void run() {
            SSJAVA:
            while (true) {
              @LOC("IN") int v = Device.readSensor();
              @LOC("B") boolean low = v > 0;
              @LOC("FLAG") boolean high;
              if (low) { high = true; } else { high = false; }
              SJ.broadcast(high);
            }
          }
        }
        ''', "implicit-flow")
