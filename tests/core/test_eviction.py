"""Definitely-written (eviction) analysis tests (Section 4.2)."""

from tests.conftest import assert_rejected, assert_stabilizing


BOX = '''
@LATTICE("LO<HI")
class Box {{
  @LOC("HI") int hi;
  @LOC("LO") int lo;
}}
@LATTICE("BOXF")
class Main {{
  @LOC("BOXF") Box box = new Box();
  @LATTICE("B<X,X<IN")
  @THISLOC("X")
  void run() {{
    SSJAVA:
    while (true) {{
      @LOC("IN") int v = Device.readSensor();
      {body}
    }}
  }}
}}
'''


class TestHeapEviction:
    def test_overwritten_every_iteration_ok(self):
        assert_stabilizing(BOX.format(
            body="box.hi = v; box.lo = box.hi; SJ.broadcast(box.lo);"
        ))

    def test_read_before_conditional_write_rejected(self):
        assert_rejected(BOX.format(
            body="if (v > 0) { box.hi = v; } "
                 "box.lo = box.hi; SJ.broadcast(box.lo);"
        ), "eviction")

    def test_read_after_write_in_same_iteration_ok(self):
        # write happens conditionally in both arms: intersection holds
        assert_stabilizing(BOX.format(
            body="if (v > 0) { box.hi = v; } else { box.hi = 0; } "
                 "box.lo = box.hi; SJ.broadcast(box.lo);"
        ))

    def test_loop_invariant_read_ok(self):
        # hi is never written inside the loop: reads are loop invariant
        assert_stabilizing(BOX.format(
            body="box.lo = box.hi; SJ.broadcast(box.lo);"
        ))

    def test_read_before_unconditional_later_write_ok(self):
        # stale for at most one iteration: overwritten every iteration
        assert_stabilizing(BOX.format(
            body="box.lo = box.hi; box.hi = v; SJ.broadcast(box.lo);"
        ))

    def test_write_only_in_one_branch_then_read_rejected(self):
        assert_rejected(BOX.format(
            body="if (v > 0) { box.hi = v; } else { SJ.broadcast(v); } "
                 "box.lo = box.hi; SJ.broadcast(box.lo);"
        ), "eviction")


class TestLocalVariableEviction:
    def test_loop_local_variables_are_fresh(self):
        assert_stabilizing(BOX.format(
            body='@LOC("B") int t = v; SJ.broadcast(t);'
        ))

    def test_pre_loop_variable_stale_read_rejected(self):
        source = '''
        class Main {
          @LATTICE("B<X,X<IN")
          @THISLOC("X")
          void run() {
            @LOC("B") int keep = 0;
            SSJAVA:
            while (true) {
              @LOC("IN") int v = Device.readSensor();
              SJ.broadcast(keep);
              if (v > 0) { keep = v - 1; }
            }
          }
        }
        '''
        assert_rejected(source, "eviction")

    def test_pre_loop_variable_overwritten_every_iteration_ok(self):
        source = '''
        class Main {
          @LATTICE("B<X,X<IN")
          @THISLOC("X")
          void run() {
            @LOC("B") int keep = 0;
            SSJAVA:
            while (true) {
              @LOC("IN") int v = Device.readSensor();
              SJ.broadcast(keep);
              keep = v - 1;
            }
          }
        }
        '''
        assert_stabilizing(source)


class TestInterprocedural:
    CALLEE_WRITES = '''
    @LATTICE("LO<HI")
    class Box {{
      @LOC("HI") int hi;
      @LOC("LO") int lo;
      @LATTICE("BTHIS<BV")
      @THISLOC("BTHIS")
      void refresh(@LOC("BV") int v) {{
        this.hi = v;
        this.lo = this.hi;
      }}
      @LATTICE("BR<BTHIS2")
      @THISLOC("BTHIS2")
      @RETURNLOC("BR")
      int read() {{
        @LOC("BR") int r = this.lo;
        return r;
      }}
    }}
    @LATTICE("BOXF")
    class Main {{
      @LOC("BOXF") Box box = new Box();
      @LATTICE("B<X,X<IN")
      @THISLOC("X")
      void run() {{
        SSJAVA:
        while (true) {{
          @LOC("IN") int v = Device.readSensor();
          {body}
        }}
      }}
    }}
    '''

    def test_callee_must_writes_count(self):
        assert_stabilizing(self.CALLEE_WRITES.format(
            body="box.refresh(v); @LOC(\"B\") int out = box.read(); "
                 "SJ.broadcast(out);"
        ))

    def test_callee_reads_checked_in_caller_context(self):
        # read() reads box.lo which is never written: loop invariant, fine
        assert_stabilizing(self.CALLEE_WRITES.format(
            body="@LOC(\"B\") int out = box.read(); SJ.broadcast(out); "
                 "box.refresh(v);"
        ))

    def test_conditional_call_write_not_definite(self):
        assert_rejected(self.CALLEE_WRITES.format(
            body="if (v > 0) { box.refresh(v); } "
                 "@LOC(\"B\") int out = box.read(); SJ.broadcast(out);"
        ), "eviction")


class TestArrays:
    ARRAY = '''
    @LATTICE("ARRF,ARRF*")
    class Main {{
      @LOC("ARRF") float[] data = new float[4];
      @LATTICE("B<X,X<I,I<IN,I*")
      @THISLOC("X")
      void run() {{
        SSJAVA:
        while (true) {{
          @LOC("IN") float v = Device.readTemp();
          {body}
        }}
      }}
    }}
    '''

    def test_fill_loop_is_definite_write(self):
        assert_stabilizing(self.ARRAY.format(
            body="for (@LOC(\"I\") int i = 0; i < data.length; i++) "
                 "{ data[i] = v; } "
                 "@LOC(\"B\") float out = data[0]; SJ.broadcast(out);"
        ))

    def test_single_element_write_not_definite(self):
        assert_rejected(self.ARRAY.format(
            body="data[0] = v; "
                 "@LOC(\"B\") float out = data[1]; SJ.broadcast(out);"
        ), "eviction")

    def test_sj_fill_is_definite_write(self):
        assert_stabilizing(self.ARRAY.format(
            body="SJ.fill(data, v); "
                 "@LOC(\"B\") float out = data[2]; SJ.broadcast(out);"
        ))

    def test_partial_fill_loop_not_detected(self):
        # bound is not arr.length: conservatively not a full overwrite
        assert_rejected(self.ARRAY.format(
            body="for (@LOC(\"I\") int i = 0; i < 2; i++) { data[i] = v; } "
                 "@LOC(\"B\") float out = data[3]; SJ.broadcast(out);"
        ), "eviction")


class TestBufferEviction:
    def test_insert_per_iteration_ok(self):
        source = '''
        @LATTICE("HIST")
        class Main {
          @LOC("HIST") OrderedBuffer h = new OrderedBuffer(3);
          @LATTICE("B<X,X<IN") @THISLOC("X")
          void run() {
            SSJAVA:
            while (true) {
              @LOC("IN") float v = Device.readTemp();
              h.insert(v);
              @LOC("B") float avg = (h.get(0) + h.get(1) + h.get(2)) / 3.0;
              SJ.broadcast(avg);
            }
          }
        }
        '''
        assert_stabilizing(source)

    def test_conditional_insert_rejected(self):
        source = '''
        @LATTICE("HIST")
        class Main {
          @LOC("HIST") OrderedBuffer h = new OrderedBuffer(3);
          @LATTICE("B<X,X<IN") @THISLOC("X")
          void run() {
            SSJAVA:
            while (true) {
              @LOC("IN") float v = Device.readTemp();
              if (v > 0.0) { h.insert(v); }
              @LOC("B") float last = h.get(0);
              SJ.broadcast(last);
            }
          }
        }
        '''
        assert_rejected(source, "eviction")
