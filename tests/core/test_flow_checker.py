"""Flow-down rule tests (Section 4.1, Fig. 4.1)."""

from tests.conftest import assert_rejected, assert_stabilizing, loop_program


class TestBasicFlows:
    def test_literal_flows_anywhere(self):
        assert_stabilizing(loop_program(
            '@LOC("B") int x = 5; SJ.broadcast(x);'
        ))

    def test_input_is_top(self):
        assert_stabilizing(loop_program(
            '@LOC("IN") int v = Device.readSensor(); SJ.broadcast(v);'
        ))

    def test_downward_assignment_allowed(self):
        assert_stabilizing(loop_program(
            '@LOC("IN") int v = Device.readSensor();'
            '@LOC("B") int w = v; SJ.broadcast(w);'
        ))

    def test_upward_assignment_rejected(self):
        assert_rejected(loop_program(
            '@LOC("B") int w = 0;'
            '@LOC("IN") int v = w;'
            'SJ.broadcast(v);'
        ), "flow-down")

    def test_equal_location_rejected(self):
        assert_rejected(loop_program(
            '@LOC("B") int a = 0; @LOC("B") int b = a; SJ.broadcast(b);'
        ), "flow-down")

    def test_equal_shared_allowed(self):
        # a is cleared from ⊤ each iteration, then updated within its own
        # shared location — the paper's read-modify-write pattern
        assert_stabilizing(loop_program(
            '@LOC("S") int a = Device.readSensor();'
            'a = a + 1;'
            'SJ.broadcast(a);',
            lattice="S<IN,S*",
        ))

    def test_equal_shared_without_clearing_rejected(self):
        # b receives only same-shared-location values: never cleared
        assert_rejected(loop_program(
            '@LOC("S") int a = Device.readSensor();'
            '@LOC("S") int b = a;'
            'SJ.broadcast(b);',
            lattice="S<IN,S*",
        ), "shared")

    def test_incomparable_rejected(self):
        assert_rejected(loop_program(
            '@LOC("P") int a = Device.readSensor();'
            '@LOC("Q") int b = a;'
            'SJ.broadcast(b);',
            lattice="P<IN,Q<IN",
        ), "flow-down")

    def test_operation_takes_glb(self):
        # GLB(P, IN) = P flows into B fine
        assert_stabilizing(loop_program(
            '@LOC("IN") int v = Device.readSensor();'
            '@LOC("P") int a = v;'
            '@LOC("B") int c = a + v;'
            'SJ.broadcast(c);',
            lattice="B<P,P<IN",
        ))

    def test_compound_assignment_needs_shared(self):
        assert_rejected(loop_program(
            '@LOC("P") int a = Device.readSensor(); a += 1; SJ.broadcast(a);',
            lattice="P<IN",
        ), "flow-down")
        assert_stabilizing(loop_program(
            '@LOC("P") int a = Device.readSensor(); a += 1; SJ.broadcast(a);',
            lattice="P<IN,P*",
        ))


FIELD_PROGRAM = '''
@LATTICE("LO<HI")
class Box {{
  @LOC("HI") int hi;
  @LOC("LO") int lo;
}}
class Main {{
  @LATTICE("BOXL<X,X<IN")
  @THISLOC("X")
  void run() {{
    @LOC("BOXL") Box box = new Box();
    SSJAVA:
    while (true) {{
      @LOC("IN") int v = Device.readSensor();
      {body}
    }}
  }}
}}
'''


class TestFieldFlows:
    def test_field_write_from_above(self):
        assert_stabilizing(FIELD_PROGRAM.format(
            body="box.hi = v; box.lo = box.hi; SJ.broadcast(box.lo);"
        ))

    def test_field_upward_flow_rejected(self):
        assert_rejected(FIELD_PROGRAM.format(
            body="box.lo = v; box.hi = box.lo; SJ.broadcast(box.hi);"
        ), "flow-down")

    def test_composite_location_derived_from_base(self):
        # writing through a lower base: values must come from above the
        # composite ⟨BOXL, HI⟩
        assert_stabilizing(FIELD_PROGRAM.format(
            body="box.hi = v; SJ.broadcast(box.hi);"
        ))

    def test_static_final_reads_are_top(self):
        source = '''
        class Main {
          static final int LIMIT = 10;
          @LATTICE("B<X,X<IN") @THISLOC("X")
          void run() {
            SSJAVA:
            while (true) {
              @LOC("IN") int v = Device.readSensor();
              @LOC("B") int w = LIMIT + v;
              SJ.broadcast(w);
            }
          }
        }
        '''
        assert_stabilizing(source)

    def test_non_final_static_rejected(self):
        source = '''
        class Main {
          static int counter;
          @LATTICE("B<X,X<IN") @THISLOC("X")
          void run() {
            SSJAVA:
            while (true) {
              @LOC("B") int w = counter;
              SJ.broadcast(w);
            }
          }
        }
        '''
        assert_rejected(source, "flow-down")


class TestArrays:
    def test_array_store_and_load(self):
        source = loop_program(
            'if (buf.length > 0) { }'
            '@LOC("IN") int v = Device.readSensor();'
            'for (@LOC("I") int i = 0; i < buf.length; i++) { buf[i] = v; }'
            '@LOC("B") int out = buf[0];'
            'SJ.broadcast(out);',
            lattice="B<ARR,ARR<I,I<IN,I*,ARR*",
        )
        source = source.replace(
            "void run() {",
            'void run() {\n      @LOC("ARR") int[] buf = new int[4];',
        )
        assert_stabilizing(source)

    def test_array_below_index_required(self):
        # the array must be strictly below the index value
        source = loop_program(
            '@LOC("IN") int v = Device.readSensor();'
            '@LOC("I") int i = 0;'
            'arr[i] = v;'
            'SJ.broadcast(arr[0]);',
            lattice="I<ARR,ARR<IN,I*,ARR*",
        ).replace(
            "void run() {",
            'void run() {\n      @LOC("ARR") int[] arr = new int[2];',
        )
        assert_rejected(source, "flow-down")

    def test_array_read_takes_glb_with_index(self):
        source = loop_program(
            '@LOC("IN") int v = Device.readSensor();'
            'for (@LOC("I") int i = 0; i < a.length; i++) { a[i] = v; }'
            '@LOC("LOW") int x = a[0];'
            'SJ.broadcast(x);',
            lattice="LOW<ARR,ARR<I,I<IN,I*,ARR*",
        ).replace(
            "void run() {",
            'void run() {\n      @LOC("ARR") int[] a = new int[2];',
        )
        assert_stabilizing(source)

    def test_array_length_is_constant(self):
        source = loop_program(
            '@LOC("B") int n = data.length; SJ.broadcast(n);',
        ).replace(
            "void run() {",
            'void run() {\n      @LOC("ARRL") int[] data = new int[3];',
        ).replace('@LATTICE("B<X,X<IN")', '@LATTICE("B<X,X<IN,ARRL<IN")')
        assert_stabilizing(source)


class TestBuffers:
    def test_insert_requires_higher_source(self):
        source = '''
        @LATTICE("HIST")
        class Main {
          @LOC("HIST") OrderedBuffer h = new OrderedBuffer(3);
          @LATTICE("OUT<X,X<IN") @THISLOC("X")
          void run() {
            SSJAVA:
            while (true) {
              @LOC("IN") float v = Device.readTemp();
              h.insert(v);
              @LOC("OUT") float first = h.get(0);
              SJ.broadcast(first);
            }
          }
        }
        '''
        assert_stabilizing(source)

    def test_insert_from_below_rejected(self):
        source = '''
        @LATTICE("HIST")
        class Main {
          @LOC("HIST") OrderedBuffer h = new OrderedBuffer(3);
          @LATTICE("OUT<X,X<IN") @THISLOC("X")
          void run() {
            SSJAVA:
            while (true) {
              @LOC("OUT") float low = 0.0;
              h.insert(low);
              SJ.broadcast(h.get(0));
            }
          }
        }
        '''
        assert_rejected(source, "flow-down")


class TestReferenceAliasing:
    def test_same_location_alias_allowed(self):
        source = '''
        @LATTICE("F2<F1")
        class Rec { @LOC("F1") int f1; @LOC("F2") int f2; }
        @LATTICE("RECL")
        class Main {
          @LOC("RECL") Rec rec = new Rec();
          @LATTICE("B<X,X<IN") @THISLOC("X")
          void run() {
            SSJAVA:
            while (true) {
              @LOC("IN") int v = Device.readSensor();
              @LOC("X,RECL") Rec r = this.rec;
              r.f1 = v;
              r.f2 = r.f1;
              SJ.broadcast(r.f2);
            }
          }
        }
        '''
        assert_stabilizing(source)

    def test_alias_at_different_location_rejected(self):
        source = '''
        @LATTICE("F2<F1")
        class Rec { @LOC("F1") int f1; @LOC("F2") int f2; }
        @LATTICE("RECL")
        class Main {
          @LOC("RECL") Rec rec = new Rec();
          @LATTICE("B<RL,RL<X,X<IN") @THISLOC("X")
          void run() {
            SSJAVA:
            while (true) {
              @LOC("IN") int v = Device.readSensor();
              @LOC("RL") Rec r = this.rec;
              r.f1 = v;
              SJ.broadcast(r.f1);
            }
          }
        }
        '''
        assert_rejected(source, "flow-down")


class TestAnnotationCompleteness:
    def test_missing_var_annotation_reported(self):
        assert_rejected(loop_program(
            "int v = Device.readSensor(); SJ.broadcast(v);"
        ), "annotation")

    def test_unreachable_methods_unchecked(self):
        # a completely unannotated method outside the loop scope is fine
        source = loop_program(
            '@LOC("B") int x = 1; SJ.broadcast(x);',
            extra="class Helper { int raw(int a) { int t = a; return t; } }",
        )
        assert_stabilizing(source)

    def test_missing_field_annotation_reported(self):
        source = '''
        class Rec { int f; }
        @LATTICE("RECL")
        class Main {
          @LOC("RECL") Rec rec = new Rec();
          @LATTICE("B<X,X<IN") @THISLOC("X")
          void run() {
            SSJAVA:
            while (true) {
              @LOC("IN") int v = Device.readSensor();
              rec.f = v;
              SJ.broadcast(rec.f);
            }
          }
        }
        '''
        assert_rejected(source, "annotation")


class TestDeltaLocations:
    def test_delta_sits_between(self):
        source = '''
        @LATTICE("LO<HI")
        class Rec { @LOC("HI") int hi; @LOC("LO") int lo; }
        @LATTICE("RECL")
        class Main {
          @LOC("RECL") Rec rec = new Rec();
          @LATTICE("X<IN") @THISLOC("X")
          void run() {
            SSJAVA:
            while (true) {
              @LOC("IN") int v = Device.readSensor();
              rec.hi = v;
              @DELTA("X,RECL,HI") int mid = rec.hi;
              rec.lo = mid;
              SJ.broadcast(rec.lo);
            }
          }
        }
        '''
        assert_stabilizing(source)
