"""Composite location tests: lexicographic ordering and the GLB of
Fig. 3.2 (Section 3.4)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import composite as cl
from repro.core.lattice import Lattice


@pytest.fixture
def method_lattice():
    return Lattice(name="method", pairs=[("STR", "OBJ"), ("OBJ", "IN")])


@pytest.fixture
def field_lattice():
    lattice = Lattice(
        name="field", pairs=[("DIR2", "DIR1"), ("DIR1", "DIR0")], shared=["S"]
    )
    return lattice


def loc(elements, lattices):
    return cl.CompositeLocation(tuple(elements), tuple(lattices))


class TestCompare:
    def test_single_element_order(self, method_lattice):
        low = loc(["STR"], [method_lattice])
        high = loc(["OBJ"], [method_lattice])
        assert cl.compare(low, high) is cl.Rel.LOWER
        assert cl.compare(high, low) is cl.Rel.HIGHER

    def test_equal(self, method_lattice):
        a = loc(["OBJ"], [method_lattice])
        b = loc(["OBJ"], [method_lattice])
        assert cl.compare(a, b) is cl.Rel.EQUAL

    def test_lexicographic_first_element_dominates(
        self, method_lattice, field_lattice
    ):
        # ⟨STR, DIR0⟩ vs ⟨OBJ, DIR2⟩: STR < OBJ decides regardless of fields
        a = loc(["STR", "DIR0"], [method_lattice, field_lattice])
        b = loc(["OBJ", "DIR2"], [method_lattice, field_lattice])
        assert cl.compare(a, b) is cl.Rel.LOWER

    def test_second_element_decides_on_tie(self, method_lattice, field_lattice):
        a = loc(["OBJ", "DIR2"], [method_lattice, field_lattice])
        b = loc(["OBJ", "DIR0"], [method_lattice, field_lattice])
        assert cl.compare(a, b) is cl.Rel.LOWER

    def test_prefix_is_strictly_higher(self, method_lattice, field_lattice):
        prefix = loc(["OBJ"], [method_lattice])
        longer = loc(["OBJ", "DIR0"], [method_lattice, field_lattice])
        assert cl.compare(prefix, longer) is cl.Rel.HIGHER
        assert cl.compare(longer, prefix) is cl.Rel.LOWER

    def test_different_lattices_incomparable(self, method_lattice, field_lattice):
        other = Lattice(name="other", pairs=[("DIR2", "DIR1")])
        a = loc(["OBJ", "DIR2"], [method_lattice, field_lattice])
        b = loc(["OBJ", "DIR2"], [method_lattice, other])
        assert cl.compare(a, b) is cl.Rel.INCOMPARABLE

    def test_incomparable_elements(self, method_lattice):
        lattice = Lattice(pairs=[("a", "t"), ("b", "t")])
        a = loc(["a"], [lattice])
        b = loc(["b"], [lattice])
        assert cl.compare(a, b) is cl.Rel.INCOMPARABLE

    def test_top_above_all(self, method_lattice):
        a = loc(["IN"], [method_lattice])
        assert cl.compare(cl.TOP_LOC, a) is cl.Rel.HIGHER
        assert cl.compare(a, cl.TOP_LOC) is cl.Rel.LOWER
        assert cl.compare(cl.TOP_LOC, cl.TOP_LOC) is cl.Rel.EQUAL

    def test_bottom_below_all(self, method_lattice):
        a = loc(["STR"], [method_lattice])
        assert cl.compare(cl.BOT_LOC, a) is cl.Rel.LOWER
        assert cl.compare(cl.BOT_LOC, cl.BOT_LOC) is cl.Rel.EQUAL
        assert cl.compare(cl.BOT_LOC, cl.TOP_LOC) is cl.Rel.LOWER


class TestGlb:
    def test_comparable_returns_lower(self, method_lattice):
        a = loc(["STR"], [method_lattice])
        b = loc(["IN"], [method_lattice])
        assert cl.glb(a, b) == a

    def test_case1_truncates(self, method_lattice, field_lattice):
        # first elements meet strictly below both: result is the bare meet
        lattice = Lattice(pairs=[("m", "a"), ("m", "b")])
        a = loc(["a", "DIR0"], [lattice, field_lattice])
        b = loc(["b", "DIR1"], [lattice, field_lattice])
        meet = cl.glb(a, b)
        assert isinstance(meet, cl.CompositeLocation)
        assert meet.elements == ("m",)

    def test_case2_returns_lower_side(self, method_lattice, field_lattice):
        a = loc(["STR", "DIR0"], [method_lattice, field_lattice])
        b = loc(["OBJ", "DIR2"], [method_lattice, field_lattice])
        assert cl.glb(a, b) == a

    def test_case4_recurses(self, method_lattice, field_lattice):
        a = loc(["OBJ", "DIR1"], [method_lattice, field_lattice])
        b = loc(["OBJ", "DIR0"], [method_lattice, field_lattice])
        assert cl.glb(a, b) == a

    def test_prefix_glb_is_extension(self, method_lattice, field_lattice):
        prefix = loc(["OBJ"], [method_lattice])
        longer = loc(["OBJ", "DIR0"], [method_lattice, field_lattice])
        assert cl.glb(prefix, longer) == longer

    def test_mismatched_lattices_give_bottom(self, method_lattice, field_lattice):
        other = Lattice(name="other", pairs=[("x", "y")])
        a = loc(["OBJ", "DIR0"], [method_lattice, field_lattice])
        b = loc(["OBJ", "x"], [method_lattice, other])
        assert cl.glb(a, b) is cl.BOT_LOC

    def test_glb_with_extremes(self, method_lattice):
        a = loc(["OBJ"], [method_lattice])
        assert cl.glb(cl.TOP_LOC, a) == a
        assert cl.glb(a, cl.TOP_LOC) == a
        assert cl.glb(cl.BOT_LOC, a) is cl.BOT_LOC

    def test_glb_all(self, method_lattice):
        locs = [
            loc(["IN"], [method_lattice]),
            loc(["OBJ"], [method_lattice]),
            loc(["STR"], [method_lattice]),
        ]
        assert cl.glb_all(locs) == locs[-1]

    def test_glb_all_empty_is_top(self):
        assert cl.glb_all([]) is cl.TOP_LOC


class TestFlowJudgments:
    def test_strictly_down_allowed(self, method_lattice):
        src = loc(["IN"], [method_lattice])
        dst = loc(["OBJ"], [method_lattice])
        assert cl.can_flow(src, dst).allowed

    def test_up_rejected(self, method_lattice):
        src = loc(["OBJ"], [method_lattice])
        dst = loc(["IN"], [method_lattice])
        assert not cl.can_flow(src, dst).allowed

    def test_equal_non_shared_rejected(self, method_lattice):
        a = loc(["OBJ"], [method_lattice])
        assert not cl.can_flow(a, a).allowed

    def test_equal_shared_allowed(self, field_lattice, method_lattice):
        shared = loc(["OBJ", "S"], [method_lattice, field_lattice])
        judgment = cl.can_flow(shared, shared)
        assert judgment.allowed and judgment.via_shared

    def test_top_source_flows_anywhere(self, method_lattice):
        dst = loc(["IN"], [method_lattice])
        assert cl.can_flow(cl.TOP_LOC, dst).allowed
        assert cl.can_flow(cl.TOP_LOC, cl.TOP_LOC).allowed

    def test_bottom_destination_accepts_all(self, method_lattice):
        src = loc(["STR"], [method_lattice])
        assert cl.can_flow(src, cl.BOT_LOC).allowed

    def test_incomparable_rejected(self):
        lattice = Lattice(pairs=[("a", "t"), ("b", "t")])
        assert not cl.can_flow(loc(["a"], [lattice]), loc(["b"], [lattice])).allowed

    def test_pc_top_unconstrained(self, method_lattice):
        dst = loc(["IN"], [method_lattice])
        assert cl.pc_allows(cl.TOP_LOC, dst).allowed

    def test_pc_must_dominate(self, method_lattice):
        pc = loc(["OBJ"], [method_lattice])
        assert cl.pc_allows(pc, loc(["STR"], [method_lattice])).allowed
        assert not cl.pc_allows(pc, loc(["IN"], [method_lattice])).allowed


class TestHelpers:
    def test_append(self, method_lattice, field_lattice):
        base = loc(["OBJ"], [method_lattice])
        extended = base.append("DIR0", field_lattice)
        assert extended.elements == ("OBJ", "DIR0")

    def test_is_shared(self, method_lattice, field_lattice):
        assert loc(["OBJ", "S"], [method_lattice, field_lattice]).is_shared()
        assert not loc(["OBJ", "DIR0"], [method_lattice, field_lattice]).is_shared()

    def test_str_format(self, method_lattice):
        assert str(loc(["OBJ"], [method_lattice])) == "⟨OBJ⟩"

    def test_length_validation(self, method_lattice):
        with pytest.raises(ValueError):
            cl.CompositeLocation(("A",), ())
        with pytest.raises(ValueError):
            cl.CompositeLocation((), ())


class TestProperties:
    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_glb_below_both(self, data):
        lattice = Lattice(pairs=[("b", "m1"), ("b", "m2"), ("m1", "t"),
                                 ("m2", "t")])
        names = ["b", "m1", "m2", "t"]
        a = loc([data.draw(st.sampled_from(names))], [lattice])
        b = loc([data.draw(st.sampled_from(names))], [lattice])
        meet = cl.glb(a, b)
        assert cl.leq(meet, a)
        assert cl.leq(meet, b)

    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_compare_antisymmetric(self, data):
        lattice = Lattice(pairs=[("a", "b"), ("b", "c")])
        field = Lattice(pairs=[("x", "y")])
        names = ["a", "b", "c"]
        fields = ["x", "y"]
        def draw_loc():
            first = data.draw(st.sampled_from(names))
            if data.draw(st.booleans()):
                return loc([first, data.draw(st.sampled_from(fields))],
                           [lattice, field])
            return loc([first], [lattice])
        l1, l2 = draw_loc(), draw_loc()
        assert cl.compare(l1, l2) is cl.compare(l2, l1).flipped()
