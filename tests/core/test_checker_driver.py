"""Checker driver tests (CheckReport, structure checks)."""

from repro.core import Check, check_program
from repro.core.errors import Check as CheckEnum
from tests.conftest import assert_stabilizing


class TestStructure:
    def test_no_event_loop_rejected(self):
        report = check_program("class T { void m() { } }")
        assert not report.self_stabilizing
        assert report.errors_of(CheckEnum.STRUCTURE)

    def test_multiple_event_loops_rejected(self):
        report = check_program(
            "class T { void a() { SSJAVA: while (true) { } } "
            "void b() { SSJAVA: while (true) { } } }"
        )
        assert report.errors_of(CheckEnum.STRUCTURE)

    def test_minimal_stabilizing_program(self):
        report = assert_stabilizing(
            "class T { void run() { SSJAVA: while (true) { "
            "SJ.broadcast(1); } } }"
        )
        assert report.checked_scope == {("T", "run")}

    def test_report_format_lists_errors(self):
        report = check_program("class T { void m() { } }")
        assert "no main event loop" in report.format()

    def test_clean_report_format(self):
        report = assert_stabilizing(
            "class T { void run() { SSJAVA: while (true) { "
            "SJ.broadcast(1); } } }"
        )
        assert "all checks passed" in report.format()

    def test_loop_facts_exposed(self):
        report = assert_stabilizing('''
        @LATTICE("F")
        class T {
          @LOC("F") int f;
          @LATTICE("B<X,X<IN") @THISLOC("X")
          void run() {
            SSJAVA: while (true) {
              @LOC("IN") int v = Device.readSensor();
              f = v;
              SJ.broadcast(f);
            }
          }
        }
        ''')
        assert report.loop_facts is not None
        assert ("this", "f") in report.loop_facts.must_writes_end

    def test_summaries_exposed(self):
        report = assert_stabilizing('''
        @LATTICE("F")
        class T {
          @LOC("F") int f;
          @LATTICE("B<X,X<IN") @THISLOC("X")
          void run() {
            SSJAVA: while (true) {
              @LOC("IN") int v = Device.readSensor();
              store(v);
              SJ.broadcast(1);
            }
          }
          @LATTICE("ST<SV") @THISLOC("ST")
          void store(@LOC("SV") int v) { this.f = v; }
        }
        ''')
        summary = report.summaries[("T", "store")]
        assert ("this", "f") in summary.must_writes

    def test_checked_scope_excludes_trusted(self):
        report = assert_stabilizing('''
        @TRUSTED
        class Hw { void go() { } }
        @LATTICE("HW")
        class T {
          @LOC("HW") Hw hw = new Hw();
          @LATTICE("B<X,X<IN") @THISLOC("X")
          void run() {
            SSJAVA: while (true) { hw.go(); SJ.broadcast(1); }
          }
        }
        ''')
        assert ("Hw", "go") not in report.checked_scope

    def test_errors_of_filters_by_check(self):
        report = check_program('''
        class T {
          @LATTICE("B<X,X<IN") @THISLOC("X")
          void run() {
            SSJAVA: while (true) {
              @LOC("B") int low = 0;
              @LOC("IN") int up = low;
              SJ.broadcast(up);
            }
          }
        }
        ''')
        assert report.errors_of(Check.FLOW_DOWN)
        assert not report.errors_of(Check.TERMINATION)
