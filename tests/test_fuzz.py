"""Crash-freedom fuzzing.

Generates random well-formed sjava programs (valid syntax and
conventional types, arbitrary location annotations) and checks that:

* the printer round-trips them (parse → print → parse is a fixpoint);
* the full SJava checker always terminates with a report — accepting or
  rejecting, but never raising — whatever the annotations say;
* the inference engine always produces annotations that the checker
  accepts, on any *unannotated* generated program whose runtime shape is
  an event loop.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.checker import check_program
from repro.infer import infer_annotations
from repro.lang.parser import parse_program
from repro.lang.printer import print_program
from tests.conftest import analyze

LOCATIONS = ["LA", "LB", "LC", "LD"]
FIELDS = ["f0", "f1", "f2"]
VARS = ["v0", "v1", "v2"]


@st.composite
def programs(draw, annotated: bool = True):
    """A random single-class event-loop program over int state."""
    # --- lattice over locations: order by index (acyclic) ---
    entries = []
    for i, low in enumerate(LOCATIONS):
        for high in LOCATIONS[i + 1:]:
            if draw(st.booleans()):
                entries.append(f"{low}<{high}")
    shared = [f"{loc}*" for loc in LOCATIONS if draw(st.booleans())]
    lattice = ",".join(entries + shared) or "LA<LB"

    def ann(loc: str) -> str:
        return f'@LOC("{loc}") ' if annotated else ""

    field_locs = {f: draw(st.sampled_from(LOCATIONS)) for f in FIELDS}
    fields = "\n  ".join(
        f"{ann(field_locs[f])}int {f};" for f in FIELDS
    )

    var_locs = {v: draw(st.sampled_from(LOCATIONS)) for v in VARS}

    # --- statements over {fields, vars, input} ---
    def operand() -> str:
        kind = draw(st.sampled_from(["field", "var", "input", "lit"]))
        if kind == "field":
            return draw(st.sampled_from(FIELDS))
        if kind == "var":
            return draw(st.sampled_from(VARS))
        if kind == "lit":
            return str(draw(st.integers(0, 9)))
        return "inv"

    def expr() -> str:
        if draw(st.booleans()):
            return operand()
        op = draw(st.sampled_from(["+", "-", "*"]))
        return f"{operand()} {op} {operand()}"

    statements = []
    for _ in range(draw(st.integers(1, 6))):
        kind = draw(st.sampled_from(["assign-field", "assign-var", "if",
                                     "emit"]))
        if kind == "assign-field":
            statements.append(f"{draw(st.sampled_from(FIELDS))} = {expr()};")
        elif kind == "assign-var":
            statements.append(f"{draw(st.sampled_from(VARS))} = {expr()};")
        elif kind == "if":
            cmp_op = draw(st.sampled_from(["<", ">", "=="]))
            body = f"{draw(st.sampled_from(VARS))} = {expr()};"
            statements.append(f"if ({operand()} {cmp_op} {operand()}) "
                              f"{{ {body} }}")
        else:
            statements.append(f"SJ.broadcast({operand()});")
    statements.append(f"SJ.broadcast({draw(st.sampled_from(FIELDS))});")

    this_loc = draw(st.sampled_from(LOCATIONS))
    method_anns = (
        f'@LATTICE("{lattice},MIN<{this_loc}") @THISLOC("MTHIS")'
        if annotated
        else ""
    )
    class_ann = f'@LATTICE("{lattice}")' if annotated else ""
    var_decls = "\n      ".join(
        (f'@LOC("{var_locs[v]}") ' if annotated else "") + f"int {v} = 0;"
        for v in VARS
    )
    method_lattice = (
        f'@LATTICE("{lattice},MTHIS<MIN") @THISLOC("MTHIS")'
        if annotated else ""
    )
    in_ann = '@LOC("MIN") ' if annotated else ""

    return f"""
    {class_ann}
    class Fuzzed {{
      {fields}
      {method_lattice}
      void run() {{
        SSJAVA:
        while (true) {{
          {in_ann}int inv = Device.readSensor();
          {var_decls}
          {' '.join(statements)}
        }}
      }}
    }}
    """


class TestFuzzing:
    @given(programs(annotated=True))
    @settings(max_examples=120, deadline=None)
    def test_checker_never_crashes(self, source):
        report = check_program(source)  # must not raise
        assert isinstance(report.self_stabilizing, bool)

    @given(programs(annotated=True))
    @settings(max_examples=60, deadline=None)
    def test_printer_roundtrip(self, source):
        printed = print_program(parse_program(source))
        assert print_program(parse_program(printed)) == printed

    @given(programs(annotated=False))
    @settings(max_examples=60, deadline=None)
    def test_inference_output_always_verifies(self, source):
        info = analyze(source)
        result = infer_annotations(info, mode="sinfer")
        # inference may legitimately produce annotations that the
        # *eviction* analysis rejects (non-stabilizing generated program,
        # Section 5.2.7) — but the flow-down typing itself must hold
        if not result.verified:
            kinds = {d.check.value for d in result.check_report.errors}
            assert kinds <= {"shared", "eviction"}, (
                kinds, result.check_report.format(), source
            )
