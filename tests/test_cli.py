"""CLI tests."""

from pathlib import Path

import pytest

from repro.cli import main

APP_DIR = Path(__file__).resolve().parents[1] / "src/repro/apps/programs"
WIND = str(APP_DIR / "wind_sensor.sj")
WEATHER = str(APP_DIR / "weather_index.sj")


@pytest.fixture
def broken_program(tmp_path):
    path = tmp_path / "broken.sj"
    path.write_text('''
    @LATTICE("LOW<HIGH")
    class T {
      @LOC("LOW") int low;
      @LOC("HIGH") int high;
      @LATTICE("B<X,X<IN") @THISLOC("X")
      void run() {
        SSJAVA:
        while (true) {
          @LOC("IN") int v = Device.readSensor();
          low = v;
          high = low;
          SJ.broadcast(high);
        }
      }
    }
    ''')
    return str(path)


class TestCheck:
    def test_check_passing_program(self, capsys):
        assert main(["check", WIND]) == 0
        assert "all checks passed" in capsys.readouterr().out

    def test_check_failing_program(self, broken_program, capsys):
        assert main(["check", broken_program]) == 1
        assert "flow-down" in capsys.readouterr().out

    def test_missing_file(self, capsys):
        assert main(["check", "/nope/missing.sj"]) == 2

    def test_syntax_error(self, tmp_path, capsys):
        path = tmp_path / "bad.sj"
        path.write_text("class {")
        assert main(["check", str(path)]) == 2
        assert "front-end error" in capsys.readouterr().err


class TestInfer:
    def test_infer_emits_annotations(self, tmp_path, capsys):
        stripped = tmp_path / "stripped.sj"
        from repro.apps import app_source

        stripped.write_text(app_source("weather_index", annotated=False))
        assert main(["infer", str(stripped)]) == 0
        captured = capsys.readouterr()
        assert "@LATTICE(" in captured.out
        assert "verified" in captured.err

    def test_infer_naive_mode(self, tmp_path, capsys):
        stripped = tmp_path / "stripped.sj"
        from repro.apps import app_source

        stripped.write_text(app_source("wind_sensor", annotated=False))
        assert main(["infer", str(stripped), "--mode", "naive", "--quiet"]) == 0
        assert "@LATTICE" not in capsys.readouterr().out


class TestRunAndInject:
    def test_run_produces_output(self, capsys):
        assert main(["run", WEATHER, "--iterations", "5"]) == 0
        captured = capsys.readouterr()
        assert len(captured.out.strip().splitlines()) == 5
        assert "5 iterations" in captured.err

    def test_inject_reports_histogram(self, capsys):
        assert main([
            "inject", WEATHER, "--trials", "6", "--iterations", "15"
        ]) == 0
        assert "corrupted:" in capsys.readouterr().out

    def test_inject_exit_1_when_trials_diverge(self, monkeypatch, capsys):
        """A diverged trial falsifies stabilization: that run must not
        exit 0."""
        from repro.runtime.stabilization import InjectionTrial

        diverged = InjectionTrial(
            target_step=1, injection_iteration=2, corrupted_output=True,
            recovery_samples=None, recovery_iterations=None, diverged=True,
        )

        class FakeExperiment:
            def __init__(self, *args, **kwargs):
                pass

            def run_trials(self, trials, seed=0):
                return [diverged] * trials

        monkeypatch.setattr(
            "repro.cli.StabilizationExperiment", FakeExperiment
        )
        assert main(["inject", WEATHER, "--trials", "3"]) == 1
        assert "diverged: 3" in capsys.readouterr().out


class TestLattices:
    def test_ascii_rendering(self, capsys):
        assert main(["lattices", WEATHER]) == 0
        out = capsys.readouterr().out
        assert "class Weather" in out
        assert "⊤" in out and "⊥" in out

    def test_dot_rendering(self, capsys):
        assert main(["lattices", WEATHER, "--format", "dot"]) == 0
        out = capsys.readouterr().out
        assert "digraph" in out
        assert "->" in out
