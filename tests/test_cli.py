"""CLI tests."""

from pathlib import Path

import pytest

from repro.cli import main

APP_DIR = Path(__file__).resolve().parents[1] / "src/repro/apps/programs"
WIND = str(APP_DIR / "wind_sensor.sj")
WEATHER = str(APP_DIR / "weather_index.sj")


@pytest.fixture
def broken_program(tmp_path):
    path = tmp_path / "broken.sj"
    path.write_text('''
    @LATTICE("LOW<HIGH")
    class T {
      @LOC("LOW") int low;
      @LOC("HIGH") int high;
      @LATTICE("B<X,X<IN") @THISLOC("X")
      void run() {
        SSJAVA:
        while (true) {
          @LOC("IN") int v = Device.readSensor();
          low = v;
          high = low;
          SJ.broadcast(high);
        }
      }
    }
    ''')
    return str(path)


class TestCheck:
    def test_check_passing_program(self, capsys):
        assert main(["check", WIND]) == 0
        assert "all checks passed" in capsys.readouterr().out

    def test_check_failing_program(self, broken_program, capsys):
        assert main(["check", broken_program]) == 1
        assert "flow-down" in capsys.readouterr().out

    def test_missing_file(self, capsys):
        assert main(["check", "/nope/missing.sj"]) == 2

    def test_syntax_error(self, tmp_path, capsys):
        path = tmp_path / "bad.sj"
        path.write_text("class {")
        assert main(["check", str(path)]) == 2
        assert "front-end error" in capsys.readouterr().err


class TestInfer:
    def test_infer_emits_annotations(self, tmp_path, capsys):
        stripped = tmp_path / "stripped.sj"
        from repro.apps import app_source

        stripped.write_text(app_source("weather_index", annotated=False))
        assert main(["infer", str(stripped)]) == 0
        captured = capsys.readouterr()
        assert "@LATTICE(" in captured.out
        assert "verified" in captured.err

    def test_infer_naive_mode(self, tmp_path, capsys):
        stripped = tmp_path / "stripped.sj"
        from repro.apps import app_source

        stripped.write_text(app_source("wind_sensor", annotated=False))
        assert main(["infer", str(stripped), "--mode", "naive", "--quiet"]) == 0
        assert "@LATTICE" not in capsys.readouterr().out


class TestRunAndInject:
    def test_run_produces_output(self, capsys):
        assert main(["run", WEATHER, "--iterations", "5"]) == 0
        captured = capsys.readouterr()
        assert len(captured.out.strip().splitlines()) == 5
        assert "5 iterations" in captured.err

    def test_inject_reports_histogram(self, capsys):
        assert main([
            "inject", WEATHER, "--trials", "6", "--iterations", "15"
        ]) == 0
        assert "corrupted:" in capsys.readouterr().out

    def test_inject_exit_1_when_trials_diverge(self, monkeypatch, capsys):
        """A diverged trial falsifies stabilization: that run must not
        exit 0."""
        from repro.runtime.stabilization import InjectionTrial

        diverged = InjectionTrial(
            target_step=1, injection_iteration=2, corrupted_output=True,
            recovery_samples=None, recovery_iterations=None, diverged=True,
        )

        class FakeExperiment:
            def __init__(self, *args, **kwargs):
                pass

            def run_trials(self, trials, seed=0):
                return [diverged] * trials

        monkeypatch.setattr(
            "repro.cli.StabilizationExperiment", FakeExperiment
        )
        assert main(["inject", WEATHER, "--trials", "3"]) == 1
        assert "diverged: 3" in capsys.readouterr().out


class TestLattices:
    def test_ascii_rendering(self, capsys):
        assert main(["lattices", WEATHER]) == 0
        out = capsys.readouterr().out
        assert "class Weather" in out
        assert "⊤" in out and "⊥" in out

    def test_dot_rendering(self, capsys):
        assert main(["lattices", WEATHER, "--format", "dot"]) == 0
        out = capsys.readouterr().out
        assert "digraph" in out
        assert "->" in out


class TestApps:
    def test_listing_names_every_app(self, capsys):
        from repro.apps import all_app_names

        assert main(["apps", "--no-sites"]) == 0
        out = capsys.readouterr().out
        for name in all_app_names():
            assert name in out
        assert "single-node" in out and "distributed" in out

    def test_json_catalog(self, capsys):
        import json

        assert main(["apps", "--json", "--no-sites"]) == 0
        catalog = json.loads(capsys.readouterr().out)
        by_name = {entry["name"]: entry for entry in catalog}
        assert by_name["wind_sensor"]["kind"] == "single-node"
        assert by_name["herman_bit"]["kind"] == "distributed"
        assert by_name["herman_bit"]["topology"] == "ring:5"
        assert by_name["herman_bit"]["devices"] == [
            "readSelf", "readLeft", "readCoin",
        ]
        assert "sites" not in by_name["wind_sensor"]

    def test_site_counts_included_by_default(self, capsys):
        assert main(["apps", "--json"]) == 0
        import json

        catalog = json.loads(capsys.readouterr().out)
        assert all(entry["sites"] > 0 for entry in catalog)


class TestDist:
    def test_run_prints_reference_summary(self, capsys):
        assert main(["dist", "run", "--app", "dijkstra_ring"]) == 0
        captured = capsys.readouterr()
        assert "dijkstra_ring" in captured.err  # topology summary
        assert "node 0:" in captured.out and "node 4:" in captured.out

    def test_run_with_injection_reports_verdict(self, capsys):
        assert main([
            "dist", "run", "--app", "gradient_field", "--inject", "500",
        ]) == 0
        out = capsys.readouterr().out
        assert "site 500" in out

    def test_unknown_app_is_a_usage_error(self, capsys):
        assert main(["dist", "run", "--app", "nonexistent"]) == 2

    def test_topology_override_validated(self, capsys):
        assert main([
            "dist", "run", "--app", "herman_bit", "--topology", "ring:4",
        ]) == 2
        assert "odd ring" in capsys.readouterr().err
