"""Campaign observability: per-shard obs records and tracing."""

from __future__ import annotations

import json

from repro.obs import RingBufferSink, Tracer, installed_tracer
from repro.runtime.campaign import CampaignConfig, CampaignRunner

OBS_KEYS = {
    "run_seconds", "queue_wait_seconds", "attempts", "retries", "timeouts",
    "peak_rss_bytes",
}


def tiny_config(**overrides) -> CampaignConfig:
    base = dict(
        apps=("wind_sensor",),
        mode="stratified",
        trials=4,
        strata=2,
        iterations=12,
        seed=7,
        shard_size=2,
    )
    base.update(overrides)
    return CampaignConfig(**base)


class TestShardObs:
    def test_manifest_records_per_shard_obs(self, tmp_path):
        checkpoint = tmp_path / "ck.json"
        CampaignRunner(config=tiny_config(), checkpoint_path=checkpoint).run()
        manifest = json.loads(checkpoint.read_text())
        done = [
            record for record in manifest["shards"].values()
            if record["status"] == "done"
        ]
        assert done, "campaign completed no shards?"
        for record in done:
            obs = record["obs"]
            assert OBS_KEYS <= set(obs)
            assert obs["run_seconds"] >= 0
            assert obs["queue_wait_seconds"] >= 0
            assert obs["attempts"] >= 1
            assert obs["retries"] == obs["attempts"] - 1
            assert obs["timeouts"] == 0
            # worker-side memory accounting (POSIX: always present)
            assert obs["peak_rss_bytes"] > 0

    def test_obs_survives_parallel_execution(self, tmp_path):
        checkpoint = tmp_path / "ck.json"
        CampaignRunner(
            config=tiny_config(),
            checkpoint_path=checkpoint,
            max_workers=2,
        ).run()
        manifest = json.loads(checkpoint.read_text())
        for record in manifest["shards"].values():
            if record["status"] == "done":
                assert OBS_KEYS <= set(record["obs"])

    def test_resume_tolerates_records_without_obs(self, tmp_path):
        """Manifests written before this schema addition have no ``obs``
        key; resuming from one must still work."""
        checkpoint = tmp_path / "ck.json"
        CampaignRunner(config=tiny_config(), checkpoint_path=checkpoint).run()
        manifest = json.loads(checkpoint.read_text())
        for record in manifest["shards"].values():
            record.pop("obs", None)
        checkpoint.write_text(json.dumps(manifest))
        rerun = CampaignRunner(
            config=tiny_config(), checkpoint_path=checkpoint
        )
        report = rerun.run()
        assert report["complete"] is True
        assert rerun.executed_shards == 0  # nothing re-ran


class TestCampaignTracing:
    def test_drive_emits_shard_spans(self, tmp_path):
        ring = RingBufferSink()
        with installed_tracer(Tracer(sinks=(ring,))):
            CampaignRunner(
                config=tiny_config(), checkpoint_path=tmp_path / "ck.json"
            ).run()
        roots = [r for r in ring.roots if r.name == "campaign_drive"]
        assert len(roots) == 1
        shard_spans = [
            span for span in roots[0].walk() if span.name == "shard"
        ]
        assert len(shard_spans) == 2
        for span in shard_spans:
            assert "shard_id" in span.attrs
            assert span.attrs["app"] == "wind_sensor"
            assert span.counters["trials"] > 0
