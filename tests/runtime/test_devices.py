"""Device simulation tests."""

import pytest

from repro.runtime.devices import (
    DeviceBus,
    InputExhausted,
    IterationKeyedDevice,
    OutputSink,
    ScriptedDevice,
    SyntheticDevice,
)


class TestScriptedDevice:
    def test_replays_in_order(self):
        device = ScriptedDevice({"readSensor": [1, 2, 3]})
        assert [device.read("readSensor") for _ in range(3)] == [1, 2, 3]

    def test_exhaustion_raises(self):
        device = ScriptedDevice({"readSensor": [1]})
        device.read("readSensor")
        with pytest.raises(InputExhausted):
            device.read("readSensor")

    def test_independent_streams(self):
        device = ScriptedDevice({"a": [1], "b": [2]})
        assert device.read("b") == 2
        assert device.read("a") == 1

    def test_unknown_function_raises(self):
        with pytest.raises(InputExhausted):
            ScriptedDevice({}).read("readSensor")


class TestIterationKeyedDevice:
    def test_values_keyed_by_iteration_and_index(self):
        device = IterationKeyedDevice(
            lambda name, it, k: (it, k), iterations=3
        )
        device.begin_iteration(0)
        assert device.read("x") == (0, 0)
        assert device.read("x") == (0, 1)
        device.begin_iteration(1)
        assert device.read("x") == (1, 0)

    def test_per_name_index(self):
        device = IterationKeyedDevice(lambda n, i, k: (n, k), iterations=2)
        device.begin_iteration(0)
        assert device.read("a") == ("a", 0)
        assert device.read("b") == ("b", 0)

    def test_extra_reads_do_not_shift_later_iterations(self):
        # the property the error model needs: reading more in one
        # iteration leaves the next iteration's values unchanged
        device = IterationKeyedDevice(lambda n, i, k: i * 10 + k, iterations=3)
        device.begin_iteration(0)
        device.read("x")
        device.read("x")
        device.read("x")  # extra
        device.begin_iteration(1)
        assert device.read("x") == 10

    def test_limit_raises(self):
        device = IterationKeyedDevice(lambda n, i, k: 0, iterations=1)
        device.begin_iteration(1)
        with pytest.raises(InputExhausted):
            device.read("x")


class TestSyntheticDevice:
    def test_deterministic_per_seed(self):
        first = SyntheticDevice(seed=9)
        second = SyntheticDevice(seed=9)
        values_a = [first.read("readTemp") for _ in range(5)]
        values_b = [second.read("readTemp") for _ in range(5)]
        assert values_a == values_b

    def test_int_sensors_in_range(self):
        device = SyntheticDevice(seed=1)
        for _ in range(20):
            value = device.read("readSonar")
            assert 0 <= value <= 15

    def test_limit(self):
        device = SyntheticDevice(seed=0, limit=2)
        device.read("readTemp")
        device.read("readTemp")
        with pytest.raises(InputExhausted):
            device.read("readTemp")


class TestOutputSink:
    def test_collects_and_clears(self):
        sink = OutputSink()
        sink.emit(1)
        sink.emit("x")
        assert sink.values == [1, "x"]
        sink.clear()
        assert sink.values == []
