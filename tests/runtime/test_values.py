"""Runtime value representation tests."""

from repro.lang import ast
from repro.runtime.values import (
    ArrayVal,
    BufferVal,
    ObjectVal,
    default_value,
    java_int_div,
    java_int_rem,
)


class TestObjectVal:
    def test_fields_are_per_instance(self):
        a = ObjectVal("C")
        b = ObjectVal("C")
        a.fields["x"] = 1
        assert "x" not in b.fields

    def test_class_name_kept(self):
        assert ObjectVal("Rec").class_name == "Rec"


class TestArrayVal:
    def test_initialized_with_default(self):
        arr = ArrayVal(3, 0.0)
        assert arr.items == [0.0, 0.0, 0.0]
        assert len(arr) == 3
        assert arr.default == 0.0

    def test_zero_length(self):
        assert len(ArrayVal(0, 0)) == 0


class TestBufferVal:
    def test_insert_shifts_down(self):
        buf = BufferVal(3, 0.0)
        buf.insert(1.0)
        buf.insert(2.0)
        assert buf.items == [2.0, 1.0, 0.0]

    def test_capacity_fixed(self):
        buf = BufferVal(2, 0)
        for value in (1, 2, 3):
            buf.insert(value)
        assert buf.size() == 2
        assert buf.items == [3, 2]

    def test_oldest_falls_off(self):
        buf = BufferVal(2, 0)
        buf.insert(1)
        buf.insert(2)
        buf.insert(3)
        assert buf.get(1) == 2  # 1 evicted

    def test_get_head_is_newest(self):
        buf = BufferVal(3, 0.0)
        buf.insert(9.0)
        assert buf.get(0) == 9.0


class TestDefaults:
    def test_primitive_defaults(self):
        assert default_value(ast.PrimType(name="int")) == 0
        assert default_value(ast.PrimType(name="float")) == 0.0
        assert default_value(ast.PrimType(name="boolean")) is False
        assert default_value(ast.PrimType(name="String")) is None

    def test_reference_defaults_null(self):
        assert default_value(ast.ClassType(name="C")) is None
        assert default_value(
            ast.ArrayType(element=ast.PrimType(name="int"))
        ) is None


class TestJavaArithmeticHelpers:
    def test_div_truncates_toward_zero(self):
        assert java_int_div(9, 4) == 2
        assert java_int_div(-9, 4) == -2
        assert java_int_div(9, -4) == -2
        assert java_int_div(-9, -4) == 2

    def test_rem_identity(self):
        for a in (-9, -1, 0, 7, 13):
            for b in (-4, -1, 2, 5):
                assert java_int_div(a, b) * b + java_int_rem(a, b) == a

    def test_rem_sign(self):
        assert java_int_rem(-9, 4) == -1
        assert java_int_rem(9, -4) == 1
