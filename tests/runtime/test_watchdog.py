"""Step-budget watchdog: a corrupted loop bound must terminate the
trial (recorded as ``timeout``), never hang the worker process."""

from __future__ import annotations

import pytest

from repro.runtime.compiler import CompiledRunner
from repro.runtime.devices import IterationKeyedDevice
from repro.runtime.interpreter import (
    Interpreter,
    RuntimeOptions,
    StepBudgetExceeded,
)
from repro.runtime.stabilization import StabilizationExperiment
from tests.conftest import analyze

#: An injected fault on ``v`` or ``i`` turns the inner loop's exit test
#: ``i != v + 8`` into one that (practically) never fires — exactly the
#: runaway-computation shape the watchdog exists for.
RUNAWAY = '''
class Main {
  void run() {
    SSJAVA:
    while (true) {
      int v = Device.readSensor();
      int acc = 0;
      int i = 0;
      while (i != v + 8) { acc = acc + i; i = i + 1; }
      SJ.broadcast(acc);
    }
  }
}
'''

BACKENDS = (Interpreter, CompiledRunner)


def device_factory():
    return IterationKeyedDevice(lambda name, it, k: it % 4, iterations=5)


class TestStepMetering:
    @pytest.mark.parametrize("engine", BACKENDS)
    def test_steps_are_counted(self, engine):
        runner = engine(analyze(RUNAWAY), device_factory(),
                        options=RuntimeOptions(ignore_errors=True))
        runner.run()
        assert runner.steps > 0

    def test_backends_meter_identically(self):
        info = analyze(RUNAWAY)
        counts = []
        for engine in BACKENDS:
            runner = engine(info, device_factory(),
                            options=RuntimeOptions(ignore_errors=True))
            runner.run()
            counts.append(runner.steps)
        assert counts[0] == counts[1]

    @pytest.mark.parametrize("engine", BACKENDS)
    def test_tiny_budget_raises_even_in_crash_avoidance_mode(self, engine):
        """The watchdog is harness protection, not language semantics:
        it fires even in ignore-errors mode, where every other fault is
        swallowed."""
        runner = engine(
            analyze(RUNAWAY), device_factory(),
            options=RuntimeOptions(ignore_errors=True, step_budget=10),
        )
        with pytest.raises(StepBudgetExceeded):
            runner.run()
        assert runner.steps == 11  # stopped right past the budget

    @pytest.mark.parametrize("engine", BACKENDS)
    def test_generous_budget_does_not_change_behavior(self, engine):
        info = analyze(RUNAWAY)
        plain = engine(info, device_factory(),
                       options=RuntimeOptions(ignore_errors=True))
        plain.run()
        budgeted = engine(
            info, device_factory(),
            options=RuntimeOptions(ignore_errors=True, step_budget=10**9),
        )
        budgeted.run()
        assert budgeted.sink.values == plain.sink.values
        assert budgeted.steps == plain.steps


class TestExperimentWatchdog:
    def make_experiment(self, **overrides) -> StabilizationExperiment:
        kwargs = dict(step_budget=5000, step_budget_factor=None)
        kwargs.update(overrides)
        return StabilizationExperiment(
            analyze(RUNAWAY), device_factory,
            options=RuntimeOptions(ignore_errors=True), **kwargs
        )

    def test_runaway_injected_loop_is_recorded_as_timeout(self):
        """Acceptance criterion: a trial whose corrupted value produces a
        runaway loop terminates via the step-budget watchdog and is
        recorded as a ``timeout`` trial, not a hung worker."""
        experiment = self.make_experiment()
        trials = [
            experiment.trial_at(site, seed=3)
            for site in range(min(60, experiment.total_steps()))
        ]
        timed_out = [t for t in trials if t.timed_out]
        assert timed_out, "no trial tripped the watchdog"
        for trial in timed_out:
            assert trial.corrupted_output
            assert trial.recovery_samples is None
            assert not trial.diverged

    def test_reference_run_is_never_budgeted(self):
        # Even a budget far below the clean run's step count leaves the
        # reference untouched: only injected runs race the watchdog.
        experiment = self.make_experiment(step_budget=1)
        assert experiment.reference_groups()
        assert experiment.reference_steps() > 1
        assert experiment.trial_at(0, seed=3).timed_out

    def test_relative_budget_derives_from_reference_steps(self):
        experiment = self.make_experiment(
            step_budget=None, step_budget_factor=64
        )
        budget = experiment._trial_budget()
        assert budget == max(1000, 64 * experiment.reference_steps())

    def test_no_budget_means_no_watchdog(self):
        experiment = self.make_experiment(
            step_budget=None, step_budget_factor=None
        )
        assert experiment._trial_budget() is None
