"""Fault-injection campaigns: planning, checkpoint/resume, watchdog,
report aggregation (the ISSUE 2 tentpole acceptance tests live here)."""

from __future__ import annotations

import json
import random
from pathlib import Path

import pytest

from repro.runtime.campaign import (
    DIVERGED,
    MASKED,
    NOT_INJECTED,
    RECOVERED,
    TIMEOUT,
    CampaignConfig,
    CampaignError,
    CampaignRunner,
    plan_shards,
    plan_sites,
    run_shard,
    verdict_of,
)
from repro.runtime.stabilization import InjectionTrial
from repro.service import protocol

GOLDEN_DIR = Path(__file__).parent.parent / "service" / "golden"


def small_config(**overrides) -> CampaignConfig:
    base = dict(
        apps=("wind_sensor",),
        mode="stratified",
        trials=8,
        strata=4,
        iterations=12,
        seed=7,
        shard_size=2,
    )
    base.update(overrides)
    return CampaignConfig(**base)


class TestSitePlanning:
    def test_exhaustive_covers_every_site(self):
        sites = plan_sites("exhaustive", 37, trials=0, strata=1,
                           max_sites=None, rng=random.Random(0))
        assert sites == list(range(37))

    def test_exhaustive_thinning_is_even_not_a_prefix(self):
        sites = plan_sites("exhaustive", 100, trials=0, strata=1,
                           max_sites=10, rng=random.Random(0))
        assert len(sites) == 10
        assert sites == sorted(set(sites))
        assert sites[-1] >= 90  # the tail of the site space is reached

    def test_stratified_hits_every_stratum(self):
        total, strata = 80, 8
        sites = plan_sites("stratified", total, trials=16, strata=strata,
                           max_sites=None, rng=random.Random(1))
        hit = {site * strata // total for site in sites}
        assert hit == set(range(strata))

    def test_stratified_is_deterministic_per_seed(self):
        kwargs = dict(trials=16, strata=4, max_sites=None)
        a = plan_sites("stratified", 60, rng=random.Random(3), **kwargs)
        b = plan_sites("stratified", 60, rng=random.Random(3), **kwargs)
        assert a == b

    def test_uniform_length(self):
        sites = plan_sites("uniform", 50, trials=12, strata=1,
                           max_sites=None, rng=random.Random(2))
        assert len(sites) == 12
        assert all(0 <= s < 50 for s in sites)

    def test_unknown_mode_rejected(self):
        with pytest.raises(CampaignError):
            CampaignConfig(apps=("wind_sensor",), mode="chaotic")

    def test_unknown_app_rejected(self):
        with pytest.raises(CampaignError):
            CampaignConfig(apps=("toaster",))


class TestShardPlanning:
    def test_chunking_and_determinism(self):
        config = small_config()
        shards = plan_shards(config, {"wind_sensor": 120})
        assert plan_shards(config, {"wind_sensor": 120}) == shards
        assert all(len(s.sites) <= config.shard_size for s in shards)
        assert len({s.shard_id for s in shards}) == len(shards)
        total_sites = sum(len(s.sites) for s in shards)
        assert total_sites == 8  # trials=8, stratified

    def test_fingerprint_tracks_the_sweep(self):
        assert small_config().fingerprint() == small_config().fingerprint()
        assert (small_config(seed=8).fingerprint()
                != small_config().fingerprint())
        assert (small_config(mode="uniform").fingerprint()
                != small_config().fingerprint())

    def test_config_round_trips(self):
        config = small_config()
        assert CampaignConfig.from_dict(config.to_dict()) == config


def _trial(**overrides) -> InjectionTrial:
    base = dict(
        target_step=5,
        injection_iteration=2,
        corrupted_output=True,
        recovery_samples=4,
        recovery_iterations=1,
    )
    base.update(overrides)
    return InjectionTrial(**base)


class TestVerdicts:
    def test_recovered(self):
        assert verdict_of(_trial()) == RECOVERED

    def test_masked(self):
        trial = _trial(corrupted_output=False, recovery_samples=None,
                       recovery_iterations=None)
        assert verdict_of(trial) == MASKED

    def test_diverged(self):
        trial = _trial(recovery_samples=None, recovery_iterations=None,
                       diverged=True)
        assert verdict_of(trial) == DIVERGED

    def test_timeout_wins_over_everything(self):
        trial = _trial(timed_out=True, injection_iteration=None,
                       recovery_samples=None, recovery_iterations=None)
        assert verdict_of(trial) == TIMEOUT

    def test_not_injected(self):
        trial = _trial(injection_iteration=None, corrupted_output=False,
                       recovery_samples=None, recovery_iterations=None)
        assert verdict_of(trial) == NOT_INJECTED


def _strip_volatile(report: dict) -> dict:
    return {k: v for k, v in report.items() if k != "elapsed_seconds"}


class TestCampaignRun:
    def test_in_process_run_is_complete_and_valid(self, tmp_path):
        runner = CampaignRunner(config=small_config(),
                                checkpoint_path=tmp_path / "ck.json")
        report = runner.run()
        assert report["complete"] is True
        assert report["shards"]["planned"] == runner.executed_shards == 4
        payload = protocol.campaign_payload(report)
        protocol.validate_campaign_payload(payload)
        (entry,) = report["apps"]
        assert entry["trials"] == 8
        assert entry["injected"] + entry["not_injected"] == 8

    def test_interrupted_campaign_resumes_identically(self, tmp_path):
        """Acceptance criterion: a campaign killed mid-run resumes from
        its checkpoint without re-running completed shards and produces
        aggregate statistics identical to an uninterrupted run."""
        config = small_config()
        baseline = CampaignRunner(
            config=config, checkpoint_path=tmp_path / "baseline.json"
        ).run()
        assert baseline["shards"]["planned"] == 4

        # First leg dies (simulated) after two checkpointed shards.
        checkpoint = tmp_path / "interrupted.json"
        first_leg = CampaignRunner(config=config, checkpoint_path=checkpoint,
                                   stop_after_shards=2)
        partial = first_leg.run()
        assert first_leg.executed_shards == 2
        assert partial["complete"] is False

        # Second leg resumes: only the remaining shards execute.
        second_leg = CampaignRunner(config=config, checkpoint_path=checkpoint)
        resumed = second_leg.run()
        assert second_leg.executed_shards == 2
        assert resumed["complete"] is True
        assert resumed["apps"] == baseline["apps"]
        assert resumed["shards"] == baseline["shards"]

    def test_resume_skips_everything_when_done(self, tmp_path):
        config = small_config()
        checkpoint = tmp_path / "ck.json"
        CampaignRunner(config=config, checkpoint_path=checkpoint).run()
        rerun = CampaignRunner(config=config, checkpoint_path=checkpoint)
        report = rerun.run()
        assert rerun.executed_shards == 0
        assert report["complete"] is True

    def test_checkpoint_of_other_config_is_refused(self, tmp_path):
        checkpoint = tmp_path / "ck.json"
        CampaignRunner(config=small_config(),
                       checkpoint_path=checkpoint).run()
        other = CampaignRunner(config=small_config(seed=8),
                               checkpoint_path=checkpoint)
        with pytest.raises(CampaignError, match="different campaign"):
            other.run()
        fresh = CampaignRunner(config=small_config(seed=8),
                               checkpoint_path=checkpoint, fresh=True)
        assert fresh.run()["complete"] is True

    def test_corrupted_checkpoint_is_quarantined_and_resumed(self, tmp_path):
        """A torn/truncated manifest is an arbitrary initial state, not a
        fatal one: it is moved aside for the post-mortem and the sweep
        restarts from scratch, completing as if uninterrupted."""
        checkpoint = tmp_path / "ck.json"
        checkpoint.write_text('{"fingerprint": "x", "shards": ')  # truncated
        runner = CampaignRunner(config=small_config(),
                                checkpoint_path=checkpoint)
        report = runner.run()
        assert report["complete"]
        quarantine = checkpoint.with_suffix(".json.quarantined")
        assert quarantine.exists()
        assert quarantine.read_text().startswith('{"fingerprint": "x"')
        # The healed checkpoint on disk is valid, resumable JSON again.
        manifest = json.loads(checkpoint.read_text())
        assert manifest["fingerprint"] == small_config().fingerprint()

    def test_checkpoint_survives_any_single_kill_point(self, tmp_path):
        """The manifest on disk is valid, resumable JSON after every
        shard boundary — the file a SIGKILLed driver leaves behind."""
        config = small_config()
        checkpoint = tmp_path / "ck.json"
        for stop in (1, 2, 3):
            runner = CampaignRunner(config=config, checkpoint_path=checkpoint,
                                    fresh=(stop == 1),
                                    stop_after_shards=stop)
            runner.run()
            manifest = json.loads(checkpoint.read_text())
            assert manifest["fingerprint"] == config.fingerprint()
        final = CampaignRunner(config=config, checkpoint_path=checkpoint)
        report = final.run()
        assert report["complete"] is True

    def test_parallel_run_matches_in_process_run(self, tmp_path):
        config = small_config(shard_size=4)
        in_process = CampaignRunner(config=config).run()
        parallel = CampaignRunner(config=config, max_workers=2,
                                  shard_timeout=120.0).run()
        assert _strip_volatile(parallel) == _strip_volatile(in_process)

    def test_tiny_step_budget_records_timeouts_not_hangs(self):
        """End-to-end watchdog path: with an absurd budget every injected
        run trips the watchdog and is recorded as ``timeout``."""
        config = small_config(step_budget=5, step_budget_factor=None)
        report = CampaignRunner(config=config).run()
        (entry,) = report["apps"]
        assert entry["timeout"] == entry["trials"]
        assert entry["timeout_rate"] == 1.0
        payload = protocol.campaign_payload(report)
        protocol.validate_campaign_payload(payload)


class TestRunShardWorker:
    def test_worker_round_trips_plain_dicts(self):
        config = small_config()
        shards = plan_shards(config, {"wind_sensor": 120})
        payload = shards[0].payload(config)
        result = run_shard(json.loads(json.dumps(payload)))  # wire-safe
        assert result["shard_id"] == shards[0].shard_id
        assert len(result["trials"]) == len(shards[0].sites)
        for trial in result["trials"]:
            assert trial["app"] == "wind_sensor"
            assert trial["verdict"] in (
                MASKED, RECOVERED, DIVERGED, TIMEOUT, NOT_INJECTED
            )


class TestGoldenReport:
    def test_report_matches_golden_file(self):
        """The campaign report schema is pinned byte-for-byte (the
        executable form of docs/ROBUSTNESS.md): planning, trial
        outcomes and aggregation are all deterministic for a fixed
        config."""
        config = CampaignConfig(
            apps=("wind_sensor",), mode="stratified", trials=8, strata=4,
            iterations=12, seed=7, shard_size=4,
        )
        report = CampaignRunner(config=config).run()
        payload = protocol.campaign_payload(report)
        protocol.validate_campaign_payload(payload)
        golden = json.loads(
            (GOLDEN_DIR / "campaign.report.json").read_text()
        )
        assert payload == golden
