"""Differential tests: the closure-compiling backend must be
observationally identical to the tree-walking interpreter."""

import pytest

from repro.apps import APP_NAMES, app_device_factory, load_app
from repro.runtime import ErrorInjector, Interpreter, RuntimeOptions
from repro.runtime.compiler import CompiledRunner
from repro.runtime.devices import ScriptedDevice
from tests.conftest import analyze


def run_both(info, device_factory, options=None, injector_factory=None):
    results = []
    for backend in (Interpreter, CompiledRunner):
        injector = injector_factory() if injector_factory else None
        engine = backend(
            info, device_factory(), options=options, injector=injector
        )
        engine.run()
        results.append(
            (engine.sink.values, engine.iteration_marks, engine.error_log)
        )
    return results


class TestDifferentialApps:
    @pytest.mark.parametrize("name", APP_NAMES)
    def test_clean_runs_identical(self, name, apps):
        interp, compiled = run_both(
            apps[name].info, app_device_factory(name, 10)
        )
        assert compiled == interp

    @pytest.mark.parametrize("name", APP_NAMES)
    def test_injected_runs_identical(self, name, apps):
        # injection counts value-producing sites: identical site numbering
        # means identical corruption, so outputs must match exactly
        interp, compiled = run_both(
            apps[name].info,
            app_device_factory(name, 10),
            options=RuntimeOptions(ignore_errors=True),
            injector_factory=lambda: ErrorInjector(target_step=37, seed=5),
        )
        assert compiled == interp


class TestDifferentialFeatures:
    def test_crash_avoidance_identical(self):
        source = '''
        class Box { int val; }
        class Main {
          Box box;
          int[] data = new int[2];
          void run() {
            SSJAVA:
            while (true) {
              int v = Device.readSensor();
              SJ.broadcast(box.val);
              SJ.broadcast(data[v]);
              SJ.broadcast(10 / v);
              if (v > 0) { box = new Box(); box.val = v; }
            }
          }
        }
        '''
        info = analyze(source)
        interp, compiled = run_both(
            info,
            lambda: ScriptedDevice({"readSensor": [0, 3, 1]}),
            options=RuntimeOptions(ignore_errors=True),
        )
        assert compiled == interp

    def test_loop_bounds_identical(self):
        source = '''
        class Main {
          void run() {
            SSJAVA:
            while (true) {
              int v = Device.readSensor();
              int i = 0;
              @MAXLOOP(4) while (i < 100) { SJ.broadcast(i); i++; }
            }
          }
        }
        '''
        info = analyze(source)
        interp, compiled = run_both(
            info,
            lambda: ScriptedDevice({"readSensor": [0]}),
            options=RuntimeOptions(ignore_errors=True),
        )
        assert compiled == interp

    def test_dispatch_strings_buffers_identical(self):
        source = '''
        class A { int tag() { return 1; } }
        class B extends A { int tag() { return 2; } }
        class Main {
          A obj = new B();
          OrderedBuffer h = new OrderedBuffer(2);
          void run() {
            SSJAVA:
            while (true) {
              float v = Device.readTemp();
              h.insert(v);
              SJ.broadcast("tag=" + obj.tag());
              SJ.broadcast(h.get(0) + h.get(1));
            }
          }
        }
        '''
        info = analyze(source)
        interp, compiled = run_both(
            info, lambda: ScriptedDevice({"readTemp": [1.0, 2.0]})
        )
        assert compiled == interp

    def test_strict_mode_errors_identical(self):
        source = '''
        class Main {
          int[] data = new int[1];
          void run() {
            SSJAVA:
            while (true) {
              int v = Device.readSensor();
              SJ.broadcast(data[5]);
            }
          }
        }
        '''
        info = analyze(source)
        from repro.runtime.interpreter import SJavaRuntimeError

        for backend in (Interpreter, CompiledRunner):
            engine = backend(info, ScriptedDevice({"readSensor": [1]}))
            with pytest.raises(SJavaRuntimeError):
                engine.run()

    def test_compiled_bodies_are_cached(self):
        app = load_app("mp3_decoder")
        runner = CompiledRunner(app.info, app_device_factory("mp3_decoder", 4)())
        runner.run()
        assert ("Mp3Decoder", "decodeGranule") in runner._compiled
        assert len(runner._compiled) >= 3


class TestSpeed:
    def test_compiled_is_not_slower(self, apps):
        import time

        def clock(backend) -> float:
            start = time.perf_counter()
            backend(
                apps["mp3_decoder"].info, app_device_factory("mp3_decoder", 30)()
            ).run()
            return time.perf_counter() - start

        clock(CompiledRunner)  # warm up
        interp_time = min(clock(Interpreter) for _ in range(2))
        compiled_time = min(clock(CompiledRunner) for _ in range(2))
        # allow generous noise margin; typical ratio is 2-4x
        assert compiled_time < interp_time * 1.2
