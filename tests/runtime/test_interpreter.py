"""Interpreter tests, including the crash-avoidance semantics of
Section 4.4."""

import pytest

from repro.runtime.devices import IterationKeyedDevice, ScriptedDevice
from repro.runtime.interpreter import Interpreter, RuntimeOptions, SJavaRuntimeError
from repro.runtime.values import java_int_div, java_int_rem
from tests.conftest import analyze


def run(source: str, streams=None, options=None, iterations=5):
    info = analyze(source)
    if streams is not None:
        device = ScriptedDevice(streams)
    else:
        device = IterationKeyedDevice(
            lambda name, it, k: it * 10 + k, iterations=iterations
        )
    interp = Interpreter(info, device, options=options)
    interp.run()
    return interp


LOOP = '''
class Main {{
  {members}
  void run() {{
    SSJAVA:
    while (true) {{
      {body}
    }}
  }}
  {methods}
}}
'''


def loop(body: str, members: str = "", methods: str = "") -> str:
    return LOOP.format(body=body, members=members, methods=methods)


class TestBasicExecution:
    def test_event_loop_runs_until_input_exhausted(self):
        interp = run(loop("int v = Device.readSensor(); SJ.broadcast(v);"),
                     streams={"readSensor": [1, 2, 3]})
        assert interp.sink.values == [1, 2, 3]

    def test_iteration_keyed_device(self):
        interp = run(loop("int v = Device.readSensor(); SJ.broadcast(v);"),
                     iterations=3)
        assert interp.sink.values == [0, 10, 20]

    def test_outputs_by_iteration(self):
        interp = run(loop(
            "int v = Device.readSensor(); SJ.broadcast(v); SJ.broadcast(v + 1);"
        ), iterations=2)
        assert interp.outputs_by_iteration() == [[0, 1], [10, 11]]

    def test_field_state_persists_across_iterations(self):
        interp = run(loop(
            "int v = Device.readSensor(); SJ.broadcast(prev); prev = v;",
            members="int prev;",
        ), streams={"readSensor": [5, 6, 7]})
        assert interp.sink.values == [0, 5, 6]

    def test_max_iterations_cap(self):
        interp = run(
            loop("SJ.broadcast(1);"),
            options=RuntimeOptions(max_iterations=4),
        )
        assert len(interp.sink.values) == 4

    def test_method_calls_and_dispatch(self):
        source = '''
        class A { int f() { return 1; } }
        class B extends A { int f() { return 2; } }
        class Main {
          A obj = new B();
          void run() {
            SSJAVA:
            while (true) {
              int v = Device.readSensor();
              SJ.broadcast(obj.f());
            }
          }
        }
        '''
        interp = run(source, streams={"readSensor": [0]})
        assert interp.sink.values == [2]

    def test_static_finals_evaluated_once(self):
        source = loop(
            "int v = Device.readSensor(); SJ.broadcast(C2 + v);",
            members="static final int C2 = 40;",
        )
        interp = run(source, streams={"readSensor": [2]})
        assert interp.sink.values == [42]

    def test_arrays_and_fill(self):
        interp = run(loop(
            "int v = Device.readSensor();"
            "SJ.fill(data, v);"
            "SJ.broadcast(data[0] + data[3]);",
            members="int[] data = new int[4];",
        ), streams={"readSensor": [7]})
        assert interp.sink.values == [14]

    def test_ordered_buffer_semantics(self):
        interp = run(loop(
            "float v = Device.readTemp();"
            "h.insert(v);"
            "SJ.broadcast(h.get(0));"
            "SJ.broadcast(h.get(2));",
            members="OrderedBuffer h = new OrderedBuffer(3);",
        ), streams={"readTemp": [1.0, 2.0, 3.0]})
        # newest at index 0; oldest shifted out after capacity inserts
        assert interp.sink.values == [1.0, 0.0, 2.0, 0.0, 3.0, 1.0]

    def test_for_loop_and_break_continue(self):
        interp = run(loop(
            "int v = Device.readSensor();"
            "int acc = 0;"
            "for (int i = 0; i < 10; i++) {"
            "  if (i == 2) { continue; }"
            "  if (i == 5) { break; }"
            "  acc = acc + i;"
            "}"
            "SJ.broadcast(acc);",
        ), streams={"readSensor": [0]})
        assert interp.sink.values == [0 + 1 + 3 + 4]

    def test_string_concat_and_tostr(self):
        interp = run(loop(
            'int v = Device.readSensor();'
            'String s = "v=" + v;'
            'SJ.broadcast(s);'
            'SJ.broadcast(SJ.toStr(true));',
        ), streams={"readSensor": [3]})
        assert interp.sink.values == ["v=3", "true"]

    def test_math_builtins(self):
        interp = run(loop(
            "int v = Device.readSensor();"
            "SJ.broadcast(Math.abs(-3));"
            "SJ.broadcast(Math.max(2, 5));"
            "SJ.broadcast(Math.floor(2.9));",
        ), streams={"readSensor": [0]})
        assert interp.sink.values == [3, 5, 2]


class TestJavaArithmetic:
    def test_int_division_truncates_toward_zero(self):
        assert java_int_div(7, 2) == 3
        assert java_int_div(-7, 2) == -3
        assert java_int_div(7, -2) == -3

    def test_remainder_sign_follows_dividend(self):
        assert java_int_rem(7, 3) == 1
        assert java_int_rem(-7, 3) == -1
        assert java_int_rem(7, -3) == 1

    def test_interpreted_division(self):
        interp = run(loop(
            "int v = Device.readSensor(); SJ.broadcast(v / 2); "
            "SJ.broadcast(v % 2);"
        ), streams={"readSensor": [-7]})
        assert interp.sink.values == [-3, -1]

    def test_mixed_arithmetic_promotes(self):
        interp = run(loop(
            "int v = Device.readSensor(); SJ.broadcast(v / 2.0);"
        ), streams={"readSensor": [7]})
        assert interp.sink.values == [3.5]


class TestCrashAvoidance:
    NULL_DEREF = loop(
        "int v = Device.readSensor();"
        "if (v > 0) { box = new Box(); box.val = v; }"
        "SJ.broadcast(box.val);",
        members="Box box;",
    ) + "\nclass Box { int val; }"

    def test_strict_mode_raises_on_null(self):
        with pytest.raises(SJavaRuntimeError):
            run(self.NULL_DEREF, streams={"readSensor": [0]})

    def test_ignore_mode_yields_default(self):
        interp = run(
            self.NULL_DEREF,
            streams={"readSensor": [0, 5, 0]},
            options=RuntimeOptions(ignore_errors=True),
        )
        # null read gives the field's default 0, then the box exists
        assert interp.sink.values == [0, 5, 5]
        assert interp.error_log

    def test_division_by_zero_defined(self):
        interp = run(
            loop("int v = Device.readSensor(); SJ.broadcast(10 / v);"),
            streams={"readSensor": [0, 2]},
            options=RuntimeOptions(ignore_errors=True),
        )
        assert interp.sink.values == [0, 5]

    def test_out_of_bounds_defined(self):
        interp = run(
            loop(
                "int v = Device.readSensor();"
                "data[v] = 9;"
                "SJ.broadcast(data[v]);",
                members="int[] data = new int[2];",
            ),
            streams={"readSensor": [5, 1]},
            options=RuntimeOptions(ignore_errors=True),
        )
        assert interp.sink.values == [0, 9]

    def test_inner_loop_bound_enforced_silently(self):
        interp = run(
            loop(
                "int v = Device.readSensor();"
                "int i = 0;"
                "@MAXLOOP(3) while (i < 100) { SJ.broadcast(i); i++; }"
            ),
            streams={"readSensor": [0]},
            options=RuntimeOptions(ignore_errors=True),
        )
        assert interp.sink.values == [0, 1, 2]
        assert interp.error_log

    def test_inner_loop_bound_raises_in_strict_mode(self):
        with pytest.raises(SJavaRuntimeError):
            run(
                loop("int v = Device.readSensor(); while (true) { }"),
                streams={"readSensor": [0]},
                options=RuntimeOptions(inner_loop_bound=10),
            )

    def test_call_on_null_receiver_executes_target(self):
        # Section 4.4: the execution chooses the method target so
        # stabilizing side effects still run
        source = '''
        class Worker { int done; void work() { done = 1; } }
        class Main {
          Worker w;
          void run() {
            SSJAVA:
            while (true) {
              int v = Device.readSensor();
              w.work();
              SJ.broadcast(v);
            }
          }
        }
        '''
        interp = run(
            source,
            streams={"readSensor": [1]},
            options=RuntimeOptions(ignore_errors=True),
        )
        assert interp.sink.values == [1]
        assert interp.error_log
