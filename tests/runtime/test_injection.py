"""Fault injection and stabilization-experiment tests (Section 6.2)."""

from repro.runtime.devices import IterationKeyedDevice
from repro.runtime.injection import ErrorInjector, StepCounter
from repro.runtime.interpreter import Interpreter, RuntimeOptions
from repro.runtime.stabilization import (
    StabilizationExperiment,
    recovery_distance,
    recovery_histogram,
)
from tests.conftest import analyze

SOURCE = '''
class Main {
  int prev0; int prev1;
  void run() {
    SSJAVA:
    while (true) {
      int v = Device.readSensor();
      int out = (v + prev0 + prev1) / 3;
      prev1 = prev0;
      prev0 = v;
      SJ.broadcast(out);
    }
  }
}
'''


def make_experiment(iterations=20):
    info = analyze(SOURCE)

    def factory():
        return IterationKeyedDevice(
            lambda name, it, k: (it * 3) % 7, iterations=iterations
        )

    return StabilizationExperiment(
        info, factory, options=RuntimeOptions(ignore_errors=True)
    )


class TestInjector:
    def test_step_counter_counts_sites(self):
        exp = make_experiment()
        total = exp.total_steps()
        assert total > 0
        # deterministic
        assert total == make_experiment().total_steps()

    def test_injector_fires_once(self):
        info = analyze(SOURCE)
        injector = ErrorInjector(target_step=5, seed=1)
        interp = Interpreter(
            info,
            IterationKeyedDevice(lambda n, i, k: 1, iterations=10),
            options=RuntimeOptions(ignore_errors=True),
            injector=injector,
        )
        interp.run()
        assert injector.fired
        assert len(injector.injected_at) == 1
        assert injector.injection_iteration is not None

    def test_burst_injection(self):
        info = analyze(SOURCE)
        injector = ErrorInjector(target_step=5, seed=1, burst=3)
        interp = Interpreter(
            info,
            IterationKeyedDevice(lambda n, i, k: 1, iterations=10),
            options=RuntimeOptions(ignore_errors=True),
            injector=injector,
        )
        interp.run()
        assert 1 <= len(injector.injected_at) <= 3

    def test_type_preserving_corruption(self):
        injector = ErrorInjector(target_step=0, seed=2)

        class FakeNode:
            uid = 0

        corrupted = injector.site(True, FakeNode())
        assert isinstance(corrupted, bool)
        injector2 = ErrorInjector(target_step=0, seed=2)
        assert isinstance(injector2.site(1.5, FakeNode()), float)

    def test_references_never_corrupted(self):
        injector = ErrorInjector(target_step=0, seed=2)

        class FakeNode:
            uid = 0

        marker = object()
        assert injector.site(marker, FakeNode()) is marker

    def test_equal_but_not_identical_corruption_is_not_recorded(self):
        """Regression: the injector used to test ``corrupted is not
        value``, so drawing a replacement equal to the original but not
        interned (any large int) was miscounted as an injection — the
        trial then reported a phantom fault that no output could ever
        reflect."""
        injector = ErrorInjector(target_step=0, seed=2,
                                 int_range=(100_000, 100_000))

        class FakeNode:
            uid = 0

        # the drawn replacement equals the original: no observable fault
        assert injector.site(100_000, FakeNode()) == 100_000
        assert injector.injected_at == []
        assert injector.injection_iteration is None
        assert not injector.fired

    def test_unequal_corruption_is_recorded(self):
        injector = ErrorInjector(target_step=0, seed=2,
                                 int_range=(100_000, 100_000))

        class FakeNode:
            uid = 0

        assert injector.site(7, FakeNode()) == 100_000
        assert injector.injected_at == [0]
        assert injector.fired


class TestRecoveryDistance:
    def test_identical_outputs_mean_masked(self):
        groups = [[1], [2], [3]]
        samples, iters, diverged = recovery_distance(groups, groups, 0)
        assert samples is None and not diverged

    def test_single_corrupt_iteration(self):
        ref = [[1], [2], [3], [4]]
        bad = [[1], [99], [3], [4]]
        samples, iters, diverged = recovery_distance(ref, bad, 1)
        assert (samples, iters, diverged) == (1, 1, False)

    def test_multi_iteration_corruption(self):
        ref = [[1, 1], [2, 2], [3, 3], [4, 4]]
        bad = [[1, 1], [9, 2], [3, 9], [4, 4]]
        samples, iters, diverged = recovery_distance(ref, bad, 1)
        assert samples == 4 and iters == 2

    def test_divergence_detected(self):
        ref = [[1], [2], [3]]
        bad = [[1], [9], [9]]
        samples, iters, diverged = recovery_distance(ref, bad, 1)
        assert diverged

    def test_truncated_faulty_run_is_divergence_not_masking(self):
        """Regression: a faulty run cut short (a crash ended the event
        loop early) used to compare equal on the surviving prefix and be
        reported as *masked* — the strongest possible verdict for what is
        actually a lost tail of output."""
        ref = [[1], [2], [3]]
        bad = [[1], [2]]
        samples, iters, diverged = recovery_distance(ref, bad, 1)
        assert (samples, iters, diverged) == (None, None, True)

    def test_extra_trailing_groups_cannot_claim_recovery(self):
        ref = [[1], [2], [3]]
        bad = [[1], [9], [3], [4]]
        samples, iters, diverged = recovery_distance(ref, bad, 1)
        assert diverged

    def test_histogram_binning(self):
        class T:
            def __init__(self, s):
                self.recovery_samples = s

        trials = [T(3), T(5), T(12), T(None)]
        assert recovery_histogram(trials, bin_size=10) == {0: 2, 10: 1}


class TestExperiment:
    def test_trials_recover_within_state_depth(self):
        exp = make_experiment()
        trials = exp.run_trials(20, seed=3)
        corrupted = [t for t in trials if t.corrupted_output]
        assert corrupted, "expected at least one visible corruption"
        total = len(exp.reference_groups())
        for trial in corrupted:
            if trial.diverged:
                # a fault injected too close to the end of the input
                # cannot demonstrate recovery: not a real divergence
                assert trial.injection_iteration >= total - 3
            else:
                # two fields of history: recovery within <= 3 iterations
                assert trial.recovery_iterations <= 3

    def test_reference_cached(self):
        exp = make_experiment()
        first = exp.reference_groups()
        assert exp.reference_groups() is first

    def test_trials_deterministic_per_seed(self):
        a = make_experiment().trial(seed=11)
        b = make_experiment().trial(seed=11)
        assert a == b
