"""Convergence telemetry: per-iteration digests, divergence/convergence
series, trial events, and manifest persistence (incl. old-manifest
compatibility)."""

from __future__ import annotations

import json

import pytest

from repro.apps import app_experiment
from repro.obs.events import (
    EventBuffer,
    EventLog,
    get_event_log,
    installed_event_log,
)
from repro.runtime.campaign import (
    CampaignConfig,
    CampaignRunner,
    trial_record,
    trial_telemetry,
)
from repro.runtime.interpreter import Interpreter, state_digest
from repro.runtime.stabilization import (
    InjectionTrial,
    convergence_series,
    divergence_series,
)


class TestSeries:
    def test_divergence_zero_when_identical(self):
        groups = [[1, 2], [3], [4, 5]]
        assert divergence_series(groups, groups) == [0, 0, 0]

    def test_divergence_counts_mismatched_positions(self):
        reference = [[1, 2], [3, 4], [5]]
        faulty = [[1, 2], [9, 4], [5]]
        assert divergence_series(reference, faulty) == [0, 1, 0]

    def test_divergence_counts_missing_positions(self):
        reference = [[1, 2], [3, 4]]
        faulty = [[1, 2], [3]]  # truncated iteration
        assert divergence_series(reference, faulty) == [0, 1]

    def test_divergence_counts_extra_iterations(self):
        reference = [[1]]
        faulty = [[1], [2, 3]]
        assert divergence_series(reference, faulty) == [0, 2]

    def test_convergence_plateau_equals_recovery_samples(self):
        reference = [[1], [2, 3], [4], [5, 6], [7]]
        # injected at iteration 1, recovered after 2 iterations:
        # samples replayed = len([2,3]) + len([4]) = 3
        series = convergence_series(reference, 1, 2)
        assert series == [2, 3, 3, 3]
        assert series[-1] == 3

    def test_convergence_immediate_recovery_is_flat_zero(self):
        reference = [[1], [2], [3]]
        assert convergence_series(reference, 1, 0) == [0, 0]


class TestStateDigest:
    def test_deterministic_8_hex_chars(self):
        digest = state_digest([1, 2.5, "x"])
        assert digest == state_digest([1, 2.5, "x"])
        assert len(digest) == 8
        int(digest, 16)  # hex

    def test_distinguishes_values(self):
        assert state_digest([1]) != state_digest([2])

    def test_iteration_digests_match_across_engines(self):
        compiled = app_experiment("wind_sensor", 6)
        interpreted = app_experiment("wind_sensor", 6)
        interpreted.engine = Interpreter
        run_c = compiled._run(None)
        run_i = interpreted._run(None)
        digests_c = run_c.iteration_digests()
        digests_i = run_i.iteration_digests()
        assert len(digests_c) == 6
        assert digests_c == digests_i


class TestTrialTelemetry:
    def test_recovered_trial_curve_ends_at_recovery_samples(self):
        experiment = app_experiment("wind_sensor", 10)
        recovered = None
        for seed in range(30):
            trial = experiment.trial(seed)
            if trial.recovery_samples is not None and not trial.diverged:
                recovered = trial
                break
        assert recovered is not None, "no recovered trial in 30 seeds"
        assert recovered.convergence is not None
        assert recovered.convergence[-1] == recovered.recovery_samples
        assert recovered.divergence is not None
        assert any(recovered.divergence), "recovered run never diverged?"

    def test_masked_trial_has_flat_divergence_no_convergence(self):
        experiment = app_experiment("wind_sensor", 10)
        masked = None
        for seed in range(40):
            trial = experiment.trial(seed)
            if (trial.injection_iteration is not None
                    and not trial.corrupted_output):
                masked = trial
                break
        assert masked is not None, "no masked trial in 40 seeds"
        assert masked.divergence == [0] * len(masked.divergence)
        assert masked.convergence is None

    def test_trial_events_emitted(self):
        buffer = EventBuffer()
        experiment = app_experiment("wind_sensor", 8)
        with installed_event_log(
            EventLog(level="debug", sinks=(buffer,))
        ):
            experiment.trial_at(5, seed=3)
        names = [r["name"] for r in buffer.records]
        assert "trial.corrupted" in names
        assert any(n.startswith("trial.") and n != "trial.corrupted"
                   for n in names)
        assert "runtime.iteration" in names
        iteration_events = [
            r for r in buffer.records if r["name"] == "runtime.iteration"
        ]
        for record in iteration_events:
            assert set(record["attrs"]) == {
                "iteration", "outputs", "digest"
            }

    def test_iteration_events_gated_below_debug(self):
        buffer = EventBuffer()
        experiment = app_experiment("wind_sensor", 8)
        with installed_event_log(EventLog(level="info", sinks=(buffer,))):
            experiment.trial_at(5, seed=3)
        names = {r["name"] for r in buffer.records}
        assert "runtime.iteration" not in names
        assert "trial.corrupted" in names

    def test_telemetry_computed_with_events_disabled(self):
        from repro.obs.events import NullEventLog

        assert isinstance(get_event_log(), NullEventLog)
        experiment = app_experiment("wind_sensor", 8)
        trial = experiment.trial_at(5, seed=3)
        assert trial.divergence is not None


class TestManifestPersistence:
    CONFIG = dict(
        apps=("wind_sensor",), trials=4, strata=2, iterations=8,
        shard_size=2, seed=1,
    )

    def test_trial_record_round_trips_telemetry(self):
        trial = InjectionTrial(
            target_step=3, injection_iteration=1, corrupted_output=True,
            recovery_samples=2, recovery_iterations=1,
            divergence=[0, 1, 0], convergence=[2, 2],
        )
        record = trial_record("wind_sensor", trial)
        assert record["telemetry"] == {
            "divergence": [0, 1, 0], "convergence": [2, 2],
        }
        assert trial_telemetry(record)["convergence"] == [2, 2]

    def test_trial_record_omits_empty_telemetry(self):
        trial = InjectionTrial(
            target_step=3, injection_iteration=None,
            corrupted_output=False, recovery_samples=None,
            recovery_iterations=None,
        )
        record = trial_record("wind_sensor", trial)
        assert "telemetry" not in record

    def test_trial_telemetry_tolerates_old_records(self):
        assert trial_telemetry({"app": "x", "verdict": "masked"}) == {
            "divergence": None, "convergence": None,
            "node_divergence": None, "node_digests": None,
        }

    def test_campaign_manifest_carries_telemetry(self, tmp_path):
        checkpoint = tmp_path / "manifest.json"
        config = CampaignConfig(**self.CONFIG)
        CampaignRunner(config=config, checkpoint_path=checkpoint).run()
        manifest = json.loads(checkpoint.read_text())
        trials = [
            t for shard in manifest["shards"].values()
            for t in shard.get("trials", [])
        ]
        assert trials
        injected = [
            t for t in trials if t["injection_iteration"] is not None
        ]
        assert injected
        for trial in injected:
            telemetry = trial_telemetry(trial)
            assert telemetry["divergence"] is not None
            if trial["verdict"] == "recovered":
                assert telemetry["convergence"][-1] == \
                    trial["recovery_samples"]

    def test_old_manifest_without_telemetry_resumes(self, tmp_path):
        """A checkpoint written by a pre-telemetry build must load,
        resume, and aggregate — the schema was NOT bumped."""
        checkpoint = tmp_path / "manifest.json"
        config = CampaignConfig(**self.CONFIG)
        runner = CampaignRunner(
            config=config, checkpoint_path=checkpoint, stop_after_shards=1
        )
        runner.run()
        manifest = json.loads(checkpoint.read_text())
        done = sum(
            1 for s in manifest["shards"].values()
            if s.get("status") == "done"
        )
        assert done == 1
        # Strip telemetry: now the manifest looks pre-telemetry.
        for shard in manifest["shards"].values():
            for trial in shard.get("trials", []):
                trial.pop("telemetry", None)
        checkpoint.write_text(json.dumps(manifest))
        report = CampaignRunner(
            config=config, checkpoint_path=checkpoint
        ).run()
        assert report["complete"]
        resumed = json.loads(checkpoint.read_text())
        assert len(resumed["shards"]) > done

    def test_campaign_emits_driver_events(self, tmp_path):
        buffer = EventBuffer()
        config = CampaignConfig(**self.CONFIG)
        with installed_event_log(EventLog(sinks=(buffer,))):
            CampaignRunner(
                config=config, checkpoint_path=tmp_path / "m.json"
            ).run()
        names = [r["name"] for r in buffer.records]
        assert "campaign.plan" in names
        shard_events = [
            r for r in buffer.records if r["name"] == "campaign.shard"
        ]
        assert len(shard_events) == 2  # 4 trials / shard_size 2
        for record in shard_events:
            assert record["attrs"]["status"] == "done"
