"""CLI observability surface: ``--trace``, ``--profile``, ``repro metrics``."""

from __future__ import annotations

import json
import re

from repro.apps import programs_dir
from repro.cli import main
from repro.obs import NullTracer, get_tracer, validate_trace

WIND = str(programs_dir() / "wind_sensor.sj")


class TestProfile:
    def test_check_profile_phases_cover_the_root(self, capsys):
        """Acceptance criterion: ``repro check --profile`` prints a span
        tree whose top-level phase durations sum to ≥90% of the root."""
        assert main(["check", WIND, "--profile"]) == 0
        err = capsys.readouterr().err
        lines = err.splitlines()
        root_line = next(line for line in lines if line.startswith("repro.check"))
        assert "100.0%" in root_line
        phase_pcts = [
            float(match.group(1))
            for line in lines
            if line.startswith(("├─", "└─"))
            for match in [re.search(r"(\d+\.\d)%", line)]
            if match
        ]
        assert phase_pcts, f"no phase lines in:\n{err}"
        assert sum(phase_pcts) >= 90.0

    def test_profile_leaves_no_tracer_installed(self, capsys):
        assert main(["check", WIND, "--profile"]) == 0
        assert isinstance(get_tracer(), NullTracer)

    def test_infer_profile_shows_engine_phases(self, capsys):
        assert main(["infer", WIND, "--quiet", "--profile"]) == 0
        err = capsys.readouterr().err
        for phase in ("value_flow", "cycle_elimination", "emit"):
            assert phase in err


class TestTraceFlag:
    def test_check_trace_writes_valid_jsonl(self, tmp_path, capsys):
        trace = tmp_path / "check.jsonl"
        assert main(["check", WIND, "--trace", str(trace)]) == 0
        err = capsys.readouterr().err
        assert f"// trace written to {trace}" in err
        events = validate_trace(trace)
        names = {event["name"] for event in events}
        assert {"repro.check", "parse", "check"} <= names
        roots = [e for e in events if e["parent_id"] is None]
        assert len(roots) == 1
        assert roots[0]["name"] == "repro.check"

    def test_batch_trace_has_batch_root(self, tmp_path, capsys):
        trace = tmp_path / "batch.jsonl"
        assert main([
            "batch", WIND, "--no-cache", "--trace", str(trace)
        ]) == 0
        events = validate_trace(trace)
        roots = [e for e in events if e["parent_id"] is None]
        assert [r["name"] for r in roots] == ["repro.batch"]
        assert roots[0]["attrs"]["files"] == 1


class TestMetricsCommand:
    def _trace(self, tmp_path) -> str:
        trace = tmp_path / "t.jsonl"
        assert main(["check", WIND, "--trace", str(trace)]) == 0
        return str(trace)

    def test_aggregates_a_trace_file(self, tmp_path, capsys):
        trace = self._trace(tmp_path)
        capsys.readouterr()
        assert main(["metrics", "--trace", trace]) == 0
        out = capsys.readouterr().out
        assert "span events" in out
        assert "repro.check" in out
        assert "parse" in out

    def test_json_format(self, tmp_path, capsys):
        trace = self._trace(tmp_path)
        capsys.readouterr()
        assert main(["metrics", "--trace", trace, "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["events"] > 0
        names = {row["name"] for row in payload["spans"]}
        assert "repro.check" in names

    def test_needs_exactly_one_source(self, tmp_path, capsys):
        assert main(["metrics"]) == 2
        trace = self._trace(tmp_path)
        assert main(["metrics", "--trace", trace, "--socket", "/x"]) == 2

    def test_prometheus_needs_a_socket(self, tmp_path, capsys):
        trace = self._trace(tmp_path)
        assert main([
            "metrics", "--trace", trace, "--format", "prometheus"
        ]) == 2

    def test_invalid_trace_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("{torn\n")
        assert main(["metrics", "--trace", str(bad)]) == 2
        assert "invalid trace" in capsys.readouterr().err

    def test_unreachable_daemon_exits_2(self, tmp_path, capsys):
        assert main([
            "metrics", "--socket", str(tmp_path / "nope.sock")
        ]) == 2
        assert "error" in capsys.readouterr().err


class TestInferJsonTimings:
    def test_infer_json_reports_engine_phases(self, capsys):
        assert main(["infer", WIND, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        timings = payload["timings"]
        assert {"value_flow", "decompose", "emit", "total"} <= set(timings)
