"""Distributed tracing across the socket protocol, and the daemon's
HTTP observability plane.

Covers the PR 8 acceptance criteria: a daemon op span parents under the
calling client's span (same trace id, ``remote_parent`` edge); a client
with no active span sends byte-identical requests, so old clients see
byte-identical behaviour; a malformed traceparent is a protocol error,
not a crash; and ``GET /metrics`` is byte-equal to the socket
``metrics`` op."""

from __future__ import annotations

import json
import urllib.request

import pytest

from repro.obs import Tracer, installed_tracer, span_event
from repro.service.cache import ResultCache
from repro.service.client import ReproClient, ServiceError
from repro.service.server import ReproServer


@pytest.fixture
def server(tmp_path):
    srv = ReproServer(
        tmp_path / "repro.sock",
        cache=ResultCache(disk_dir=tmp_path / "cache"),
    )
    thread = srv.start()
    yield srv
    srv.shutdown()
    thread.join(timeout=5)
    srv.close()


def _op_events(server, name):
    """Captured op spans as wire events (the ring keeps root spans)."""
    return [
        span_event(span) for span in server.trace_buffer.roots
        if span.name == name
    ]


class TestClientPropagation:
    def test_daemon_op_parents_under_the_client_span(
        self, server, wind_source
    ):
        """Acceptance: the daemon's ``op.check`` span joins the client's
        trace — same trace id, parent edge to the client's span —
        across the socket."""
        client_tracer = Tracer()
        with installed_tracer(client_tracer):
            with client_tracer.span("campaign.trial") as trial:
                with ReproClient(server.socket_path) as client:
                    assert client.check(source=wind_source)["ok"]
        ops = _op_events(server, "op.check")
        assert len(ops) == 1
        assert ops[0]["trace_id"] == trial.trace_id
        assert ops[0]["parent_id"] == trial.span_id
        assert ops[0]["remote_parent"] is True

    def test_remote_attached_op_span_stays_in_the_ring(
        self, server, wind_source
    ):
        """A remote parent must not hide the op span from the daemon's
        own ring buffer: attached roots are still local roots."""
        client_tracer = Tracer()
        with installed_tracer(client_tracer):
            with client_tracer.span("outer"):
                with ReproClient(server.socket_path) as client:
                    client.request({"op": "status"})
        assert _op_events(server, "op.status")

    def test_explicit_trace_field_wins_over_the_active_span(
        self, server
    ):
        client_tracer = Tracer()
        with installed_tracer(client_tracer):
            with client_tracer.span("ignored"):
                with ReproClient(server.socket_path) as client:
                    response = client.request(
                        {"op": "status", "trace": "00-t77-9-01"}
                    )
        assert response["ok"]
        ops = _op_events(server, "op.status")
        assert ops[0]["trace_id"] == "t77"
        assert ops[0]["parent_id"] == 9

    def test_client_payload_not_mutated(self, server):
        client_tracer = Tracer()
        payload = {"op": "status"}
        with installed_tracer(client_tracer):
            with client_tracer.span("outer"):
                with ReproClient(server.socket_path) as client:
                    client.request(payload)
        assert payload == {"op": "status"}


class TestOldClients:
    def test_no_span_no_trace_field(self, server, monkeypatch):
        """A client with no active span must put nothing extra on the
        wire — the request line is byte-identical to pre-PR-8 clients."""
        from repro.service import protocol

        sent = []
        real_dumps = protocol.dumps

        def spying_dumps(obj):
            sent.append(obj)
            return real_dumps(obj)

        monkeypatch.setattr(
            "repro.service.protocol.dumps", spying_dumps
        )
        with ReproClient(server.socket_path) as client:
            client.request({"op": "status"})
        requests = [obj for obj in sent if obj.get("op") == "status"]
        assert requests and all("trace" not in obj for obj in requests)

    def test_traceless_op_span_is_a_plain_root(self, server, wind_source):
        with ReproClient(server.socket_path) as client:
            client.check(source=wind_source)
        ops = _op_events(server, "op.check")
        assert ops[0]["parent_id"] is None
        assert "remote_parent" not in ops[0]


class TestMalformedContext:
    @pytest.mark.parametrize("bad", [
        "nope", "99-t1-2-01", "00-t1-two-01", 7,
    ])
    def test_bad_traceparent_is_a_protocol_error(self, server, bad):
        with ReproClient(server.socket_path) as client:
            response = client.request({"op": "status", "trace": bad})
        assert response["ok"] is False
        assert "bad trace context" in response["message"]

    def test_daemon_survives_and_still_serves(self, server):
        with ReproClient(server.socket_path) as client:
            client.request({"op": "status", "trace": "broken"})
            assert client.request({"op": "status"})["ok"]

    def test_checked_helper_raises_service_error(self, server):
        with ReproClient(server.socket_path) as client:
            with pytest.raises(ServiceError, match="bad trace context"):
                client._checked({"op": "status", "trace": "broken"})


class TestHttpPlane:
    def test_metrics_byte_equal_to_socket_op(self, tmp_path, wind_source):
        srv = ReproServer(
            tmp_path / "repro.sock",
            cache=ResultCache(disk_dir=tmp_path / "cache"),
            http_port=0,
        )
        thread = srv.start()
        try:
            with ReproClient(srv.socket_path) as client:
                client.check(source=wind_source)
                socket_text = client.metrics(format="prometheus")[
                    "metrics_text"
                ]
                with urllib.request.urlopen(
                    f"http://127.0.0.1:{srv.exporter.port}/metrics",
                    timeout=5,
                ) as response:
                    http_body = response.read()

            # The resource gauges (RSS, GC) read live process state and
            # may legitimately drift between the two scrapes — strip
            # them before the byte diff, but insist both scrapes carry
            # them.
            def stable(text: str) -> str:
                return "\n".join(
                    line for line in text.splitlines()
                    if not line.startswith(("repro_rss_", "repro_gc_"))
                )

            http_text = http_body.decode("utf-8")
            assert stable(http_text) == stable(socket_text)
            for scrape in (http_text, socket_text):
                assert "repro_rss_bytes" in scrape
                assert "repro_gc_collections_total" in scrape
        finally:
            srv.shutdown()
            thread.join(timeout=5)
            srv.close()

    def test_healthz_reports_daemon_liveness(self, tmp_path):
        srv = ReproServer(tmp_path / "repro.sock", http_port=0)
        thread = srv.start()
        try:
            with ReproClient(srv.socket_path) as client:
                client.request({"op": "status"})
            with urllib.request.urlopen(
                f"http://127.0.0.1:{srv.exporter.port}/healthz", timeout=5
            ) as response:
                health = json.loads(response.read())
            assert health["ok"] is True
            assert health["socket"] == srv.socket_path
            assert health["inflight"] == 0
            assert health["requests_served"] >= 1
            assert health["uptime_seconds"] >= 0.0
            import os

            assert health["pid"] == os.getpid()
            # Resource telemetry (memory PR): RSS, GC, cache occupancy.
            assert health["rss_bytes"] > 0
            assert health["gc"]["collections"] >= 0
            assert health["gc"]["pause_seconds_total"] >= 0.0
            assert health["cache_occupancy"] == {}  # no cache configured
        finally:
            srv.shutdown()
            thread.join(timeout=5)
            srv.close()

    def test_http_events_mirror_the_daemon_ring(self, tmp_path):
        srv = ReproServer(tmp_path / "repro.sock", http_port=0)
        thread = srv.start()
        try:
            with ReproClient(srv.socket_path) as client:
                client.request({"op": "status"})
            with urllib.request.urlopen(
                f"http://127.0.0.1:{srv.exporter.port}"
                f"/events?name=daemon.request",
                timeout=5,
            ) as response:
                document = json.loads(response.read())
            names = [e["name"] for e in document["events"]]
            assert names and set(names) == {"daemon.request"}
        finally:
            srv.shutdown()
            thread.join(timeout=5)
            srv.close()

    def test_no_port_no_exporter(self, server):
        assert server.exporter.enabled is False
        assert server.exporter.port is None


def test_span_event_round_trip_marker(server, wind_source):
    """The ring's dicts come from span_event; re-serializing a captured
    remote-rooted op span keeps the marker (what `repro serve` would
    write to a trace file)."""
    client_tracer = Tracer()
    with installed_tracer(client_tracer):
        with client_tracer.span("outer"):
            with ReproClient(server.socket_path) as client:
                client.request({"op": "status"})
    event = _op_events(server, "op.status")[0]
    assert event == json.loads(json.dumps(event))
