"""The daemon's ``events`` op, its event-log lifecycle, and the
socket-mode CLI paths (``repro metrics --socket``, ``repro events
--socket``) end-to-end against a live daemon."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs.events import NullEventLog, get_event_log
from repro.service.cache import ResultCache
from repro.service.client import ReproClient, ServiceError
from repro.service.server import ReproServer


@pytest.fixture
def server(tmp_path):
    srv = ReproServer(
        tmp_path / "repro.sock",
        cache=ResultCache(disk_dir=tmp_path / "cache"),
    )
    thread = srv.start()
    yield srv
    srv.shutdown()
    thread.join(timeout=5)
    srv.close()


class TestEventsOp:
    def test_startup_and_requests_appear(self, server, wind_source):
        with ReproClient(server.socket_path) as client:
            client.check(source=wind_source)
            response = client.events()
        names = [e["name"] for e in response["events"]]
        assert names[0] == "daemon.start"
        assert "daemon.request" in names
        ops = [
            e["attrs"]["op"] for e in response["events"]
            if e["name"] == "daemon.request"
        ]
        assert "check" in ops

    def test_request_events_correlate_with_op_spans(
        self, server, wind_source
    ):
        with ReproClient(server.socket_path) as client:
            client.check(source=wind_source)
            response = client.events()
        request_events = [
            e for e in response["events"] if e["name"] == "daemon.request"
        ]
        roots = {
            root.span_id: root for root in server.trace_buffer.roots
        }
        for event in request_events:
            assert event["trace_id"] is not None
            assert event["span_id"] in roots
            assert roots[event["span_id"]].name == \
                f"op.{event['attrs']['op']}"

    def test_events_op_does_not_log_itself(self, server):
        with ReproClient(server.socket_path) as client:
            client.events()
            response = client.events()
        ops = [
            e["attrs"]["op"] for e in response["events"]
            if e["name"] == "daemon.request"
        ]
        assert "events" not in ops

    def test_level_floor_and_name_filter(self, server, wind_source):
        with ReproClient(server.socket_path) as client:
            client.check(source=wind_source)
            info_only = client.events(level="info")["events"]
            by_name = client.events(name="daemon.start")["events"]
        assert all(e["level"] != "debug" for e in info_only)
        assert [e["name"] for e in by_name] == ["daemon.start"]

    def test_limit_keeps_the_tail(self, server, wind_source):
        with ReproClient(server.socket_path) as client:
            client.check(source=wind_source)
            client.status()
            limited = client.events(limit=1)["events"]
            everything = client.events()["events"]
        assert len(limited) == 1
        assert limited[0] == everything[-1]

    def test_bad_level_rejected(self, server):
        with ReproClient(server.socket_path) as client:
            with pytest.raises(ServiceError, match="unknown event level"):
                client.events(level="loud")

    def test_bad_limit_rejected(self, server):
        with ReproClient(server.socket_path) as client:
            with pytest.raises(ServiceError, match="limit"):
                client.events(limit=-1)

    def test_records_validate_as_event_envelopes(self, server):
        from repro.obs.events import validate_event_record

        with ReproClient(server.socket_path) as client:
            client.status()
            response = client.events()
        assert response["events"]
        for record in response["events"]:
            validate_event_record(record)


class TestEventLogLifecycle:
    def test_server_installs_and_close_restores_event_log(self, tmp_path):
        before = get_event_log()
        assert isinstance(before, NullEventLog)
        srv = ReproServer(tmp_path / "a.sock")
        try:
            assert get_event_log() is srv.event_log
        finally:
            srv.close()
        assert get_event_log() is before


class TestSocketCli:
    def test_metrics_socket_text_end_to_end(
        self, server, wind_source, capsys
    ):
        """Satellite acceptance: ``repro metrics`` in socket mode against
        a live daemon."""
        with ReproClient(server.socket_path) as client:
            client.check(source=wind_source)
        assert main(["metrics", "--socket", server.socket_path]) == 0
        out = capsys.readouterr().out
        assert "repro_op_check_total" in out
        assert "repro_pool_exec_seconds" in out

    def test_metrics_socket_json_end_to_end(
        self, server, wind_source, capsys
    ):
        with ReproClient(server.socket_path) as client:
            client.check(source=wind_source)
        assert main([
            "metrics", "--socket", server.socket_path, "--format", "json",
        ]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["counters"]["repro_op_check_total"] == 1
        assert "repro_pool_exec_seconds" in snapshot["histograms"]

    def test_metrics_socket_prometheus_end_to_end(self, server, capsys):
        assert main([
            "metrics", "--socket", server.socket_path,
            "--format", "prometheus",
        ]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_requests_total counter" in out

    def test_metrics_dead_socket_fails_cleanly(self, tmp_path, capsys):
        assert main([
            "metrics", "--socket", str(tmp_path / "nowhere.sock"),
        ]) == 2
        assert "error:" in capsys.readouterr().err

    def test_events_socket_end_to_end(self, server, wind_source, capsys):
        with ReproClient(server.socket_path) as client:
            client.check(source=wind_source)
        assert main([
            "events", "--socket", server.socket_path, "--level", "info",
        ]) == 0
        captured = capsys.readouterr()
        assert "daemon.start" in captured.out
        assert "events shown" in captured.err

    def test_events_socket_json_envelopes(self, server, capsys):
        assert main([
            "events", "--socket", server.socket_path, "--json",
        ]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines
        from repro.obs.events import validate_event_record

        for line in lines:
            validate_event_record(json.loads(line))

    def test_events_needs_exactly_one_source(self, tmp_path, capsys):
        assert main(["events"]) == 2
        assert main([
            "events", str(tmp_path / "x.jsonl"),
            "--socket", str(tmp_path / "s.sock"),
        ]) == 2
