"""CLI surface of the service: ``batch``, ``--json``, golden output."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.apps import programs_dir
from repro.cli import main
from repro.service import protocol

GOLDEN_DIR = Path(__file__).parent / "golden"
PROGRAMS = str(programs_dir())
WIND = str(programs_dir() / "wind_sensor.sj")
N_PROGRAMS = len(list(programs_dir().glob("*.sj")))

#: Fields that vary run-to-run / machine-to-machine.
VOLATILE = ("file", "elapsed_seconds", "timings")


class TestCheckJson:
    def test_golden_output(self, capsys):
        """``repro check --json`` output matches the documented schema,
        byte-for-byte up to the volatile fields."""
        assert main(["check", WIND, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        protocol.validate_check_payload(payload)
        assert payload["version"] == protocol.PROTOCOL_VERSION
        for volatile in VOLATILE:
            payload.pop(volatile, None)
        golden = json.loads(
            (GOLDEN_DIR / "wind_sensor.check.json").read_text()
        )
        assert payload == golden

    def test_failing_program_json(self, tmp_path, broken_source, capsys):
        bad = tmp_path / "bad.sj"
        bad.write_text(broken_source)
        assert main(["check", str(bad), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        protocol.validate_check_payload(payload)
        assert payload["self_stabilizing"] is False
        assert payload["error_count"] > 0
        kinds = {d["check"] for d in payload["report"]["diagnostics"]}
        assert "flow-down" in kinds


class TestInferJson:
    def test_summary_payload(self, tmp_path, capsys):
        from repro.apps import app_source

        stripped = tmp_path / "stripped.sj"
        stripped.write_text(app_source("wind_sensor", annotated=False))
        assert main(["infer", str(stripped), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "infer"
        assert payload["version"] == protocol.PROTOCOL_VERSION
        assert payload["verified"] is True
        assert payload["summary"]["total_locations"] > 0


class TestBatch:
    def test_batch_over_bundled_apps(self, tmp_path, capsys):
        """Acceptance criterion: ``repro batch src/repro/apps/programs``
        checks every bundled app with per-file verdicts and timings."""
        assert main([
            "batch", PROGRAMS, "--cache-dir", str(tmp_path)
        ]) == 0
        out = capsys.readouterr().out
        lines = out.strip().splitlines()
        assert len(lines) == N_PROGRAMS + 2  # files + summary + cache stats
        assert all("pass" in line for line in lines[:N_PROGRAMS])
        assert all("ms" in line for line in lines[:N_PROGRAMS])
        assert f"{N_PROGRAMS}/{N_PROGRAMS} self-stabilizing" in lines[-2]
        assert lines[-1].startswith("// cache:")
        assert f"{N_PROGRAMS} stores" in lines[-1]

    def test_warm_batch_reports_cache_hits(self, tmp_path, capsys):
        assert main(["batch", PROGRAMS, "--cache-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["batch", PROGRAMS, "--cache-dir", str(tmp_path)]) == 0
        cache_line = capsys.readouterr().out.strip().splitlines()[-1]
        assert (f"{N_PROGRAMS} disk hits" in cache_line
                or f"{N_PROGRAMS} memory hits" in cache_line)
        assert "0 misses" in cache_line

    def test_second_run_hits_cache(self, tmp_path, capsys):
        assert main(["batch", PROGRAMS, "--cache-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["batch", PROGRAMS, "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert f"{N_PROGRAMS} from cache" in out

    def test_batch_json(self, tmp_path, capsys):
        assert main([
            "batch", PROGRAMS, "--no-cache", "--json"
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "batch"
        assert len(payload["results"]) == N_PROGRAMS
        assert all(r["verdict"] == "pass" for r in payload["results"])

    def test_failing_file_fails_the_batch(self, tmp_path, broken_source, capsys):
        bad = tmp_path / "bad.sj"
        bad.write_text(broken_source)
        assert main(["batch", str(bad), "--no-cache"]) == 1
        assert "fail" in capsys.readouterr().out

    def test_no_files_found(self, tmp_path, capsys):
        assert main(["batch", str(tmp_path)]) == 2

    def test_explicit_files_and_dirs_mix(self, tmp_path, capsys):
        assert main(["batch", WIND, "--no-cache"]) == 0
        assert "1/1 self-stabilizing" in capsys.readouterr().out
