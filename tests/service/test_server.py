"""Daemon integration: socket round trips, status counters, shutdown."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.service.cache import ResultCache
from repro.service.client import ReproClient, ServiceError
from repro.service.server import ReproServer


@pytest.fixture
def server(tmp_path):
    srv = ReproServer(
        tmp_path / "repro.sock",
        cache=ResultCache(disk_dir=tmp_path / "cache"),
    )
    thread = srv.start()
    yield srv
    srv.shutdown()
    thread.join(timeout=5)
    srv.close()


class TestDaemonRoundTrip:
    def test_check_matches_cli_verdict(self, server, app_files, capsys):
        """Acceptance criterion: a daemon check returns the same verdict
        as ``repro check`` for the same source."""
        for path in app_files:
            cli_exit = main(["check", str(path)])
            capsys.readouterr()
            with ReproClient(server.socket_path) as client:
                response = client.check(path=str(path))
            assert response["ok"]
            assert response["self_stabilizing"] == (cli_exit == 0)

    def test_failing_source_agrees_with_cli(
        self, server, tmp_path, broken_source, capsys
    ):
        bad = tmp_path / "bad.sj"
        bad.write_text(broken_source)
        cli_exit = main(["check", str(bad)])
        capsys.readouterr()
        assert cli_exit == 1
        with ReproClient(server.socket_path) as client:
            response = client.check(source=broken_source)
        assert response["ok"]
        assert response["self_stabilizing"] is False
        assert response["error_count"] > 0

    def test_repeat_check_hits_cache_and_reports_timings(
        self, server, wind_source
    ):
        with ReproClient(server.socket_path) as client:
            first = client.check(source=wind_source)
            second = client.check(source=wind_source)
        assert not first["cached"]
        assert {"parse", "resolve", "typecheck", "check"} <= set(
            first["timings"]
        )
        assert second["cached"]

    def test_infer_round_trip(self, server, wind_source):
        from repro.apps import strip_location_annotations

        stripped = strip_location_annotations(wind_source)
        with ReproClient(server.socket_path) as client:
            response = client.infer(source=stripped)
        assert response["ok"]
        assert response["verified"] is True
        assert "@LATTICE(" in response["annotated_source"]


class TestStatusAndErrors:
    def test_status_counts_requests(self, server, wind_source):
        with ReproClient(server.socket_path) as client:
            client.check(source=wind_source)
            client.check(source=wind_source)
            status = client.status()
        assert status["requests_served"] == 3
        assert status["op_counts"]["check"] == 2
        assert status["op_counts"]["status"] == 1
        assert status["uptime_seconds"] >= 0.0
        assert status["pool"]["cache"]["memory_hits"] >= 1

    def test_unknown_op_is_an_error(self, server):
        with ReproClient(server.socket_path) as client:
            response = client.request({"op": "frobnicate"})
        assert response["ok"] is False
        assert "unknown op" in response["message"]

    def test_front_end_error_is_reported_not_fatal(self, server, wind_source):
        with ReproClient(server.socket_path) as client:
            with pytest.raises(ServiceError):
                client.check(source="class {")
            # the daemon survived and still serves
            assert client.check(source=wind_source)["ok"]

    def test_malformed_json_line(self, server):
        with ReproClient(server.socket_path) as client:
            response = client.request({"op": "status"})
            assert response["ok"]
            client._sock.sendall(b"{never valid\n")
            line = client._reader.readline()
        import json

        error = json.loads(line)
        assert error["ok"] is False

    def test_check_needs_source_or_path(self, server):
        with ReproClient(server.socket_path) as client:
            response = client.request({"op": "check"})
        assert response["ok"] is False


class TestShutdown:
    def test_shutdown_stops_the_daemon(self, tmp_path):
        srv = ReproServer(tmp_path / "s.sock")
        thread = srv.start()
        with ReproClient(srv.socket_path) as client:
            response = client.shutdown()
        assert response["ok"] and response["stopping"]
        thread.join(timeout=5)
        assert not thread.is_alive()
        srv.close()


class TestResourceTelemetry:
    def test_status_metrics_carry_resource_gauges(self, server, wind_source):
        with ReproClient(server.socket_path) as client:
            client.check(source=wind_source)
            response = client.request({"op": "status"})
        gauges = response["metrics"]["gauges"]
        assert gauges["repro_rss_bytes"] > 0
        assert gauges["repro_gc_collections_total"] >= 0
        assert gauges["repro_gc_pause_seconds_total"] >= 0.0
        # the configured cache reports both tiers plus the aggregate
        assert gauges["repro_cache_memory_entries"] >= 1
        assert gauges["repro_cache_memory_bytes"] > 0
        assert gauges["repro_cache_disk_entries"] >= 1
        assert gauges["repro_cache_bytes"] >= gauges[
            "repro_cache_memory_bytes"
        ]

    def test_prometheus_exposition_names_resource_gauges(
        self, server, wind_source
    ):
        with ReproClient(server.socket_path) as client:
            client.check(source=wind_source)
            text = client.metrics(format="prometheus")["metrics_text"]
        for name in ("repro_rss_bytes", "repro_gc_collections_total",
                     "repro_gc_pause_seconds_total", "repro_cache_bytes"):
            assert name in text

    def test_close_unregisters_gc_callback(self, tmp_path):
        import gc

        srv = ReproServer(tmp_path / "repro.sock")
        thread = srv.start()
        assert srv.resources._on_gc in gc.callbacks
        srv.shutdown()
        thread.join(timeout=5)
        srv.close()
        assert srv.resources._on_gc not in gc.callbacks
