"""Client connect hardening: retry/backoff, stale-socket diagnosis and
cleanup, daemons appearing mid-retry (satellite of the robustness PR)."""

from __future__ import annotations

import socket
from pathlib import Path

import pytest

from repro.service.cache import ResultCache
from repro.service.client import (
    ReproClient,
    ServiceError,
    StaleSocketError,
    remove_stale_socket,
    socket_is_live,
)
from repro.service.server import ReproServer


@pytest.fixture
def stale_socket(tmp_path):
    """A socket file whose daemon is gone: bind, then close without
    unlinking — exactly what a SIGKILLed daemon leaves behind."""
    path = tmp_path / "stale.sock"
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.bind(str(path))
    sock.close()
    assert path.exists()
    return path


def start_server(path):
    server = ReproServer(path, cache=ResultCache())
    thread = server.start()
    return server, thread


class TestSocketProbes:
    def test_missing_socket_is_not_live(self, tmp_path):
        assert not socket_is_live(tmp_path / "nope.sock")

    def test_stale_socket_is_not_live(self, stale_socket):
        assert not socket_is_live(stale_socket)

    def test_remove_stale_socket(self, stale_socket):
        assert remove_stale_socket(stale_socket) is True
        assert not stale_socket.exists()
        assert remove_stale_socket(stale_socket) is False  # already gone

    def test_live_daemon_socket_is_never_removed(self, tmp_path):
        server, thread = start_server(tmp_path / "live.sock")
        try:
            assert socket_is_live(server.socket_path)
            assert remove_stale_socket(server.socket_path) is False
            assert Path(server.socket_path).exists()
        finally:
            server.shutdown()
            thread.join(timeout=5)
            server.close()


class TestConnectRetry:
    def test_missing_socket_exhausts_retries(self, tmp_path, monkeypatch):
        delays: list[float] = []
        monkeypatch.setattr("repro.service.client.time.sleep", delays.append)
        client = ReproClient(tmp_path / "absent.sock", connect_retries=3)
        with pytest.raises(ServiceError, match="4 attempt"):
            client.connect()
        assert len(delays) == 3  # slept between attempts, not after the last

    def test_backoff_doubles_up_to_the_cap(self, tmp_path, monkeypatch):
        delays: list[float] = []
        monkeypatch.setattr("repro.service.client.time.sleep", delays.append)
        client = ReproClient(
            tmp_path / "absent.sock", connect_retries=4,
            connect_backoff=0.05, backoff_cap=0.1,
        )
        with pytest.raises(ServiceError):
            client.connect()
        assert delays == [0.05, 0.1, 0.1, 0.1]

    def test_stale_socket_is_diagnosed_as_stale(self, stale_socket):
        client = ReproClient(stale_socket)
        with pytest.raises(StaleSocketError, match="stale socket"):
            client.connect()

    def test_daemon_starting_mid_retry_is_reached(self, tmp_path,
                                                  monkeypatch):
        """The daemon-still-starting window: the first attempts refuse,
        then the daemon comes up and a later retry lands."""
        path = tmp_path / "late.sock"
        started: list = []

        def sleep_then_start(_delay: float) -> None:
            if not started:
                started.append(start_server(path))

        monkeypatch.setattr(
            "repro.service.client.time.sleep", sleep_then_start
        )
        client = ReproClient(path, connect_retries=5)
        try:
            client.connect()
            assert client.status()["ok"]
        finally:
            client.close()
            server, thread = started[0]
            server.shutdown()
            thread.join(timeout=5)
            server.close()


class TestServerStaleSocketHandling:
    def test_server_reclaims_a_stale_socket(self, stale_socket):
        server, thread = start_server(stale_socket)
        try:
            with ReproClient(stale_socket) as client:
                assert client.status()["ok"]
        finally:
            server.shutdown()
            thread.join(timeout=5)
            server.close()

    def test_server_refuses_a_live_socket(self, tmp_path):
        first, thread = start_server(tmp_path / "one.sock")
        try:
            with pytest.raises(OSError, match="in use"):
                ReproServer(first.socket_path, cache=ResultCache())
        finally:
            first.shutdown()
            thread.join(timeout=5)
            first.close()
