"""Result cache: LRU behavior, disk tier, versioning, warm-run speedup."""

from __future__ import annotations

import json
import time

from repro.core.checker import check_program
from repro.service.cache import (
    ResultCache,
    checker_fingerprint,
    source_key,
)
from repro.service.pool import CheckerPool


class TestKeying:
    def test_key_depends_on_source(self):
        assert source_key("class A {}") != source_key("class B {}")

    def test_key_depends_on_checker_version(self, monkeypatch):
        before = source_key("class A {}")
        import repro

        monkeypatch.setattr(repro, "__version__", "0.0.0-other")
        assert source_key("class A {}") != before


class TestMemoryTier:
    def test_hit_after_put(self, wind_source):
        cache = ResultCache()
        assert cache.get(wind_source) is None
        report = check_program(wind_source)
        cache.put(wind_source, report)
        hit = cache.get(wind_source)
        assert hit is not None and hit.self_stabilizing
        assert cache.stats.memory_hits == 1
        assert cache.stats.misses == 1

    def test_lru_eviction(self, wind_source):
        cache = ResultCache(max_entries=2)
        report = check_program(wind_source)
        cache.put("a", report)
        cache.put("b", report)
        assert cache.get("a") is not None  # refresh "a"
        cache.put("c", report)             # evicts "b"
        assert len(cache) == 2
        assert cache.get("b") is None
        assert cache.get("a") is not None
        assert cache.get("c") is not None


class TestDiskTier:
    def test_survives_new_instance(self, tmp_path, wind_source):
        report = check_program(wind_source)
        ResultCache(disk_dir=tmp_path).put(wind_source, report)
        fresh = ResultCache(disk_dir=tmp_path)
        hit = fresh.get(wind_source)
        assert hit is not None and hit.self_stabilizing
        assert fresh.stats.disk_hits == 1

    def test_fingerprint_mismatch_is_a_miss(self, tmp_path, wind_source):
        report = check_program(wind_source)
        ResultCache(disk_dir=tmp_path).put(wind_source, report)
        entry_path = next(tmp_path.glob("*.json"))
        entry = json.loads(entry_path.read_text())
        assert entry["fingerprint"] == checker_fingerprint()
        entry["fingerprint"] = "repro-0.0.0/proto-0.0/schema-0"
        entry_path.write_text(json.dumps(entry))
        assert ResultCache(disk_dir=tmp_path).get(wind_source) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path, wind_source):
        report = check_program(wind_source)
        cache = ResultCache(disk_dir=tmp_path)
        cache.put(wind_source, report)
        for entry in tmp_path.glob("*.json"):
            entry.write_text("{not json")
        assert ResultCache(disk_dir=tmp_path).get(wind_source) is None

    def test_failing_report_caches_its_verdict(self, tmp_path, broken_source):
        report = check_program(broken_source)
        assert not report.self_stabilizing
        ResultCache(disk_dir=tmp_path).put(broken_source, report)
        hit = ResultCache(disk_dir=tmp_path).get(broken_source)
        assert hit is not None
        assert not hit.self_stabilizing
        assert len(hit.errors) == len(report.errors)


class TestDiskCorruptionTolerance:
    """A half-written or hostile cache directory must only ever cost
    misses — never a crash, never a wrong verdict."""

    def _entry(self, tmp_path, source):
        ResultCache(disk_dir=tmp_path).put(source, check_program(source))
        return next(tmp_path.glob("*.json"))

    def test_truncated_entry_is_a_miss_and_quarantined(
        self, tmp_path, wind_source
    ):
        entry = self._entry(tmp_path, wind_source)
        entry.write_text(entry.read_text()[: len(entry.read_text()) // 2])
        cache = ResultCache(disk_dir=tmp_path)
        assert cache.get(wind_source) is None
        assert not entry.exists(), "corrupt entry should be quarantined"

    def test_zero_byte_entry_is_a_miss_and_quarantined(
        self, tmp_path, wind_source
    ):
        entry = self._entry(tmp_path, wind_source)
        entry.write_text("")
        assert ResultCache(disk_dir=tmp_path).get(wind_source) is None
        assert not entry.exists()

    def test_wrong_shape_entry_is_a_miss(self, tmp_path, wind_source):
        entry = self._entry(tmp_path, wind_source)
        entry.write_text('["a", "list", "not", "an", "object"]')
        assert ResultCache(disk_dir=tmp_path).get(wind_source) is None
        assert not entry.exists()

    def test_structurally_broken_report_is_a_miss(
        self, tmp_path, wind_source
    ):
        # the report shape must be validated: CheckReport.from_dict is
        # lenient, and absorbing this entry would yield a falsely CLEAN
        # verdict for a program that was never checked
        entry = self._entry(tmp_path, wind_source)
        body = json.loads(entry.read_text())
        body["report"] = {"unexpected": True}
        entry.write_text(json.dumps(body))
        assert ResultCache(disk_dir=tmp_path).get(wind_source) is None
        assert not entry.exists()

    def test_other_version_entry_is_preserved(self, tmp_path, wind_source):
        # Another checker version's entry is a miss but NOT garbage:
        # quarantining it would thrash a cache dir shared across versions.
        entry = self._entry(tmp_path, wind_source)
        body = json.loads(entry.read_text())
        body["fingerprint"] = "repro-9.9.9/proto-9.9/schema-9"
        entry.write_text(json.dumps(body))
        assert ResultCache(disk_dir=tmp_path).get(wind_source) is None
        assert entry.exists()

    def test_corrupted_slot_heals_on_next_store(self, tmp_path, wind_source):
        entry = self._entry(tmp_path, wind_source)
        entry.write_text("{truncated")
        cache = ResultCache(disk_dir=tmp_path)
        assert cache.get(wind_source) is None
        cache.put(wind_source, check_program(wind_source))
        fresh = ResultCache(disk_dir=tmp_path)
        hit = fresh.get(wind_source)
        assert hit is not None and hit.self_stabilizing


class TestWarmRunSpeedup:
    def test_warm_disk_cache_is_5x_faster(self, tmp_path, app_files):
        """Acceptance criterion: a second batch run over the bundled
        apps with a warm disk cache re-checks unchanged files at least
        5× faster.  Threshold is generous — observed is 20–50×."""
        assert len(app_files) >= 6

        cold_pool = CheckerPool(max_workers=1,
                                cache=ResultCache(disk_dir=tmp_path))
        start = time.perf_counter()
        cold = cold_pool.check_paths(app_files)
        cold_elapsed = time.perf_counter() - start
        assert all(r.ok for r in cold)
        assert not any(r.cached for r in cold)

        # A fresh pool + fresh memory tier: only the disk store is warm.
        warm_elapsed = float("inf")
        for _ in range(3):  # best-of-3 to shrug off scheduler noise
            warm_pool = CheckerPool(max_workers=1,
                                    cache=ResultCache(disk_dir=tmp_path))
            start = time.perf_counter()
            warm = warm_pool.check_paths(app_files)
            warm_elapsed = min(warm_elapsed, time.perf_counter() - start)
            assert all(r.ok for r in warm)
            assert all(r.cached for r in warm)

        assert warm_elapsed * 5 <= cold_elapsed, (
            f"warm {warm_elapsed:.4f}s not 5x faster than "
            f"cold {cold_elapsed:.4f}s"
        )


class TestOccupancy:
    def test_memory_tier_counts_entries_and_bytes(self, wind_source):
        cache = ResultCache(max_entries=4)
        occupancy = cache.occupancy()
        assert occupancy == {"memory": {"entries": 0, "bytes": 0}}
        cache.put(wind_source, check_program(wind_source))
        occupancy = cache.occupancy()
        assert occupancy["memory"]["entries"] == 1
        assert occupancy["memory"]["bytes"] > 0
        assert "disk" not in occupancy  # memory-only cache

    def test_eviction_releases_tracked_bytes(self, wind_source):
        report = check_program(wind_source)
        cache = ResultCache(max_entries=2)
        cache.put(wind_source, report)
        per_entry = cache.occupancy()["memory"]["bytes"]
        for index in range(4):
            cache.put(f"// v{index}\n{wind_source}", report)
        occupancy = cache.occupancy()
        assert occupancy["memory"]["entries"] == 2
        # evicted entries must not keep contributing bytes
        assert occupancy["memory"]["bytes"] == per_entry * 2
        assert len(cache._sizes) == 2

    def test_disk_tier_counts_files(self, tmp_path, wind_source):
        cache = ResultCache(disk_dir=tmp_path / "disk")
        cache.put(wind_source, check_program(wind_source))
        occupancy = cache.occupancy()
        assert occupancy["disk"]["entries"] == 1
        assert occupancy["disk"]["bytes"] > 0

    def test_missing_disk_dir_reads_as_empty(self, tmp_path):
        cache = ResultCache(disk_dir=tmp_path / "never-created")
        assert cache.occupancy()["disk"] == {"entries": 0, "bytes": 0}
