"""Fixtures for the service-layer tests."""

from __future__ import annotations

import pytest

from repro.apps import app_source, programs_dir


@pytest.fixture(scope="session")
def wind_source() -> str:
    return app_source("wind_sensor")


@pytest.fixture(scope="session")
def app_files() -> list:
    return sorted(programs_dir().glob("*.sj"))


#: A program the checker rejects (flow-up assignment).
BROKEN_SOURCE = '''
@LATTICE("LOW<HIGH")
class T {
  @LOC("LOW") int low;
  @LOC("HIGH") int high;
  @LATTICE("B<X,X<IN") @THISLOC("X")
  void run() {
    SSJAVA:
    while (true) {
      @LOC("IN") int v = Device.readSensor();
      low = v;
      high = low;
      SJ.broadcast(high);
    }
  }
}
'''


@pytest.fixture
def broken_source() -> str:
    return BROKEN_SOURCE
