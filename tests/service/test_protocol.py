"""JSON protocol: round trips, validation, report ordering."""

from __future__ import annotations

import pytest

from repro.core.checker import CheckReport, check_program
from repro.core.errors import Check, Diagnostic, Severity
from repro.service import protocol
from repro.service.protocol import ProtocolError


def _diag(check: Check, severity: Severity, line: int = 3, col: int = 7) -> Diagnostic:
    return Diagnostic(
        severity=severity,
        check=check,
        message=f"synthetic {check.value}/{severity.value}",
        line=line,
        col=col,
        context="T.run",
    )


class TestDiagnosticRoundTrip:
    @pytest.mark.parametrize("check", list(Check))
    @pytest.mark.parametrize("severity", list(Severity))
    def test_every_variant_round_trips(self, check, severity):
        original = _diag(check, severity)
        assert Diagnostic.from_dict(original.to_dict()) == original

    def test_unknown_check_rejected(self):
        data = _diag(Check.LINEAR, Severity.ERROR).to_dict()
        data["check"] = "no-such-analysis"
        with pytest.raises(ValueError):
            Diagnostic.from_dict(data)

    def test_unknown_severity_rejected(self):
        data = _diag(Check.LINEAR, Severity.ERROR).to_dict()
        data["severity"] = "fatal"
        with pytest.raises(ValueError):
            Diagnostic.from_dict(data)


class TestCheckReportRoundTrip:
    def test_report_with_all_variants(self):
        diagnostics = [
            _diag(check, severity, line=i, col=i * 2)
            for i, (check, severity) in enumerate(
                (c, s) for c in Check for s in Severity
            )
        ]
        report = CheckReport(
            diagnostics=diagnostics,
            checked_scope={("A", "run"), ("B", "step")},
        )
        clone = CheckReport.from_dict(report.to_dict())
        assert sorted(clone.diagnostics, key=Diagnostic.sort_key) == sorted(
            report.diagnostics, key=Diagnostic.sort_key
        )
        assert clone.checked_scope == report.checked_scope
        assert clone.self_stabilizing == report.self_stabilizing

    def test_real_report_round_trips(self, wind_source):
        report = check_program(wind_source)
        clone = CheckReport.from_dict(report.to_dict())
        assert clone.self_stabilizing
        assert clone.checked_scope == report.checked_scope

    def test_payload_validates(self, wind_source):
        report = check_program(wind_source)
        payload = protocol.check_payload(report, file="wind.sj")
        protocol.validate_check_payload(payload)  # must not raise
        assert payload["version"] == protocol.PROTOCOL_VERSION
        clone = protocol.report_from_payload(payload)
        assert clone.self_stabilizing == report.self_stabilizing


class TestFormatOrdering:
    def test_format_sorts_by_position_then_check(self):
        report = CheckReport(diagnostics=[
            Diagnostic(Severity.ERROR, Check.TERMINATION, "late pass", 9, 1),
            Diagnostic(Severity.ERROR, Check.FLOW_DOWN, "early", 2, 5),
            Diagnostic(Severity.ERROR, Check.EVICTION, "same line", 2, 1),
            Diagnostic(Severity.WARNING, Check.ANNOTATION, "also 2:1", 2, 1),
        ])
        lines = report.format().splitlines()
        # (line, col, check.value): 2:1 annotation < 2:1 eviction
        #   < 2:5 flow-down < 9:1 termination
        assert [l.split("(")[1].split(")")[0] for l in lines] == [
            "annotation", "eviction", "flow-down", "termination",
        ]

    def test_to_dict_uses_sorted_order(self):
        report = CheckReport(diagnostics=[
            Diagnostic(Severity.ERROR, Check.SHARED, "b", 5, 0),
            Diagnostic(Severity.ERROR, Check.LINEAR, "a", 1, 0),
        ])
        emitted = report.to_dict()["diagnostics"]
        assert [d["line"] for d in emitted] == [1, 5]


class TestEnvelopes:
    def test_dumps_is_one_line(self):
        report = CheckReport(diagnostics=[
            Diagnostic(Severity.ERROR, Check.FLOW_DOWN, "multi\nline msg", 1, 1)
        ])
        line = protocol.dumps(protocol.check_payload(report))
        assert "\n" not in line
        assert protocol.loads(line)["error_count"] == 1

    def test_version_mismatch_rejected(self):
        payload = protocol.error_payload("x")
        payload["version"] = "999.0"
        with pytest.raises(ProtocolError):
            protocol.validate_version(payload)

    def test_tampered_counts_rejected(self, wind_source):
        payload = protocol.check_payload(check_program(wind_source))
        payload["error_count"] = 3
        with pytest.raises(ProtocolError):
            protocol.validate_check_payload(payload)

    def test_campaign_payload_tampering_rejected(self):
        base = {
            "schema": 1,
            "mode": "stratified",
            "seed": 7,
            "burst": 1,
            "complete": True,
            "shards": {"planned": 2, "completed": 2, "infra_failed": 0},
            "infra_failures": [],
            "apps": [{
                "app": "wind_sensor",
                "sites_total": 120,
                "trials": 8,
                "injected": 8,
                "not_injected": 0,
                "masked": 3,
                "recovered": 5,
                "diverged": 0,
                "timeout": 0,
                "mask_rate": 0.375,
                "divergence_rate": 0.0,
                "timeout_rate": 0.0,
                "recovery_histogram": {"0": 5},
                "recovery_iterations_p50": 1,
                "recovery_iterations_p95": 3,
            }],
        }
        payload = protocol.campaign_payload(base)
        assert payload["kind"] == "campaign"
        protocol.validate_campaign_payload(payload)  # must not raise

        import copy

        def broken(mutate):
            clone = copy.deepcopy(payload)
            mutate(clone)
            with pytest.raises(ProtocolError):
                protocol.validate_campaign_payload(clone)

        broken(lambda p: p.update(mode="chaotic"))
        broken(lambda p: p.update(complete="yes"))
        broken(lambda p: p["shards"].update(planned=-1))
        broken(lambda p: p.update(apps=[]))
        # verdict counts must sum to injected
        broken(lambda p: p["apps"][0].update(masked=4))
        # injected + not_injected must equal trials
        broken(lambda p: p["apps"][0].update(not_injected=1))
        broken(lambda p: p["apps"][0].update(mask_rate=1.5))
        broken(lambda p: p["apps"][0].update(recovery_histogram={"0": -1}))
        broken(lambda p: p["apps"][0].update(recovery_iterations_p95="3"))

    def test_infer_summary_round_trips(self, wind_source):
        from repro.infer.metrics import MetricsSummary
        from repro.lang import parse_program, resolve_program, typecheck_program
        from repro.apps import strip_location_annotations
        from repro.infer import infer_annotations

        program = parse_program(strip_location_annotations(wind_source))
        info = resolve_program(program)
        typecheck_program(info)
        result = infer_annotations(info, verify=True)
        payload = protocol.infer_payload(result.summary_dict(), file="w.sj")
        assert payload["kind"] == "infer"
        assert payload["verified"] is True
        clone = MetricsSummary.from_dict(payload["summary"])
        assert clone.total_locations == result.summary.total_locations
        assert clone.total_paths == result.summary.total_paths
