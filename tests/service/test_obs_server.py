"""Daemon observability: spans, the metrics op, cache counters.

Covers the acceptance criterion (cache counters visible through the
``metrics`` op change across a warm re-check) and the concurrency
guarantee (two handler threads each grow their own well-nested span
tree — no interleaving).
"""

from __future__ import annotations

import threading

import pytest

from repro.obs import NullTracer, get_tracer
from repro.service.cache import ResultCache
from repro.service.client import ReproClient
from repro.service.server import ReproServer


@pytest.fixture
def server(tmp_path):
    srv = ReproServer(
        tmp_path / "repro.sock",
        cache=ResultCache(disk_dir=tmp_path / "cache"),
    )
    thread = srv.start()
    yield srv
    srv.shutdown()
    thread.join(timeout=5)
    srv.close()


class TestMetricsOp:
    def test_cache_counters_change_across_warm_recheck(
        self, server, wind_source
    ):
        """Acceptance criterion: the ``metrics`` op exposes cache
        counters, and a warm re-check moves them."""
        with ReproClient(server.socket_path) as client:
            client.check(source=wind_source)
            cold = client.metrics()["metrics"]
            client.check(source=wind_source)
            warm = client.metrics()["metrics"]
        # schema 2 added bucket-interpolated quantile estimates to
        # histogram entries (see docs/OBSERVABILITY.md)
        assert cold["schema"] == warm["schema"] == 2
        assert cold["gauges"]["repro_cache_misses"] == 1
        assert cold["gauges"]["repro_cache_memory_hits"] == 0
        assert warm["gauges"]["repro_cache_memory_hits"] == 1
        assert warm["counters"]["repro_op_check_total"] == 2

    def test_prometheus_format(self, server, wind_source):
        with ReproClient(server.socket_path) as client:
            client.check(source=wind_source)
            response = client.metrics(format="prometheus")
        text = response["metrics_text"]
        assert "# TYPE repro_requests_total counter" in text
        assert "repro_cache_misses 1" in text
        assert "repro_pool_exec_seconds_count" in text

    def test_unknown_format_rejected(self, server):
        from repro.service.client import ServiceError

        with ReproClient(server.socket_path) as client:
            with pytest.raises(ServiceError, match="unknown metrics format"):
                client.metrics(format="xml")

    def test_status_carries_metrics_section(self, server, wind_source):
        with ReproClient(server.socket_path) as client:
            client.check(source=wind_source)
            status = client.status()
        assert status["metrics"]["counters"]["repro_requests_total"] >= 1
        assert "repro_cache_misses" in status["metrics"]["gauges"]

    def test_pool_latency_histogram_observes_checks(self, server, wind_source):
        with ReproClient(server.socket_path) as client:
            client.check(source=wind_source)
            snapshot = client.metrics()["metrics"]
        hist = snapshot["histograms"]["repro_pool_exec_seconds"]
        assert hist["count"] == 1
        assert hist["sum"] > 0


class TestPerOpTimings:
    def test_infer_reports_per_phase_timings(self, server, wind_source):
        from repro.apps import strip_location_annotations

        with ReproClient(server.socket_path) as client:
            response = client.infer(
                source=strip_location_annotations(wind_source)
            )
        timings = response["timings"]
        # front end + the engine's pipeline, not just a lone total
        assert {
            "parse", "resolve", "typecheck", "value_flow",
            "cycle_elimination", "decompose", "complete", "emit",
            "verify", "total",
        } <= set(timings)
        phase_sum = sum(v for k, v in timings.items() if k != "total")
        assert timings["total"] >= phase_sum * 0.5

    def test_cached_check_reports_lookup_timing(self, server, wind_source):
        with ReproClient(server.socket_path) as client:
            first = client.check(source=wind_source)
            second = client.check(source=wind_source)
        assert "cache_lookup" not in first["timings"]
        assert second["cached"]
        assert set(second["timings"]) == {"cache_lookup"}
        assert second["timings"]["cache_lookup"] >= 0


class TestConcurrentTracing:
    def test_two_threads_produce_two_well_nested_trees(
        self, server, wind_source, app_files
    ):
        """Two clients checking concurrently: the daemon's ring buffer
        ends up with one span tree per request, each well-nested under
        its own ``op.check`` root — never interleaved."""
        other_source = next(
            path for path in app_files if "wind" not in path.name
        ).read_text(encoding="utf-8")
        barrier = threading.Barrier(2)
        errors: list[Exception] = []

        def hit(source: str) -> None:
            try:
                with ReproClient(server.socket_path) as client:
                    barrier.wait()
                    for _ in range(3):
                        assert client.check(source=source)["ok"]
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [
            threading.Thread(target=hit, args=(src,))
            for src in (wind_source, other_source)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors

        roots = [
            root for root in server.trace_buffer.roots
            if root.name == "op.check"
        ]
        assert len(roots) == 6
        seen_span_ids: set[int] = set()
        for root in roots:
            spans = list(root.walk())
            assert all(span.closed for span in spans)
            # one trace id per tree, disjoint span ids across trees
            assert {span.trace_id for span in spans} == {root.trace_id}
            ids = {span.span_id for span in spans}
            assert not (ids & seen_span_ids)
            seen_span_ids |= ids
            # every child interval nests inside its parent's
            for span in spans:
                for child in span.children:
                    assert child.parent is span
                    assert child.start_seconds >= span.start_seconds - 1e-9
                    assert (
                        child.start_seconds + child.duration_seconds
                        <= span.start_seconds + span.duration_seconds + 1e-6
                    )
        trace_ids = {root.trace_id for root in roots}
        assert len(trace_ids) == 6

    def test_cold_check_tree_contains_pipeline_spans(
        self, server, wind_source
    ):
        with ReproClient(server.socket_path) as client:
            client.check(source=wind_source)
        root = next(
            r for r in server.trace_buffer.roots if r.name == "op.check"
        )
        names = {span.name for span in root.walk()}
        assert {"op.check", "parse", "resolve", "typecheck", "check"} <= names


class TestTracerLifecycle:
    def test_server_installs_and_close_restores_tracer(self, tmp_path):
        before = get_tracer()
        assert isinstance(before, NullTracer)
        srv = ReproServer(tmp_path / "a.sock")
        try:
            assert get_tracer() is srv.tracer
        finally:
            srv.close()
        assert get_tracer() is before
