"""CLI surface of fault-injection campaigns: ``repro campaign``."""

from __future__ import annotations

import json

from repro.cli import main
from repro.service import protocol

ARGS = [
    "campaign", "--apps", "wind_sensor", "--trials", "8", "--strata", "4",
    "--iterations", "12", "--seed", "7", "--shard-size", "2",
]


class TestCampaignCli:
    def test_json_output_validates(self, capsys):
        assert main(ARGS + ["--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        protocol.validate_campaign_payload(payload)
        assert payload["complete"] is True

    def test_human_output_summarizes_each_app(self, capsys):
        assert main(ARGS) == 0
        out = capsys.readouterr().out
        assert "wind_sensor" in out
        assert "shards" in out

    def test_report_file_written(self, tmp_path, capsys):
        report_path = tmp_path / "campaign.json"
        assert main(ARGS + ["--report", str(report_path)]) == 0
        capsys.readouterr()
        payload = protocol.loads(report_path.read_text())
        protocol.validate_campaign_payload(payload)

    def test_checkpointed_run_resumes_via_cli(self, tmp_path, capsys):
        checkpoint = tmp_path / "ck.json"
        run_args = ARGS + ["--checkpoint", str(checkpoint), "--json"]
        assert main(run_args) == 0
        first = json.loads(capsys.readouterr().out)
        assert checkpoint.exists()
        # second invocation resumes a finished checkpoint: no re-run,
        # identical aggregate statistics
        assert main(run_args) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["apps"] == first["apps"]

    def test_mismatched_checkpoint_is_a_usage_error(self, tmp_path, capsys):
        checkpoint = tmp_path / "ck.json"
        assert main(ARGS + ["--checkpoint", str(checkpoint)]) == 0
        capsys.readouterr()
        other = ARGS + ["--seed", "8", "--checkpoint", str(checkpoint)]
        assert main(other) == 2
        assert "--fresh" in capsys.readouterr().err
        assert main(other + ["--fresh"]) == 0

    def test_unknown_app_is_a_usage_error(self, capsys):
        assert main(["campaign", "--apps", "toaster"]) == 2
        assert "toaster" in capsys.readouterr().err


class TestCampaignDistributedTrace:
    """``repro campaign --trace``: shard spans land in per-worker files
    and merge back into one causally-linked multi-process trace."""

    def _run(self, tmp_path, capsys, extra=()):
        from repro.obs.propagate import reset_worker_tracers

        trace = tmp_path / "campaign.trace.jsonl"
        try:
            assert main(
                ARGS + ["--trace", str(trace), "--json", *extra]
            ) == 0
        finally:
            reset_worker_tracers()
        capsys.readouterr()
        return trace

    def test_merged_trace_links_shards_under_the_campaign(
        self, tmp_path, capsys
    ):
        """Acceptance: after a traced campaign, every worker-side
        ``worker.shard`` span is reachable from the driver's campaign
        root, and the merged file is schema-valid with no orphans."""
        import warnings

        from repro.obs import build_forest, validate_trace

        trace = self._run(tmp_path, capsys)
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # no orphan warnings allowed
            events = validate_trace(trace)
        roots = build_forest(events)
        campaign_roots = [
            root for root in roots if root.name == "repro.campaign"
        ]
        assert len(campaign_roots) == 1
        names = [span.name for span in campaign_roots[0].walk()]
        shards = [n for n in names if n == "worker.shard"]
        assert len(shards) == 4  # 8 trials / shard-size 2
        assert "campaign_drive" in names
        # worker-side library spans nested under the shard roots
        shard_spans = [
            span for span in campaign_roots[0].walk()
            if span.name == "worker.shard"
        ]
        for shard in shard_spans:
            assert shard.attrs["pid"]
            assert shard.counters["trials"] == 2
            assert shard.children, "no spans nested under the shard"

    def test_every_event_carries_pid_provenance(self, tmp_path, capsys):
        from repro.obs import read_trace

        trace = self._run(tmp_path, capsys)
        events = read_trace(trace)
        assert events and all("pid" in event for event in events)

    def test_merge_message_and_worker_files_remain(self, tmp_path, capsys):
        from repro.obs.propagate import reset_worker_tracers

        trace = tmp_path / "campaign.trace.jsonl"
        try:
            assert main(ARGS + ["--trace", str(trace)]) == 0
        finally:
            reset_worker_tracers()
        err = capsys.readouterr().err
        assert "merged 1 worker trace file(s)" in err
        workers = sorted((tmp_path / "campaign.trace.jsonl.workers").glob(
            "worker-*.trace.jsonl"
        ))
        assert len(workers) == 1  # in-process: one worker file, our pid
        import os

        assert workers[0].name == f"worker-{os.getpid()}.trace.jsonl"

    def test_untraced_campaign_writes_no_worker_dir(self, tmp_path, capsys):
        assert main(ARGS + ["--json"]) == 0
        capsys.readouterr()
        assert not list(tmp_path.iterdir())

    def test_metrics_tree_renders_the_merged_forest(
        self, tmp_path, capsys
    ):
        trace = self._run(tmp_path, capsys)
        assert main(["metrics", "--trace", str(trace), "--tree"]) == 0
        out = capsys.readouterr().out
        assert "repro.campaign" in out
        assert "worker.shard" in out
        assert "└─" in out
