"""CLI surface of fault-injection campaigns: ``repro campaign``."""

from __future__ import annotations

import json

from repro.cli import main
from repro.service import protocol

ARGS = [
    "campaign", "--apps", "wind_sensor", "--trials", "8", "--strata", "4",
    "--iterations", "12", "--seed", "7", "--shard-size", "2",
]


class TestCampaignCli:
    def test_json_output_validates(self, capsys):
        assert main(ARGS + ["--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        protocol.validate_campaign_payload(payload)
        assert payload["complete"] is True

    def test_human_output_summarizes_each_app(self, capsys):
        assert main(ARGS) == 0
        out = capsys.readouterr().out
        assert "wind_sensor" in out
        assert "shards" in out

    def test_report_file_written(self, tmp_path, capsys):
        report_path = tmp_path / "campaign.json"
        assert main(ARGS + ["--report", str(report_path)]) == 0
        capsys.readouterr()
        payload = protocol.loads(report_path.read_text())
        protocol.validate_campaign_payload(payload)

    def test_checkpointed_run_resumes_via_cli(self, tmp_path, capsys):
        checkpoint = tmp_path / "ck.json"
        run_args = ARGS + ["--checkpoint", str(checkpoint), "--json"]
        assert main(run_args) == 0
        first = json.loads(capsys.readouterr().out)
        assert checkpoint.exists()
        # second invocation resumes a finished checkpoint: no re-run,
        # identical aggregate statistics
        assert main(run_args) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["apps"] == first["apps"]

    def test_mismatched_checkpoint_is_a_usage_error(self, tmp_path, capsys):
        checkpoint = tmp_path / "ck.json"
        assert main(ARGS + ["--checkpoint", str(checkpoint)]) == 0
        capsys.readouterr()
        other = ARGS + ["--seed", "8", "--checkpoint", str(checkpoint)]
        assert main(other) == 2
        assert "--fresh" in capsys.readouterr().err
        assert main(other + ["--fresh"]) == 0

    def test_unknown_app_is_a_usage_error(self, capsys):
        assert main(["campaign", "--apps", "toaster"]) == 2
        assert "toaster" in capsys.readouterr().err
