"""Batch checking: verdicts, timings, cache integration, process fan-out."""

from __future__ import annotations

import pytest

from repro.service.cache import ResultCache
from repro.service.pool import (
    ERROR,
    FAIL,
    FRONT_END_ERROR,
    PASS,
    BatchResult,
    CheckerPool,
    check_source_payload,
    timed_check,
)


class TestTimedCheck:
    def test_reports_per_pass_timings(self, wind_source):
        report, timings = timed_check(wind_source)
        assert report.self_stabilizing
        assert set(timings) == {"parse", "resolve", "typecheck", "check"}
        assert all(t >= 0.0 for t in timings.values())

    def test_payload_for_front_end_error(self):
        payload = check_source_payload("class {", file="bad.sj")
        assert payload["kind"] == "error"
        assert payload["error"] == "front-end"
        assert payload["file"] == "bad.sj"


class TestBatchVerdicts:
    def test_all_bundled_apps_pass_with_timings(self, app_files):
        """Acceptance criterion: batch over the bundled programs yields a
        per-file verdict and timing for every app."""
        results = CheckerPool(max_workers=1).check_paths(app_files)
        assert [r.path for r in results] == [str(p) for p in app_files]
        assert all(r.verdict == PASS for r in results)
        assert all(r.elapsed_seconds > 0.0 for r in results)
        assert all(r.payload["timings"] for r in results)

    def test_failing_program(self, tmp_path, broken_source):
        bad = tmp_path / "bad.sj"
        bad.write_text(broken_source)
        (result,) = CheckerPool().check_paths([bad])
        assert result.verdict == FAIL
        assert result.error_count > 0
        assert not result.ok

    def test_front_end_error(self, tmp_path):
        bad = tmp_path / "syntax.sj"
        bad.write_text("class {")
        (result,) = CheckerPool().check_paths([bad])
        assert result.verdict == FRONT_END_ERROR
        assert result.message

    def test_unreadable_file(self, tmp_path):
        (result,) = CheckerPool().check_paths([tmp_path / "missing.sj"])
        assert result.verdict == ERROR

    def test_results_keep_input_order(self, tmp_path, app_files, broken_source):
        bad = tmp_path / "bad.sj"
        bad.write_text(broken_source)
        mixed = [app_files[0], bad, app_files[1]]
        results = CheckerPool().check_paths(mixed)
        assert [r.verdict for r in results] == [PASS, FAIL, PASS]

    def test_to_dict_round_trip(self, app_files):
        (result,) = CheckerPool().check_paths(app_files[:1])
        entry = result.to_dict()
        assert entry["verdict"] == PASS
        assert entry["payload"]["kind"] == "check"


class TestCacheIntegration:
    def test_second_run_is_served_from_cache(self, app_files):
        cache = ResultCache()
        pool = CheckerPool(max_workers=1, cache=cache)
        first = pool.check_paths(app_files)
        assert not any(r.cached for r in first)
        second = pool.check_paths(app_files)
        assert all(r.cached for r in second)
        assert all(r.verdict == PASS for r in second)
        assert pool.stats()["cache"]["memory_hits"] == len(app_files)

    def test_failing_verdict_is_cached_too(self, tmp_path, broken_source):
        bad = tmp_path / "bad.sj"
        bad.write_text(broken_source)
        pool = CheckerPool(cache=ResultCache())
        (first,) = pool.check_paths([bad])
        (second,) = pool.check_paths([bad])
        assert first.verdict == FAIL and second.verdict == FAIL
        assert second.cached
        assert second.error_count == first.error_count


class TestProcessPool:
    def test_parallel_matches_serial(self, app_files, tmp_path, broken_source):
        bad = tmp_path / "bad.sj"
        bad.write_text(broken_source)
        paths = list(app_files) + [bad]
        serial = CheckerPool(max_workers=1).check_paths(paths)
        parallel = CheckerPool(max_workers=2).check_paths(paths)
        assert [r.verdict for r in parallel] == [r.verdict for r in serial]
        assert [r.path for r in parallel] == [r.path for r in serial]

    def test_parallel_feeds_the_parent_cache(self, app_files):
        cache = ResultCache()
        pool = CheckerPool(max_workers=2, cache=cache)
        pool.check_paths(app_files)
        warm = pool.check_paths(app_files)
        assert all(r.cached for r in warm)


class TestSingleSource:
    def test_check_source(self, wind_source):
        result = CheckerPool().check_source(wind_source, file="wind.sj")
        assert result.verdict == PASS
        assert result.payload["file"] == "wind.sj"

    def test_check_source_uses_cache(self, wind_source):
        pool = CheckerPool(cache=ResultCache())
        assert not pool.check_source(wind_source).cached
        assert pool.check_source(wind_source).cached
