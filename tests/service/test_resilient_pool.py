"""ResilientPool: the fan-out layer must survive worker crashes,
enforce wall-clock timeouts, and never silently drop a task."""

from __future__ import annotations

import os
import random
import signal
import time
from pathlib import Path

from repro.service.pool import ResilientPool, TaskFailure


# Workers must be module-level (picklable by qualified name).

def _double(payload: dict) -> dict:
    return {"value": payload["value"] * 2}


def _sleepy(payload: dict) -> dict:
    time.sleep(payload["seconds"])
    return {"slept": True}


def _raise(payload: dict) -> dict:
    raise ValueError(payload["message"])


def _crash_once(payload: dict) -> dict:
    """SIGKILL the worker on first sight of the marker-less payload;
    succeed on the retry (the marker file survives the crash)."""
    marker = Path(payload["marker"])
    if not marker.exists():
        marker.write_text("crashed")
        os.kill(os.getpid(), signal.SIGKILL)
    return {"value": payload["value"], "recovered": True}


def _crash_always(payload: dict) -> dict:
    os.kill(os.getpid(), signal.SIGKILL)
    return {}  # pragma: no cover


def collect(pool: ResilientPool, fn, payloads) -> dict:
    return dict(pool.run(fn, payloads))


class TestInlineMode:
    def test_results_in_order(self):
        pool = ResilientPool(max_workers=1)
        results = list(pool.run(_double, [{"value": v} for v in range(4)]))
        assert results == [(i, {"value": i * 2}) for i in range(4)]

    def test_exception_becomes_failure_record(self):
        pool = ResilientPool(max_workers=1)
        outcomes = collect(pool, _raise, [{"message": "boom"}])
        failure = outcomes[0]
        assert isinstance(failure, TaskFailure)
        assert failure.reason == "error"
        assert "boom" in failure.message


class TestParallelHappyPath:
    def test_every_payload_yields_exactly_once(self):
        pool = ResilientPool(max_workers=2)
        payloads = [{"value": v} for v in range(6)]
        outcomes = collect(pool, _double, payloads)
        assert sorted(outcomes) == list(range(6))
        for index, result in outcomes.items():
            assert result == {"value": index * 2}


class TestWorkerCrash:
    def test_pool_rebuilds_after_sigkilled_worker(self, tmp_path):
        """Acceptance path: a SIGKILLed worker breaks the process pool;
        the pool is rebuilt and the shard retried, and every other task
        still completes."""
        sleeps: list[float] = []
        pool = ResilientPool(max_workers=2, max_retries=2,
                             sleep=sleeps.append)
        payloads = [{"value": 0, "marker": str(tmp_path / "m0")}]
        payloads += [{"value": v} for v in (1, 2, 3)]
        outcomes = collect(pool, _crash_once_or_double, payloads)
        assert outcomes[0] == {"value": 0, "recovered": True}
        for index in (1, 2, 3):
            assert outcomes[index] == {"value": index * 2}
        assert sleeps, "a rebuild round should have backed off first"

    def test_persistent_crasher_is_reported_not_dropped(self, tmp_path):
        sleeps: list[float] = []
        pool = ResilientPool(max_workers=2, max_retries=1,
                             sleep=sleeps.append)
        payloads = [{"crash": True}] + [{"value": v} for v in (1, 2)]
        outcomes = collect(pool, _crash_always_or_double, payloads)
        failure = outcomes[0]
        assert isinstance(failure, TaskFailure)
        assert failure.reason == "worker-crash"
        assert failure.attempts == 2  # initial try + one retry
        # the bystander tasks were requeued, not charged, and completed
        assert outcomes[1] == {"value": 2}
        assert outcomes[2] == {"value": 4}


def _crash_once_or_double(payload: dict) -> dict:
    if "marker" in payload:
        return _crash_once(payload)
    return _double(payload)


def _crash_always_or_double(payload: dict) -> dict:
    if payload.get("crash"):
        return _crash_always(payload)
    return _double(payload)


class TestTimeout:
    def test_slow_task_fails_with_timeout(self):
        sleeps: list[float] = []
        pool = ResilientPool(max_workers=2, task_timeout=0.2,
                             max_retries=0, sleep=sleeps.append)
        # the abandoned worker finishes its nap in the background; keep
        # it short so interpreter exit (which joins workers) stays fast
        outcomes = collect(
            pool, _sleepy_or_double,
            [{"seconds": 3.0}, {"value": 1}],
        )
        failure = outcomes[0]
        assert isinstance(failure, TaskFailure)
        assert failure.reason == "timeout"
        assert outcomes[1] == {"value": 2}


def _sleepy_or_double(payload: dict) -> dict:
    if "seconds" in payload:
        return _sleepy(payload)
    return _double(payload)


class TestBackoff:
    def test_backoff_has_decorrelated_jitter_within_bounds(self):
        """Every delay lands in [base, cap]; the draw window grows from
        the *previous* delay (decorrelated jitter), so consecutive
        retries desynchronize instead of marching in lockstep."""
        pool = ResilientPool(
            backoff_base=0.25, backoff_cap=1.0, rng=random.Random(7)
        )
        delays = [pool._next_backoff() for _ in range(8)]
        assert all(0.25 <= d <= 1.0 for d in delays)
        # With rate-limited uniform draws the schedule is not constant.
        assert len(set(delays)) > 1

    def test_backoff_schedule_is_reproducible_under_a_seeded_rng(self):
        def schedule(seed):
            pool = ResilientPool(
                backoff_base=0.25, backoff_cap=4.0, rng=random.Random(seed)
            )
            return [pool._next_backoff() for _ in range(6)]

        assert schedule(42) == schedule(42)
        assert schedule(42) != schedule(43)

    def test_backoff_first_delay_draws_from_base_window(self):
        """The first retry draws from [base, 3*base] — never below the
        base, never an instant stampede."""
        for seed in range(20):
            pool = ResilientPool(
                backoff_base=0.5, backoff_cap=10.0, rng=random.Random(seed)
            )
            first = pool._next_backoff()
            assert 0.5 <= first <= 1.5

    def test_backoff_resets_between_runs(self):
        """run() starts each payload batch from a fresh delay window, so
        one bad round does not inflate the next run's first retry."""
        pool = ResilientPool(
            backoff_base=0.25, backoff_cap=1.0, rng=random.Random(1)
        )
        for _ in range(6):
            pool._next_backoff()
        assert pool._delay > 0.0
        list(pool.run(_double, [{"value": 1}]))
        assert pool._delay == 0.0
