"""CLI surface of the observatory: ``--events``/``--log-level``,
``repro events`` on files, and ``repro report``."""

from __future__ import annotations

import json
import logging

import pytest

from repro.apps import programs_dir
from repro.cli import main
from repro.obs.events import (
    NullEventLog,
    get_event_log,
    read_events,
    validate_events,
)

WIND = str(programs_dir() / "wind_sensor.sj")

CAMPAIGN_ARGS = [
    "campaign", "--apps", "wind_sensor", "--trials", "4", "--strata", "2",
    "--iterations", "8", "--shard-size", "2", "--seed", "1",
]


class TestEventsFlag:
    def test_inject_writes_events_jsonl(self, tmp_path, capsys):
        events_path = tmp_path / "events.jsonl"
        assert main([
            "--log-level", "debug", "inject", WIND,
            "--trials", "2", "--iterations", "8",
            "--events", str(events_path),
        ]) == 0
        records = validate_events(events_path)
        names = {r["name"] for r in records}
        assert "trial.corrupted" in names
        assert "runtime.iteration" in names
        assert f"// events written to {events_path}" in \
            capsys.readouterr().err

    def test_default_level_omits_debug_events(self, tmp_path, capsys):
        events_path = tmp_path / "events.jsonl"
        assert main([
            "inject", WIND, "--trials", "2", "--iterations", "8",
            "--events", str(events_path),
        ]) == 0
        records = validate_events(events_path)
        assert all(r["level"] != "debug" for r in records)

    def test_campaign_events_cover_plan_and_shards(self, tmp_path, capsys):
        events_path = tmp_path / "events.jsonl"
        assert main(CAMPAIGN_ARGS + [
            "--checkpoint", str(tmp_path / "m.json"),
            "--events", str(events_path),
        ]) == 0
        capsys.readouterr()
        names = [r["name"] for r in read_events(events_path)]
        assert names.count("campaign.plan") == 1
        assert names.count("campaign.shard") == 2

    def test_trace_and_events_correlate(self, tmp_path, capsys):
        events_path = tmp_path / "events.jsonl"
        trace_path = tmp_path / "trace.jsonl"
        assert main(CAMPAIGN_ARGS + [
            "--checkpoint", str(tmp_path / "m.json"),
            "--events", str(events_path),
            "--trace", str(trace_path),
        ]) == 0
        capsys.readouterr()
        from repro.obs import read_trace

        span_ids = {e["span_id"] for e in read_trace(trace_path)}
        correlated = [
            r for r in read_events(events_path)
            if r["trace_id"] is not None
        ]
        assert correlated
        assert {r["span_id"] for r in correlated} <= span_ids

    def test_no_flags_leaves_null_log(self, capsys):
        assert main([
            "inject", WIND, "--trials", "2", "--iterations", "8",
        ]) == 0
        capsys.readouterr()
        assert isinstance(get_event_log(), NullEventLog)

    def test_log_level_bridges_to_stdlib_logging(self, capsys, caplog):
        with caplog.at_level(logging.INFO, logger="repro"):
            assert main([
                "--log-level", "info", "inject", WIND,
                "--trials", "2", "--iterations", "8",
            ]) == 0
        capsys.readouterr()
        assert any(
            r.name.startswith("repro.trial.") for r in caplog.records
        )


class TestEventsCommand:
    def _events_file(self, tmp_path, capsys):
        events_path = tmp_path / "events.jsonl"
        main([
            "--log-level", "debug", "inject", WIND,
            "--trials", "2", "--iterations", "8",
            "--events", str(events_path),
        ])
        capsys.readouterr()
        return events_path

    def test_tail_and_level_filter(self, tmp_path, capsys):
        events_path = self._events_file(tmp_path, capsys)
        assert main([
            "events", str(events_path), "--level", "info", "--tail", "3",
        ]) == 0
        captured = capsys.readouterr()
        lines = captured.out.strip().splitlines()
        assert len(lines) == 3
        assert "/3 events shown" not in captured.out  # stats go to stderr
        assert "events shown" in captured.err

    def test_json_envelopes(self, tmp_path, capsys):
        events_path = self._events_file(tmp_path, capsys)
        assert main([
            "events", str(events_path), "--name", "trial.", "--json",
        ]) == 0
        for line in capsys.readouterr().out.strip().splitlines():
            record = json.loads(line)
            assert record["name"].startswith("trial.")

    def test_invalid_stream_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"schema": 1}\n')
        assert main(["events", str(bad)]) == 2
        assert "invalid event stream" in capsys.readouterr().err

    def test_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["events", str(tmp_path / "none.jsonl")]) == 2


class TestReportCommand:
    def test_campaign_to_html_end_to_end(self, tmp_path, capsys):
        """Acceptance: ``repro campaign … && repro report --html`` yields
        a dashboard whose convergence curves end at the recorded
        recovery distances, byte-stable across re-renders."""
        checkpoint = tmp_path / "m.json"
        events_path = tmp_path / "events.jsonl"
        assert main(CAMPAIGN_ARGS + [
            "--checkpoint", str(checkpoint),
            "--events", str(events_path),
        ]) == 0
        out_a = tmp_path / "a.html"
        out_b = tmp_path / "b.html"
        for out in (out_a, out_b):
            assert main([
                "report", "--campaign", str(checkpoint),
                "--events", str(events_path), "--html", str(out),
            ]) == 0
        capsys.readouterr()
        assert out_a.read_bytes() == out_b.read_bytes()
        page = out_a.read_text()
        import re

        curves = re.findall(
            r'data-final="(\d+)"[^>]*data-recovery-samples="(\d+)"', page
        )
        assert curves
        assert all(final == recorded for final, recorded in curves)
        manifest = json.loads(checkpoint.read_text())
        recovered = [
            t for s in manifest["shards"].values()
            for t in s.get("trials", [])
            if t["verdict"] == "recovered"
        ]
        assert len(curves) == len(recovered)

    def test_generated_at_is_opt_in(self, tmp_path, capsys):
        checkpoint = tmp_path / "m.json"
        assert main(CAMPAIGN_ARGS + ["--checkpoint", str(checkpoint)]) == 0
        out = tmp_path / "r.html"
        assert main([
            "report", "--campaign", str(checkpoint), "--html", str(out),
            "--generated-at", "2026-02-03T04:05:06Z",
        ]) == 0
        capsys.readouterr()
        assert "Generated: 2026-02-03T04:05:06Z" in out.read_text()

    def test_no_inputs_is_a_usage_error(self, tmp_path, capsys):
        assert main(["report", "--html", str(tmp_path / "r.html")]) == 2
        assert "at least one input" in capsys.readouterr().err

    def test_invalid_events_exit_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"schema": 1}\n')
        assert main([
            "report", "--events", str(bad),
            "--html", str(tmp_path / "r.html"),
        ]) == 2
        assert "invalid event stream" in capsys.readouterr().err
