"""Call graph construction tests."""

from repro.lang import parse_program, resolve_program, typecheck_program
from repro.lang.callgraph import build_call_graph


def graph_for(source: str):
    program = parse_program(source)
    info = resolve_program(program)
    typecheck_program(info)
    return info, build_call_graph(info)


class TestEdges:
    def test_simple_call_edge(self):
        _, graph = graph_for(
            "class A { void a() { b(); } void b() { } }"
        )
        assert ("A", "b") in graph.callees(("A", "a"))

    def test_builtin_calls_excluded(self):
        _, graph = graph_for(
            "class A { void a() { SJ.broadcast(1); } }"
        )
        assert graph.callees(("A", "a")) == set()

    def test_dynamic_dispatch_expansion(self):
        _, graph = graph_for(
            "class A { void f() { } } "
            "class B extends A { void f() { } } "
            "class T { A a; void m() { a.f(); } }"
        )
        callees = graph.callees(("T", "m"))
        assert ("A", "f") in callees and ("B", "f") in callees

    def test_static_call_edge(self):
        _, graph = graph_for(
            "class H { static void s() { } } class T { void m() { H.s(); } }"
        )
        assert ("H", "s") in graph.callees(("T", "m"))

    def test_calls_in_conditions_found(self):
        _, graph = graph_for(
            "class A { boolean p() { return true; } "
            "void m() { if (p()) { } while (p()) { break; } } }"
        )
        assert ("A", "p") in graph.callees(("A", "m"))


class TestReachability:
    def test_reachable_transitively(self):
        _, graph = graph_for(
            "class A { void a() { b(); } void b() { c(); } void c() { } "
            "void unrelated() { } }"
        )
        reach = graph.reachable_from(("A", "a"))
        assert ("A", "c") in reach
        assert ("A", "unrelated") not in reach

    def test_topological_order_callees_first(self):
        _, graph = graph_for(
            "class A { void a() { b(); } void b() { c(); } void c() { } }"
        )
        scope = {("A", "a"), ("A", "b"), ("A", "c")}
        order = graph.topological_order(scope)
        assert order.index(("A", "c")) < order.index(("A", "b"))
        assert order.index(("A", "b")) < order.index(("A", "a"))


class TestRecursion:
    def test_direct_recursion_found(self):
        _, graph = graph_for("class A { void a() { a(); } }")
        cycle = graph.find_recursive_cycle({("A", "a")})
        assert cycle is not None

    def test_mutual_recursion_found(self):
        _, graph = graph_for(
            "class A { void a() { b(); } void b() { a(); } }"
        )
        assert graph.find_recursive_cycle({("A", "a"), ("A", "b")}) is not None

    def test_acyclic_graph_clean(self):
        _, graph = graph_for(
            "class A { void a() { b(); b(); } void b() { } }"
        )
        assert graph.find_recursive_cycle({("A", "a"), ("A", "b")}) is None

    def test_cycle_outside_scope_ignored(self):
        _, graph = graph_for(
            "class A { void a() { } void r() { r(); } }"
        )
        assert graph.find_recursive_cycle({("A", "a")}) is None
