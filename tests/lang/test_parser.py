"""Parser unit tests."""

import pytest

from repro.lang import ast
from repro.lang.parser import ParseError, parse_program


def parse_class_body(body: str) -> ast.ClassDecl:
    return parse_program(f"class T {{ {body} }}").classes[0]


def parse_stmts(stmts: str) -> list[ast.Stmt]:
    cls = parse_class_body(f"void m() {{ {stmts} }}")
    return cls.methods[0].body.stmts


def parse_expr(expr: str) -> ast.Expr:
    stmts = parse_stmts(f"boolean unused_probe = true; x = {expr};")
    assign = stmts[1]
    assert isinstance(assign, ast.Assign)
    return assign.value


class TestClassStructure:
    def test_empty_class(self):
        program = parse_program("class A { }")
        assert [c.name for c in program.classes] == ["A"]

    def test_multiple_classes(self):
        program = parse_program("class A {} class B {}")
        assert [c.name for c in program.classes] == ["A", "B"]

    def test_extends(self):
        program = parse_program("class A {} class B extends A {}")
        assert program.classes[1].superclass == "A"

    def test_public_modifier_ignored(self):
        program = parse_program("public class A { }")
        assert program.classes[0].name == "A"

    def test_fields_and_methods_separated(self):
        cls = parse_class_body("int x; void m() { } float y;")
        assert [f.name for f in cls.fields] == ["x", "y"]
        assert [m.name for m in cls.methods] == ["m"]

    def test_static_final_field(self):
        cls = parse_class_body("static final float c = 1.5;")
        fld = cls.fields[0]
        assert fld.is_static and fld.is_final
        assert isinstance(fld.init, ast.FloatLit)

    def test_field_initializer_new(self):
        cls = parse_class_body("T other = new T();")
        assert isinstance(cls.fields[0].init, ast.New)

    def test_method_params(self):
        cls = parse_class_body("int m(int a, float b) { return a; }")
        method = cls.methods[0]
        assert [p.name for p in method.params] == ["a", "b"]
        assert str(method.params[1].decl_type) == "float"

    def test_array_types(self):
        cls = parse_class_body("float[] data; int[] m(int[] a) { return a; }")
        assert str(cls.fields[0].decl_type) == "float[]"
        assert str(cls.methods[0].return_type) == "int[]"

    def test_missing_brace_raises(self):
        with pytest.raises(ParseError):
            parse_program("class A {")


class TestAnnotations:
    def test_class_annotation(self):
        program = parse_program('@LATTICE("A<B") class T {}')
        ann = program.classes[0].annotations[0]
        assert ann.name == "LATTICE"
        assert ann.value == "A<B"

    def test_field_annotation(self):
        cls = parse_class_body('@LOC("X") int f;')
        assert cls.fields[0].annotations[0].name == "LOC"

    def test_method_annotations_stack(self):
        cls = parse_class_body(
            '@LATTICE("A<B") @THISLOC("A") @RETURNLOC("B") int m() { return 1; }'
        )
        names = [a.name for a in cls.methods[0].annotations]
        assert names == ["LATTICE", "THISLOC", "RETURNLOC"]

    def test_param_annotation(self):
        cls = parse_class_body('void m(@LOC("P") int p) { }')
        assert cls.methods[0].params[0].annotations[0].name == "LOC"

    def test_bare_annotation_on_param(self):
        cls = parse_class_body("void m(@DELEGATE T t) { }")
        assert cls.methods[0].params[0].annotations[0].value is None

    def test_maxloop_int_argument(self):
        stmts = parse_stmts("@MAXLOOP(10) while (true) { }")
        loop = stmts[0]
        assert isinstance(loop, ast.While)
        assert loop.annotations[0].value == 10

    def test_var_decl_annotation(self):
        stmts = parse_stmts('@LOC("V") int v = 0;')
        assert stmts[0].annotations[0].name == "LOC"

    def test_for_init_annotation(self):
        stmts = parse_stmts('for (@LOC("I") int i = 0; i < 3; i++) { }')
        loop = stmts[0]
        assert isinstance(loop, ast.For)
        assert loop.init.annotations[0].name == "LOC"

    def test_annotation_on_assignment_in_for_rejected(self):
        with pytest.raises(ParseError):
            parse_stmts('for (@LOC("I") i = 0; i < 3; i++) { }')


class TestStatements:
    def test_var_decl_with_init(self):
        stmts = parse_stmts("int x = 3;")
        decl = stmts[0]
        assert isinstance(decl, ast.VarDecl)
        assert decl.name == "x"
        assert isinstance(decl.init, ast.IntLit)

    def test_assignment_kinds(self):
        stmts = parse_stmts("x = 1; x += 2; x -= 3; x *= 4; x /= 5;")
        assert [s.op for s in stmts] == ["=", "+=", "-=", "*=", "/="]

    def test_increment_desugars(self):
        stmts = parse_stmts("i++;")
        assign = stmts[0]
        assert isinstance(assign, ast.Assign)
        assert assign.op == "+=" and assign.was_increment
        assert isinstance(assign.value, ast.IntLit) and assign.value.value == 1

    def test_decrement_desugars(self):
        assert parse_stmts("i--;")[0].op == "-="

    def test_field_assignment(self):
        stmts = parse_stmts("this.f = 1;")
        assert isinstance(stmts[0].target, ast.FieldAccess)

    def test_array_assignment(self):
        stmts = parse_stmts("a[i] = 1;")
        assert isinstance(stmts[0].target, ast.ArrayAccess)

    def test_invalid_assignment_target(self):
        with pytest.raises(ParseError):
            parse_stmts("1 = x;")

    def test_if_else(self):
        stmts = parse_stmts("if (a > 0) { x = 1; } else { x = 2; }")
        node = stmts[0]
        assert isinstance(node, ast.If)
        assert node.else_body is not None

    def test_dangling_else_binds_inner(self):
        stmts = parse_stmts("if (a > 0) if (b > 0) x = 1; else x = 2;")
        outer = stmts[0]
        assert outer.else_body is None
        assert isinstance(outer.then_body, ast.If)
        assert outer.then_body.else_body is not None

    def test_while_loop(self):
        stmts = parse_stmts("while (i < 3) { i++; }")
        assert isinstance(stmts[0], ast.While)

    def test_for_loop_full(self):
        stmts = parse_stmts("for (int i = 0; i < 10; i++) { x = i; }")
        loop = stmts[0]
        assert isinstance(loop, ast.For)
        assert isinstance(loop.init, ast.VarDecl)
        assert isinstance(loop.update, ast.Assign)

    def test_for_loop_empty_clauses(self):
        stmts = parse_stmts("for (;;) { break; }")
        loop = stmts[0]
        assert loop.init is None and loop.cond is None and loop.update is None

    def test_labeled_event_loop(self):
        stmts = parse_stmts("SSJAVA: while (true) { }")
        assert stmts[0].label == "SSJAVA"

    def test_terminate_label(self):
        stmts = parse_stmts("TERMINATE_scan: while (a > 0) { }")
        assert stmts[0].label == "TERMINATE_scan"

    def test_label_requires_loop(self):
        with pytest.raises(ParseError):
            parse_stmts("L: x = 1;")

    def test_return_void_and_value(self):
        stmts = parse_stmts("return;")
        assert stmts[0].value is None
        stmts = parse_stmts("return 1 + 2;")
        assert isinstance(stmts[0].value, ast.Binary)

    def test_break_continue(self):
        stmts = parse_stmts("while (true) { break; continue; }")
        body = stmts[0].body.stmts
        assert isinstance(body[0], ast.Break)
        assert isinstance(body[1], ast.Continue)

    def test_call_statement(self):
        stmts = parse_stmts("foo(1, 2);")
        assert isinstance(stmts[0], ast.ExprStmt)
        assert isinstance(stmts[0].expr, ast.Call)


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse_expr("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_precedence_comparison_over_and(self):
        expr = parse_expr("a < b && c > d")
        assert expr.op == "&&"
        assert expr.left.op == "<"

    def test_or_lowest(self):
        expr = parse_expr("a && b || c")
        assert expr.op == "||"

    def test_left_associativity(self):
        expr = parse_expr("a - b - c")
        assert expr.op == "-"
        assert expr.left.op == "-"

    def test_parentheses(self):
        expr = parse_expr("(1 + 2) * 3")
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_unary_minus_and_not(self):
        assert parse_expr("-a").op == "-"
        assert parse_expr("!a").op == "!"

    def test_cast(self):
        expr = parse_expr("(int) x")
        assert isinstance(expr, ast.Unary)
        assert expr.op == "cast:int"

    def test_parenthesized_var_not_cast(self):
        expr = parse_expr("(x)")
        assert isinstance(expr, ast.VarRef)

    def test_field_chain(self):
        expr = parse_expr("a.b.c")
        assert isinstance(expr, ast.FieldAccess)
        assert expr.field_name == "c"
        assert expr.obj.field_name == "b"

    def test_array_length(self):
        expr = parse_expr("a.length")
        assert isinstance(expr, ast.ArrayLength)

    def test_method_call_with_receiver(self):
        expr = parse_expr("obj.m(1)")
        assert isinstance(expr, ast.Call)
        assert isinstance(expr.receiver, ast.VarRef)

    def test_unqualified_call(self):
        expr = parse_expr("m()")
        assert isinstance(expr, ast.Call)
        assert expr.receiver is None

    def test_chained_calls(self):
        expr = parse_expr("a.b().c()")
        assert expr.method == "c"
        assert expr.receiver.method == "b"

    def test_new_object(self):
        expr = parse_expr("new Foo()")
        assert isinstance(expr, ast.New)
        assert expr.class_name == "Foo"

    def test_new_array(self):
        expr = parse_expr("new float[8]")
        assert isinstance(expr, ast.NewArray)

    def test_array_index_expression(self):
        expr = parse_expr("a[i + 1]")
        assert isinstance(expr, ast.ArrayAccess)
        assert isinstance(expr.index, ast.Binary)

    def test_this_expression(self):
        expr = parse_expr("this.f")
        assert isinstance(expr.obj, ast.ThisRef)

    def test_literals(self):
        assert isinstance(parse_expr("true"), ast.BoolLit)
        assert isinstance(parse_expr("null"), ast.NullLit)
        assert isinstance(parse_expr('"s"'), ast.StringLit)
