"""Printer tests: parse→print→parse must be a fixpoint and preserve
semantics (checked via the conventional type checker and the runtime)."""

import pytest

from repro.apps import APP_NAMES, load_app
from repro.lang import parse_program, resolve_program, typecheck_program
from repro.lang.printer import print_expr, print_program, print_stmt


def roundtrip(source: str) -> str:
    printed = print_program(parse_program(source))
    again = print_program(parse_program(printed))
    assert printed == again
    return printed


class TestRoundTrip:
    def test_minimal_class(self):
        out = roundtrip("class A { int x; }")
        assert "class A" in out and "int x;" in out

    def test_annotations_preserved(self):
        out = roundtrip('@LATTICE("A<B") class T { @LOC("A") int f; }')
        assert '@LATTICE("A<B")' in out
        assert '@LOC("A")' in out

    def test_marker_annotation(self):
        out = roundtrip("class T { void m(@DELEGATE T t) { } }")
        assert "@DELEGATE" in out

    def test_maxloop_int(self):
        out = roundtrip(
            "class T { void m() { @MAXLOOP(5) while (true) { break; } } }"
        )
        assert "@MAXLOOP(5)" in out

    def test_loop_labels(self):
        out = roundtrip(
            "class T { void m() { SSJAVA: while (true) { } } }"
        )
        assert "SSJAVA:" in out

    def test_else_branches(self):
        roundtrip(
            "class T { void m(int a) { if (a > 0) { a = 1; } else { a = 2; } } }"
        )

    def test_for_loop(self):
        out = roundtrip(
            "class T { void m() { for (int i = 0; i < 3; i++) { } } }"
        )
        assert "i++" in out

    def test_operator_precedence_preserved(self):
        source = "class T { void m(int a, int b, int c) { int x = (a + b) * c; } }"
        printed = roundtrip(source)
        assert "(a + b) * c" in printed

    def test_nested_precedence(self):
        source = "class T { void m(int a, int b) { int x = a - (b - 1); } }"
        printed = roundtrip(source)
        assert "a - (b - 1)" in printed

    def test_string_escapes(self):
        roundtrip('class T { void m() { String s = "a\\n\\"b\\""; } }')

    def test_casts(self):
        out = roundtrip("class T { void m(float f) { int i = (int) f; } }")
        assert "(int) f" in out

    @pytest.mark.parametrize("name", APP_NAMES)
    def test_apps_roundtrip_and_typecheck(self, name):
        app = load_app(name)
        printed = print_program(app.program)
        program = parse_program(printed)
        info = resolve_program(program)
        typecheck_program(info)
        assert print_program(program) == printed


class TestFragments:
    def test_print_expr_smoke(self):
        program = parse_program("class T { void m(int a) { int x = a * 2 + 1; } }")
        decl = program.classes[0].methods[0].body.stmts[0]
        assert print_expr(decl.init) == "a * 2 + 1"

    def test_print_stmt_return(self):
        program = parse_program("class T { int m() { return 1; } }")
        stmt = program.classes[0].methods[0].body.stmts[0]
        assert print_stmt(stmt) == "return 1;"
