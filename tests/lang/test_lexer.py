"""Lexer unit tests."""

import pytest
from hypothesis import given, strategies as st

from repro.lang.lexer import LexError, tokenize
from repro.lang.tokens import TokenKind


def kinds(source: str) -> list[TokenKind]:
    return [t.kind for t in tokenize(source)][:-1]  # drop EOF


def values(source: str) -> list[object]:
    return [t.value for t in tokenize(source)][:-1]


class TestBasicTokens:
    def test_empty_input_yields_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_identifier(self):
        assert kinds("foo") == [TokenKind.IDENT]
        assert values("foo") == ["foo"]

    def test_identifier_with_digits_and_underscores(self):
        assert values("_x9_y") == ["_x9_y"]

    def test_keywords_are_distinguished(self):
        assert kinds("class") == [TokenKind.KEYWORD]
        assert kinds("classy") == [TokenKind.IDENT]

    def test_all_keywords(self):
        for word in ("if", "else", "while", "for", "return", "new", "this",
                     "true", "false", "null", "int", "float", "boolean",
                     "String", "void", "break", "continue", "extends",
                     "static", "final"):
            assert kinds(word) == [TokenKind.KEYWORD], word

    def test_int_literal(self):
        assert values("42") == [42]
        assert kinds("42") == [TokenKind.INT_LIT]

    def test_float_literal(self):
        assert values("3.5") == [3.5]
        assert kinds("3.5") == [TokenKind.FLOAT_LIT]

    def test_float_with_exponent(self):
        assert values("1.5e3") == [1500.0]
        assert values("2e-2") == [0.02]

    def test_float_with_f_suffix(self):
        assert kinds("1.0f") == [TokenKind.FLOAT_LIT]
        assert kinds("7f") == [TokenKind.FLOAT_LIT]
        assert values("7f") == [7.0]

    def test_integer_then_dot_method_not_float(self):
        # `x.length` after an int index must not glue into a float
        assert kinds("a[0].f") == [
            TokenKind.IDENT, TokenKind.LBRACKET, TokenKind.INT_LIT,
            TokenKind.RBRACKET, TokenKind.DOT, TokenKind.IDENT,
        ]

    def test_string_literal(self):
        assert values('"hello"') == ["hello"]

    def test_string_escapes(self):
        assert values(r'"a\nb\t\"q\\"') == ['a\nb\t"q\\']

    def test_unterminated_string_raises(self):
        with pytest.raises(LexError):
            tokenize('"oops')

    def test_invalid_escape_raises(self):
        with pytest.raises(LexError):
            tokenize(r'"\q"')


class TestOperators:
    @pytest.mark.parametrize(
        "text,kind",
        [
            ("<=", TokenKind.LE), (">=", TokenKind.GE), ("==", TokenKind.EQ),
            ("!=", TokenKind.NE), ("&&", TokenKind.AND), ("||", TokenKind.OR),
            ("+=", TokenKind.PLUS_ASSIGN), ("-=", TokenKind.MINUS_ASSIGN),
            ("*=", TokenKind.STAR_ASSIGN), ("/=", TokenKind.SLASH_ASSIGN),
            ("++", TokenKind.INCREMENT), ("--", TokenKind.DECREMENT),
        ],
    )
    def test_two_char_operators(self, text, kind):
        assert kinds(text) == [kind]

    @pytest.mark.parametrize(
        "text,kind",
        [
            ("+", TokenKind.PLUS), ("-", TokenKind.MINUS),
            ("*", TokenKind.STAR), ("/", TokenKind.SLASH),
            ("%", TokenKind.PERCENT), ("<", TokenKind.LT),
            (">", TokenKind.GT), ("=", TokenKind.ASSIGN),
            ("!", TokenKind.NOT), (";", TokenKind.SEMI),
            (":", TokenKind.COLON), (".", TokenKind.DOT),
            (",", TokenKind.COMMA),
        ],
    )
    def test_one_char_operators(self, text, kind):
        assert kinds(text) == [kind]

    def test_maximal_munch(self):
        assert kinds("a<=b") == [TokenKind.IDENT, TokenKind.LE, TokenKind.IDENT]
        assert kinds("a< =b") == [
            TokenKind.IDENT, TokenKind.LT, TokenKind.ASSIGN, TokenKind.IDENT
        ]

    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("a # b")


class TestComments:
    def test_line_comment_skipped(self):
        assert kinds("a // comment\nb") == [TokenKind.IDENT, TokenKind.IDENT]

    def test_block_comment_skipped(self):
        assert kinds("a /* x\ny */ b") == [TokenKind.IDENT, TokenKind.IDENT]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("/* never ends")


class TestAnnotations:
    def test_annotation_token(self):
        tokens = tokenize('@LOC("A")')
        assert tokens[0].kind is TokenKind.ANNOTATION
        assert tokens[0].value == "LOC"
        assert tokens[1].kind is TokenKind.LPAREN
        assert tokens[2].kind is TokenKind.STRING_LIT

    def test_bare_annotation(self):
        tokens = tokenize("@DELEGATE x")
        assert tokens[0].kind is TokenKind.ANNOTATION
        assert tokens[1].kind is TokenKind.IDENT

    def test_at_without_name_raises(self):
        with pytest.raises(LexError):
            tokenize("@ 1")


class TestPositions:
    def test_line_and_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].col) == (1, 1)
        assert (tokens[1].line, tokens[1].col) == (2, 3)

    def test_columns_advance_within_line(self):
        tokens = tokenize("ab cd")
        assert tokens[1].col == 4


class TestProperties:
    @given(st.integers(min_value=0, max_value=10**12))
    def test_int_literal_roundtrip(self, value):
        assert values(str(value)) == [value]

    @given(
        st.floats(
            min_value=0.001, max_value=1e6,
            allow_nan=False, allow_infinity=False,
        )
    )
    def test_float_literal_roundtrip(self, value):
        text = repr(value)
        tokens = tokenize(text)
        assert tokens[0].kind is TokenKind.FLOAT_LIT
        assert tokens[0].value == pytest.approx(value)

    @given(
        st.from_regex(r"[A-Za-z_][A-Za-z0-9_]{0,20}", fullmatch=True).filter(
            lambda s: s not in {
                "class", "extends", "public", "private", "protected",
                "static", "final", "void", "int", "float", "boolean",
                "String", "new", "if", "else", "while", "for", "return",
                "true", "false", "null", "break", "continue", "this",
            }
        )
    )
    def test_identifier_roundtrip(self, name):
        assert values(name) == [name]
        assert kinds(name) == [TokenKind.IDENT]
