"""ProgramInfo / class-table helper tests."""

from repro.lang import parse_program, resolve_program
from tests.conftest import analyze

HIERARCHY = '''
class A { int fa; void shared_m() { } void only_a() { } }
class B extends A { int fb; void shared_m() { } }
class C extends B { int fc; }
class Other { int fa; }
'''


class TestAncestry:
    def test_ancestry_chain(self):
        info = analyze(HIERARCHY)
        assert list(info.ancestry("C")) == ["C", "B", "A"]
        assert list(info.ancestry("A")) == ["A"]

    def test_is_subclass(self):
        info = analyze(HIERARCHY)
        assert info.is_subclass("C", "A")
        assert info.is_subclass("B", "B")
        assert not info.is_subclass("A", "C")
        assert not info.is_subclass("Other", "A")


class TestFieldLookup:
    def test_all_fields_supers_first(self):
        info = analyze(HIERARCHY)
        names = [f.name for _, f in info.all_fields("C")]
        assert names == ["fa", "fb", "fc"]
        owners = [o for o, _ in info.all_fields("C")]
        assert owners == ["A", "B", "C"]

    def test_find_field_walks_up(self):
        info = analyze(HIERARCHY)
        owner, decl = info.find_field("C", "fa")
        assert owner == "A" and decl.name == "fa"
        assert info.find_field("C", "nope") is None

    def test_find_field_shadowless_per_class(self):
        info = analyze(HIERARCHY)
        owner, _ = info.find_field("Other", "fa")
        assert owner == "Other"


class TestMethodLookup:
    def test_override_wins(self):
        info = analyze(HIERARCHY)
        owner, _ = info.find_method("C", "shared_m")
        assert owner == "B"

    def test_inherited_found(self):
        info = analyze(HIERARCHY)
        owner, _ = info.find_method("C", "only_a")
        assert owner == "A"

    def test_overriding_decls_includes_subclasses(self):
        info = analyze(HIERARCHY)
        owners = {o for o, _ in info.overriding_decls("A", "shared_m")}
        assert owners == {"A", "B"}

    def test_overriding_decls_from_middle(self):
        info = analyze(HIERARCHY)
        owners = {o for o, _ in info.overriding_decls("B", "shared_m")}
        assert owners == {"B"}

    def test_missing_method(self):
        info = analyze(HIERARCHY)
        assert info.find_method("A", "ghost") is None
        assert info.overriding_decls("A", "ghost") == []


class TestEventLoopDiscovery:
    def test_nested_loop_label_found(self):
        info = resolve_program(parse_program('''
        class T {
          void outer() {
            if (true) {
              SSJAVA: while (true) { }
            }
          }
        }
        '''))
        assert info.event_loop is not None

    def test_no_loop(self):
        info = resolve_program(parse_program("class T { void m() { } }"))
        assert info.event_loop is None
        assert info.event_loops == []

    def test_two_loops_not_unique(self):
        info = resolve_program(parse_program('''
        class T {
          void a() { SSJAVA: while (true) { } }
          void b() { SJAVA: while (true) { } }
        }
        '''))
        assert info.event_loop is None  # ambiguous
        assert len(info.event_loops) == 2
