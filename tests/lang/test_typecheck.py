"""Conventional (Java-level) type checker tests."""

import pytest

from repro.lang import ast, parse_program, resolve_program, typecheck_program
from repro.lang.symtab import BuiltinCall, MethodCall, ResolveError
from repro.lang.typecheck import JavaTypeError


def analyze(source: str):
    program = parse_program(source)
    info = resolve_program(program)
    typecheck_program(info)
    return info


def analyze_body(body: str, extra_members: str = "", extra_classes: str = ""):
    return analyze(
        f"class T {{ {extra_members} void m() {{ {body} }} }} {extra_classes}"
    )


def expect_error(source: str, fragment: str):
    with pytest.raises(JavaTypeError) as exc:
        analyze(source)
    assert fragment in str(exc.value), str(exc.value)


class TestDeclarations:
    def test_simple_ok(self):
        analyze_body("int x = 1; float y = x; boolean b = x < y;")

    def test_int_to_float_widening(self):
        analyze_body("float f = 3;")

    def test_float_to_int_rejected(self):
        expect_error("class T { void m() { int x = 1.5; } }", "initialize")

    def test_boolean_mismatch(self):
        expect_error("class T { void m() { boolean b = 1; } }", "initialize")

    def test_unknown_class_in_decl(self):
        expect_error("class T { void m() { Foo f = null; } }", "unknown class")

    def test_null_to_reference_ok(self):
        analyze_body("T t = null;", extra_members="")

    def test_null_to_primitive_rejected(self):
        expect_error("class T { void m() { int x = null; } }", "initialize")

    def test_duplicate_variable_rejected(self):
        expect_error(
            "class T { void m() { int x = 1; int x = 2; } }",
            "more than once",
        )

    def test_shadowing_param_rejected(self):
        expect_error(
            "class T { void m(int x) { int x = 1; } }", "more than once"
        )

    def test_use_before_declaration_rejected(self):
        expect_error("class T { void m() { int y = x; int x = 1; } }",
                     "unknown identifier")


class TestImplicitThis:
    def test_bare_field_name_resolves_to_this(self):
        info = analyze("class T { int f; void m() { f = 1; } }")
        cls = info.program.classes[0]
        assign = cls.methods[0].body.stmts[0]
        assert isinstance(assign.target, ast.FieldAccess)
        assert isinstance(assign.target.obj, ast.ThisRef)

    def test_local_shadows_nothing_but_wins_scope(self):
        info = analyze(
            "class T { int f; void m() { int g = f; } }"
        )
        assert info is not None

    def test_this_in_static_method_rejected(self):
        expect_error(
            "class T { int f; static void m() { int x = this.f; } }",
            "static",
        )

    def test_inherited_field_via_implicit_this(self):
        analyze(
            "class A { int f; } class B extends A { void m() { f = 1; } }"
        )


class TestExpressions:
    def test_arithmetic_result_types(self):
        analyze_body("int a = 1 + 2; float b = 1 + 2.0; float c = 2.0 * 3.0;")

    def test_arithmetic_on_boolean_rejected(self):
        expect_error("class T { void m() { int x = true + 1; } }", "numeric")

    def test_string_concat(self):
        analyze_body('String s = "a" + 1; String t = "x" + "y";')

    def test_comparison_yields_boolean(self):
        expect_error("class T { void m() { int x = 1 < 2; } }", "initialize")

    def test_logical_requires_boolean(self):
        expect_error("class T { void m() { boolean b = 1 && 2; } }", "boolean")

    def test_equality_on_references(self):
        analyze_body("T t = null; boolean b = t == null;")

    def test_incompatible_equality_rejected(self):
        expect_error(
            'class T { void m() { boolean b = 1 == "s"; } }', "compare"
        )

    def test_negate_numeric_only(self):
        expect_error("class T { void m() { int x = -true; } }", "negate")

    def test_not_boolean_only(self):
        expect_error("class T { void m() { boolean b = !1; } }", "boolean")

    def test_casts(self):
        analyze_body("float f = 1.9; int i = (int) f; float g = (float) i;")

    def test_array_indexing(self):
        analyze_body("float[] a = new float[3]; float x = a[0];")

    def test_index_must_be_int(self):
        expect_error(
            "class T { void m() { int[] a = new int[3]; int x = a[1.5]; } }",
            "index",
        )

    def test_indexing_non_array_rejected(self):
        expect_error("class T { void m() { int x = 1; int y = x[0]; } }",
                     "cannot index")

    def test_array_length(self):
        analyze_body("int[] a = new int[2]; int n = a.length;")

    def test_length_of_non_array_rejected(self):
        expect_error("class T { void m() { int x = 1; int n = x.length; } }",
                     "no length")

    def test_condition_must_be_boolean(self):
        expect_error("class T { void m() { if (1) { } } }", "boolean")


class TestFieldsAndMethods:
    def test_field_access_resolution(self):
        info = analyze(
            "class A { int f; } class T { A a; void m() { int x = a.f; } }"
        )
        accesses = [
            uid for uid in info.field_refs
        ]
        assert accesses  # at least a.f resolved

    def test_unknown_field_rejected(self):
        expect_error(
            "class A { } class T { A a; void m() { int x = a.g; } }",
            "no field",
        )

    def test_method_call_arg_checking(self):
        analyze(
            "class T { int add(int a, int b) { return a + b; } "
            "void m() { int x = add(1, 2); } }"
        )

    def test_wrong_arity_rejected(self):
        expect_error(
            "class T { int f(int a) { return a; } void m() { f(); } }",
            "expects 1",
        )

    def test_wrong_arg_type_rejected(self):
        expect_error(
            "class T { int f(int a) { return a; } void m() { f(true); } }",
            "parameter",
        )

    def test_return_type_checked(self):
        expect_error(
            "class T { int f() { return true; } }", "return"
        )

    def test_void_cannot_return_value(self):
        expect_error("class T { void m() { return 1; } }", "void")

    def test_nonvoid_cannot_return_nothing(self):
        expect_error("class T { int m() { return; } }", "must return")

    def test_dynamic_dispatch_type(self):
        info = analyze(
            "class A { int f() { return 1; } } "
            "class B extends A { int f() { return 2; } } "
            "class T { A a; void m() { int x = a.f(); } }"
        )
        targets = [
            t for t in info.call_targets.values() if isinstance(t, MethodCall)
        ]
        assert targets[0].receiver_class == "A"

    def test_static_call(self):
        analyze(
            "class H { static int two() { return 2; } } "
            "class T { void m() { int x = H.two(); } }"
        )

    def test_instance_method_as_static_rejected(self):
        expect_error(
            "class H { int two() { return 2; } } "
            "class T { void m() { int x = H.two(); } }",
            "static",
        )

    def test_constructorless_new_with_args_rejected(self):
        expect_error(
            "class A { } class T { void m() { A a = new A(1); } }",
            "constructors",
        )


class TestBuiltins:
    def test_device_read(self):
        info = analyze_body("int x = Device.readSensor(); float f = Device.readTemp();")
        builtins = [
            t for t in info.call_targets.values() if isinstance(t, BuiltinCall)
        ]
        assert len(builtins) == 2

    def test_unknown_device_function(self):
        expect_error(
            "class T { void m() { int x = Device.readMagic(); } }",
            "unknown builtin",
        )

    def test_broadcast_any(self):
        analyze_body('SJ.broadcast(1); SJ.broadcast("s"); SJ.broadcast(1.0);')

    def test_math_functions(self):
        analyze_body(
            "float a = Math.sqrt(2.0); float b = Math.abs(-1.0); "
            "int c = Math.floor(1.5); float d = Math.min(1.0, 2.0);"
        )

    def test_math_abs_preserves_int(self):
        analyze_body("int a = Math.abs(-3);")

    def test_fill_type_checked(self):
        analyze_body("float[] a = new float[2]; SJ.fill(a, 0.0);")
        expect_error(
            "class T { void m() { int[] a = new int[2]; SJ.fill(a, 1.5); } }",
            "bad arguments",
        )

    def test_ordered_buffer(self):
        analyze_body(
            "OrderedBuffer b = new OrderedBuffer(3); b.insert(1.0); "
            "float x = b.get(0); int n = b.size();"
        )

    def test_buffer_constructor_arity(self):
        expect_error(
            "class T { void m() { OrderedBuffer b = new OrderedBuffer(); } }",
            "capacity",
        )

    def test_buffer_insert_type(self):
        expect_error(
            "class T { void m() { OrderedIntBuffer b = new OrderedIntBuffer(2);"
            " b.insert(1.5); } }",
            "bad arguments",
        )


class TestResolveErrors:
    def test_duplicate_class(self):
        with pytest.raises(ResolveError):
            resolve_program(parse_program("class A {} class A {}"))

    def test_unknown_superclass(self):
        with pytest.raises(ResolveError):
            resolve_program(parse_program("class A extends Missing {}"))

    def test_inheritance_cycle(self):
        with pytest.raises(ResolveError):
            resolve_program(
                parse_program("class A extends B {} class B extends A {}")
            )

    def test_duplicate_field(self):
        with pytest.raises(ResolveError):
            resolve_program(parse_program("class A { int f; int f; }"))

    def test_duplicate_method(self):
        with pytest.raises(ResolveError):
            resolve_program(
                parse_program("class A { void m() {} void m() {} }")
            )

    def test_builtin_class_shadowing(self):
        with pytest.raises(ResolveError):
            resolve_program(parse_program("class OrderedBuffer {}"))

    def test_event_loop_discovery(self):
        info = resolve_program(
            parse_program(
                "class A { void run() { SSJAVA: while (true) { } } }"
            )
        )
        assert info.event_loop is not None
        assert info.event_loop.method.name == "run"

    def test_sjava_label_also_accepted(self):
        info = resolve_program(
            parse_program("class A { void run() { SJAVA: while (true) { } } }")
        )
        assert len(info.event_loops) == 1
