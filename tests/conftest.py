"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.apps import APP_NAMES, AppBundle, load_app
from repro.core.checker import CheckReport, check_program
from repro.lang import parse_program, resolve_program, typecheck_program
from repro.lang.symtab import ProgramInfo


def analyze(source: str) -> ProgramInfo:
    """Parse + resolve + conventionally type check a program."""
    program = parse_program(source)
    info = resolve_program(program)
    typecheck_program(info)
    return info


def check(source: str) -> CheckReport:
    return check_program(source)


def assert_stabilizing(source: str) -> CheckReport:
    report = check_program(source)
    assert report.self_stabilizing, "\n" + report.format()
    return report


def assert_rejected(source: str, check_kind: str) -> CheckReport:
    """The program must fail with at least one error of ``check_kind``."""
    report = check_program(source)
    kinds = {d.check.value for d in report.errors}
    assert check_kind in kinds, (
        f"expected a {check_kind!r} error, got kinds {kinds or '{}'}:\n"
        + report.format()
    )
    return report


def loop_program(body: str, *, lattice: str = "", extra: str = "") -> str:
    """Wrap statements into a minimal annotated event-loop program."""
    lattice_entries = "B<X,X<IN" + ("," + lattice if lattice else "")
    return f"""
    class Main {{
      @LATTICE("{lattice_entries}")
      @THISLOC("X")
      void run() {{
        SSJAVA:
        while (true) {{
          {body}
        }}
      }}
    }}
    {extra}
    """


@pytest.fixture(scope="session")
def apps() -> dict[str, AppBundle]:
    return {name: load_app(name) for name in APP_NAMES}


@pytest.fixture(scope="session", params=APP_NAMES)
def app_name(request) -> str:
    return request.param
