"""Simplification pass tests (Section 5.3)."""

from repro.infer.hierarchy import HierarchyGraph
from repro.infer.simplify import (
    merge_equivalent_nodes,
    remove_redundant_edges,
    simplify_hierarchy,
)


def graph_of(*orderings) -> HierarchyGraph:
    graph = HierarchyGraph("test")
    for low, high in orderings:
        graph.add_order(low, high)
    return graph


class TestRedundantEdges:
    def test_transitive_edge_removed(self):
        graph = graph_of(("a", "b"), ("b", "c"), ("a", "c"))
        assert remove_redundant_edges(graph)
        assert graph.orderings() == {("a", "b"), ("b", "c")}

    def test_cover_edges_kept(self):
        graph = graph_of(("a", "b"), ("b", "c"))
        assert not remove_redundant_edges(graph)
        assert graph.orderings() == {("a", "b"), ("b", "c")}

    def test_order_preserved_after_removal(self):
        graph = graph_of(("a", "b"), ("b", "c"), ("a", "c"))
        remove_redundant_edges(graph)
        assert "c" in graph.above("a")


class TestEquivalentMerging:
    def test_same_neighborhood_locals_merge(self):
        # x and y both sit between a and b with identical edges
        graph = graph_of(("x", "a"), ("y", "a"), ("b", "x"), ("b", "y"))
        assert merge_equivalent_nodes(graph, interface=set())
        assert graph.canonical("x") == graph.canonical("y")

    def test_interface_merges_only_with_interface(self):
        graph = graph_of(("x", "a"), ("y", "a"), ("b", "x"), ("b", "y"))
        merge_equivalent_nodes(graph, interface={"x"})
        # x is interface, y is not: they must stay distinct
        assert graph.canonical("x") != graph.canonical("y")

    def test_interface_pair_merges(self):
        # the paper's Fig. 5.14: fields f and g share all neighbors
        graph = graph_of(("f", "a"), ("g", "a"), ("z", "f"), ("z", "g"))
        merge_equivalent_nodes(graph, interface={"f", "g", "a", "z"})
        assert graph.canonical("f") == graph.canonical("g")

    def test_neighbors_never_merge(self):
        graph = graph_of(("a", "b"))
        assert not merge_equivalent_nodes(graph, interface=set())
        assert graph.canonical("a") != graph.canonical("b")

    def test_merge_does_not_mark_shared(self):
        graph = graph_of(("x", "a"), ("y", "a"), ("b", "x"), ("b", "y"))
        merge_equivalent_nodes(graph, interface=set())
        merged = graph.canonical("x")
        assert merged not in graph.shared_elements()

    def test_shared_member_keeps_shared(self):
        graph = graph_of(("x", "a"), ("y", "a"), ("b", "x"), ("b", "y"))
        graph.shared.add(graph.canonical("x"))
        graph.shared.add(graph.canonical("y"))
        merge_equivalent_nodes(graph, interface=set())
        assert graph.canonical("x") in graph.shared_elements()

    def test_different_shared_flags_do_not_merge(self):
        graph = graph_of(("x", "a"), ("y", "a"), ("b", "x"), ("b", "y"))
        graph.shared.add(graph.canonical("x"))
        merge_equivalent_nodes(graph, interface=set())
        assert graph.canonical("x") != graph.canonical("y")


class TestFullPass:
    def test_simplify_shrinks_parallel_structure(self):
        graph = graph_of(
            ("l1", "top"), ("l2", "top"), ("l3", "top"),
            ("bot", "l1"), ("bot", "l2"), ("bot", "l3"),
        )
        before = len(graph.elements())
        simplify_hierarchy(graph, interface={"top", "bot"})
        assert len(graph.elements()) < before
        # interface elements survive
        assert graph.canonical("top") == "top"
        assert graph.canonical("bot") == "bot"

    def test_simplify_terminates_on_cycle_merged_graphs(self):
        graph = graph_of(("a", "b"), ("b", "a"), ("c", "a"))
        simplify_hierarchy(graph, interface=set())  # must not loop forever
        assert graph.elements()
