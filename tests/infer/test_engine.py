"""Inference engine end-to-end tests (Sections 5.2–5.3, 6.3)."""

import pytest

from repro.apps import APP_NAMES, load_app
from repro.infer import infer_annotations
from repro.infer.cycles import avoid_superfluous_cycles
from repro.infer.value_flow import ValueFlowAnalysis
from tests.conftest import analyze


class TestCycleAvoidance:
    SOURCE = '''
    class Main {
      float curHum; float index;
      void run() {
        SSJAVA:
        while (true) {
          float h = Device.readHumidity();
          curHum = h;
          float f3 = curHum * curHum;
          index = f3 + 1.0;
          SJ.broadcast(index);
        }
      }
    }
    '''

    def test_local_between_fields_is_renamed(self):
        # the paper's Fig. 5.6 scenario: f3 takes from curHum and feeds
        # index, so it must move into this's field hierarchy
        info = analyze(self.SOURCE)
        analysis = ValueFlowAnalysis(info)
        graphs = analysis.run()
        graph = graphs[("Main", "run")]
        renamed = avoid_superfluous_cycles(graph)
        assert "f3" in renamed
        anchor, fresh = renamed["f3"]
        assert anchor == "this"
        assert fresh in graph.fresh_elements

    def test_unrelated_local_not_renamed(self):
        info = analyze(self.SOURCE)
        analysis = ValueFlowAnalysis(info)
        graph = analysis.run()[("Main", "run")]
        renamed = avoid_superfluous_cycles(graph)
        assert "h" not in renamed


class TestInferenceCorrectness:
    """Correctness properties of Section 5.1.1: the inferred annotations
    form lattices, are complete, and capture all flows — all established
    by re-running the full checker on the emitted program."""

    @pytest.mark.parametrize("name", APP_NAMES)
    @pytest.mark.parametrize("mode", ["naive", "sinfer"])
    def test_inferred_annotations_verify(self, name, mode):
        app = load_app(name, annotated=False)
        result = infer_annotations(app.info, mode=mode)
        assert result.verified, result.check_report.format()

    def test_cyclic_program_gets_shared_location(self):
        source = '''
        class Main {
          void run() {
            SSJAVA:
            while (true) {
              int v = Device.readSensor();
              int acc = v;
              acc = acc + 1;
              SJ.broadcast(acc);
            }
          }
        }
        '''
        result = infer_annotations(analyze(source), mode="sinfer")
        assert result.verified
        assert "acc*" in result.annotated_source

    def test_non_stabilizing_program_rejected_by_eviction(self):
        # inference may find typeable shared annotations, but the eviction
        # analysis must still reject the never-cleared accumulator
        # (Section 5.2.7)
        source = '''
        class Main {
          int total;
          void run() {
            SSJAVA:
            while (true) {
              int v = Device.readSensor();
              total = total + v;
              SJ.broadcast(total);
            }
          }
        }
        '''
        result = infer_annotations(analyze(source), mode="sinfer")
        assert not result.verified
        kinds = {d.check.value for d in result.check_report.errors}
        assert kinds & {"shared", "eviction"}


class TestSimplificationGoals:
    def test_sinfer_not_more_complex_than_naive(self):
        for name in APP_NAMES:
            naive = infer_annotations(
                load_app(name, annotated=False).info, mode="naive", verify=False
            )
            sinfer = infer_annotations(
                load_app(name, annotated=False).info, mode="sinfer", verify=False
            )
            assert (
                sinfer.summary.total_locations <= naive.summary.total_locations
            ), name
            assert sinfer.summary.total_paths <= naive.summary.total_paths, name

    def test_interface_members_keep_locations(self):
        # fields (interface members) must still have distinct orderings
        app = load_app("weather_index", annotated=False)
        result = infer_annotations(app.info, mode="sinfer", verify=False)
        source = result.annotated_source
        for field_name in ("prevTemp", "avgTemp", "curHum", "index"):
            assert f'@LOC("{field_name}")' in source

    def test_emission_includes_method_interface(self):
        app = load_app("weather_index", annotated=False)
        result = infer_annotations(app.info, mode="sinfer", verify=False)
        assert '@THISLOC("this")' in result.annotated_source
        assert "@PCLOC(" in result.annotated_source

    def test_deterministic(self):
        first = infer_annotations(
            load_app("wind_sensor", annotated=False).info, verify=False
        )
        second = infer_annotations(
            load_app("wind_sensor", annotated=False).info, verify=False
        )
        assert first.annotated_source == second.annotated_source


class TestMetricsIntegration:
    def test_metrics_populated(self):
        result = infer_annotations(
            load_app("mp3_decoder", annotated=False).info, verify=False
        )
        assert result.per_lattice
        assert result.summary.total_locations > 0
        assert result.elapsed_seconds > 0

    def test_unknown_mode_rejected(self):
        from repro.infer import InferenceEngine

        with pytest.raises(ValueError):
            InferenceEngine(load_app("wind_sensor").info, mode="magic")
