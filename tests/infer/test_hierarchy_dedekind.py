"""Hierarchy graph and Dedekind–MacNeille completion tests
(Sections 5.2.5–5.2.6)."""

from hypothesis import given, settings, strategies as st

from repro.core.lattice import BOTTOM, TOP, NotALatticeError
from repro.infer.dedekind import complete
from repro.infer.hierarchy import HierarchyGraph


def graph_of(*orderings: tuple[str, str]) -> HierarchyGraph:
    graph = HierarchyGraph("test")
    for low, high in orderings:
        graph.add_order(low, high)
    return graph


class TestHierarchyGraph:
    def test_simple_order(self):
        graph = graph_of(("a", "b"))
        assert graph.orderings() == {("a", "b")}

    def test_transitive_reachability(self):
        graph = graph_of(("a", "b"), ("b", "c"))
        assert graph.above("a") == {"b", "c"}

    def test_self_flow_becomes_shared(self):
        graph = graph_of()
        graph.add_order("x", "x")
        assert "x" in graph.shared_elements()

    def test_cycle_merges_into_shared(self):
        graph = graph_of(("a", "b"), ("b", "a"))
        elements = graph.elements()
        assert len(elements) == 1
        assert graph.shared_elements() == elements
        assert graph.canonical("a") == graph.canonical("b")

    def test_longer_cycle_merges_all(self):
        graph = graph_of(("a", "b"), ("b", "c"), ("c", "a"))
        assert len(graph.elements()) == 1

    def test_cycle_merge_preserves_outer_edges(self):
        graph = graph_of(("low", "a"), ("a", "b"), ("b", "a"), ("b", "high"))
        merged = graph.canonical("a")
        assert ("low", merged) in graph.orderings()
        assert (merged, "high") in graph.orderings()

    def test_merge_is_idempotent_for_new_edges(self):
        graph = graph_of(("a", "b"), ("b", "a"))
        graph.add_order("a", "b")  # both map to the same canonical element
        assert len(graph.elements()) == 1


class TestDedekindMacNeille:
    def test_chain_is_unchanged(self):
        graph = graph_of(("a", "b"), ("b", "c"))
        done = complete(graph, "chain")
        assert done.lattice.user_elements() == {"a", "b", "c"}
        assert done.synthesized == []

    def test_incomparable_pair_gets_meet(self):
        # a,b below both x,y: the completion must add GLB(x, y)
        graph = graph_of(("a", "x"), ("a", "y"), ("b", "x"), ("b", "y"))
        done = complete(graph, "butterfly")
        lattice = done.lattice
        meet = lattice.glb("x", "y")  # must not raise
        assert meet not in ("a", "b")
        assert lattice.lt("a", meet) and lattice.lt("b", meet)
        assert done.synthesized

    def test_result_is_meet_semilattice(self):
        graph = graph_of(
            ("a", "x"), ("a", "y"), ("b", "y"), ("b", "z"), ("c", "x"),
            ("c", "z"),
        )
        lattice = complete(graph, "m").lattice
        for first in lattice.user_elements():
            for second in lattice.user_elements():
                lattice.glb(first, second)  # must never raise

    def test_shared_marks_preserved(self):
        graph = graph_of(("a", "b"))
        graph.add_order("s", "s")
        graph.add_order("s", "b")
        lattice = complete(graph, "s").lattice
        assert lattice.is_shared("s")

    def test_ordering_preserved(self):
        graph = graph_of(("a", "b"), ("c", "b"))
        lattice = complete(graph, "o").lattice
        assert lattice.lt("a", "b")
        assert lattice.lt("c", "b")
        assert not lattice.comparable("a", "c")

    @given(st.lists(
        st.tuples(
            st.sampled_from(["a", "b", "c", "d", "e"]),
            st.sampled_from(["a", "b", "c", "d", "e"]),
        ),
        max_size=8,
    ))
    @settings(max_examples=60, deadline=None)
    def test_completion_always_yields_lattice(self, pairs):
        graph = HierarchyGraph("prop")
        for low, high in pairs:
            graph.add_order(low, high)
        lattice = complete(graph, "prop").lattice
        elements = sorted(lattice.elements)
        for first in elements:
            for second in elements:
                meet = lattice.glb(first, second)
                join = lattice.lub(first, second)
                assert lattice.leq(meet, first)
                assert lattice.leq(second, join)

    @given(st.lists(
        st.tuples(
            st.sampled_from(["a", "b", "c", "d"]),
            st.sampled_from(["a", "b", "c", "d"]),
        ),
        max_size=6,
    ))
    @settings(max_examples=60, deadline=None)
    def test_completion_preserves_original_order(self, pairs):
        graph = HierarchyGraph("prop2")
        for low, high in pairs:
            graph.add_order(low, high)
        above_before = {
            e: graph.above(e) for e in graph.elements()
        }
        lattice = complete(graph, "prop2").lattice
        for element, above in above_before.items():
            for higher in above:
                assert lattice.lt(element, higher)
