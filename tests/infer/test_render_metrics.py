"""Lattice rendering and metrics tests."""

from repro.core.lattice import Lattice
from repro.infer.metrics import (
    LatticeMetrics,
    count_paths,
    lattice_metrics,
    summarize_metrics,
)
from repro.infer.render import render_ascii, render_dot


def diamond() -> Lattice:
    return Lattice(
        name="diamond",
        pairs=[("bot", "l"), ("bot", "r"), ("l", "top"), ("r", "top")],
    )


class TestMetrics:
    def test_chain_has_one_path(self):
        lattice = Lattice(pairs=[("a", "b"), ("b", "c")])
        assert count_paths(lattice) == 1

    def test_diamond_has_two_paths(self):
        assert count_paths(diamond()) == 2

    def test_empty_lattice(self):
        assert count_paths(Lattice()) == 1

    def test_parallel_chains_multiply(self):
        # TOP -> {a,b} -> BOTTOM: 2 paths; adding an unrelated c gives 3
        lattice = Lattice()
        for name in ("a", "b", "c"):
            lattice.add_element(name)
        assert count_paths(lattice) == 3

    def test_lattice_metrics_simple_threshold(self):
        small = lattice_metrics("s", Lattice(pairs=[("a", "b")]))
        assert small.is_simple
        big = Lattice()
        for i in range(6):
            big.add_element(f"n{i}")
        assert not lattice_metrics("b", big).is_simple

    def test_summary_buckets(self):
        summary = summarize_metrics([
            LatticeMetrics("a", 3, 2),
            LatticeMetrics("b", 8, 11),
            LatticeMetrics("c", 2, 1),
        ])
        assert summary.simple_count == 2
        assert summary.simple_locations == 5
        assert summary.complex_paths == 11
        assert summary.total_locations == 13
        assert summary.total_paths == 14


class TestRendering:
    def test_ascii_shows_all_elements(self):
        text = render_ascii(diamond())
        for name in ("top", "l", "r", "bot", "⊤", "⊥"):
            assert name in text

    def test_ascii_marks_shared(self):
        lattice = Lattice(pairs=[("a", "b")], shared=["a"])
        assert "a*" in render_ascii(lattice)

    def test_dot_is_wellformed(self):
        text = render_dot(diamond(), "d x")
        assert text.startswith('digraph "d_x" {')
        assert text.rstrip().endswith("}")
        assert '"top" -> "l"' in text

    def test_dot_covering_edges_only(self):
        lattice = Lattice(pairs=[("a", "b"), ("b", "c")])
        text = render_dot(lattice)
        assert '"c" -> "b"' in text
        assert '"c" -> "a"' not in text  # transitive edge elided
