"""Non-self-stabilizing and non-representable programs (Section 5.2.7).

The inference algorithm reacts to pathological flows in three ways:
cyclic value flows merge into shared locations (then stand or fall with
the eviction analysis); flows the type system cannot represent are
recorded and reported to the developer; and everything else infers
normally.
"""

from repro.infer import infer_annotations
from repro.infer.value_flow import ValueFlowAnalysis
from repro.infer.cycles import avoid_superfluous_cycles
from repro.infer.hierarchy import decompose
from tests.conftest import analyze


class TestCyclicFlows:
    def test_two_variable_cycle_merges_shared(self):
        source = '''
        class Main {
          void run() {
            SSJAVA:
            while (true) {
              int v = Device.readSensor();
              int a = v;
              int b = a;
              a = b;
              SJ.broadcast(a);
            }
          }
        }
        '''
        info = analyze(source)
        analysis = ValueFlowAnalysis(info)
        graphs = analysis.run()
        for graph in graphs.values():
            avoid_superfluous_cycles(graph)
        hierarchies = decompose(info, graphs)
        method = hierarchies.method[("Main", "run")]
        assert method.canonical("a") == method.canonical("b")
        assert method.canonical("a") in method.shared_elements()

    def test_cycle_without_clearing_rejected_by_shared_analysis(self):
        # Section 5.2.7: "For cycles that can be represented using shared
        # types, it may potentially infer type annotations that type
        # check.  However, the stronger static eviction criteria required
        # for shared locations will cause SJava's static eviction analysis
        # to reject the program."  Here b only ever receives same-shared
        # values, so the clearing requirement conservatively fails.
        source = '''
        class Main {
          void run() {
            SSJAVA:
            while (true) {
              int v = Device.readSensor();
              int a = v;
              int b = a;
              a = b;
              SJ.broadcast(a);
            }
          }
        }
        '''
        result = infer_annotations(analyze(source), mode="sinfer")
        assert not result.verified
        kinds = {d.check.value for d in result.check_report.errors}
        assert kinds == {"shared"}

    def test_cycle_with_explicit_clearing_verifies(self):
        # when every shared member is re-seeded from a higher location,
        # the inferred shared annotations pass the whole checker
        source = '''
        class Main {
          void run() {
            SSJAVA:
            while (true) {
              int v = Device.readSensor();
              int a = v;
              int b = v - 1;
              a = b;
              b = a;
              SJ.broadcast(a);
            }
          }
        }
        '''
        result = infer_annotations(analyze(source), mode="sinfer")
        assert result.verified, result.check_report.format()

    def test_field_cycle_merges_in_class_hierarchy(self):
        source = '''
        class Main {
          int x; int y;
          void run() {
            SSJAVA:
            while (true) {
              int v = Device.readSensor();
              x = v;
              y = x;
              x = y;
              SJ.broadcast(y);
            }
          }
        }
        '''
        info = analyze(source)
        analysis = ValueFlowAnalysis(info)
        graphs = analysis.run()
        hierarchies = decompose(info, graphs)
        fields = hierarchies.fields["Main"]
        assert fields.canonical("x") == fields.canonical("y")
        assert fields.canonical("x") in fields.shared_elements()


class TestNonRepresentableFlows:
    def test_substructure_to_reference_flow_is_dropped(self):
        # r = r.next: the value of a field flows into the reference it is
        # reached through — lexicographic composite locations cannot
        # express it, so the engine records it for the developer
        source = '''
        class Node { Node next; }
        class Main {
          Node head;
          void run() {
            SSJAVA:
            while (true) {
              int v = Device.readSensor();
              Node r = head;
              r = r.next;
              SJ.broadcast(v);
            }
          }
        }
        '''
        result = infer_annotations(analyze(source), mode="sinfer", verify=False)
        assert result.dropped_flows
        key, src, dst = result.dropped_flows[0]
        assert key == ("Main", "run")
        assert len(src) > len(dst)
