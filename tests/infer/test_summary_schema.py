"""MetricsSummary serialization: schema-versioned dict round-trip."""

from __future__ import annotations

import pytest

from repro.infer.metrics import SUMMARY_SCHEMA, MetricsSummary


class TestRoundTrip:
    def test_to_dict_from_dict_round_trips(self):
        summary = MetricsSummary(
            simple_count=4,
            simple_locations=12,
            simple_paths=9,
            complex_count=2,
            complex_locations=15,
            complex_paths=40,
        )
        data = summary.to_dict()
        restored = MetricsSummary.from_dict(data)
        assert restored == summary
        assert restored.to_dict() == data

    def test_dict_carries_schema_and_derived_totals(self):
        data = MetricsSummary(simple_locations=3, complex_locations=7).to_dict()
        assert data["schema"] == SUMMARY_SCHEMA
        assert data["total_locations"] == 10

    def test_from_dict_without_schema_is_accepted(self):
        # Summaries written before versioning carry no schema key.
        restored = MetricsSummary.from_dict({"simple_count": 1})
        assert restored.simple_count == 1

    def test_from_dict_rejects_unknown_schema(self):
        with pytest.raises(ValueError, match="unsupported metrics summary"):
            MetricsSummary.from_dict({"schema": SUMMARY_SCHEMA + 1})
