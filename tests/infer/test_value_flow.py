"""Value flow graph construction tests (Section 5.2.1)."""

from repro.infer.value_flow import (
    PC_ROOT,
    RET_ROOT,
    THIS_ROOT,
    ValueFlowAnalysis,
)
from tests.conftest import analyze


def graphs_for(source: str):
    info = analyze(source)
    analysis = ValueFlowAnalysis(info)
    analysis.run()
    return analysis


def loop_source(body: str, extra: str = "") -> str:
    return f'''
    class Main {{
      void run() {{
        SSJAVA:
        while (true) {{
          {body}
        }}
      }}
      {extra}
    }}
    '''


def edge_exists(graph, src_head, dst_head) -> bool:
    return any(a[0] == src_head and b[0] == dst_head for a, b in graph.edges)


class TestExplicitFlows:
    def test_variable_flow(self):
        analysis = graphs_for(loop_source(
            "int v = Device.readSensor(); int w = v; SJ.broadcast(w);"
        ))
        graph = analysis.graphs[("Main", "run")]
        assert (("v",), ("w",)) in graph.edges

    def test_literals_create_no_sources(self):
        analysis = graphs_for(loop_source("int v = 5; SJ.broadcast(v);"))
        graph = analysis.graphs[("Main", "run")]
        incoming = [(a, b) for a, b in graph.edges if b == ("v",) and a[0] != PC_ROOT]
        assert incoming == []

    def test_field_flows(self):
        analysis = graphs_for('''
        class Main {
          int f; int g;
          void run() {
            SSJAVA:
            while (true) {
              int v = Device.readSensor();
              f = v;
              g = f;
              SJ.broadcast(g);
            }
          }
        }
        ''')
        graph = analysis.graphs[("Main", "run")]
        assert (("v",), (THIS_ROOT, "f")) in graph.edges
        assert ((THIS_ROOT, "f"), (THIS_ROOT, "g")) in graph.edges

    def test_multi_source_creates_intermediate(self):
        analysis = graphs_for(loop_source(
            "int a = Device.readSensor(); int b = Device.readSensor();"
            "int c = a + b; SJ.broadcast(c);"
        ))
        graph = analysis.graphs[("Main", "run")]
        # a and b feed an IL node which feeds c
        iloc_edges = [
            (a, b) for a, b in graph.edges if b[0].startswith("IL") and a == ("a",)
        ]
        assert iloc_edges
        iloc = iloc_edges[0][1]
        assert (iloc, ("c",)) in graph.edges

    def test_compound_assignment_self_edge(self):
        analysis = graphs_for(loop_source(
            "int a = Device.readSensor(); a += 1; SJ.broadcast(a);"
        ))
        graph = analysis.graphs[("Main", "run")]
        assert (("a",), ("a",)) in graph.edges

    def test_return_node(self):
        analysis = graphs_for(loop_source(
            "int v = Device.readSensor(); int w = half(v); SJ.broadcast(w);",
            extra="int half(int x) { return x / 2; }",
        ))
        graph = analysis.graphs[("Main", "half")]
        assert (("x",), (RET_ROOT,)) in graph.edges


class TestImplicitFlows:
    def test_branch_condition_flows_into_assignments(self):
        analysis = graphs_for(loop_source(
            "int v = Device.readSensor(); int w = 0;"
            "if (v > 0) { w = 1; }"
            "SJ.broadcast(w);"
        ))
        graph = analysis.graphs[("Main", "run")]
        # v -> branch IL -> w
        branch = [b for a, b in graph.edges if a == ("v",) and b[0].startswith("IL")]
        assert branch
        assert any((node, ("w",)) in graph.edges for node in branch)

    def test_pc_node_dominates_destinations(self):
        analysis = graphs_for(loop_source(
            "int v = Device.readSensor(); SJ.broadcast(v);"
        ))
        graph = analysis.graphs[("Main", "run")]
        assert ((PC_ROOT,), ("v",)) in graph.edges

    def test_nested_branches_chain(self):
        analysis = graphs_for(loop_source(
            "int v = Device.readSensor(); int w = 0;"
            "if (v > 0) { if (v > 5) { w = 2; } }"
            "SJ.broadcast(w);"
        ))
        graph = analysis.graphs[("Main", "run")]
        ilocs = {n[0] for n in graph.nodes if n[0].startswith("IL")}
        assert len(ilocs) >= 2


class TestInterprocedural:
    SOURCE = '''
    class Main {
      int f; int g;
      void run() {
        SSJAVA:
        while (true) {
          int v = Device.readSensor();
          f = v;
          copy();
          SJ.broadcast(g);
        }
      }
      void copy() { g = f; }
    }
    '''

    def test_summary_writes(self):
        # this.f → this.g is internal to the receiver's field hierarchy
        # (ordered by the class lattice, not the call summary), but the
        # write into `this`-reachable memory must be recorded.
        analysis = graphs_for(self.SOURCE)
        summary = analysis.summary_for(("Main", "copy"))
        assert (THIS_ROOT, THIS_ROOT) not in summary.flows
        assert THIS_ROOT in summary.written

    def test_param_to_return_summary(self):
        analysis = graphs_for(loop_source(
            "int v = Device.readSensor(); int w = half(v); SJ.broadcast(w);",
            extra="int half(int x) { return x / 2; }",
        ))
        summary = analysis.summary_for(("Main", "half"))
        assert ("x", RET_ROOT) in summary.flows

    def test_call_result_feeds_destination(self):
        analysis = graphs_for(loop_source(
            "int v = Device.readSensor(); int w = half(v); SJ.broadcast(w);",
            extra="int half(int x) { return x / 2; }",
        ))
        graph = analysis.graphs[("Main", "run")]
        # v flows (possibly via the call) into w
        succ = {}
        for a, b in graph.edges:
            succ.setdefault(a, set()).add(b)
        seen, stack = set(), [("v",)]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(succ.get(node, ()))
        assert ("w",) in seen

    def test_trusted_calls_are_fresh_inputs(self):
        analysis = graphs_for('''
        @TRUSTED
        class Src { int next() { return Device.readSensor(); } }
        class Main {
          Src src = new Src();
          void run() {
            SSJAVA:
            while (true) {
              int v = src.next();
              SJ.broadcast(v);
            }
          }
        }
        ''')
        graph = analysis.graphs[("Main", "run")]
        incoming = [
            (a, b) for a, b in graph.edges if b == ("v",) and a[0] != PC_ROOT
        ]
        assert incoming == []

    def test_scope_excludes_unreachable(self):
        analysis = graphs_for(loop_source(
            "SJ.broadcast(1);",
            extra="void unreachable() { int x = 0; }",
        ))
        assert ("Main", "unreachable") not in analysis.graphs
