#!/usr/bin/env python3
"""Program understanding through inferred lattices.

The SInfer paper's secondary motivation: the inferred lattices expose a
program's information-flow architecture — "it was easy to correlate each
level of that hierarchy with a phase of the sequential decoding process"
(Section 6.3.2, Fig. 6.4).  This example infers annotations for the MP3
decoder analog and renders each class lattice so the pipeline stages
read top-to-bottom.

Run:  python examples/program_understanding.py [app-name]
"""

import sys

from repro.apps import APP_NAMES, load_app
from repro.infer import infer_annotations
from repro.infer.render import render_ascii


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "mp3_decoder"
    if name not in APP_NAMES:
        raise SystemExit(f"unknown app {name!r}; pick one of {APP_NAMES}")

    app = load_app(name, annotated=False)
    result = infer_annotations(app.info, mode="sinfer", verify=False)

    print(f"inferred information-flow architecture of {name!r}\n")
    for lattice_name, lattice in sorted(result.lattices.items()):
        if not lattice.user_elements():
            continue
        print(f"== {lattice_name} ==")
        print(render_ascii(lattice))
        print()
    print(
        "Read each lattice top-to-bottom: fresh input at ⊤, each level a\n"
        "processing stage, outputs at the bottom — the decoding pipeline\n"
        "recovered from unannotated code."
    )


if __name__ == "__main__":
    main()
