#!/usr/bin/env python3
"""Quickstart: check that a program self-stabilizes, watch it recover.

This walks the full SJava workflow on the paper's running example (the
wind direction sensor of Fig. 2.1):

1. write an annotated event-loop program in the sjava mini-language;
2. check it with the SJava checker (flow-down rule + eviction +
   termination + linear types);
3. run it on simulated inputs;
4. inject a fault and watch the output return to the reference behavior
   within the bin depth (3 iterations).

Run:  python examples/quickstart.py
"""

from repro import check_program, Interpreter, RuntimeOptions
from repro.lang import parse_program, resolve_program, typecheck_program
from repro.runtime import StabilizationExperiment
from repro.runtime.devices import IterationKeyedDevice

SOURCE = '''
// Fig. 2.1: every iteration reads the wind direction, keeps the last
// three readings, and broadcasts the median-filtered direction.
@LATTICE("DIR<TMP2,TMP2<TMP,TMP<BIN")
public class WDSensor {
  @LOC("BIN") private WindRec bin = new WindRec();
  @LOC("DIR") private int dir;

  @LATTICE("STR<WDOBJ,WDOBJ<IN")
  @THISLOC("WDOBJ")
  public void windDirection() {
    SSJAVA:
    while (true) {
      @LOC("IN") int inDir = Device.readSensor();
      bin.dir2 = bin.dir1;
      bin.dir1 = bin.dir0;
      bin.dir0 = inDir;
      @LOC("STR") int outDir = calculate();
      SJ.broadcast(outDir);
    }
  }

  @LATTICE("OUT<CAOBJ")
  @THISLOC("CAOBJ")
  @RETURNLOC("OUT")
  public int calculate() {
    @LOC("CAOBJ,TMP") int d0 = bin.dir0;
    @LOC("CAOBJ,TMP") int d1 = bin.dir1;
    @LOC("CAOBJ,TMP") int d2 = bin.dir2;
    @LOC("CAOBJ,TMP2") int majorDir;
    if (d0 > d1 && d0 < d2 || d0 < d1 && d0 > d2) { majorDir = d0; }
    else {
      if (d1 > d0 && d1 < d2 || d1 < d0 && d1 > d2) { majorDir = d1; }
      else { majorDir = d2; }
    }
    this.dir = majorDir;
    return majorDir;
  }
}

@LATTICE("DIR2<DIR1,DIR1<DIR0")
class WindRec {
  @LOC("DIR0") public int dir0;
  @LOC("DIR1") public int dir1;
  @LOC("DIR2") public int dir2;
}
'''


def main() -> None:
    # 1+2. parse and check self-stabilization
    report = check_program(SOURCE)
    print("== SJava check ==")
    print(report.format())
    assert report.self_stabilizing

    # 3. run on simulated wind readings
    program = parse_program(SOURCE)
    info = resolve_program(program)
    typecheck_program(info)

    def wind(name: str, iteration: int, index: int) -> int:
        return (iteration // 2) % 16  # slowly rotating wind

    def device():
        return IterationKeyedDevice(wind, iterations=20)

    interp = Interpreter(info, device())
    outputs = interp.run()
    print("\n== clean run: first 10 directions ==")
    print(outputs[:10])

    # 4. inject a fault, measure recovery
    experiment = StabilizationExperiment(
        info, device, options=RuntimeOptions(ignore_errors=True)
    )
    print("\n== fault injection ==")
    for seed in range(6):
        trial = experiment.trial(seed)
        if trial.corrupted_output:
            print(
                f"seed {seed}: corrupted at iteration "
                f"{trial.injection_iteration}, recovered after "
                f"{trial.recovery_iterations} iteration(s)"
            )
        else:
            print(f"seed {seed}: fault masked (no visible corruption)")


if __name__ == "__main__":
    main()
