#!/usr/bin/env python3
"""Stabilization observatory: campaign -> event log -> HTML report.

This drives the observability surface end to end on the paper's wind
direction sensor (Fig. 2.1):

1. run a small fault-injection campaign with the structured event log
   switched on (`--log-level` + `--events`);
2. tail the resulting JSONL event stream with `repro events`;
3. read the per-trial convergence telemetry back out of the campaign
   manifest and check the invariant the report relies on: the final
   point of each recovered trial's convergence series *is* its
   recovery distance in samples;
4. render the single-file, dependency-free HTML dashboard with
   `repro report --html` — byte-stable for the same inputs, so it can
   be diffed and golden-tested.

Run:  python examples/stabilization_report.py [output-dir]
"""

import json
import sys
from pathlib import Path

from repro.cli import main as repro
from repro.runtime.campaign import trial_telemetry


def main() -> None:
    out = Path(sys.argv[1] if len(sys.argv) > 1 else "observatory-out")
    out.mkdir(parents=True, exist_ok=True)
    checkpoint = out / "campaign.json"
    events = out / "events.jsonl"
    report = out / "report.html"

    # 1. a small campaign, instrumented: `--log-level` installs the
    # event log (and bridges it into stdlib logging); `--events`
    # streams every kept event as schema-versioned JSONL.
    print("== campaign ==")
    rc = repro([
        "--log-level", "info",
        "campaign", "--apps", "wind_sensor",
        "--trials", "4", "--strata", "2", "--iterations", "8",
        "--shard-size", "2", "--seed", "1",
        "--checkpoint", str(checkpoint),
        "--events", str(events),
    ])
    assert rc == 0, "campaign failed"

    # 2. the event stream: campaign.plan, one campaign.shard per shard.
    print("\n== last events ==")
    rc = repro(["events", str(events), "--level", "info", "--tail", "5"])
    assert rc == 0, "event stream did not validate"

    # 3. convergence telemetry lives in the manifest's trial records —
    # the final convergence point equals the recorded recovery distance.
    print("\n== telemetry ==")
    manifest = json.loads(checkpoint.read_text())
    for shard in manifest["shards"].values():
        for trial in shard.get("trials", []):
            telemetry = trial_telemetry(trial)
            if trial["verdict"] != "recovered":
                continue
            convergence = telemetry["convergence"]
            print(
                f"site {trial['site']}: convergence {convergence} -> "
                f"{trial['recovery_samples']} samples to recover"
            )
            assert convergence[-1] == trial["recovery_samples"]

    # 4. the dashboard: summary tables, recovery histograms, inline-SVG
    # convergence curves, shard timeline, and the event tail.
    rc = repro([
        "report", "--campaign", str(checkpoint),
        "--events", str(events), "--html", str(report),
    ])
    assert rc == 0, "report failed"
    print(f"\nwrote {report} — open it in any browser")


if __name__ == "__main__":
    main()
