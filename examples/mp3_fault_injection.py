#!/usr/bin/env python3
"""Fault injection on the MP3 decoder analog (Section 6.2.1).

Decodes a stream twice — once clean, once with a random arithmetic/
memory operation corrupted — renders both PCM signals as an ASCII
oscilloscope, and reports the recovery distance.  The deviation window
is bounded by the decoder's state depth (overlap array + 4-granule
synthesis window), after which the signals are exactly identical: the
self-stabilization the checker proved statically, observed dynamically.

Run:  python examples/mp3_fault_injection.py [seed]
"""

import sys

from repro.apps import app_device_factory, load_app
from repro.runtime import (
    ErrorInjector,
    Interpreter,
    RuntimeOptions,
    StabilizationExperiment,
)

FRAMES = 24


def decode(info, injector=None):
    interp = Interpreter(
        info,
        app_device_factory("mp3_decoder", FRAMES)(),
        options=RuntimeOptions(ignore_errors=True),
        injector=injector,
    )
    interp.run()
    return interp.sink.values


def oscilloscope(normal, injected, width=64) -> None:
    lo = min(min(normal), min(injected))
    hi = max(max(normal), max(injected))
    span = (hi - lo) or 1.0

    def col(value: float) -> int:
        return int((value - lo) / span * (width - 1))

    for i, (a, b) in enumerate(zip(normal, injected)):
        row = [" "] * width
        row[col(a)] = "|"
        if a != b:
            row[col(b)] = "x"
        marker = "   <-- corrupted" if a != b else ""
        print(f"{i:4d} {''.join(row)}{marker}")


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 0
    app = load_app("mp3_decoder")

    experiment = StabilizationExperiment(
        app.info,
        app_device_factory("mp3_decoder", FRAMES),
        options=RuntimeOptions(ignore_errors=True),
    )
    trial = None
    for s in range(seed, seed + 50):
        candidate = experiment.trial(seed=s)
        if candidate.corrupted_output and not candidate.diverged:
            trial, seed = candidate, s
            break
    if trial is None:
        raise SystemExit("no visible corruption found; try another seed")

    normal = decode(app.info)
    injected = decode(
        app.info, ErrorInjector(target_step=trial.target_step, seed=seed + 1)
    )

    print(
        f"injected at step {trial.target_step} "
        f"(frame {trial.injection_iteration}); recovery after "
        f"{trial.recovery_samples} samples "
        f"({trial.recovery_iterations} frames)\n"
    )
    start = max(0, trial.injection_iteration * 16 - 8)
    end = min(len(normal), start + 96)
    print("PCM signal ('|' = normal, 'x' = injected run):")
    oscilloscope(normal[start:end], injected[start:end])


if __name__ == "__main__":
    main()
