#!/usr/bin/env python3
"""What the checker catches: four realistic non-stabilizing bugs.

Each variant of a small sensor smoother contains one bug that would let
corrupted state survive forever; the SJava checker pinpoints each with a
different analysis:

1. an accumulator that never flushes          → shared/eviction check
2. a value flowing up the lattice             → flow-down rule
3. a secret kept in a conditionally-updated field → eviction check
4. a retry loop that may spin forever         → termination analysis

Run:  python examples/catch_a_bug.py
"""

from repro import check_program

VARIANTS = {
    "exponential smoother never flushes": '''
    @LATTICE("LVL,LVL*")
    class Smoother {
      @LOC("LVL") float level;
      @LATTICE("B<X,X<IN") @THISLOC("X")
      void run() {
        SSJAVA:
        while (true) {
          @LOC("IN") float v = Device.readTemp();
          // BUG: old `level` never fully leaves: a corrupted value
          // decays but persists forever (not self-stabilizing).
          level = level * 0.9 + v * 0.1;
          SJ.broadcast(level);
        }
      }
    }
    ''',
    "value flows up the lattice": '''
    @LATTICE("CAL<RAW")
    class Sensor {
      @LOC("RAW") float raw;
      @LOC("CAL") float calibrated;
      @LATTICE("B<X,X<IN") @THISLOC("X")
      void run() {
        SSJAVA:
        while (true) {
          @LOC("IN") float v = Device.readTemp();
          raw = v;
          calibrated = raw * 1.01;
          raw = calibrated;   // BUG: feedback from low to high
          SJ.broadcast(calibrated);
        }
      }
    }
    ''',
    "stale state behind a condition": '''
    @LATTICE("PEAK")
    class Peak {
      @LOC("PEAK") float peak;
      @LATTICE("B<X,X<IN") @THISLOC("X")
      void run() {
        SSJAVA:
        while (true) {
          @LOC("IN") float v = Device.readTemp();
          // BUG: peak is only overwritten when exceeded, so a corrupted
          // huge value stays forever.
          if (v > peak) { peak = v; }
          SJ.broadcast(peak);
        }
      }
    }
    ''',
    "retry loop may spin forever": '''
    class Retry {
      @LATTICE("B<X,X<IN") @THISLOC("X")
      void run() {
        SSJAVA:
        while (true) {
          @LOC("IN") int v = Device.readSensor();
          @LOC("B") int got = v;
          // BUG: nothing guarantees the retry loop exits.
          while (got < 0) { got = got * 2; }
          SJ.broadcast(got);
        }
      }
    }
    ''',
}


def main() -> None:
    for title, source in VARIANTS.items():
        report = check_program(source)
        print(f"== {title} ==")
        assert not report.self_stabilizing
        for diagnostic in report.errors:
            print(f"   {diagnostic}")
        print()


if __name__ == "__main__":
    main()
