#!/usr/bin/env python3
"""SInfer demo: infer location annotations for an unannotated program.

Takes the weather index example of Chapter 5 (Fig. 5.1) with no location
annotations, runs both inference modes, prints the inferred source
(compare Fig. 5.15) and the lattice complexity comparison (the
Table 6.1 story), and verifies the result with the full checker.

Run:  python examples/infer_annotations.py [app-name]
      where app-name is one of the bundled benchmarks
      (default: weather_index).
"""

import sys

from repro.apps import APP_NAMES, load_app
from repro.infer import infer_annotations


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "weather_index"
    if name not in APP_NAMES:
        raise SystemExit(f"unknown app {name!r}; pick one of {APP_NAMES}")

    print(f"== inferring annotations for {name} (stripped) ==\n")
    results = {}
    for mode in ("naive", "sinfer"):
        app = load_app(name, annotated=False)
        results[mode] = infer_annotations(app.info, mode=mode)

    print(f"{'mode':8s} {'locations':>10s} {'paths':>8s} {'time':>8s} "
          f"{'verified':>9s}")
    for mode, result in results.items():
        print(
            f"{mode:8s} {result.summary.total_locations:10d} "
            f"{result.summary.total_paths:8d} "
            f"{result.elapsed_seconds:7.3f}s {str(result.verified):>9s}"
        )

    print("\n== per-lattice breakdown (sinfer) ==")
    for metrics in results["sinfer"].per_lattice:
        kind = "simple " if metrics.is_simple else "complex"
        print(f"  [{kind}] {metrics.name}: {metrics.locations} locations, "
              f"{metrics.paths} paths")

    print("\n== inferred annotated source (sinfer) ==\n")
    print(results["sinfer"].annotated_source)


if __name__ == "__main__":
    main()
