#!/usr/bin/env python3
"""Object-lifetime bounds (the Chapter 8 memory-management extension).

The checked properties imply every object allocated inside the event
loop eventually becomes unreachable; the lattice yields a symbolic bound
on *when*.  This example builds a small stream joiner that allocates a
record per iteration at different lattice depths and prints the bound
the analysis derives for each allocation site — the numbers an
arena-style allocator would use to recycle memory without a GC in the
loop.

Run:  python examples/lifetime_bounds.py
"""

from repro import check_program
from repro.core.lifetime import lifetime_bounds
from repro.lang import parse_program, resolve_program, typecheck_program

SOURCE = '''
@LATTICE("VAL<SEQ")
class Record {
  @LOC("SEQ") int seq;
  @LOC("VAL") int val;
}

// freshest records at the top of the lattice; each iteration shifts the
// window down one slot, so the slot's depth bounds the record's life
@LATTICE("OLD2<OLD1,OLD1<NEWEST")
class Joiner {
  @LOC("NEWEST") Record newest;
  @LOC("OLD1") Record old1;
  @LOC("OLD2") Record old2;

  @LATTICE("OUT<SCRATCH,SCRATCH<J,J<SEQV,SEQV<IN")
  @THISLOC("J")
  void run() {
    SSJAVA:
    while (true) {
      @LOC("IN") int v = Device.readSensor();
      @LOC("SEQV") int seq = Device.readSensor();

      // shift the window: contents (not references) move down
      old2 = new Record();
      old2.seq = old1.seq;
      old2.val = old1.val;
      old1 = new Record();
      old1.seq = newest.seq;
      old1.val = newest.val;
      newest = new Record();
      newest.seq = seq;
      newest.val = v;

      // a scratch record that never escapes the iteration
      @LOC("SCRATCH") Record probe = new Record();
      probe.val = newest.val;

      @LOC("OUT") int joined = newest.val + old1.val + old2.val + probe.val;
      SJ.broadcast(joined);
    }
  }
}
'''


def main() -> None:
    report = check_program(SOURCE)
    print(report.format())
    assert report.self_stabilizing

    program = parse_program(SOURCE)
    info = resolve_program(program)
    typecheck_program(info)

    print("\nallocation lifetime bounds (event-loop iterations):")
    for bound in lifetime_bounds(info):
        print(
            f"  line {bound.line:3d}  <= {bound.iterations} iteration(s)"
            f"   [{bound.description}]"
        )
    print(
        "\nAn arena allocator can recycle each record that many iterations"
        "\nafter it was allocated — no garbage collector in the loop."
    )


if __name__ == "__main__":
    main()
