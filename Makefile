# Convenience targets for the Self-Stabilizing Java reproduction.

PYTHON ?= python

.PHONY: test bench bench-full examples check-apps batch-check clean

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-full:
	REPRO_FULL=1 $(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/catch_a_bug.py
	$(PYTHON) examples/infer_annotations.py
	$(PYTHON) examples/lifetime_bounds.py
	$(PYTHON) examples/program_understanding.py wind_sensor
	$(PYTHON) examples/mp3_fault_injection.py

check-apps:
	for f in src/repro/apps/programs/*.sj; do \
	  echo "== $$f"; $(PYTHON) -m repro.cli check $$f || exit 1; \
	done

# Batch-check every bundled app through the cached service (docs/SERVICE.md).
batch-check:
	$(PYTHON) -m repro.cli batch src/repro/apps/programs

clean:
	rm -rf .pytest_cache .hypothesis benchmarks/results
	find . -name __pycache__ -type d -exec rm -rf {} +
