# Convenience targets for the Self-Stabilizing Java reproduction.

PYTHON ?= python

.PHONY: test bench bench-full bench-trend profile-smoke mem-smoke \
        examples check-apps batch-check clean

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-full:
	REPRO_FULL=1 $(PYTHON) -m pytest benchmarks/ --benchmark-only

# Perf trajectory over the checked-in bench history (docs/BENCHMARKS.md).
bench-trend:
	PYTHONPATH=src $(PYTHON) -m repro.cli bench trend

# Profiler smoke: the NullProfiler overhead pin plus a real sampled run
# whose payload must pass validate_profile (docs/BENCHMARKS.md).
profile-smoke:
	PYTHONPATH=src $(PYTHON) -m pytest tests/obs/test_profile.py -q
	PYTHONPATH=src $(PYTHON) -m repro.cli bench \
	  --scenario interpreter-step/wind_sensor --warmup 0 --repetitions 3 \
	  --profile-json PROFILE_smoke.json --output BENCH_smoke.json
	PYTHONPATH=src $(PYTHON) -c "from repro.obs.profile import \
	read_profile; p = read_profile('PROFILE_smoke.json'); \
	print('profile-smoke ok:', p['sample_count'], 'samples')"
	rm -f PROFILE_smoke.json BENCH_smoke.json

# Memory smoke: the NullResourceMonitor overhead pin plus one tracked
# scenario with --mem, whose MEM/BENCH payloads must validate
# (docs/BENCHMARKS.md "Memory telemetry").  Payloads are left on disk
# so CI can upload them as artifacts.
mem-smoke:
	PYTHONPATH=src $(PYTHON) -m pytest tests/obs/test_resources.py -q
	PYTHONPATH=src $(PYTHON) -m repro.cli bench \
	  --scenario interpreter-step/wind_sensor --warmup 0 --repetitions 3 \
	  --mem --mem-json MEM_smoke.json --output BENCH_mem_smoke.json
	PYTHONPATH=src $(PYTHON) -c "from repro.obs.resources import \
	read_resources; r = read_resources('MEM_smoke.json'); \
	print('mem-smoke ok: rss', r['peak_rss_bytes'], 'bytes,', \
	len(r['sections']), 'section(s)')"
	PYTHONPATH=src $(PYTHON) -c "from repro.obs.bench import read_bench; \
	b = read_bench('BENCH_mem_smoke.json'); \
	assert all('memory' in s for s in b['scenarios']), 'memory missing'; \
	print('mem-smoke ok: bench memory sections present')"

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/catch_a_bug.py
	$(PYTHON) examples/infer_annotations.py
	$(PYTHON) examples/lifetime_bounds.py
	$(PYTHON) examples/program_understanding.py wind_sensor
	$(PYTHON) examples/mp3_fault_injection.py

check-apps:
	for f in src/repro/apps/programs/*.sj; do \
	  echo "== $$f"; $(PYTHON) -m repro.cli check $$f || exit 1; \
	done

# Batch-check every bundled app through the cached service (docs/SERVICE.md).
batch-check:
	$(PYTHON) -m repro.cli batch src/repro/apps/programs

clean:
	rm -rf .pytest_cache .hypothesis benchmarks/results
	rm -f MEM_smoke.json BENCH_mem_smoke.json
	find . -name __pycache__ -type d -exec rm -rf {} +
