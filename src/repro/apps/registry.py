"""Loading, annotation-stripping and device wiring for the benchmarks."""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from importlib import resources
from pathlib import Path
from typing import Callable

from repro.lang.ast import Program
from repro.lang.parser import parse_program
from repro.lang.symtab import ProgramInfo, resolve_program
from repro.lang.typecheck import typecheck_program
from repro.runtime.devices import DeviceBus, IterationKeyedDevice

APP_NAMES = (
    "wind_sensor",
    "weather_index",
    "mp3_decoder",
    "eye_tracker",
    "sumo_robot",
    "heart_monitor",
)

#: Distributed apps (repro.dist): one fabric node's program each.  Kept
#: out of APP_NAMES because single-node tooling (device generators,
#: ``repro run``) cannot execute them without a fabric; the registry
#: functions below accept both families.  The tuple lives here — plain
#: data — so repro.dist can import it without a cycle.
DIST_APP_NAMES = (
    "herman_bit",
    "herman_pass",
    "dijkstra_ring",
    "gradient_field",
    "gradient_channel",
)


def all_app_names() -> tuple[str, ...]:
    """Every registered app, single-node then distributed."""
    return APP_NAMES + DIST_APP_NAMES

#: Location annotations removed for the inference evaluation
#: (Section 6.3.1: "we took the modified versions of the SJava benchmark
#: and removed all of the location type annotations").  @TRUSTED,
#: @DELEGATE and @MAXLOOP are semantic, not location, annotations and are
#: preserved.
_LOCATION_ANNOTATIONS = (
    "LATTICE",
    "METHODDEFAULT",
    "LOC",
    "THISLOC",
    "RETURNLOC",
    "PCLOC",
    "GLOBALLOC",
    "DELTA",
)

_STRIP_PATTERN = re.compile(
    r"@(?:" + "|".join(_LOCATION_ANNOTATIONS) + r")\s*\(\s*\"[^\"]*\"\s*\)\s*"
)


def strip_location_annotations(source: str) -> str:
    """Remove every location-type annotation from sjava source text."""
    return _STRIP_PATTERN.sub("", source)


def programs_dir() -> Path:
    """Filesystem directory holding the bundled ``.sj`` programs, for
    batch checking (``repro batch``) and tooling that wants real paths."""
    return Path(str(resources.files("repro.apps") / "programs"))


def app_path(name: str) -> Path:
    """Filesystem path of one bundled app's source."""
    if name not in all_app_names():
        raise KeyError(f"unknown app {name!r}; available: {all_app_names()}")
    return programs_dir() / f"{name}.sj"


def app_source(name: str, annotated: bool = True) -> str:
    if name not in all_app_names():
        raise KeyError(f"unknown app {name!r}; available: {all_app_names()}")
    source = (
        resources.files("repro.apps") / "programs" / f"{name}.sj"
    ).read_text(encoding="utf-8")
    if not annotated:
        source = strip_location_annotations(source)
    return source


@dataclass
class AppBundle:
    """A parsed and resolved application, ready for checking or running."""

    name: str
    source: str
    program: Program
    info: ProgramInfo


def load_app(name: str, annotated: bool = True) -> AppBundle:
    source = app_source(name, annotated=annotated)
    program = parse_program(source)
    info = resolve_program(program)
    typecheck_program(info)
    return AppBundle(name=name, source=source, program=program, info=info)


# ---------------------------------------------------------------------------
# Deterministic input generators (iteration-keyed: see
# repro.runtime.devices.IterationKeyedDevice for why).
# ---------------------------------------------------------------------------


def _wind_gen(name: str, iteration: int, index: int) -> object:
    # a slowly rotating wind with occasional jitter
    return (iteration // 3 + (iteration * 5 + index) % 2) % 16


def _weather_gen(name: str, iteration: int, index: int) -> object:
    if name == "readTemp":
        return 20.0 + 8.0 * math.sin(0.13 * iteration)
    return 55.0 + 20.0 * math.sin(0.07 * iteration + 1.1)


def _mp3_gen(name: str, iteration: int, index: int) -> object:
    if name == "readHeader":
        return iteration
    if name == "readScale":
        return 0.5 + 0.4 * math.sin(0.7 * iteration + 0.3 * index)
    tick = iteration * 16 + index
    return math.sin(0.31 * tick) + 0.4 * math.sin(0.093 * tick)


def _eye_gen(name: str, iteration: int, index: int) -> object:
    # gaze wanders smoothly; bands and region samples derive from it
    gaze = 40.0 + 25.0 * math.sin(0.17 * iteration)
    return int(gaze + 11.0 * index) % 97


def _robot_gen(name: str, iteration: int, index: int) -> object:
    if name == "readSonar":
        # the opponent approaches and retreats
        return int(10.0 + 8.0 * math.sin(0.23 * iteration))
    # the line sensor fires near the ring edge every so often
    return 14 if iteration % 11 == 7 else 2


def _heart_gen(name: str, iteration: int, index: int) -> object:
    if name == "readSample":
        # ECG-ish: sharp beat spike riding on baseline wander
        phase = iteration % 5
        return (1.0 if phase == 0 else 0.08 * phase) + 0.02 * index
    if name == "readFloat":
        return 0.55 + 0.25 * math.sin(0.11 * iteration)
    # beat gap in ticks
    return 4 + (iteration % 3)


_GENERATORS: dict[str, Callable[[str, int, int], object]] = {
    "wind_sensor": _wind_gen,
    "weather_index": _weather_gen,
    "mp3_decoder": _mp3_gen,
    "eye_tracker": _eye_gen,
    "sumo_robot": _robot_gen,
    "heart_monitor": _heart_gen,
}

#: Default experiment lengths, in event-loop iterations.
DEFAULT_ITERATIONS: dict[str, int] = {
    "wind_sensor": 60,
    "weather_index": 60,
    "mp3_decoder": 40,
    "eye_tracker": 80,
    "sumo_robot": 80,
    "heart_monitor": 80,
}


def app_device_factory(
    name: str, iterations: int | None = None
) -> Callable[[], DeviceBus]:
    """A factory producing fresh identical devices for one app, suitable
    for :class:`repro.runtime.stabilization.StabilizationExperiment`."""
    generator = _GENERATORS[name]
    count = iterations if iterations is not None else DEFAULT_ITERATIONS[name]

    def factory() -> DeviceBus:
        return IterationKeyedDevice(generator, iterations=count)

    return factory


def app_experiment(
    name: str,
    iterations: int | None = None,
    *,
    step_budget: int | None = None,
    step_budget_factor: int | None = None,
):
    """A ready-to-run stabilization experiment for one registered app.

    This is the unit fault-injection campaign workers reconstruct from
    an app name (everything else they need crosses the process boundary
    as plain ints), so it must stay derivable from ``name`` alone.
    """
    from repro.runtime.interpreter import RuntimeOptions
    from repro.runtime.stabilization import StabilizationExperiment

    bundle = load_app(name)
    return StabilizationExperiment(
        bundle.info,
        app_device_factory(name, iterations),
        options=RuntimeOptions(ignore_errors=True),
        step_budget=step_budget,
        step_budget_factor=step_budget_factor,
    )


def resolve_experiment(
    name: str,
    iterations: int | None = None,
    *,
    step_budget: int | None = None,
    step_budget_factor: int | None = None,
):
    """A stabilization experiment for *any* registered app — single-node
    (:class:`StabilizationExperiment`) or distributed
    (:class:`repro.dist.DistExperiment`, where ``iterations`` maps onto
    fabric rounds).  The two expose the same trial interface, so
    campaign workers need only this one entry point.  The dist import is
    lazy to keep single-node paths free of the fabric machinery."""
    if name in APP_NAMES:
        return app_experiment(
            name,
            iterations,
            step_budget=step_budget,
            step_budget_factor=step_budget_factor,
        )
    if name in DIST_APP_NAMES:
        from repro.dist import dist_app_experiment

        return dist_app_experiment(
            name,
            iterations,
            step_budget=step_budget,
            step_budget_factor=step_budget_factor,
        )
    raise KeyError(f"unknown app {name!r}; available: {all_app_names()}")


def _devices_used(source: str) -> list[str]:
    """Device functions an app's source actually calls, in call order."""
    seen: list[str] = []
    for match in re.finditer(r"Device\.(read\w+)", source):
        if match.group(1) not in seen:
            seen.append(match.group(1))
    return seen


def app_catalog(with_sites: bool = False) -> list[dict]:
    """One describing record per registered app (the ``repro apps``
    listing).  ``with_sites=True`` additionally counts each app's
    injectable corruption sites, which requires a clean reference run
    per app and is therefore optional."""
    catalog: list[dict] = []
    for name in all_app_names():
        distributed = name in DIST_APP_NAMES
        record: dict = {
            "name": name,
            "kind": "distributed" if distributed else "single-node",
            "devices": _devices_used(app_source(name)),
        }
        if distributed:
            from repro.dist import dist_app_spec, make_topology

            spec = dist_app_spec(name)
            topology = make_topology(spec.topology)
            record.update({
                "summary": spec.summary,
                "topology": spec.topology,
                "scheduler": spec.scheduler,
                "nodes": topology.nodes,
                "rounds": spec.rounds,
                "state_width": spec.state_width,
            })
        else:
            record["iterations"] = DEFAULT_ITERATIONS[name]
        if with_sites:
            record["sites"] = resolve_experiment(name).total_steps()
        catalog.append(record)
    return catalog
