// MP3 decoder analog (the JLayer benchmark of Section 6.2.1).
//
// Structural port of the JLayer pipeline: a trusted BitStream resyncs to
// frames and supplies headers, scale factors and quantized samples; each
// frame carries two granules; per granule the decoder dequantizes the
// subband samples, applies an IMDCT-style transform, combines the result
// with the previous granule's block (the one-granule overlap state the
// paper isolates into a separate forwarding array), and hands the time-
// domain block to the synthesis filter, whose ordered window buffer
// (4 granules deep) produces the PCM output samples.
//
// Stabilization structure: a corrupted value in the dequantization or
// transform stages is flushed when the granule's arrays are rewritten;
// the overlap array carries it one extra granule; the synthesis window
// buffer carries it up to four granules (two frames) — the analog of the
// paper's 1,700-sample peak from granule-state corruption.

@TRUSTED
class BitStream {
  // Maintains a stream offset and resyncs it at every frame header —
  // the manually-verified self-stabilizing component of Section 6.1.
  public int offset;

  public int syncHeader() {
    offset = 0;
    return Device.readHeader();
  }

  public float readScale() {
    offset = offset + 1;
    return Device.readScale();
  }

  public float readSample() {
    offset = offset + 1;
    return Device.readSample();
  }
}

@LATTICE("FILT<EQ,EQ<TO,TO<PRV,PRV<CUR,CUR<ACCF,ACCF<DQ,DQ<SC,SC<BS,ACCF*")
public class Mp3Decoder {
  @LOC("BS") private BitStream bs = new BitStream();
  @LOC("SC") private float[] scales = new float[8];
  @LOC("DQ") private float[] dq = new float[8];
  @LOC("CUR") private float[] cur = new float[8];
  @LOC("PRV") private float[] prev = new float[8];
  @LOC("TO") private float[] timeOut = new float[8];
  @LOC("EQ") private float[] equalized = new float[8];
  @LOC("FILT") private SynthesisFilter filter = new SynthesisFilter();

  @LATTICE("DT<HDR,HDR<IN")
  @THISLOC("DT")
  public void decode() {
    SSJAVA:
    while (true) {
      // resync to the next frame; the header announces the frame
      @LOC("HDR") int header = bs.syncHeader();
      // two granules per frame, unrolled like the original decoder
      decodeGranule();
      decodeGranule();
    }
  }

  @LATTICE("DG<IB,IB<IA,IA*,IB*")
  @THISLOC("DG")
  public void decodeGranule() {
    // 1. scale factor decoding (fresh input each granule)
    for (@LOC("IA") int s = 0; s < scales.length; s++) {
      scales[s] = bs.readScale();
    }
    // 2. dequantization of the subband samples
    for (@LOC("IA") int d = 0; d < dq.length; d++) {
      dq[d] = scales[d] * bs.readSample();
    }
    // 3. IMDCT-style frequency-to-time transform
    for (@LOC("IA") int i = 0; i < cur.length; i++) {
      @LOC("DG,ACCF") float acc = 0.0;
      for (@LOC("IB") int j = 0; j < dq.length; j++) {
        acc = acc + dq[j] * Math.cos(0.19634954 * (2.0 * i + 1.0) * (2.0 * j + 1.0));
      }
      cur[i] = acc * 0.25;
    }
    // 4. overlap-add with the previous granule's block, then forward the
    //    current block (the paper's two-array restructuring)
    for (@LOC("IA") int t = 0; t < timeOut.length; t++) {
      timeOut[t] = cur[t] * 0.7 + prev[t] * 0.3;
    }
    for (@LOC("IA") int p = 0; p < prev.length; p++) {
      prev[p] = cur[p];
    }
    // 5. psychoacoustic equalization: per-band gain shaping
    for (@LOC("IA") int e = 0; e < equalized.length; e++) {
      equalized[e] = timeOut[e] * (0.9 + 0.2 * Math.cos(0.39269908 * e));
    }
    // 6. subband synthesis: window the block into PCM samples
    filter.synthesize(equalized);
  }
}

@LATTICE("VBUF")
class SynthesisFilter {
  @LOC("VBUF") private OrderedBuffer v = new OrderedBuffer(4);

  @LATTICE("SOUT<STHIS,STHIS<STMP,STMP<SI,SI<SIN,STMP*,SI*")
  @THISLOC("STHIS")
  public void synthesize(@LOC("SIN") float[] in) {
    // vector sum of the incoming block
    @LOC("STMP") float sum = 0.0;
    for (@LOC("SI") int i = 0; i < in.length; i++) {
      sum = sum + in[i] * Math.cos(0.39269908 * i);
    }
    v.insert(sum);
    // window the last four granule vectors into 8 PCM samples
    for (@LOC("SI") int k = 0; k < 8; k++) {
      @LOC("SOUT") float pcm =
          v.get(0) * Math.cos(0.09817477 * k)
        + v.get(1) * Math.cos(0.09817477 * (k + 8))
        + v.get(2) * Math.cos(0.09817477 * (k + 16))
        + v.get(3) * Math.cos(0.09817477 * (k + 24));
      SJ.broadcast(pcm);
    }
  }
}
