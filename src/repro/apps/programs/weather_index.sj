// Weather (heat) index calculation — the running example of Chapter 5
// (Figs. 5.1 and 5.15).
//
// Every iteration reads the temperature and humidity, smooths the
// temperature against the previous reading, and combines the two into a
// human-perceived temperature index via the standard polynomial.  The
// annotations mirror the structure SInfer derives: the merge location
// MID is the meet of avgTemp and curHum, and the f1..f6 temporaries live
// on the FA/FB chain spliced between the interface locations.

@LATTICE("index<FB,FB<FA,FA<MID,MID<avgTemp,MID<curHum,avgTemp<prevTemp")
public class Weather {
  @LOC("prevTemp") public float prevTemp;
  @LOC("avgTemp") public float avgTemp;
  @LOC("curHum") public float curHum;
  @LOC("index") public float index;

  // polynomial coefficients (constants live at the top location)
  public static final float c1 = -0.22475541;
  public static final float c2 = -0.00683783;
  public static final float c3 = -0.05481717;
  public static final float c4 = 0.00122874;
  public static final float c5 = 0.00085282;
  public static final float c6 = -0.00000199;
  public static final float c7 = -42.379;
  public static final float c8 = 2.04901523;
  public static final float c9 = 10.14333127;

  @LATTICE("THIS<INTEMP")
  @THISLOC("THIS")
  public void calculateIndex() {
    SSJAVA:
    while (true) {
      @LOC("INTEMP") float inTemp = Device.readTemp();
      curHum = Device.readHumidity();
      // smooth the temperature with the previous reading
      avgTemp = (prevTemp + inTemp) / 2.0;
      prevTemp = inTemp;

      @LOC("THIS,FA") float f1 = c1 * avgTemp * curHum;
      @LOC("THIS,FA") float f2 = c2 * avgTemp * avgTemp;
      @LOC("THIS,FA") float f3 = c3 * curHum * curHum;
      @LOC("THIS,FB") float f4 = c4 * f2 * curHum;
      @LOC("THIS,FB") float f5 = c5 * f3 * avgTemp;
      @LOC("THIS,FB") float f6 = c6 * f1 * f2;

      index = c7 + c8 * avgTemp + c9 * curHum + f1 + f2 + f3 + f4 + f5 + f6;

      SJ.broadcast(index);
    }
  }
}
