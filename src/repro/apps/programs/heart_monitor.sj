// Cardiac monitor — the safety-critical usage scenario of Section 1.2.
//
// A patient monitor samples an ECG lead and a pressure cuff every
// iteration, conditions both signals, classifies the rhythm, and drives
// an alarm line.  Undetected bugs here must not corrupt operation
// forever: self-stabilization bounds the time any corrupted state can
// affect the alarm decision.
//
// The class demonstrates the class-default method lattice (Section
// 3.6): the conditioning methods share one lattice declared once on
// class.
//
// Stabilization structure: a three-beat interval history (ordered
// buffer) is the deepest state, so the alarm decision provably returns
// to normal within three beats of a corruption.

@LATTICE("ALARM<DECIDEF,DECIDEF<RATE,RATE<SUMV,SUMV<IVALS,IVALS<ECGF,ECGF<PRESF")
@METHODDEFAULT("MOUT<MTMP,MTMP<MIN,MTHIS,MTMP*")
public class HeartMonitor {
  @LOC("IVALS") private OrderedBuffer intervals = new OrderedBuffer(3);
  @LOC("ECGF") private float ecgFiltered;
  @LOC("PRESF") private float pressureFiltered;
  @LOC("RATE") private float rate;
  @LOC("ALARM") private int alarm;

  @LATTICE("HM<RAWV,RAWV<IN")
  @THISLOC("HM")
  public void monitor() {
    SSJAVA:
    while (true) {
      @LOC("IN") float ecg = Device.readSample();
      @LOC("IN") float pressure = Device.readFloat();
      @LOC("IN") int beatGap = Device.readSensor();

      // signal conditioning (shared default method lattice)
      @LOC("RAWV") float ecgClean = condition(ecg);
      @LOC("RAWV") float pressureClean = condition(pressure);
      ecgFiltered = clampSignal(ecgClean);
      pressureFiltered = clampSignal(pressureClean);

      // beat interval history: newest first, three beats deep
      intervals.insert(beatGap * 1.0 + ecgFiltered * 0.0);

      // rate estimate from the interval history
      @LOC("HM,SUMV") float sum =
          intervals.get(0) + intervals.get(1) + intervals.get(2);
      rate = 180.0 / (sum / 3.0 + 1.0);

      // rhythm classification drives the alarm line
      @LOC("HM,DECIDEF") int decision;
      if (rate > 2.2) {
        decision = 2;                      // tachycardia
      } else {
        if (rate < 0.8) {
          decision = 1;                    // bradycardia
        } else {
          if (pressureFiltered > 0.9) {
            decision = 3;                  // hypertensive event
          } else {
            decision = 0;                  // normal sinus rhythm
          }
        }
      }
      alarm = decision;
      SJ.broadcast(alarm);
      SJ.broadcast(rate);
    }
  }

  // The conditioning helpers share the class-default method lattice.

  @RETURNLOC("MOUT")
  @THISLOC("MTHIS")
  public float condition(@LOC("MIN") float raw) {
    @LOC("MTMP") float acc = raw * 0.5;
    acc = acc + raw * 0.25;
    acc = acc + raw * 0.25;
    @LOC("MOUT") float out = acc / 1.0;
    return out;
  }

  @RETURNLOC("MOUT")
  @THISLOC("MTHIS")
  public float clampSignal(@LOC("MIN") float value) {
    @LOC("MOUT") float out = Math.max(Math.min(value, 1.0), -1.0);
    return out;
  }
}
