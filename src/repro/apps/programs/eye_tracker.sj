// Eye tracking analog (the LEA benchmark of Section 6.2.2).
//
// Each iteration grabs an image summary from the camera (three band
// brightness values for face localization plus two eye-region samples),
// localizes the face, refines the eye position within the face region,
// pushes the position into a three-deep history (LEA stores the last
// three eye positions and shifts them down each iteration), and derives
// one of eight relative movement directions from the deviation between
// the newest position and the history average.
//
// Stabilization structure: everything except the history is overwritten
// every iteration; the history is an ordered buffer of depth 3, so a
// corrupted position leaves the program within three iterations —
// exactly the paper's worst-case bound for LEA.

@LATTICE("HIST,DET")
public class EyeTracker {
  @LOC("DET") private Detector det = new Detector();
  @LOC("HIST") private OrderedBuffer histX = new OrderedBuffer(3);
  @LOC("HIST") private OrderedBuffer histY = new OrderedBuffer(3);

  @LATTICE("OUTD<DEVV,DEVV<ET,ET<EYEV,EYEV<FACEV,FACEV<RAW")
  @THISLOC("ET")
  public void track() {
    SSJAVA:
    while (true) {
      // image summary: three horizontal band brightnesses...
      @LOC("RAW") int band0 = Device.readPixel();
      @LOC("RAW") int band1 = Device.readPixel();
      @LOC("RAW") int band2 = Device.readPixel();
      // ...and two eye-region samples
      @LOC("RAW") int eyeRegionX = Device.readPixel();
      @LOC("RAW") int eyeRegionY = Device.readPixel();

      // localize the face to narrow the eye search region
      @LOC("FACEV") float faceX = det.locateFace(band0, band1, band2);
      @LOC("FACEV") float faceY = det.locateFace(band2, band1, band0);

      // refine the eye position inside the face region
      @LOC("EYEV") float eyeX = det.locateEye(faceX, eyeRegionX);
      @LOC("EYEV") float eyeY = det.locateEye(faceY, eyeRegionY);

      // update the position history (newest first)
      histX.insert(eyeX);
      histY.insert(eyeY);

      // deviation of the newest position from the history average
      @LOC("DEVV") float devX = (histX.get(0) * 2.0 - histX.get(1) - histX.get(2)) / 2.0;
      @LOC("DEVV") float devY = (histY.get(0) * 2.0 - histY.get(1) - histY.get(2)) / 2.0;

      @LOC("OUTD") int direction;
      if (devX > 0.5) {
        if (devY > 0.5) { direction = 1; }        // up-right
        else {
          if (devY < -0.5) { direction = 7; }     // down-right
          else { direction = 0; }                 // right
        }
      } else {
        if (devX < -0.5) {
          if (devY > 0.5) { direction = 3; }      // up-left
          else {
            if (devY < -0.5) { direction = 5; }   // down-left
            else { direction = 4; }               // left
          }
        } else {
          if (devY > 0.5) { direction = 2; }      // up
          else {
            if (devY < -0.5) { direction = 6; }   // down
            else { direction = 8; }               // stationary
          }
        }
      }
      SJ.broadcast(direction);
    }
  }
}

// Stateless detection helper: its `this` location is deliberately
// unordered w.r.t. the data parameters, so results depend only on the
// inputs and callers may place the detector object anywhere.
class Detector {
  @LATTICE("FOUT<FTMP,FTMP<FIN,FTHIS,FTMP*")
  @THISLOC("FTHIS")
  @RETURNLOC("FOUT")
  public float locateFace(@LOC("FIN") int a, @LOC("FIN") int b, @LOC("FIN") int c) {
    // brightness-weighted band centroid
    @LOC("FTMP") float total = 0.0;
    total = total + a;
    total = total + b;
    total = total + c;
    @LOC("FOUT") float centroid = (b * 1.0 + c * 2.0) / (total + 1.0);
    return centroid;
  }

  @LATTICE("EOUT<EIN,ETHIS")
  @THISLOC("ETHIS")
  @RETURNLOC("EOUT")
  public float locateEye(@LOC("EIN") float face, @LOC("EIN") int region) {
    // the face position anchors the search; the region sample refines it
    @LOC("EOUT") float refined = face * 0.8 + region * 0.0125;
    return refined;
  }
}
