// Herman's self-stabilizing token ring — random-bit interpretation.
//
// One node of the ring.  The fabric (repro.dist) delivers the node's own
// bit and its left neighbor's bit through the device bus; the node holds
// a token iff the two bits agree.  A token holder draws a fresh random
// bit, a non-holder copies its left neighbor.  On a ring with an odd
// number of nodes the token count is always odd, so every corruption
// leaves at least one token and the random walks annihilate pairwise
// until exactly one survives (expected O(N^2) rounds).
//
// Raw device values are clamped into {0,1} at a strictly lower lattice
// location before use, so an arbitrarily corrupted state re-enters the
// protocol alphabet after a single read.

public class HermanBit {
  @LATTICE("OUT<NEXT,NEXT<CL,CL<IN")
  public void stepLoop() {
    SSJAVA:
    while (true) {
      @LOC("IN") int rawSelf = Device.readSelf();
      @LOC("IN") int rawLeft = Device.readLeft();
      @LOC("IN") int coin = Device.readCoin();
      @LOC("CL") int self = 0;
      if (rawSelf != 0) {
        self = 1;
      }
      @LOC("CL") int left = 0;
      if (rawLeft != 0) {
        left = 1;
      }
      @LOC("NEXT") int next;
      if (self == left) {
        next = coin;
      } else {
        next = left;
      }
      SJ.broadcast(next);
    }
  }
}
