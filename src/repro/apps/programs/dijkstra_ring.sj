// Dijkstra's K-state self-stabilizing token ring (EWD 426).
//
// One node of a unidirectional ring under a sequential daemon.  The
// master (flag != 0) is privileged when its counter equals its left
// neighbor's and then increments modulo K; every other node is
// privileged when its counter differs from its left neighbor's and then
// copies it.  With K at least the ring size, any configuration converges
// to exactly one privilege circulating forever.
//
// Counters are folded into [0, K) at a strictly lower lattice location
// before use — ((x % k) + k) % k is branch-free under Java remainder
// semantics — so corrupted state re-enters the protocol alphabet on the
// next read.

public class DijkstraRing {
  @LATTICE("OUT<NEXT,NEXT<CL,CL<IN")
  public void stepLoop() {
    SSJAVA:
    while (true) {
      @LOC("IN") int rawSelf = Device.readSelf();
      @LOC("IN") int rawLeft = Device.readLeft();
      @LOC("IN") int k = Device.readParam();
      @LOC("IN") int master = Device.readFlag();
      @LOC("CL") int self = ((rawSelf % k) + k) % k;
      @LOC("CL") int left = ((rawLeft % k) + k) % k;
      @LOC("NEXT") int next;
      if (master != 0) {
        if (self == left) {
          next = (self + 1) % k;
        } else {
          next = self;
        }
      } else {
        if (self == left) {
          next = self;
        } else {
          next = left;
        }
      }
      SJ.broadcast(next);
    }
  }
}
