// Sumo robot controller analog (the benchmark of Section 6.2.3).
//
// The goal of a sumo robot is to push the opponent out of the ring while
// staying away from the ring edge.  Each iteration reads the sonar
// (opponent distance) and line (ring edge) sensors, the strategy manager
// selects a movement type and a speed, and the command is sent to the
// trusted motor controller (which persists the last command — the paper
// annotates it as trusted and makes every iteration overwrite the
// command arguments).
//
// Stabilization structure: the controller is stateless from one
// iteration to the next, so it resumes correct decisions on the very
// next iteration after a corruption — matching the paper's observation.

@LATTICE("STR,MOT")
public class SumoRobot {
  @LOC("STR") private StrategyMgr strategy = new StrategyMgr();
  @LOC("MOT") private MotorController motor = new MotorController();

  @LATTICE("SPD<MVV,MVV<RT,RT<SENS")
  @THISLOC("RT")
  public void control() {
    SSJAVA:
    while (true) {
      @LOC("SENS") int sonar = Device.readSonar();
      @LOC("SENS") int line = Device.readLine();

      @LOC("MVV") int move = strategy.selectMove(sonar, line);
      @LOC("SPD") int speed = strategy.selectSpeed(sonar, line, move);

      motor.send(move, speed);
      SJ.broadcast(move);
      SJ.broadcast(speed);
    }
  }
}

// Movement types: 0 = search, 1 = attack, 2 = retreat-from-edge,
// 3 = spin-in-place.
class StrategyMgr {
  @LATTICE("SOUT<SIN,STHIS")
  @THISLOC("STHIS")
  @RETURNLOC("SOUT")
  public int selectMove(@LOC("SIN") int sonar, @LOC("SIN") int line) {
    @LOC("SOUT") int move;
    if (line > 10) {
      move = 2;                 // ring edge detected: retreat first
    } else {
      if (sonar < 5) {
        move = 1;               // opponent close: attack
      } else {
        if (sonar < 12) {
          move = 3;             // opponent near: line up
        } else {
          move = 0;             // nothing seen: search
        }
      }
    }
    return move;
  }

  @LATTICE("POUT<PMV,PMV<PIN,PTHIS")
  @THISLOC("PTHIS")
  @RETURNLOC("POUT")
  public int selectSpeed(
      @LOC("PIN") int sonar, @LOC("PIN") int line, @LOC("PMV") int move) {
    @LOC("POUT") int speed;
    if (move == 1) {
      speed = 9;                // full power into the opponent
    } else {
      if (move == 2) {
        speed = 7;              // firm retreat from the edge
      } else {
        if (sonar < 12) {
          speed = 5;            // approach speed
        } else {
          speed = 3;            // search speed
        }
      }
    }
    return speed;
  }
}

// The motor controller persists the last command across iterations; the
// paper annotates it as trusted code because that state is managed by
// the hardware abstraction, and every iteration overwrites it.
@TRUSTED
class MotorController {
  public int lastMove;
  public int lastSpeed;

  public void send(int move, int speed) {
    lastMove = move;
    lastSpeed = speed;
  }
}
