// Herman's self-stabilizing token ring — random-pass interpretation.
//
// Same encoding as herman_bit (token iff own bit equals the left
// neighbor's bit), but a token holder keeps or passes the token with
// probability 1/2 by either keeping or flipping its own bit; non-holders
// keep their bit unchanged.  Tokens perform lazy random walks and
// annihilate in pairs; odd ring size keeps the token count odd, so one
// token always survives.

public class HermanPass {
  @LATTICE("OUT<NEXT,NEXT<CL,CL<IN")
  public void stepLoop() {
    SSJAVA:
    while (true) {
      @LOC("IN") int rawSelf = Device.readSelf();
      @LOC("IN") int rawLeft = Device.readLeft();
      @LOC("IN") int coin = Device.readCoin();
      @LOC("CL") int self = 0;
      if (rawSelf != 0) {
        self = 1;
      }
      @LOC("CL") int left = 0;
      if (rawLeft != 0) {
        left = 1;
      }
      @LOC("NEXT") int next;
      if (self == left) {
        if (coin != 0) {
          next = 1 - self;
        } else {
          next = self;
        }
      } else {
        next = self;
      }
      SJ.broadcast(next);
    }
  }
}
