// Composed self-stabilizing gradients: the "channel" pattern
// (Damiani & Viroli, type-based self-stabilisation for computational
// fields).  Three stacked gradient blocks, each individually
// self-stabilizing, composed so the whole field stabilizes:
//
//   g1 — hop distance to source A,
//   g2 — hop distance to source B,
//   g3 — hop distance to the A-B channel corridor, the set of nodes
//        with g1 + g2 <= limit (shortest-path distance plus a width
//        allowance, delivered as a fabric parameter).
//
// g3's source predicate reads the *freshly computed* g1 and g2, so a
// corruption in either input gradient perturbs g3 and the composite must
// re-stabilize end to end — the compositionality experiment of ISSUE 6.
//
// Neighbor slots arrive as four (slot, component) triples padded with
// the 9998 cap; all reads are clamped into the value domain at strictly
// lower lattice locations before use.

public class GradientChannel {
  @LATTICE("OUT<NEXT,NEXT<G,G<CL,CL<IN")
  public void stepLoop() {
    SSJAVA:
    while (true) {
      @LOC("IN") int srcA = Device.readFlag();
      @LOC("IN") int srcB = Device.readFlag();
      @LOC("IN") int limit = Device.readParam();
      @LOC("IN") int a0 = Device.readNeighbor();
      @LOC("IN") int b0 = Device.readNeighbor();
      @LOC("IN") int c0 = Device.readNeighbor();
      @LOC("IN") int a1 = Device.readNeighbor();
      @LOC("IN") int b1 = Device.readNeighbor();
      @LOC("IN") int c1 = Device.readNeighbor();
      @LOC("IN") int a2 = Device.readNeighbor();
      @LOC("IN") int b2 = Device.readNeighbor();
      @LOC("IN") int c2 = Device.readNeighbor();
      @LOC("IN") int a3 = Device.readNeighbor();
      @LOC("IN") int b3 = Device.readNeighbor();
      @LOC("IN") int c3 = Device.readNeighbor();
      @LOC("CL") int ca0 = Math.min(Math.max(a0, 0), 9998);
      @LOC("CL") int ca1 = Math.min(Math.max(a1, 0), 9998);
      @LOC("CL") int ca2 = Math.min(Math.max(a2, 0), 9998);
      @LOC("CL") int ca3 = Math.min(Math.max(a3, 0), 9998);
      @LOC("CL") int cb0 = Math.min(Math.max(b0, 0), 9998);
      @LOC("CL") int cb1 = Math.min(Math.max(b1, 0), 9998);
      @LOC("CL") int cb2 = Math.min(Math.max(b2, 0), 9998);
      @LOC("CL") int cb3 = Math.min(Math.max(b3, 0), 9998);
      @LOC("CL") int cc0 = Math.min(Math.max(c0, 0), 9998);
      @LOC("CL") int cc1 = Math.min(Math.max(c1, 0), 9998);
      @LOC("CL") int cc2 = Math.min(Math.max(c2, 0), 9998);
      @LOC("CL") int cc3 = Math.min(Math.max(c3, 0), 9998);
      @LOC("G") int g1 = Math.min(Math.min(ca0, ca1), Math.min(ca2, ca3)) + 1;
      if (srcA != 0) {
        g1 = 0;
      }
      @LOC("G") int g2 = Math.min(Math.min(cb0, cb1), Math.min(cb2, cb3)) + 1;
      if (srcB != 0) {
        g2 = 0;
      }
      @LOC("NEXT") int g3 = Math.min(Math.min(cc0, cc1), Math.min(cc2, cc3)) + 1;
      if (g1 + g2 <= limit) {
        g3 = 0;
      }
      SJ.broadcast(g1);
      SJ.broadcast(g2);
      SJ.broadcast(g3);
    }
  }
}
