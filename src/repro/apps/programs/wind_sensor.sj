// Wind direction sensor — the running example of Chapter 2 (Fig. 2.1).
//
// The event loop reads the current wind direction, keeps the three most
// recent readings in the WindRec bin, and broadcasts the median-filtered
// direction.  A corrupted reading is flushed out of the bin within three
// iterations, so the program self-stabilizes.

@LATTICE("DIR<TMP2,TMP2<TMP,TMP<BIN")
public class WDSensor {
  @LOC("BIN") private WindRec bin = new WindRec();
  @LOC("DIR") private int dir;

  @LATTICE("STR<WDOBJ,WDOBJ<IN")
  @THISLOC("WDOBJ")
  public void windDirection() {
    SSJAVA:
    while (true) {
      @LOC("IN") int inDir = Device.readSensor();
      // move old wind directions one step down
      bin.dir2 = bin.dir1;
      bin.dir1 = bin.dir0;
      // add a new wind direction
      bin.dir0 = inDir;
      @LOC("STR") int outDir = calculate();
      SJ.broadcast(outDir);
    }
  }

  @LATTICE("OUT<CAOBJ")
  @THISLOC("CAOBJ")
  @RETURNLOC("OUT")
  public int calculate() {
    // median of the last three directions discards a single outlier
    @LOC("CAOBJ,TMP") int d0 = bin.dir0;
    @LOC("CAOBJ,TMP") int d1 = bin.dir1;
    @LOC("CAOBJ,TMP") int d2 = bin.dir2;
    @LOC("CAOBJ,TMP2") int majorDir;
    if (d0 > d1 && d0 < d2 || d0 < d1 && d0 > d2) {
      majorDir = d0;
    } else {
      if (d1 > d0 && d1 < d2 || d1 < d0 && d1 > d2) {
        majorDir = d1;
      } else {
        majorDir = d2;
      }
    }
    this.dir = majorDir;
    return majorDir;
  }
}

@LATTICE("DIR2<DIR1,DIR1<DIR0")
class WindRec {
  @LOC("DIR0") public int dir0;
  @LOC("DIR1") public int dir1;
  @LOC("DIR2") public int dir2;
}
