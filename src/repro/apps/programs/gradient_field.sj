// Self-stabilizing gradient (hop-count) field.
//
// One node of an arbitrary topology.  The source broadcasts 0; every
// other node broadcasts one more than the smallest neighbor value.  The
// fabric always supplies four neighbor slots (the maximum degree of the
// bundled topologies), padding absent neighbors with the 9998 cap, which
// is neutral for the min — so the program is straight-line and a
// corrupted loop bound can never cause a runaway.  After any single
// corruption the field re-converges in at most diameter+1 synchronous
// rounds (the healing wave trails the contamination wave by one round).
//
// Neighbor values are clamped into [0, 9998] through pure Math calls at
// a strictly lower lattice location, so arbitrary corrupted integers
// re-enter the field's value domain immediately.

public class GradientField {
  @LATTICE("OUT<NEXT,NEXT<ACC,ACC<CL,CL<IN")
  public void stepLoop() {
    SSJAVA:
    while (true) {
      @LOC("IN") int source = Device.readFlag();
      @LOC("IN") int n0 = Device.readNeighbor();
      @LOC("IN") int n1 = Device.readNeighbor();
      @LOC("IN") int n2 = Device.readNeighbor();
      @LOC("IN") int n3 = Device.readNeighbor();
      @LOC("CL") int c0 = Math.min(Math.max(n0, 0), 9998);
      @LOC("CL") int c1 = Math.min(Math.max(n1, 0), 9998);
      @LOC("CL") int c2 = Math.min(Math.max(n2, 0), 9998);
      @LOC("CL") int c3 = Math.min(Math.max(n3, 0), 9998);
      @LOC("ACC") int best = Math.min(Math.min(c0, c1), Math.min(c2, c3));
      @LOC("NEXT") int next;
      if (source != 0) {
        next = 0;
      } else {
        next = best + 1;
      }
      SJ.broadcast(next);
    }
  }
}
