"""Benchmark applications (Section 6.1) as sjava programs.

* ``wind_sensor`` — the wind direction sensor running example (Fig. 2.1);
* ``weather_index`` — the weather index example (Figs. 5.1 / 5.15);
* ``mp3_decoder`` — the JLayer MP3 decoder analog;
* ``eye_tracker`` — the LEA eye tracking analog;
* ``sumo_robot`` — the Sumo robot controller analog;
* ``heart_monitor`` — a cardiac monitor for the paper's safety-critical
  scenario (Section 1.2), demonstrating ``@METHODDEFAULT``.

:func:`load_app` parses + resolves an application; ``annotated=False``
strips the location annotations (for the inference evaluation, which
takes the benchmarks with all location annotations removed).
Each app ships a deterministic iteration-keyed device generator for the
stabilization experiments.
"""

from repro.apps.registry import (
    APP_NAMES,
    DIST_APP_NAMES,
    AppBundle,
    all_app_names,
    app_catalog,
    app_device_factory,
    app_experiment,
    app_path,
    app_source,
    load_app,
    programs_dir,
    resolve_experiment,
    strip_location_annotations,
)

__all__ = [
    "APP_NAMES",
    "DIST_APP_NAMES",
    "AppBundle",
    "all_app_names",
    "app_catalog",
    "app_device_factory",
    "app_experiment",
    "app_path",
    "app_source",
    "load_app",
    "programs_dir",
    "resolve_experiment",
    "strip_location_annotations",
]
