"""repro — a reproduction of *Self-Stabilizing Java* (Eom & Demsky,
PLDI 2012; Eom's UC Irvine dissertation, 2016).

SJava statically checks that an event-loop program **self-stabilizes**:
after an arbitrary state corruption it returns to the exact correct
state within a bounded number of iterations.  This package provides:

* :mod:`repro.lang` — the sjava mini-language (lexer, parser, AST,
  conventional type checker, printer);
* :mod:`repro.core` — the location type system, the flow-down rule, the
  linear type discipline, the eviction / shared-location / termination
  analyses, and the checker driver;
* :mod:`repro.infer` — SInfer, the annotation inference algorithm
  (value flow graphs → hierarchy graphs → Dedekind–MacNeille lattices,
  with the SInfer simplification);
* :mod:`repro.runtime` — the interpreter (with crash-avoidance
  semantics), simulated devices, fault injection and the stabilization
  experiment harness;
* :mod:`repro.apps` — the paper's benchmark applications ported to the
  mini-language.

Quick start::

    from repro import check_program
    report = check_program(source_text)
    assert report.self_stabilizing
"""

from repro.core.checker import CheckReport, SJavaChecker, check_parsed, check_program
from repro.infer import InferenceEngine, InferenceResult, infer_annotations
from repro.lang import parse_program, resolve_program, typecheck_program
from repro.runtime import (
    ErrorInjector,
    Interpreter,
    RuntimeOptions,
    StabilizationExperiment,
)

__version__ = "1.0.0"

__all__ = [
    "CheckReport",
    "ErrorInjector",
    "InferenceEngine",
    "InferenceResult",
    "Interpreter",
    "RuntimeOptions",
    "SJavaChecker",
    "StabilizationExperiment",
    "check_parsed",
    "check_program",
    "infer_annotations",
    "parse_program",
    "resolve_program",
    "typecheck_program",
]
