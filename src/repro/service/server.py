"""The checking daemon: newline-delimited JSON over a Unix socket.

``repro serve --socket PATH`` starts a long-lived process that keeps
the checker warm (parsed once per request, cached by content), so
editors and build systems pay socket-round-trip latency instead of
interpreter start-up per check.

One request per line, one response per line; a connection may issue any
number of requests.  Operations:

* ``{"op": "check",  "source": ...}`` or ``{"op": "check", "path": ...}``
  — run the self-stabilization checker (cache-aware); response embeds
  the standard ``check`` payload plus per-pass ``timings``;
* ``{"op": "infer",  "source"|"path": ..., "mode": "sinfer"|"naive"}``
  — run annotation inference; response carries the stable summary and
  the annotated source;
* ``{"op": "status"}`` — uptime-style counters: requests served per op,
  cache statistics, plus a compact ``metrics`` section;
* ``{"op": "metrics"}`` — the full :class:`~repro.obs.MetricsRegistry`
  snapshot (``{"format": "prometheus"}`` returns the text exposition
  instead);
* ``{"op": "events"}`` — the daemon's recent structured events (an
  in-memory ring of the last 512), optionally filtered by ``level``
  (severity floor), ``name`` (substring) and ``limit`` (tail);
* ``{"op": "shutdown"}`` — acknowledge, then stop the daemon.

Every response carries ``version``, ``ok``, and the server-assigned
``request_id`` (a monotonically increasing counter).

Observability: the daemon installs a :class:`~repro.obs.Tracer` (ring
buffer sink) for its lifetime, wraps every operation in an ``op.<name>``
span — handler threads each grow their own well-nested tree — and wires
cache hit/miss/eviction statistics and pool latency histograms into a
per-server metrics registry.  Requests may carry an optional ``trace``
traceparent field: the op span then records the calling client's span
as its remote parent, linking daemon work into the client's distributed
trace.  ``--http-port`` additionally serves ``/metrics``, ``/healthz``
and ``/events`` over HTTP (:mod:`repro.obs.exporter`).  See
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import os
import socketserver
import threading
import time
from pathlib import Path
from typing import Optional

from repro.infer import infer_annotations
from repro.lang import parse_program, resolve_program, typecheck_program
from repro.lang.lexer import LexError
from repro.lang.parser import ParseError
from repro.lang.symtab import ResolveError
from repro.lang.typecheck import JavaTypeError
from repro.obs import (
    EventBuffer,
    EventLog,
    MetricsRegistry,
    RingBufferSink,
    Tracer,
    get_tracer,
    set_tracer,
    timed_span,
)
from repro.chaos.injector import get_chaos
from repro.obs.events import EventError, get_event_log, set_event_log
from repro.obs.exporter import maybe_exporter
from repro.obs.resources import ResourceMonitor
from repro.obs.propagate import PropagationError, TraceContext
from repro.service import protocol
from repro.service.cache import ResultCache
from repro.service.pool import CheckerPool

_FRONT_END_ERRORS = (LexError, ParseError, ResolveError, JavaTypeError)

OPS = ("check", "infer", "status", "metrics", "events", "shutdown")


class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        server: ReproServer = self.server  # type: ignore[assignment]
        for raw in self.rfile:
            line = raw.decode("utf-8", errors="replace").strip()
            if not line:
                continue
            server._begin_request()
            try:
                response = server.dispatch(line)
                if get_chaos().drop_point(
                    "server.response", response.get("request_id", "?")
                ):
                    # Injected connection reset: the request executed but
                    # its response never ships — the client sees EOF, as
                    # with a daemon crash between dispatch and write.
                    return
                try:
                    self.wfile.write(
                        (protocol.dumps(response) + "\n").encode("utf-8")
                    )
                    self.wfile.flush()
                except (BrokenPipeError, ConnectionResetError):
                    # The client went away mid-response; a torn protocol
                    # line must never take the handler (or daemon) down.
                    return
            finally:
                server._end_request()
            if response.get("op") == "shutdown" and response.get("ok"):
                return


class ReproServer(socketserver.ThreadingMixIn, socketserver.UnixStreamServer):
    """The daemon.  Construct, then call :meth:`serve_forever` (or
    :meth:`start` to run it on a background thread, as tests do)."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        socket_path: str | Path,
        *,
        cache: Optional[ResultCache] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        http_port: Optional[int] = None,
        http_host: str = "127.0.0.1",
    ) -> None:
        from repro.service.client import remove_stale_socket, socket_is_live

        self.socket_path = str(socket_path)
        Path(self.socket_path).parent.mkdir(parents=True, exist_ok=True)
        if Path(self.socket_path).exists():
            # Reclaim a socket a killed daemon left behind, but never
            # steal one a live daemon is still answering on.
            if socket_is_live(self.socket_path):
                raise OSError(
                    f"socket {self.socket_path} is in use by a running daemon"
                )
            remove_stale_socket(self.socket_path)
        super().__init__(self.socket_path, _Handler)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.pool = CheckerPool(
            max_workers=1, cache=cache, metrics=self.metrics
        )
        self.started_at = time.time()
        self._lock = threading.Lock()
        self._request_counter = 0
        self._op_counts: dict[str, int] = {op: 0 for op in OPS}
        self._shutdown_thread: Optional[threading.Thread] = None
        self._inflight = 0
        self._inflight_cv = threading.Condition()
        # The daemon owns process-wide tracing for its lifetime: library
        # spans (checker passes, inference phases) report through
        # get_tracer(), so the server's tracer is installed globally and
        # restored by close().  One daemon per process.
        self.trace_buffer = RingBufferSink(capacity=128)
        self.tracer = (
            tracer if tracer is not None
            else Tracer(sinks=(self.trace_buffer,))
        )
        self._previous_tracer = set_tracer(self.tracer)
        # Same ownership story for the event log: the last 512 events
        # stay in memory and ship through the `events` op.  Threshold is
        # debug — the ring is the filter, not the gate.
        self.event_buffer = EventBuffer(capacity=512)
        self.event_log = EventLog(level="debug", sinks=(self.event_buffer,))
        self._previous_event_log = set_event_log(self.event_log)
        # Resource telemetry for /healthz and the repro_rss/gc/cache
        # gauges: RSS + GC pauses + cache occupancy only — tracemalloc
        # stays off in the daemon (allocation tracing taxes every
        # request; opt in via `repro bench --mem` instead).
        self.resources = ResourceMonitor(trace_allocations=False).start()
        daemon_cache = self.pool.cache
        if daemon_cache is not None:
            self.resources.watch_cache(
                "memory", lambda: daemon_cache.occupancy()["memory"]
            )
            if daemon_cache.disk_dir is not None:
                self.resources.watch_cache(
                    "disk",
                    lambda: daemon_cache.occupancy().get("disk", {}),
                )
        # The HTTP observability plane: /metrics byte-equal to the
        # socket `metrics` op (same prepare + render path), /healthz
        # from the drain accounting, /events from the same ring the
        # `events` op reads.  NullExporter when no port is configured.
        self.exporter = maybe_exporter(
            http_port,
            host=http_host,
            registry=self.metrics,
            prepare=self._sync_cache_metrics,
            events=lambda: self.event_buffer.records,
            health=self._health,
        )
        self.event_log.emit(
            "daemon.start", level="info", socket=self.socket_path
        )

    # -- lifecycle -------------------------------------------------------

    def start(self) -> threading.Thread:
        thread = threading.Thread(target=self.serve_forever, daemon=True)
        thread.start()
        return thread

    def _begin_request(self) -> None:
        with self._inflight_cv:
            self._inflight += 1

    def _end_request(self) -> None:
        with self._inflight_cv:
            self._inflight -= 1
            self._inflight_cv.notify_all()

    def inflight(self) -> int:
        """Requests currently being handled (dispatch through response
        write)."""
        with self._inflight_cv:
            return self._inflight

    def drain(self, timeout: float = 5.0) -> bool:
        """Wait until no request is mid-flight (dispatched but its
        response not yet written), so a shutdown never tears a protocol
        line.  True when drained, False on timeout."""
        deadline = time.monotonic() + timeout
        with self._inflight_cv:
            while self._inflight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._inflight_cv.wait(remaining)
        return True

    def close(self, *, drain_timeout: float = 5.0) -> None:
        # Handler threads are daemons: without the drain, closing here
        # could cut a response off mid-line.  Requests still in flight
        # get drain_timeout to finish writing; stragglers are reported,
        # not waited on forever.
        if not self.drain(drain_timeout):
            self.event_log.emit(
                "daemon.drain_timeout",
                level="warn",
                inflight=self.inflight(),
            )
        if get_tracer() is self.tracer:
            set_tracer(self._previous_tracer)
        if get_event_log() is self.event_log:
            set_event_log(self._previous_event_log)
        self.resources.stop()
        self.exporter.close()
        self.server_close()
        Path(self.socket_path).unlink(missing_ok=True)

    def _health(self) -> dict:
        """The ``/healthz`` document body (``ok`` comes from the
        exporter): liveness facts a probe or operator wants first."""
        with self._lock:
            served = self._request_counter
        return {
            "pid": os.getpid(),
            "socket": self.socket_path,
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "inflight": self.inflight(),
            "requests_served": served,
            "rss_bytes": self.resources.peak_rss(),
            "gc": self.resources.gc_snapshot(),
            "cache_occupancy": self.resources.cache_occupancy(),
        }

    # -- dispatch --------------------------------------------------------

    def dispatch(self, line: str) -> dict:
        with self._lock:
            self._request_counter += 1
            request_id = self._request_counter
        try:
            request = protocol.loads(line)
        except protocol.ProtocolError as exc:
            return self._error(request_id, "?", str(exc))
        op = request.get("op")
        if op not in OPS:
            return self._error(request_id, str(op), f"unknown op {op!r}")
        # Optional distributed-tracing context: a client running under
        # an active span stamps its traceparent, and the op span below
        # adopts the caller's trace as its remote parent.  Absent field
        # → context is None → attached() is a no-op, so old clients see
        # byte-identical behaviour.
        context: Optional[TraceContext] = None
        if "trace" in request:
            try:
                context = TraceContext.from_traceparent(request["trace"])
            except PropagationError as exc:
                return self._error(
                    request_id, op, f"bad trace context: {exc}"
                )
        with self._lock:
            self._op_counts[op] += 1
        self.metrics.counter(
            "repro_requests_total", "requests dispatched"
        ).inc()
        self.metrics.counter(
            f"repro_op_{op}_total", f"{op} requests dispatched"
        ).inc()
        try:
            handler = getattr(self, f"_op_{op}")
            with self.tracer.attached(context), self.tracer.span(
                f"op.{op}", request_id=request_id
            ) as span:
                # Inside the span, so the event joins it on
                # (trace_id, span_id) — except for `events` itself,
                # which would pollute the very ring it is reading.
                if op != "events":
                    self.event_log.emit(
                        "daemon.request", level="debug",
                        op=op, request_id=request_id,
                    )
                response = handler(request, request_id)
                span.set_attr("ok", bool(response.get("ok")))
            return response
        except _FRONT_END_ERRORS as exc:
            return self._error(request_id, op, f"front-end error: {exc}")
        except Exception as exc:  # a bug must not kill the daemon
            return self._error(request_id, op, f"internal error: {exc}")

    def _error(self, request_id: int, op: str, message: str) -> dict:
        return {
            "version": protocol.PROTOCOL_VERSION,
            "ok": False,
            "op": op,
            "request_id": request_id,
            "message": message,
        }

    def _envelope(self, request_id: int, op: str, **fields) -> dict:
        return {
            "version": protocol.PROTOCOL_VERSION,
            "ok": True,
            "op": op,
            "request_id": request_id,
            **fields,
        }

    @staticmethod
    def _request_source(request: dict) -> tuple[str, str]:
        if "source" in request:
            return str(request["source"]), str(request.get("file", "<socket>"))
        if "path" in request:
            path = str(request["path"])
            return Path(path).read_text(encoding="utf-8"), path
        raise ValueError("request needs 'source' or 'path'")

    # -- operations ------------------------------------------------------

    def _op_check(self, request: dict, request_id: int) -> dict:
        try:
            source, name = self._request_source(request)
        except (ValueError, OSError) as exc:
            return self._error(request_id, "check", str(exc))
        start = time.perf_counter()
        result = self.pool.check_source(source, file=name)
        if result.payload is not None and result.payload.get("kind") == "check":
            payload = dict(result.payload)
            if "timings" not in payload:
                # Cache hits skip the pipeline, so there are no per-pass
                # timings — report the lookup cost instead of nothing.
                payload["timings"] = {
                    "cache_lookup": time.perf_counter() - start
                }
            return self._envelope(request_id, "check", **payload)
        message = result.message or "check failed"
        return self._error(request_id, "check", message)

    def _op_infer(self, request: dict, request_id: int) -> dict:
        try:
            source, name = self._request_source(request)
        except (ValueError, OSError) as exc:
            return self._error(request_id, "infer", str(exc))
        mode = str(request.get("mode", "sinfer"))
        if mode not in ("sinfer", "naive"):
            return self._error(request_id, "infer", f"unknown mode {mode!r}")
        start = time.perf_counter()
        timings: dict[str, float] = {}
        with timed_span("parse", timings):
            program = parse_program(source)
        with timed_span("resolve", timings):
            info = resolve_program(program)
        with timed_span("typecheck", timings):
            typecheck_program(info)
        result = infer_annotations(
            info, mode=mode, verify=bool(request.get("verify", True))
        )
        # Span-derived per-phase timings: front end + the engine's
        # pipeline phases (value_flow … verify), plus the old total.
        timings.update(result.phase_seconds)
        timings["total"] = time.perf_counter() - start
        payload = protocol.infer_payload(
            result.summary_dict(), file=name, timings=timings
        )
        payload["annotated_source"] = result.annotated_source
        return self._envelope(request_id, "infer", **payload)

    def _sync_cache_metrics(self) -> None:
        """Mirror :class:`CacheStats` into the registry so one snapshot
        carries cache hit/miss/eviction counts alongside everything
        else."""
        self._sync_resource_metrics()
        cache = self.pool.cache
        if cache is None:
            return
        for name, value in cache.stats.to_dict().items():
            self.metrics.gauge(
                f"repro_cache_{name}", f"result cache {name.replace('_', ' ')}"
            ).set(value)

    def _sync_resource_metrics(self) -> None:
        """Mirror the resource monitor into the registry: process RSS,
        GC totals, and per-tier cache occupancy (documented in
        ``docs/SERVICE.md``)."""
        rss = self.resources.peak_rss()
        if rss is not None:
            self.metrics.gauge(
                "repro_rss_bytes", "peak resident set size"
            ).set(rss)
        gc_doc = self.resources.gc_snapshot()
        self.metrics.gauge(
            "repro_gc_collections_total", "garbage collections observed"
        ).set(gc_doc["collections"])
        self.metrics.gauge(
            "repro_gc_pause_seconds_total", "summed gc pause time"
        ).set(gc_doc["pause_seconds_total"])
        occupancy = self.resources.cache_occupancy()
        total_bytes = 0
        for tier, stats in occupancy.items():
            total_bytes += stats["bytes"]
            self.metrics.gauge(
                f"repro_cache_{tier}_entries", f"{tier} cache tier entries"
            ).set(stats["entries"])
            self.metrics.gauge(
                f"repro_cache_{tier}_bytes", f"{tier} cache tier bytes"
            ).set(stats["bytes"])
        if occupancy:
            self.metrics.gauge(
                "repro_cache_bytes", "result cache bytes across tiers"
            ).set(total_bytes)

    def _op_status(self, request: dict, request_id: int) -> dict:
        with self._lock:
            op_counts = dict(self._op_counts)
            served = self._request_counter
        self._sync_cache_metrics()
        snapshot = self.metrics.snapshot()
        return self._envelope(
            request_id,
            "status",
            requests_served=served,
            op_counts=op_counts,
            uptime_seconds=time.time() - self.started_at,
            pool=self.pool.stats(),
            metrics={
                "schema": snapshot["schema"],
                "counters": snapshot["counters"],
                "gauges": snapshot["gauges"],
            },
        )

    def _op_metrics(self, request: dict, request_id: int) -> dict:
        self._sync_cache_metrics()
        fmt = str(request.get("format", "json"))
        if fmt == "prometheus":
            return self._envelope(
                request_id,
                "metrics",
                metrics_text=self.metrics.render_prometheus(),
            )
        if fmt != "json":
            return self._error(
                request_id, "metrics", f"unknown metrics format {fmt!r}"
            )
        return self._envelope(
            request_id, "metrics", metrics=self.metrics.snapshot()
        )

    def _op_events(self, request: dict, request_id: int) -> dict:
        from repro.obs import filter_events

        limit = request.get("limit")
        if limit is not None and (not isinstance(limit, int) or limit < 0):
            return self._error(
                request_id, "events", f"limit must be a non-negative int, "
                f"got {limit!r}"
            )
        try:
            selected = filter_events(
                self.event_buffer.records,
                min_level=request.get("level"),
                name=request.get("name"),
                tail=limit,
            )
        except EventError as exc:
            return self._error(request_id, "events", str(exc))
        return self._envelope(request_id, "events", events=selected)

    def _op_shutdown(self, request: dict, request_id: int) -> dict:
        # shutdown() blocks until serve_forever() returns, so it must run
        # off the handler thread; the response still goes out first
        # because the handler writes it before the loop notices.
        self._shutdown_thread = threading.Thread(
            target=self.shutdown, daemon=True
        )
        self._shutdown_thread.start()
        return self._envelope(request_id, "shutdown", stopping=True)


def serve(
    socket_path: str | Path,
    *,
    cache: Optional[ResultCache] = None,
    http_port: Optional[int] = None,
    http_host: str = "127.0.0.1",
) -> None:
    """Run a daemon until it is shut down (blocking)."""
    server = ReproServer(
        socket_path, cache=cache, http_port=http_port, http_host=http_host
    )
    try:
        server.serve_forever()
    finally:
        server.close()
