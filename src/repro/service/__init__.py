"""The checking service: batch, cache, daemon, wire protocol.

The single-shot CLI re-runs the front end and all six analyses per
invocation; this package turns the checker into infrastructure that can
serve sustained traffic (see ``docs/SERVICE.md``):

* :mod:`repro.service.protocol` — versioned JSON payloads for
  diagnostics, reports and inference summaries;
* :mod:`repro.service.cache` — content-addressed result cache
  (in-memory LRU + on-disk store), keyed by SHA-256 of source +
  checker version;
* :mod:`repro.service.pool` — process-pool batch checking with
  per-task timeouts and graceful in-process degradation;
* :mod:`repro.service.server` / :mod:`repro.service.client` — a
  long-lived Unix-socket daemon speaking newline-delimited JSON.

CLI entry points: ``repro batch``, ``repro serve``, and ``--json`` on
``repro check`` / ``repro infer``.
"""

from repro.service.cache import ResultCache, checker_fingerprint, source_key
from repro.service.client import (
    ReproClient,
    ServiceError,
    StaleSocketError,
    remove_stale_socket,
    socket_is_live,
)
from repro.service.pool import (
    BatchResult,
    CheckerPool,
    ResilientPool,
    TaskFailure,
)
from repro.service.protocol import PROTOCOL_VERSION, ProtocolError
from repro.service.server import ReproServer, serve

__all__ = [
    "BatchResult",
    "CheckerPool",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ReproClient",
    "ReproServer",
    "ResilientPool",
    "ResultCache",
    "ServiceError",
    "StaleSocketError",
    "TaskFailure",
    "checker_fingerprint",
    "remove_stale_socket",
    "serve",
    "socket_is_live",
    "source_key",
]
