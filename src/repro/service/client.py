"""Client for the checking daemon.

Speaks the newline-delimited JSON protocol of
:mod:`repro.service.server` over a Unix socket.  One client holds one
connection and may issue many requests; use it as a context manager::

    with ReproClient(socket_path) as client:
        response = client.check(source=text)
        assert response["self_stabilizing"]
        client.shutdown()

Connecting is hardened for real deployments: ``connect_retries``
retries with capped exponential backoff cover the daemon-still-starting
window, and a socket file whose daemon is gone (killed without cleanup)
is diagnosed as *stale* rather than surfacing a bare
``ConnectionRefusedError`` — :func:`remove_stale_socket` cleans one up.
"""

from __future__ import annotations

import socket
import time
from pathlib import Path
from typing import Optional

from repro.service import protocol


class ServiceError(RuntimeError):
    """The daemon answered ``ok: false`` (or not at all)."""


class StaleSocketError(ServiceError):
    """The socket file exists but no daemon is listening behind it."""


def socket_is_live(socket_path: str | Path) -> bool:
    """True when something accepts connections on ``socket_path``."""
    probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    probe.settimeout(1.0)
    try:
        probe.connect(str(socket_path))
        return True
    except OSError:
        return False
    finally:
        probe.close()


def remove_stale_socket(socket_path: str | Path) -> bool:
    """Delete a socket file left behind by a killed daemon.

    Returns True when a stale file was removed; a missing file or a
    live daemon leaves the filesystem untouched and returns False.
    """
    path = Path(socket_path)
    if not path.exists() or socket_is_live(path):
        return False
    path.unlink(missing_ok=True)
    return True


class ReproClient:
    def __init__(
        self,
        socket_path: str | Path,
        timeout: float = 30.0,
        *,
        connect_retries: int = 0,
        connect_backoff: float = 0.05,
        backoff_cap: float = 1.0,
    ) -> None:
        self.socket_path = str(socket_path)
        self.timeout = timeout
        self.connect_retries = connect_retries
        self.connect_backoff = connect_backoff
        self.backoff_cap = backoff_cap
        self._sock: Optional[socket.socket] = None
        self._reader = None

    # -- connection ------------------------------------------------------

    def connect(self) -> "ReproClient":
        if self._sock is not None:
            return self
        delay = self.connect_backoff
        last_error: Optional[OSError] = None
        for attempt in range(self.connect_retries + 1):
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            try:
                sock.connect(self.socket_path)
            except OSError as exc:
                sock.close()
                last_error = exc
                if attempt < self.connect_retries:
                    time.sleep(delay)
                    delay = min(delay * 2, self.backoff_cap)
                continue
            self._sock = sock
            self._reader = sock.makefile("rb")
            return self
        assert last_error is not None
        if (
            isinstance(last_error, ConnectionRefusedError)
            and Path(self.socket_path).exists()
        ):
            raise StaleSocketError(
                f"stale socket {self.socket_path}: the file exists but no "
                f"daemon answers (a previous daemon was probably killed); "
                f"remove_stale_socket() cleans it up"
            ) from last_error
        raise ServiceError(
            f"cannot connect to daemon at {self.socket_path} "
            f"after {self.connect_retries + 1} attempt(s): {last_error}"
        ) from last_error

    def close(self) -> None:
        if self._reader is not None:
            self._reader.close()
            self._reader = None
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    def __enter__(self) -> "ReproClient":
        return self.connect()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- requests --------------------------------------------------------

    def request(self, payload: dict) -> dict:
        """Send one request, wait for its one-line response."""
        self.connect()
        assert self._sock is not None and self._reader is not None
        self._sock.sendall((protocol.dumps(payload) + "\n").encode("utf-8"))
        line = self._reader.readline()
        if not line:
            raise ServiceError("daemon closed the connection")
        response = protocol.loads(line.decode("utf-8"))
        protocol.validate_version(response)
        return response

    def _checked(self, payload: dict) -> dict:
        response = self.request(payload)
        if not response.get("ok"):
            raise ServiceError(response.get("message", "request failed"))
        return response

    def check(
        self, *, source: Optional[str] = None, path: Optional[str] = None
    ) -> dict:
        return self._checked(self._locate("check", source, path))

    def infer(
        self,
        *,
        source: Optional[str] = None,
        path: Optional[str] = None,
        mode: str = "sinfer",
        verify: bool = True,
    ) -> dict:
        request = self._locate("infer", source, path)
        request["mode"] = mode
        request["verify"] = verify
        return self._checked(request)

    def status(self) -> dict:
        return self._checked({"op": "status"})

    def metrics(self, *, format: str = "json") -> dict:
        """The daemon's metrics snapshot (``format="prometheus"`` returns
        the text exposition in ``metrics_text``)."""
        return self._checked({"op": "metrics", "format": format})

    def events(
        self,
        *,
        level: Optional[str] = None,
        name: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> dict:
        """The daemon's recent structured events (its in-memory ring),
        filtered server-side: ``level`` is a severity floor, ``name`` a
        substring match, ``limit`` keeps only the last N."""
        request: dict = {"op": "events"}
        if level is not None:
            request["level"] = level
        if name is not None:
            request["name"] = name
        if limit is not None:
            request["limit"] = limit
        return self._checked(request)

    def shutdown(self) -> dict:
        return self._checked({"op": "shutdown"})

    @staticmethod
    def _locate(op: str, source: Optional[str], path: Optional[str]) -> dict:
        if (source is None) == (path is None):
            raise ValueError(f"{op} needs exactly one of source= or path=")
        if source is not None:
            return {"op": op, "source": source}
        return {"op": op, "path": str(path)}
