"""Client for the checking daemon.

Speaks the newline-delimited JSON protocol of
:mod:`repro.service.server` over a Unix socket.  One client holds one
connection and may issue many requests; use it as a context manager::

    with ReproClient(socket_path) as client:
        response = client.check(source=text)
        assert response["self_stabilizing"]
        client.shutdown()

Connecting is hardened for real deployments: ``connect_retries``
retries with capped exponential backoff cover the daemon-still-starting
window, and a socket file whose daemon is gone (killed without cleanup)
is diagnosed as *stale* rather than surfacing a bare
``ConnectionRefusedError`` — :func:`remove_stale_socket` cleans one up.

Every operation can carry a **total deadline budget** (``op_deadline``
seconds): connect retries, backoff sleeps and the response wait all draw
from the same budget, and exhausting it raises :class:`DeadlineExceeded`
— a distinct, machine-readable error whose ``envelope`` is a protocol
``error`` payload with ``error: "deadline-exceeded"``.  With
``connect_retries=None`` the retry loop is bounded by the deadline alone
instead of an attempt count.  A connection that dies mid-request (reset,
daemon restart, injected ``socket-drop``) is retried exactly once on a
fresh connection before the error surfaces.
"""

from __future__ import annotations

import socket
import time
from pathlib import Path
from typing import Callable, Optional

from repro.chaos.injector import chaos_recovery, get_chaos
from repro.obs.propagate import current_context
from repro.service import protocol


class ServiceError(RuntimeError):
    """The daemon answered ``ok: false`` (or not at all)."""


class StaleSocketError(ServiceError):
    """The socket file exists but no daemon is listening behind it."""


class DeadlineExceeded(ServiceError):
    """The operation's total deadline budget ran out.

    ``envelope`` is the protocol-shaped error payload
    (``error: "deadline-exceeded"``), so callers that forward daemon
    responses can forward this failure in the same format.
    """

    def __init__(self, message: str) -> None:
        super().__init__(message)
        self.envelope = protocol.error_payload(
            message, error="deadline-exceeded"
        )


class ConnectionDropped(ServiceError):
    """The connection died mid-request (reset, or the daemon closed
    it before responding).  :meth:`ReproClient.request` retries once on
    a fresh connection before letting this surface."""


def socket_is_live(socket_path: str | Path) -> bool:
    """True when something accepts connections on ``socket_path``."""
    probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    probe.settimeout(1.0)
    try:
        probe.connect(str(socket_path))
        return True
    except OSError:
        return False
    finally:
        probe.close()


def remove_stale_socket(socket_path: str | Path) -> bool:
    """Delete a socket file left behind by a killed daemon.

    Returns True when a stale file was removed; a missing file or a
    live daemon leaves the filesystem untouched and returns False.
    """
    path = Path(socket_path)
    if not path.exists() or socket_is_live(path):
        return False
    path.unlink(missing_ok=True)
    return True


class ReproClient:
    def __init__(
        self,
        socket_path: str | Path,
        timeout: float = 30.0,
        *,
        connect_retries: Optional[int] = 0,
        connect_backoff: float = 0.05,
        backoff_cap: float = 1.0,
        op_deadline: Optional[float] = None,
        clock: Optional[Callable[[], float]] = None,
        sleep: Optional[Callable[[float], None]] = None,
    ) -> None:
        if connect_retries is None and op_deadline is None:
            raise ValueError(
                "connect_retries=None (deadline-bounded retries) needs "
                "op_deadline set — otherwise the retry loop is unbounded"
            )
        self.socket_path = str(socket_path)
        self.timeout = timeout
        self.connect_retries = connect_retries
        self.connect_backoff = connect_backoff
        self.backoff_cap = backoff_cap
        self.op_deadline = op_deadline
        #: Injectable time sources (None: the real clock), so deadline
        #: and backoff behavior is testable without waiting.
        self.clock = clock
        self.sleep = sleep
        self._sock: Optional[socket.socket] = None
        self._reader = None
        self._request_seq = 0

    # -- the deadline budget ---------------------------------------------

    def _now(self) -> float:
        return (self.clock or time.monotonic)()

    def _sleep(self, seconds: float) -> None:
        (self.sleep or time.sleep)(seconds)

    def _start_deadline(self) -> Optional[float]:
        """The absolute deadline of an operation starting now."""
        if self.op_deadline is None:
            return None
        return self._now() + self.op_deadline

    def _remaining(self, deadline: Optional[float], what: str) -> Optional[float]:
        """Budget left before ``deadline``; raises once it is spent."""
        if deadline is None:
            return None
        remaining = deadline - self._now()
        if remaining <= 0:
            raise DeadlineExceeded(
                f"deadline of {self.op_deadline:.3f}s exceeded while {what} "
                f"(daemon at {self.socket_path})"
            )
        return remaining

    # -- connection ------------------------------------------------------

    def connect(self, *, deadline: Optional[float] = None) -> "ReproClient":
        if self._sock is not None:
            return self
        if deadline is None:
            deadline = self._start_deadline()
        delay = self.connect_backoff
        last_error: Optional[OSError] = None
        attempt = 0
        while True:
            remaining = self._remaining(deadline, "connecting")
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(
                self.timeout if remaining is None
                else min(self.timeout, remaining)
            )
            try:
                sock.connect(self.socket_path)
            except OSError as exc:
                sock.close()
                last_error = exc
                attempt += 1
                # None: retry until the deadline budget runs out.
                if self.connect_retries is None or (
                    attempt <= self.connect_retries
                ):
                    pause = delay
                    if deadline is not None:
                        budget = self._remaining(deadline, "connecting")
                        pause = min(pause, budget)
                    self._sleep(pause)
                    delay = min(delay * 2, self.backoff_cap)
                    continue
                break
            self._sock = sock
            self._reader = sock.makefile("rb")
            return self
        assert last_error is not None
        if (
            isinstance(last_error, ConnectionRefusedError)
            and Path(self.socket_path).exists()
        ):
            raise StaleSocketError(
                f"stale socket {self.socket_path}: the file exists but no "
                f"daemon answers (a previous daemon was probably killed); "
                f"remove_stale_socket() cleans it up"
            ) from last_error
        raise ServiceError(
            f"cannot connect to daemon at {self.socket_path} "
            f"after {attempt} attempt(s): {last_error}"
        ) from last_error

    def close(self) -> None:
        if self._reader is not None:
            self._reader.close()
            self._reader = None
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    def __enter__(self) -> "ReproClient":
        return self.connect()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- requests --------------------------------------------------------

    def request(self, payload: dict) -> dict:
        """Send one request, wait for its one-line response.

        The whole operation — connecting (with retries), sending,
        waiting — draws from one ``op_deadline`` budget.  A connection
        that dies mid-request is retried exactly once on a fresh
        connection (recorded as a ``chaos.recovery`` event); requests
        are single-line and responses idempotent to re-ask for, so one
        replay is safe and covers both daemon restarts and injected
        ``socket-drop`` faults.

        When the caller is inside an active trace span, the request is
        stamped with a ``trace`` traceparent field so the daemon's
        ``op.*`` span joins the caller's distributed trace.  No active
        span (the common case — tracing off) leaves the payload
        untouched, byte-identical to pre-tracing clients.
        """
        if "trace" not in payload:
            context = current_context()
            if context is not None:
                payload = {**payload, "trace": context.to_traceparent()}
        deadline = self._start_deadline()
        self._request_seq += 1
        key = f"{payload.get('op', 'request')}:{self._request_seq}"
        try:
            return self._request_once(payload, deadline, key)
        except DeadlineExceeded:
            raise
        except (ConnectionDropped, ConnectionError) as exc:
            self.close()
            self._remaining(deadline, "reconnecting after a dropped request")
            chaos_recovery(
                "client-reconnected",
                "client.request",
                key=key,
                error=str(exc),
            )
            return self._request_once(payload, deadline, key)

    def _request_once(
        self, payload: dict, deadline: Optional[float], key: str
    ) -> dict:
        self.connect(deadline=deadline)
        assert self._sock is not None and self._reader is not None
        remaining = self._remaining(deadline, "sending the request")
        self._sock.settimeout(
            self.timeout if remaining is None
            else min(self.timeout, remaining)
        )
        self._sock.sendall((protocol.dumps(payload) + "\n").encode("utf-8"))
        if get_chaos().drop_point("client.request", key):
            # Injected connection reset mid-request: the request went
            # out but the connection dies before the response is read —
            # what a client sees when its peer resets under it.
            self.close()
            raise ConnectionDropped("injected connection drop mid-request")
        try:
            line = self._reader.readline()
        except socket.timeout as exc:
            if deadline is not None and deadline - self._now() <= 0:
                raise DeadlineExceeded(
                    f"deadline of {self.op_deadline:.3f}s exceeded while "
                    f"waiting for a response (daemon at {self.socket_path})"
                ) from exc
            raise ServiceError(
                f"timed out waiting for a response from {self.socket_path}"
            ) from exc
        if not line:
            raise ConnectionDropped("daemon closed the connection")
        response = protocol.loads(line.decode("utf-8"))
        protocol.validate_version(response)
        return response

    def _checked(self, payload: dict) -> dict:
        response = self.request(payload)
        if not response.get("ok"):
            raise ServiceError(response.get("message", "request failed"))
        return response

    def check(
        self, *, source: Optional[str] = None, path: Optional[str] = None
    ) -> dict:
        return self._checked(self._locate("check", source, path))

    def infer(
        self,
        *,
        source: Optional[str] = None,
        path: Optional[str] = None,
        mode: str = "sinfer",
        verify: bool = True,
    ) -> dict:
        request = self._locate("infer", source, path)
        request["mode"] = mode
        request["verify"] = verify
        return self._checked(request)

    def status(self) -> dict:
        return self._checked({"op": "status"})

    def metrics(self, *, format: str = "json") -> dict:
        """The daemon's metrics snapshot (``format="prometheus"`` returns
        the text exposition in ``metrics_text``)."""
        return self._checked({"op": "metrics", "format": format})

    def events(
        self,
        *,
        level: Optional[str] = None,
        name: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> dict:
        """The daemon's recent structured events (its in-memory ring),
        filtered server-side: ``level`` is a severity floor, ``name`` a
        substring match, ``limit`` keeps only the last N."""
        request: dict = {"op": "events"}
        if level is not None:
            request["level"] = level
        if name is not None:
            request["name"] = name
        if limit is not None:
            request["limit"] = limit
        return self._checked(request)

    def shutdown(self) -> dict:
        return self._checked({"op": "shutdown"})

    @staticmethod
    def _locate(op: str, source: Optional[str], path: Optional[str]) -> dict:
        if (source is None) == (path is None):
            raise ValueError(f"{op} needs exactly one of source= or path=")
        if source is not None:
            return {"op": op, "source": source}
        return {"op": op, "path": str(path)}
