"""Client for the checking daemon.

Speaks the newline-delimited JSON protocol of
:mod:`repro.service.server` over a Unix socket.  One client holds one
connection and may issue many requests; use it as a context manager::

    with ReproClient(socket_path) as client:
        response = client.check(source=text)
        assert response["self_stabilizing"]
        client.shutdown()
"""

from __future__ import annotations

import socket
from pathlib import Path
from typing import Optional

from repro.service import protocol


class ServiceError(RuntimeError):
    """The daemon answered ``ok: false`` (or not at all)."""


class ReproClient:
    def __init__(self, socket_path: str | Path, timeout: float = 30.0) -> None:
        self.socket_path = str(socket_path)
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._reader = None

    # -- connection ------------------------------------------------------

    def connect(self) -> "ReproClient":
        if self._sock is None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            sock.connect(self.socket_path)
            self._sock = sock
            self._reader = sock.makefile("rb")
        return self

    def close(self) -> None:
        if self._reader is not None:
            self._reader.close()
            self._reader = None
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    def __enter__(self) -> "ReproClient":
        return self.connect()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- requests --------------------------------------------------------

    def request(self, payload: dict) -> dict:
        """Send one request, wait for its one-line response."""
        self.connect()
        assert self._sock is not None and self._reader is not None
        self._sock.sendall((protocol.dumps(payload) + "\n").encode("utf-8"))
        line = self._reader.readline()
        if not line:
            raise ServiceError("daemon closed the connection")
        response = protocol.loads(line.decode("utf-8"))
        protocol.validate_version(response)
        return response

    def _checked(self, payload: dict) -> dict:
        response = self.request(payload)
        if not response.get("ok"):
            raise ServiceError(response.get("message", "request failed"))
        return response

    def check(
        self, *, source: Optional[str] = None, path: Optional[str] = None
    ) -> dict:
        return self._checked(self._locate("check", source, path))

    def infer(
        self,
        *,
        source: Optional[str] = None,
        path: Optional[str] = None,
        mode: str = "sinfer",
        verify: bool = True,
    ) -> dict:
        request = self._locate("infer", source, path)
        request["mode"] = mode
        request["verify"] = verify
        return self._checked(request)

    def status(self) -> dict:
        return self._checked({"op": "status"})

    def shutdown(self) -> dict:
        return self._checked({"op": "shutdown"})

    @staticmethod
    def _locate(op: str, source: Optional[str], path: Optional[str]) -> dict:
        if (source is None) == (path is None):
            raise ValueError(f"{op} needs exactly one of source= or path=")
        if source is not None:
            return {"op": op, "source": source}
        return {"op": op, "path": str(path)}
