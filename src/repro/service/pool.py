"""Parallel batch checking.

:class:`CheckerPool` fans a batch of ``.sj`` files out across worker
processes (``concurrent.futures.ProcessPoolExecutor``) with a per-task
timeout.  Cache lookups happen in the parent — only misses are shipped
to workers, and their reports are written back through the shared
:class:`~repro.service.cache.ResultCache`, so a warm batch run touches
no worker at all.

With ``max_workers=1`` the pool degrades gracefully to plain in-process
execution: no subprocesses, no pickling, no timeout enforcement — the
mode used by tests, coverage runs, and platforms without ``fork``.

Workers return protocol payloads (plain dicts), not checker objects, so
the wire format is exercised on every parallel run and nothing
unpicklable crosses the process boundary.
"""

from __future__ import annotations

import concurrent.futures
import random
import time
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator, Optional, Sequence

from repro.core.checker import CheckReport, SJavaChecker
from repro.lang import parse_program, resolve_program, typecheck_program
from repro.obs import MetricsRegistry, timed_span
from repro.lang.lexer import LexError
from repro.lang.parser import ParseError
from repro.lang.symtab import ResolveError
from repro.lang.typecheck import JavaTypeError
from repro.service import protocol
from repro.service.cache import ResultCache

_FRONT_END_ERRORS = (LexError, ParseError, ResolveError, JavaTypeError)

#: Verdicts a batch item can end with.
PASS = "pass"
FAIL = "fail"
FRONT_END_ERROR = "front-end-error"
TIMEOUT = "timeout"
ERROR = "error"


def timed_check(source: str) -> tuple[CheckReport, dict]:
    """Run the full pipeline on one source, timing each pass.

    Front-end failures raise (as in :func:`repro.core.checker.check_program`);
    the returned timings cover ``parse``/``resolve``/``typecheck``/``check``
    in seconds.  Each pass also opens a span on the installed tracer
    (:mod:`repro.obs`), so ``--trace``/``--profile`` see the same phases
    the timings dict reports.
    """
    timings: dict[str, float] = {}
    with timed_span("parse", timings):
        program = parse_program(source)
    with timed_span("resolve", timings):
        info = resolve_program(program)
    with timed_span("typecheck", timings):
        typecheck_program(info)
    start = time.perf_counter()
    # SJavaChecker opens its own "lattice_build" and "check" spans.
    report = SJavaChecker(info).run()
    timings["check"] = time.perf_counter() - start
    return report, timings


def check_source_payload(source: str, *, file: Optional[str] = None) -> dict:
    """Check one source and return a protocol payload (``check`` on
    success, ``error`` on front-end failure).  This is the unit of work
    shipped to pool workers, so it must stay a module-level function
    (picklable) returning plain dicts."""
    start = time.perf_counter()
    try:
        report, timings = timed_check(source)
    except _FRONT_END_ERRORS as exc:
        return protocol.error_payload(str(exc), file=file)
    return protocol.check_payload(
        report,
        file=file,
        elapsed_seconds=time.perf_counter() - start,
        timings=timings,
    )


def _check_path_worker(path: str) -> dict:
    try:
        source = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        return protocol.error_payload(str(exc), file=path, error="io")
    return check_source_payload(source, file=path)


@dataclass
class TaskFailure:
    """A task the :class:`ResilientPool` gave up on.

    ``reason`` is ``timeout`` (wall clock exceeded), ``worker-crash``
    (the process pool broke underneath the task) or ``error`` (the task
    function raised); ``attempts`` counts how many times it ran.
    """

    reason: str
    message: str
    attempts: int


@dataclass
class ResilientPool:
    """Generic process fan-out that survives the faults it provokes.

    Runs a picklable module-level function over a sequence of payloads
    with a per-task wall-clock timeout.  A worker crash
    (:class:`BrokenProcessPool` — e.g. a SIGKILLed worker) rebuilds the
    pool and retries the in-flight task with capped, decorrelated-jitter
    exponential backoff; tasks that keep failing are reported as
    :class:`TaskFailure`, never silently dropped.  Fault-injection
    campaigns fan their shards out through this.

    Every source of nondeterminism is injectable: ``sleep`` (tests
    record the schedule instead of waiting), ``rng`` (a seeded
    ``random.Random`` makes the jitter schedule byte-reproducible) and
    ``clock`` (retry-round timestamps).  A campaign seeds ``rng`` from
    its own seed, so two runs of the same campaign back off
    identically.

    ``max_workers <= 1`` degrades to plain in-process execution (no
    subprocesses, no timeout enforcement), the mode used by tests.
    """

    max_workers: int = 1
    task_timeout: Optional[float] = None
    max_retries: int = 2
    backoff_base: float = 0.25
    backoff_cap: float = 4.0
    #: Injection point for tests; production code sleeps for real.
    sleep: Callable[[float], None] = time.sleep
    #: Jitter source; seed it (``random.Random(seed)``) to pin the
    #: backoff schedule exactly.
    rng: random.Random = field(default_factory=random.Random)
    #: Monotonic clock for retry-round timing (injectable for tests).
    clock: Callable[[], float] = time.monotonic
    _delay: float = field(default=0.0, init=False)
    #: Failure counts per payload index for the *current* :meth:`run`;
    #: read through :meth:`attempts_of` as results stream out.
    _attempts: dict = field(default_factory=dict)

    def attempts_of(self, index: int) -> int:
        """How many times payload ``index`` has run so far (≥ 1 once its
        result has been yielded).  Valid for the most recent / ongoing
        :meth:`run`; campaigns persist this into their manifest."""
        return self._attempts.get(index, 0) + 1

    def run(
        self, fn: Callable[[dict], dict], payloads: Sequence[dict]
    ) -> Iterator[tuple[int, dict | TaskFailure]]:
        """Yield ``(payload_index, result_or_failure)`` as tasks finish.

        Results stream out as soon as each task settles, so callers can
        checkpoint incrementally; every payload yields exactly once.
        """
        self._attempts = {}
        self._delay = 0.0
        if self.max_workers <= 1:
            yield from self._run_inline(fn, payloads)
            return
        attempts = self._attempts
        attempts.update({index: 0 for index in range(len(payloads))})
        pending = list(range(len(payloads)))
        round_number = 0
        while pending:
            if round_number:
                self.sleep(self._next_backoff())
            round_number += 1
            batch, pending = pending, []
            executor = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.max_workers
            )
            broken = False
            try:
                futures = [
                    (index, executor.submit(fn, payloads[index]))
                    for index in batch
                ]
                for index, future in futures:
                    if broken:
                        # The pool died under an earlier task; these
                        # never ran, so requeue without charging a retry.
                        pending.append(index)
                        continue
                    try:
                        yield index, future.result(timeout=self.task_timeout)
                    except concurrent.futures.TimeoutError:
                        future.cancel()
                        outcome = self._register_failure(
                            attempts, index, pending, "timeout",
                            f"task exceeded {self.task_timeout:.1f}s",
                        )
                        if outcome is not None:
                            yield index, outcome
                    except BrokenProcessPool as exc:
                        broken = True
                        outcome = self._register_failure(
                            attempts, index, pending, "worker-crash",
                            str(exc) or "worker process died",
                        )
                        if outcome is not None:
                            yield index, outcome
                    except Exception as exc:
                        outcome = self._register_failure(
                            attempts, index, pending, "error", str(exc)
                        )
                        if outcome is not None:
                            yield index, outcome
            finally:
                executor.shutdown(wait=False, cancel_futures=True)

    def _run_inline(
        self, fn: Callable[[dict], dict], payloads: Sequence[dict]
    ) -> Iterator[tuple[int, dict | TaskFailure]]:
        for index, payload in enumerate(payloads):
            try:
                yield index, fn(payload)
            except Exception as exc:
                yield index, TaskFailure(
                    reason="error", message=str(exc), attempts=1
                )

    def _register_failure(
        self,
        attempts: dict[int, int],
        index: int,
        pending: list[int],
        reason: str,
        message: str,
    ) -> Optional[TaskFailure]:
        """Requeue the task, or give up and return its failure record."""
        attempts[index] += 1
        if attempts[index] <= self.max_retries:
            pending.append(index)
            return None
        return TaskFailure(
            reason=reason, message=message, attempts=attempts[index]
        )

    def _next_backoff(self) -> float:
        """Capped exponential backoff with decorrelated jitter: each
        delay is drawn uniformly from ``[base, 3 × previous]`` and
        capped, so retry rounds desynchronize (a fleet of crashed
        shards does not stampede the rebuilt pool in lockstep) while
        the expectation still grows geometrically toward the cap."""
        previous = self._delay if self._delay > 0.0 else self.backoff_base
        self._delay = min(
            self.backoff_cap,
            self.rng.uniform(self.backoff_base, previous * 3.0),
        )
        return self._delay


@dataclass
class BatchResult:
    """Outcome of checking one file in a batch."""

    path: str
    verdict: str  # one of PASS/FAIL/FRONT_END_ERROR/TIMEOUT/ERROR
    elapsed_seconds: float
    cached: bool = False
    error_count: int = 0
    message: str = ""
    payload: Optional[dict] = None  # the protocol payload, when one exists

    @property
    def ok(self) -> bool:
        return self.verdict == PASS

    def to_dict(self) -> dict:
        entry = {
            "path": self.path,
            "verdict": self.verdict,
            "elapsed_seconds": self.elapsed_seconds,
            "cached": self.cached,
            "error_count": self.error_count,
        }
        if self.message:
            entry["message"] = self.message
        if self.payload is not None:
            entry["payload"] = self.payload
        return entry


@dataclass
class CheckerPool:
    """Batch front end over the checker: cache, fan-out, timeouts.

    ``task_timeout`` (seconds) bounds each file's check when running
    with worker processes; a timed-out task is abandoned (its worker is
    left to finish in the background and the executor reaps it on
    shutdown).  In-process mode cannot interrupt a check, so the timeout
    is not enforced there.
    """

    max_workers: int = 1
    task_timeout: Optional[float] = None
    cache: Optional[ResultCache] = None
    #: When set, task queue-wait and execution times are recorded into
    #: ``repro_pool_queue_seconds`` / ``repro_pool_exec_seconds``
    #: histograms (the daemon passes its registry in).
    metrics: Optional[MetricsRegistry] = None
    _stats: dict = field(default_factory=lambda: {"checked": 0, "cached": 0})

    def _observe(self, name: str, seconds: float) -> None:
        if self.metrics is not None:
            self.metrics.histogram(
                name, "pool task latency in seconds"
            ).observe(seconds)

    # -- public API ------------------------------------------------------

    def check_paths(self, paths: Sequence[str | Path]) -> list[BatchResult]:
        """Check many files; results come back in input order."""
        sources: list[tuple[str, Optional[str]]] = []
        for path in paths:
            try:
                sources.append(
                    (str(path), Path(path).read_text(encoding="utf-8"))
                )
            except OSError:
                sources.append((str(path), None))
        results: list[Optional[BatchResult]] = [None] * len(sources)
        misses: list[tuple[int, str, str]] = []  # (index, path, source)

        for index, (path, source) in enumerate(sources):
            if source is None:
                results[index] = BatchResult(
                    path=path, verdict=ERROR, elapsed_seconds=0.0,
                    message=f"cannot read {path}",
                )
                continue
            cached = self.cache.get(source) if self.cache is not None else None
            if cached is not None:
                self._stats["cached"] += 1
                results[index] = BatchResult(
                    path=path,
                    verdict=PASS if cached.self_stabilizing else FAIL,
                    elapsed_seconds=0.0,
                    cached=True,
                    error_count=len(cached.errors),
                    payload=protocol.check_payload(
                        cached, file=path, cached=True
                    ),
                )
            else:
                misses.append((index, path, source))

        for index, payload in self._execute(misses):
            path, source = sources[index][0], sources[index][1]
            results[index] = self._absorb(path, source, payload)

        return [r for r in results if r is not None]

    def check_source(self, source: str, *, file: str = "<memory>") -> BatchResult:
        """Single-source entry point used by the daemon."""
        cached = self.cache.get(source) if self.cache is not None else None
        if cached is not None:
            self._stats["cached"] += 1
            return BatchResult(
                path=file,
                verdict=PASS if cached.self_stabilizing else FAIL,
                elapsed_seconds=0.0,
                cached=True,
                error_count=len(cached.errors),
                payload=protocol.check_payload(cached, file=file, cached=True),
            )
        start = time.perf_counter()
        payload = check_source_payload(source, file=file)
        elapsed = time.perf_counter() - start
        self._observe("repro_pool_exec_seconds", elapsed)
        return self._absorb(file, source, payload, elapsed=elapsed)

    def stats(self) -> dict:
        stats = dict(self._stats)
        if self.cache is not None:
            stats["cache"] = self.cache.stats.to_dict()
        return stats

    # -- execution -------------------------------------------------------

    def _execute(
        self, misses: list[tuple[int, str, str]]
    ) -> Iterable[tuple[int, dict]]:
        if not misses:
            return
        if self.max_workers <= 1:
            for index, path, source in misses:
                start = time.perf_counter()
                payload = check_source_payload(source, file=path)
                self._observe(
                    "repro_pool_exec_seconds", time.perf_counter() - start
                )
                yield index, payload
            return
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=self.max_workers
        ) as executor:
            submitted = time.perf_counter()
            futures = [
                (index, path, executor.submit(_check_path_worker, path))
                for index, path, _ in misses
            ]
            for index, path, future in futures:
                try:
                    payload = future.result(timeout=self.task_timeout)
                    settle = time.perf_counter() - submitted
                    exec_seconds = float(payload.get("elapsed_seconds", 0.0))
                    self._observe("repro_pool_exec_seconds", exec_seconds)
                    self._observe(
                        "repro_pool_queue_seconds",
                        max(0.0, settle - exec_seconds),
                    )
                    yield index, payload
                except concurrent.futures.TimeoutError:
                    future.cancel()
                    yield index, protocol.error_payload(
                        f"check exceeded {self.task_timeout:.1f}s",
                        file=path,
                        error="timeout",
                    )
                except Exception as exc:  # worker crash, broken pool
                    yield index, protocol.error_payload(
                        str(exc), file=path, error="worker"
                    )

    def _absorb(
        self,
        path: str,
        source: Optional[str],
        payload: dict,
        *,
        elapsed: Optional[float] = None,
    ) -> BatchResult:
        """Turn a worker payload into a BatchResult, feeding the cache."""
        self._stats["checked"] += 1
        if payload.get("kind") == "check":
            report = protocol.report_from_payload(payload)
            if self.cache is not None and source is not None:
                self.cache.put(source, report)
            return BatchResult(
                path=path,
                verdict=PASS if report.self_stabilizing else FAIL,
                elapsed_seconds=(
                    elapsed if elapsed is not None
                    else float(payload.get("elapsed_seconds", 0.0))
                ),
                error_count=len(report.errors),
                payload=payload,
            )
        error_kind = payload.get("error", "error")
        verdict = {
            "front-end": FRONT_END_ERROR,
            "timeout": TIMEOUT,
        }.get(error_kind, ERROR)
        return BatchResult(
            path=path,
            verdict=verdict,
            elapsed_seconds=elapsed if elapsed is not None else 0.0,
            message=str(payload.get("message", "")),
            payload=payload,
        )
