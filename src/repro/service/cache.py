"""Content-addressed result cache for the checking service.

The key of a cache entry is the SHA-256 of the *source text* plus the
checker fingerprint (package version + protocol version), so a report is
reused only for byte-identical input checked by the same checker — an
unchanged file re-checks in O(hash) instead of re-running the front end
and all analyses (cf. bounding re-verification cost under repeated
checking, Tekken Valapil & Kulkarni).

Two layers:

* an in-memory LRU (bounded by ``max_entries``), for the daemon and for
  batch runs within one process;
* an optional on-disk store (one JSON file per digest under
  ``~/.cache/repro/`` by default, override with ``$REPRO_CACHE_DIR``),
  which survives process restarts and is shared by worker processes.

Disk entries embed the fingerprint; entries written by a different
checker version are treated as misses.  All disk I/O failures degrade to
cache misses — the cache must never make checking less reliable.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

import repro
from repro.chaos.injector import chaos_recovery, get_chaos
from repro.core.checker import CheckReport
from repro.service.protocol import PROTOCOL_VERSION

#: Bump when the on-disk entry layout changes.
CACHE_SCHEMA = 1


def checker_fingerprint() -> str:
    """Identifies the checker that produced a cached report."""
    return f"repro-{repro.__version__}/proto-{PROTOCOL_VERSION}/schema-{CACHE_SCHEMA}"


def source_key(source: str) -> str:
    """Content address of one source text under the current checker."""
    digest = hashlib.sha256()
    digest.update(checker_fingerprint().encode("utf-8"))
    digest.update(b"\x00")
    digest.update(source.encode("utf-8"))
    return digest.hexdigest()


def default_disk_dir() -> Path:
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro"


@dataclass
class CacheStats:
    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    def to_dict(self) -> dict:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
        }


@dataclass
class ResultCache:
    """LRU of :class:`CheckReport` keyed by source digest, with an
    optional disk tier.  ``disk_dir=None`` keeps the cache memory-only."""

    max_entries: int = 512
    disk_dir: Optional[Path] = None
    stats: CacheStats = field(default_factory=CacheStats)
    _memory: "OrderedDict[str, CheckReport]" = field(default_factory=OrderedDict)
    #: Serialized size per memory-tier entry, for occupancy telemetry.
    _sizes: dict = field(default_factory=dict)

    @classmethod
    def with_default_disk(cls, max_entries: int = 512) -> "ResultCache":
        return cls(max_entries=max_entries, disk_dir=default_disk_dir())

    # -- lookup ----------------------------------------------------------

    def get(self, source: str) -> Optional[CheckReport]:
        key = source_key(source)
        report = self._memory.get(key)
        if report is not None:
            self._memory.move_to_end(key)
            self.stats.memory_hits += 1
            return report
        report = self._disk_get(key)
        if report is not None:
            self._remember(key, report)
            self.stats.disk_hits += 1
            return report
        self.stats.misses += 1
        return None

    def put(self, source: str, report: CheckReport) -> None:
        key = source_key(source)
        self._remember(key, report)
        self._disk_put(key, report)
        self.stats.stores += 1

    def __len__(self) -> int:
        return len(self._memory)

    # -- memory tier -----------------------------------------------------

    def _remember(self, key: str, report: CheckReport) -> None:
        self._memory[key] = report
        self._memory.move_to_end(key)
        try:
            self._sizes[key] = len(json.dumps(report.to_dict()))
        except (TypeError, ValueError):  # unserializable: count entry only
            self._sizes[key] = 0
        while len(self._memory) > self.max_entries:
            evicted, _ = self._memory.popitem(last=False)
            self._sizes.pop(evicted, None)
            self.stats.evictions += 1

    def occupancy(self) -> dict:
        """Entries and serialized bytes per cache tier — the shape the
        resource monitor's ``watch_cache`` suppliers, the daemon's
        ``/healthz`` document, and the ``repro_cache_*`` occupancy
        gauges report.  Disk-tier I/O errors degrade to zeros: telemetry
        must never make checking less reliable."""
        tiers = {
            "memory": {
                "entries": len(self._memory),
                "bytes": sum(self._sizes.values()),
            },
        }
        if self.disk_dir is not None:
            entries = 0
            total = 0
            try:
                for path in self.disk_dir.glob("*.json"):
                    try:
                        total += path.stat().st_size
                    except OSError:
                        continue
                    entries += 1
            except OSError:
                pass
            tiers["disk"] = {"entries": entries, "bytes": total}
        return tiers

    # -- disk tier -------------------------------------------------------

    def _entry_path(self, key: str) -> Path:
        assert self.disk_dir is not None
        return self.disk_dir / f"{key}.json"

    def _disk_get(self, key: str) -> Optional[CheckReport]:
        if self.disk_dir is None:
            return None
        path = self._entry_path(key)
        get_chaos().slow_point("cache.read", key)
        try:
            raw = path.read_text(encoding="utf-8")
        except OSError:
            return None
        try:
            entry = json.loads(raw)
            if not isinstance(entry, dict):
                raise ValueError("cache entry must be a JSON object")
            if entry.get("fingerprint") != checker_fingerprint():
                # A different checker version wrote this (or the entry
                # predates fingerprinting): a miss, but not garbage —
                # leave it for whichever version owns it.
                return None
            report_data = entry["report"]
            # CheckReport.from_dict is lenient (missing keys default to
            # empty), so a wrong-shaped report would deserialize as a
            # falsely *clean* verdict — require the real shape first.
            if not isinstance(report_data, dict) or not (
                {"diagnostics", "checked_scope"} <= report_data.keys()
            ):
                raise ValueError("malformed cache entry report")
            return CheckReport.from_dict(report_data)
        except (ValueError, KeyError, TypeError, AttributeError):
            # Truncated/zero-byte/malformed JSON, or a structurally
            # broken report: treat as a miss and quarantine the file so
            # the slot heals on the next store instead of failing every
            # lookup.
            try:
                path.unlink(missing_ok=True)
            except OSError:
                pass
            chaos_recovery(
                "cache-entry-quarantined", "cache.entry", key=key
            )
            return None

    def _disk_put(self, key: str, report: CheckReport) -> None:
        if self.disk_dir is None:
            return
        entry = {
            "fingerprint": checker_fingerprint(),
            "version": PROTOCOL_VERSION,
            "report": report.to_dict(),
        }
        path = self._entry_path(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        chaos = get_chaos()
        chaos.slow_point("cache.write", key)
        blob = json.dumps(entry).encode("utf-8")
        # A planned cache-corrupt fault truncates the entry *after* the
        # atomic rename — the bit-rot / torn-page case the quarantine
        # path in _disk_get exists for.
        corrupted = chaos.corrupt_bytes("cache.entry", key, blob)
        try:
            self.disk_dir.mkdir(parents=True, exist_ok=True)
            tmp.write_bytes(blob if corrupted is None else corrupted)
            os.replace(tmp, path)  # atomic: readers never see partial JSON
        except OSError:
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
