"""Versioned JSON wire protocol for the checking service.

Every payload the service emits — ``repro check --json``, ``repro batch
--json``, daemon responses — is a JSON object carrying a ``version``
field so clients can reject envelopes they do not understand.  The
schema is documented in ``docs/SERVICE.md``; :func:`validate_check_payload`
is the executable version of that document.

Payload kinds:

* ``check`` — verdict of one :class:`~repro.core.checker.CheckReport`
  (:func:`check_payload` / :func:`report_from_payload`);
* ``infer`` — an inference run summary (:func:`infer_payload`);
* ``error`` — a front-end or service failure (:func:`error_payload`);
* ``campaign`` — the aggregate report of a fault-injection campaign
  (:func:`campaign_payload`; schema in ``docs/ROBUSTNESS.md``,
  enforced by :func:`validate_campaign_payload`).

Serialization is newline-delimited: :func:`dumps` produces exactly one
line (no interior newlines), which is what the daemon speaks over its
Unix socket.

Daemon **requests** may carry one optional envelope field on top of the
per-op fields: ``trace``, a W3C-traceparent-style string
(``"00-<trace_id>-<span_id>-01"``, see :mod:`repro.obs.propagate`)
naming the calling client's active span.  The daemon then records that
span as the remote parent of its ``op.<name>`` span, stitching daemon
work into the client's distributed trace.  The field is additive and
optional: requests without it are handled exactly as before (old
clients stay byte-compatible), and a malformed value is answered with
an ``ok: false`` response, never a dropped connection.
"""

from __future__ import annotations

import json
from typing import Optional

from repro.core.checker import CheckReport
from repro.core.errors import Check, Severity

#: Bump the minor version for additive changes, the major version for
#: breaking ones.  Cache entries embed this, so any bump invalidates the
#: on-disk result store.
PROTOCOL_VERSION = "1.0"


class ProtocolError(ValueError):
    """A payload violated the documented schema."""


def dumps(payload: dict) -> str:
    """Compact, single-line, key-sorted JSON — the wire form."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def loads(line: str) -> dict:
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"invalid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError("payload must be a JSON object")
    return payload


# ---------------------------------------------------------------------------
# Payload constructors
# ---------------------------------------------------------------------------


def check_payload(
    report: CheckReport,
    *,
    file: Optional[str] = None,
    elapsed_seconds: Optional[float] = None,
    timings: Optional[dict] = None,
    cached: bool = False,
) -> dict:
    payload = {
        "version": PROTOCOL_VERSION,
        "kind": "check",
        "self_stabilizing": report.self_stabilizing,
        "error_count": len(report.errors),
        "warning_count": len(report.warnings),
        "report": report.to_dict(),
        "cached": cached,
    }
    if file is not None:
        payload["file"] = file
    if elapsed_seconds is not None:
        payload["elapsed_seconds"] = elapsed_seconds
    if timings is not None:
        payload["timings"] = timings
    return payload


def report_from_payload(payload: dict) -> CheckReport:
    validate_check_payload(payload)
    return CheckReport.from_dict(payload["report"])


def infer_payload(
    summary: dict,
    *,
    file: Optional[str] = None,
    timings: Optional[dict] = None,
) -> dict:
    """Wrap :meth:`InferenceResult.summary_dict` in a versioned envelope."""
    payload = {"version": PROTOCOL_VERSION, "kind": "infer", **summary}
    if file is not None:
        payload["file"] = file
    if timings is not None:
        payload["timings"] = timings
    return payload


def campaign_payload(summary: dict) -> dict:
    """Wrap a campaign report (``CampaignReport.to_dict``) in the
    versioned envelope.  The summary stays a plain dict so this module
    never imports the runtime layer."""
    return {"version": PROTOCOL_VERSION, "kind": "campaign", **summary}


def chaos_payload(summary: dict) -> dict:
    """Wrap a chaos report (:func:`repro.chaos.run_campaign_oracle` /
    ``run_batch_oracle`` output) in the versioned envelope.  Plain dict
    in, so this module never imports the chaos layer."""
    return {"version": PROTOCOL_VERSION, "kind": "chaos", **summary}


def bench_payload(document: dict) -> dict:
    """Wrap a bench document (:func:`repro.obs.bench.bench_payload`,
    already schema-versioned on its own) in the versioned envelope, so
    ``repro bench --json`` speaks the same protocol as every other
    ``--json`` command."""
    return {"version": PROTOCOL_VERSION, **document}


def validate_bench_payload(payload: dict) -> None:
    """Raise :class:`ProtocolError` unless ``payload`` is a well-formed
    ``bench`` envelope (the inner document is checked by
    :func:`repro.obs.bench.validate_bench`)."""
    from repro.obs.bench import BenchError, validate_bench

    validate_version(payload)
    _require(payload.get("kind") == "bench",
             f"expected kind 'bench', got {payload.get('kind')!r}")
    try:
        validate_bench({k: v for k, v in payload.items() if k != "version"})
    except BenchError as exc:
        raise ProtocolError(str(exc)) from exc


def error_payload(
    message: str, *, file: Optional[str] = None, error: str = "front-end"
) -> dict:
    """A failure that produced no report (syntax/resolve/type errors,
    worker crashes, timeouts)."""
    payload = {
        "version": PROTOCOL_VERSION,
        "kind": "error",
        "error": error,
        "message": message,
    }
    if file is not None:
        payload["file"] = file
    return payload


# ---------------------------------------------------------------------------
# Validation
# ---------------------------------------------------------------------------

_SEVERITIES = {s.value for s in Severity}
_CHECKS = {c.value for c in Check}


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ProtocolError(message)


def validate_version(payload: dict) -> None:
    version = payload.get("version")
    _require(isinstance(version, str), "missing protocol version")
    major = version.split(".", 1)[0]
    _require(
        major == PROTOCOL_VERSION.split(".", 1)[0],
        f"unsupported protocol version {version!r} "
        f"(speaking {PROTOCOL_VERSION})",
    )


def validate_diagnostic(entry: dict) -> None:
    _require(isinstance(entry, dict), "diagnostic must be an object")
    _require(entry.get("severity") in _SEVERITIES,
             f"bad severity {entry.get('severity')!r}")
    _require(entry.get("check") in _CHECKS,
             f"bad check kind {entry.get('check')!r}")
    _require(isinstance(entry.get("message"), str), "diagnostic needs a message")
    for field in ("line", "col"):
        _require(isinstance(entry.get(field), int), f"diagnostic needs int {field}")
    _require(isinstance(entry.get("context"), str), "diagnostic needs context")


def validate_check_payload(payload: dict) -> None:
    """Raise :class:`ProtocolError` unless ``payload`` is a well-formed
    ``check`` envelope (the schema in ``docs/SERVICE.md``)."""
    validate_version(payload)
    _require(payload.get("kind") == "check",
             f"expected kind 'check', got {payload.get('kind')!r}")
    _require(isinstance(payload.get("self_stabilizing"), bool),
             "self_stabilizing must be a bool")
    for field in ("error_count", "warning_count"):
        _require(isinstance(payload.get(field), int), f"{field} must be an int")
    report = payload.get("report")
    _require(isinstance(report, dict), "missing report object")
    _require(isinstance(report.get("self_stabilizing"), bool),
             "report.self_stabilizing must be a bool")
    diagnostics = report.get("diagnostics")
    _require(isinstance(diagnostics, list), "report.diagnostics must be a list")
    for entry in diagnostics:
        validate_diagnostic(entry)
    _require(
        payload["error_count"]
        == sum(1 for d in diagnostics if d["severity"] == "error"),
        "error_count disagrees with diagnostics",
    )
    _require(
        payload["self_stabilizing"] == (payload["error_count"] == 0),
        "self_stabilizing disagrees with error_count",
    )
    scope = report.get("checked_scope")
    _require(isinstance(scope, list), "report.checked_scope must be a list")
    for pair in scope:
        _require(
            isinstance(pair, list) and len(pair) == 2
            and all(isinstance(p, str) for p in pair),
            "checked_scope entries must be [class, method] string pairs",
        )


_CAMPAIGN_MODES = ("exhaustive", "stratified", "uniform")
_CAMPAIGN_APP_COUNTS = (
    "sites_total", "trials", "injected", "masked", "recovered",
    "diverged", "timeout", "not_injected",
)
_CAMPAIGN_APP_RATES = ("mask_rate", "divergence_rate", "timeout_rate")


def validate_campaign_app(entry: dict) -> None:
    _require(isinstance(entry, dict), "campaign app entry must be an object")
    _require(isinstance(entry.get("app"), str), "campaign app needs a name")
    for field in _CAMPAIGN_APP_COUNTS:
        _require(
            isinstance(entry.get(field), int) and entry[field] >= 0,
            f"campaign app {field} must be a non-negative int",
        )
    _require(
        entry["injected"] + entry["not_injected"] == entry["trials"],
        "injected + not_injected must equal trials",
    )
    _require(
        entry["masked"] + entry["recovered"] + entry["diverged"]
        + entry["timeout"] == entry["injected"],
        "per-verdict counts must sum to injected",
    )
    for field in _CAMPAIGN_APP_RATES:
        value = entry.get(field)
        _require(
            isinstance(value, (int, float)) and 0.0 <= value <= 1.0,
            f"campaign app {field} must be a rate in [0, 1]",
        )
    histogram = entry.get("recovery_histogram")
    _require(isinstance(histogram, dict), "recovery_histogram must be an object")
    for bucket, count in histogram.items():
        _require(
            isinstance(bucket, str) and isinstance(count, int) and count >= 0,
            "recovery_histogram maps bucket strings to counts",
        )
    for field in ("recovery_iterations_p50", "recovery_iterations_p95"):
        value = entry.get(field)
        _require(
            value is None or isinstance(value, int),
            f"{field} must be an int or null",
        )


def validate_campaign_payload(payload: dict) -> None:
    """Raise :class:`ProtocolError` unless ``payload`` is a well-formed
    ``campaign`` envelope (the schema in ``docs/ROBUSTNESS.md``)."""
    validate_version(payload)
    _require(payload.get("kind") == "campaign",
             f"expected kind 'campaign', got {payload.get('kind')!r}")
    _require(payload.get("mode") in _CAMPAIGN_MODES,
             f"bad campaign mode {payload.get('mode')!r}")
    _require(isinstance(payload.get("seed"), int), "campaign needs an int seed")
    _require(isinstance(payload.get("complete"), bool),
             "campaign needs a complete flag")
    shards = payload.get("shards")
    _require(isinstance(shards, dict), "campaign needs a shards object")
    for field in ("planned", "completed", "infra_failed"):
        _require(
            isinstance(shards.get(field), int) and shards[field] >= 0,
            f"shards.{field} must be a non-negative int",
        )
    apps = payload.get("apps")
    _require(isinstance(apps, list) and apps, "campaign needs app entries")
    for entry in apps:
        validate_campaign_app(entry)
