"""Command-line interface for the SJava reproduction.

Subcommands mirror the workflow of the paper's tool:

* ``repro check FILE``      — run the full self-stabilization checker
  (``--json`` emits the versioned protocol payload);
* ``repro infer FILE``      — infer location annotations (SInfer / naive)
  and print the annotated program (``--json`` emits the summary);
* ``repro run FILE``        — execute the program on synthetic inputs;
* ``repro inject FILE``     — run fault-injection trials and report
  recovery distances (exit 1 when any trial diverged);
* ``repro campaign``        — parallel, resumable fault-injection sweep
  across the registered apps (exhaustive/stratified/uniform site plans,
  per-shard checkpointing, step-budget watchdog; see
  ``docs/ROBUSTNESS.md``);
* ``repro chaos``           — run a campaign (or batch) under seeded,
  deterministic infrastructure fault injection and assert the
  convergence oracle: chaotic statistics must be identical to the
  fault-free run (``docs/ROBUSTNESS.md``);
* ``repro lattices FILE``   — render the program's location lattices;
* ``repro batch DIR...``    — check many files via the cached, parallel
  service (per-file verdicts + timings);
* ``repro serve``           — long-lived checking daemon on a Unix
  socket, speaking newline-delimited JSON (``--http-port`` adds the
  HTTP observability plane: /metrics, /healthz, /events);
* ``repro metrics``         — render an observability snapshot from a
  JSONL trace file or a running daemon (``--tree`` prints the span
  forest, grouping multi-process traces per pid);
* ``repro events``          — tail/filter a JSONL structured event
  stream written by ``--events`` (severity floor, name substring,
  trace/span correlation; ``--follow`` streams live appends);
* ``repro report``          — render the deterministic single-file HTML
  dashboard (convergence curves, shard timeline, events, bench trend);
* ``repro bench``           — run the declarative benchmark suite and
  write a schema-versioned ``BENCH_*.json`` (``--compare`` is the
  regression gate, ``--report`` a self-time table over a JSONL trace;
  see ``docs/BENCHMARKS.md``).

``check``/``infer``/``inject``/``batch``/``campaign``/``bench`` accept
``--trace FILE`` (write a JSON-lines trace of every span), ``--events
FILE`` (write the structured event stream), and ``--profile`` (print
the span tree with per-phase percentages to stderr); the global
``--log-level {debug,info,warn,error}`` gates event emission and
bridges events into stdlib ``logging``.  A ``campaign --trace`` is
**distributed**: pool workers write per-pid trace files next to the
driver's, and the driver merges them on exit into one causally-linked
multi-process trace; see ``docs/OBSERVABILITY.md``.

The batch/daemon/JSON workflow is documented in ``docs/SERVICE.md``.
Installed as ``repro`` (console script) or usable as
``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import logging
import os
import sys
import time
from pathlib import Path

from repro.core.checker import SJavaChecker
from repro.core.environment import LocationWorld
from repro.core.errors import DiagnosticSink
from repro.infer import infer_annotations, lattice_metrics
from repro.infer.render import render_lattice
from repro.lang import parse_program, resolve_program, typecheck_program
from repro.lang.lexer import LexError
from repro.lang.parser import ParseError
from repro.lang.symtab import ProgramInfo, ResolveError
from repro.lang.typecheck import JavaTypeError
from repro.obs import (
    LEVELS,
    EventError,
    EventLog,
    JsonlEventWriter,
    JsonlTraceWriter,
    LoggingBridge,
    ProfileError,
    RingBufferSink,
    TraceError,
    Tracer,
    aggregate_trace,
    filter_events,
    follow_events,
    format_aggregate_table,
    format_event,
    format_forest,
    format_tree,
    get_tracer,
    installed_tracer,
    maybe_exporter,
    merge_traces,
    read_events,
    trace_root_seconds,
    validate_trace,
    write_report,
)
from repro.obs.events import PY_LEVELS, installed_event_log
from repro.runtime import Interpreter, RuntimeOptions, StabilizationExperiment
from repro.runtime.devices import SyntheticDevice
from repro.runtime.stabilization import recovery_histogram
from repro.service import protocol
from repro.service.cache import ResultCache, default_disk_dir
from repro.service.pool import CheckerPool, timed_check


def _load(path: str) -> ProgramInfo:
    source = Path(path).read_text(encoding="utf-8")
    tracer = get_tracer()
    with tracer.span("parse"):
        program = parse_program(source)
    with tracer.span("resolve"):
        info = resolve_program(program)
    with tracer.span("typecheck"):
        typecheck_program(info)
    return info


def _add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace", metavar="FILE", default=None,
                        help="write a JSON-lines span trace to FILE")
    parser.add_argument("--events", metavar="FILE", default=None,
                        help="write the structured event stream to FILE "
                             "(JSON lines; level set by --log-level)")
    parser.add_argument("--profile", action="store_true",
                        help="print the span tree with per-phase "
                             "percentages to stderr")
    parser.add_argument("--profile-json", metavar="FILE", default=None,
                        help="run a sampling profiler and write the "
                             "PROFILE json payload to FILE")
    parser.add_argument("--profile-interval", type=float, default=None,
                        metavar="SECONDS",
                        help="sampling interval for --profile-json "
                             "(default: 0.005)")


@contextlib.contextmanager
def _event_logged(args: argparse.Namespace):
    """Install an :class:`EventLog` when ``--events`` or the global
    ``--log-level`` ask for one; otherwise the no-op log stays and
    instrumented code pays ~nothing."""
    events_path = getattr(args, "events", None)
    log_level = getattr(args, "log_level", None)
    if not (events_path or log_level):
        yield
        return
    writer = JsonlEventWriter(events_path) if events_path else None
    sinks: list = [writer] if writer is not None else []
    if log_level:
        sinks.append(LoggingBridge())
    try:
        with installed_event_log(
            EventLog(level=log_level or "info", sinks=sinks)
        ):
            yield
    finally:
        if writer is not None:
            writer.close()
        if events_path:
            print(f"// events written to {events_path}", file=sys.stderr)


@contextlib.contextmanager
def _profiled(args: argparse.Namespace):
    """Run a command under a :class:`SamplingProfiler` when
    ``--profile-json`` asks for one; the payload lands in the named
    file on exit.  Otherwise the no-op profiler stays and the
    instrumented anchors pay ~nothing."""
    profile_path = getattr(args, "profile_json", None)
    if not profile_path:
        yield
        return
    from repro.obs.profile import (
        DEFAULT_INTERVAL,
        SamplingProfiler,
        installed_profiler,
        write_profile,
    )

    interval = getattr(args, "profile_interval", None)
    if interval is None:
        interval = DEFAULT_INTERVAL
    profiler = SamplingProfiler(interval_seconds=interval)
    try:
        with installed_profiler(profiler):
            with profiler:
                yield
    finally:
        out = write_profile(profiler.payload(), profile_path)
        print(
            f"// profile written to {out} "
            f"({profiler.sample_count} samples)",
            file=sys.stderr,
        )


@contextlib.contextmanager
def _observed(args: argparse.Namespace, root_name: str, **attrs):
    """Run a command under a tracer when ``--trace``/``--profile`` ask
    for one (and an event log when ``--events``/``--log-level`` do);
    otherwise the no-op tracer stays installed.  The event log is set up
    first, so events emitted inside the root span carry its ids."""
    with contextlib.ExitStack() as stack:
        stack.enter_context(_event_logged(args))
        stack.enter_context(_profiled(args))
        if not (getattr(args, "trace", None)
                or getattr(args, "profile", False)):
            with get_tracer().span(root_name, **attrs):
                yield
            return
        ring = RingBufferSink() if args.profile else None
        writer = JsonlTraceWriter(args.trace) if args.trace else None
        sinks = tuple(s for s in (ring, writer) if s is not None)
        try:
            with installed_tracer(Tracer(sinks=sinks)) as tracer:
                with tracer.span(root_name, **attrs):
                    yield
        finally:
            if writer is not None:
                writer.close()
            if ring is not None:
                for root in ring.roots:
                    print(format_tree(root), file=sys.stderr)
            if args.trace:
                print(f"// trace written to {args.trace}", file=sys.stderr)


def cmd_check(args: argparse.Namespace) -> int:
    with _observed(args, "repro.check", file=args.file):
        if args.json:
            source = Path(args.file).read_text(encoding="utf-8")
            start = time.perf_counter()
            report, timings = timed_check(source)
            payload = protocol.check_payload(
                report,
                file=args.file,
                elapsed_seconds=time.perf_counter() - start,
                timings=timings,
            )
            print(protocol.dumps(payload))
            return 0 if report.self_stabilizing else 1
        info = _load(args.file)
        report = SJavaChecker(info).run()
        print(report.format())
        return 0 if report.self_stabilizing else 1


def cmd_infer(args: argparse.Namespace) -> int:
    with _observed(args, "repro.infer", file=args.file, mode=args.mode):
        info = _load(args.file)
        result = infer_annotations(
            info, mode=args.mode, verify=not args.no_verify
        )
    if args.json:
        payload = protocol.infer_payload(
            result.summary_dict(),
            file=args.file,
            timings={
                **result.phase_seconds, "total": result.elapsed_seconds
            },
        )
        print(protocol.dumps(payload))
        return 0 if result.check_report is None or result.verified else 1
    if not args.quiet:
        print(result.annotated_source)
    summary = result.summary
    print(
        f"// inferred {summary.total_locations} locations, "
        f"{summary.total_paths} top-to-bottom paths, "
        f"{result.elapsed_seconds:.3f}s",
        file=sys.stderr,
    )
    if result.check_report is not None:
        verdict = "verified" if result.verified else "REJECTED"
        print(f"// checker: {verdict}", file=sys.stderr)
        if not result.verified:
            print(result.check_report.format(), file=sys.stderr)
            return 1
    return 0


def _device_factory(args: argparse.Namespace):
    def factory():
        return SyntheticDevice(
            seed=args.seed, limit=args.iterations * 64
        )

    return factory


def cmd_run(args: argparse.Namespace) -> int:
    info = _load(args.file)
    interp = Interpreter(
        info,
        _device_factory(args)(),
        options=RuntimeOptions(
            ignore_errors=args.ignore_errors, max_iterations=args.iterations
        ),
    )
    outputs = interp.run()
    for value in outputs:
        print(value)
    print(
        f"// {interp.iteration} iterations, {len(outputs)} outputs, "
        f"{len(interp.error_log)} ignored errors",
        file=sys.stderr,
    )
    return 0


def cmd_inject(args: argparse.Namespace) -> int:
    with _observed(args, "repro.inject", file=args.file,
                   trials=args.trials):
        info = _load(args.file)
        experiment = StabilizationExperiment(
            info,
            _device_factory(args),
            options=RuntimeOptions(
                ignore_errors=True, max_iterations=args.iterations
            ),
        )
        trials = experiment.run_trials(args.trials, seed=args.seed)
    corrupted = [t for t in trials if t.corrupted_output]
    recovered = [t for t in corrupted if not t.diverged]
    diverged = len(corrupted) - len(recovered)
    print(f"trials: {len(trials)}  corrupted: {len(corrupted)}  "
          f"diverged: {diverged}")
    histogram = recovery_histogram(recovered, bin_size=args.bin)
    for bucket, count in histogram.items():
        print(f"  {bucket:5d}-{bucket + args.bin - 1:5d} samples: {count}")
    # A diverged trial falsifies stabilization — that is a failing result.
    return 1 if diverged > 0 else 0


def cmd_campaign(args: argparse.Namespace) -> int:
    from repro.apps import APP_NAMES
    from repro.runtime.campaign import (
        CampaignConfig,
        CampaignError,
        CampaignRunner,
    )

    apps = (
        tuple(APP_NAMES) if args.apps == "all"
        else tuple(name.strip() for name in args.apps.split(",") if name.strip())
    )
    with contextlib.ExitStack() as stack:
        stack.enter_context(
            _observed(args, "repro.campaign", mode=args.mode, jobs=args.jobs)
        )
        status = _run_campaign(args, apps)
    # After the stack closes: the driver's trace writer is flushed and
    # closed, so the worker files can be folded in.
    _merge_worker_traces(args)
    return status


def _worker_trace_dir(args: argparse.Namespace) -> Path | None:
    """Where pool workers write their per-pid trace files: next to the
    driver's ``--trace`` file, as ``<trace>.workers/``."""
    trace = getattr(args, "trace", None)
    return Path(f"{trace}.workers") if trace else None


def _merge_worker_traces(args: argparse.Namespace) -> None:
    """Fold ``<trace>.workers/worker-<pid>.trace.jsonl`` files into the
    driver's trace file, in place, producing one causally-linked
    multi-process trace.  Must run after the driver's trace writer has
    closed (outside the ``_observed`` stack).  No worker files — tracing
    off, or an in-process run that opened none — is a silent no-op."""
    from repro.obs.propagate import WORKER_TRACE_GLOB

    worker_dir = _worker_trace_dir(args)
    if worker_dir is None or not worker_dir.is_dir():
        return
    workers = sorted(worker_dir.glob(WORKER_TRACE_GLOB))
    if not workers:
        return
    merge_traces(
        args.trace, worker_dir, output=args.trace, driver_pid=os.getpid()
    )
    print(
        f"// merged {len(workers)} worker trace file(s) into {args.trace}",
        file=sys.stderr,
    )


def _run_campaign(args: argparse.Namespace, apps: tuple) -> int:
    from repro.obs import global_registry
    from repro.obs.exporter import ExporterError
    from repro.runtime.campaign import (
        CampaignConfig,
        CampaignError,
        CampaignRunner,
    )

    try:
        config = CampaignConfig(
            apps=apps,
            mode=args.mode,
            trials=args.trials,
            strata=args.strata,
            max_sites=args.max_sites,
            iterations=args.iterations,
            burst=args.burst,
            seed=args.seed,
            shard_size=args.shard_size,
            step_budget_factor=args.step_budget_factor,
        )
        runner = CampaignRunner(
            config=config,
            checkpoint_path=Path(args.checkpoint) if args.checkpoint else None,
            max_workers=args.jobs,
            trace_dir=_worker_trace_dir(args),
            shard_timeout=args.shard_timeout,
            fresh=args.fresh,
            progress=lambda message: print(message, file=sys.stderr),
        )
        # Long sweeps are scrapable while they run: --http-port serves
        # the process-wide registry (shard/trial counters) plus a
        # liveness document.  NullExporter when the flag is absent.
        with maybe_exporter(
            getattr(args, "http_port", None), registry=global_registry()
        ) as exporter:
            if exporter.enabled:
                print(
                    f"// observability plane on "
                    f"http://127.0.0.1:{exporter.port} "
                    f"(/metrics /healthz)",
                    file=sys.stderr,
                )
            report = runner.run()
    except CampaignError as exc:
        print(f"campaign error: {exc}", file=sys.stderr)
        return 2
    except ExporterError as exc:
        print(f"campaign error: {exc}", file=sys.stderr)
        return 2
    payload = protocol.campaign_payload(report)
    if args.report:
        Path(args.report).write_text(
            protocol.dumps(payload) + "\n", encoding="utf-8"
        )
        print(f"// report written to {args.report}", file=sys.stderr)
    if args.json:
        print(protocol.dumps(payload))
    else:
        for entry in report["apps"]:
            print(
                f"{entry['app']:<16} {entry['trials']:4d} trials  "
                f"masked {entry['mask_rate']:6.1%}  "
                f"diverged {entry['divergence_rate']:6.1%}  "
                f"timeout {entry['timeout_rate']:6.1%}  "
                f"p95 recovery "
                f"{entry['recovery_iterations_p95'] if entry['recovery_iterations_p95'] is not None else '-'} it"
            )
        shards = report["shards"]
        print(
            f"// {shards['completed']}/{shards['planned']} shards completed, "
            f"{shards['infra_failed']} infra-failed, "
            f"complete={str(report['complete']).lower()}"
        )
    # An incomplete or infra-degraded sweep is a failing run: its
    # statistics do not cover the planned corruption space.
    if not report["complete"] or report["shards"]["infra_failed"] > 0:
        return 1
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    import shutil

    from repro.apps import all_app_names
    from repro.chaos import (
        ChaosConfig,
        ChaosError,
        parse_faults,
        run_batch_oracle,
        run_campaign_oracle,
    )
    from repro.runtime.campaign import CampaignConfig, CampaignError

    work_dir = Path(args.work_dir)
    state_dir = Path(args.state_dir) if args.state_dir else work_dir / "ledger"
    try:
        chaos_config = ChaosConfig(
            seed=args.seed,
            rate=args.rate,
            faults=parse_faults(args.faults),
            sites=tuple(
                prefix.strip() for prefix in (args.sites or "").split(",")
                if prefix.strip()
            ),
            state_dir=str(state_dir),
            max_fires=args.max_fires,
            hang_seconds=args.hang_seconds,
            slow_io_seconds=args.slow_io_seconds,
        )
    except ChaosError as exc:
        print(f"chaos error: {exc}", file=sys.stderr)
        return 2
    # The exactly-once ledger must start empty, or markers from a
    # previous invocation would suppress this run's planned faults.
    shutil.rmtree(state_dir, ignore_errors=True)
    progress = (lambda message: print(message, file=sys.stderr))
    with _observed(
        args, "repro.chaos",
        faults=",".join(chaos_config.faults), rate=args.rate,
    ):
        try:
            if args.batch:
                files = _collect_sj_files(args.batch)
                if not files:
                    print("chaos: no .sj files found", file=sys.stderr)
                    return 2
                result = run_batch_oracle(
                    [str(f) for f in files],
                    chaos_config,
                    cache_dir=work_dir / "cache",
                    progress=progress,
                )
            else:
                apps = (
                    tuple(all_app_names()) if args.apps == "all"
                    else tuple(
                        name.strip() for name in args.apps.split(",")
                        if name.strip()
                    )
                )
                config = CampaignConfig(
                    apps=apps,
                    mode=args.mode,
                    trials=args.trials,
                    strata=args.strata,
                    iterations=args.iterations,
                    burst=args.burst,
                    seed=args.seed,
                    shard_size=args.shard_size,
                    step_budget_factor=args.step_budget_factor,
                )
                result = run_campaign_oracle(
                    config,
                    chaos_config,
                    work_dir=work_dir,
                    max_workers=args.jobs,
                    shard_timeout=args.shard_timeout,
                    max_retries=args.max_retries,
                    progress=progress,
                )
        except CampaignError as exc:
            print(f"campaign error: {exc}", file=sys.stderr)
            return 2
    payload = protocol.chaos_payload(result)
    if args.report:
        Path(args.report).write_text(
            protocol.dumps(payload) + "\n", encoding="utf-8"
        )
        print(f"// chaos report written to {args.report}", file=sys.stderr)
    if args.json:
        print(protocol.dumps(payload))
    else:
        oracle = result["oracle"]
        faults = result["faults"]
        by_fault = ", ".join(
            f"{fault} {count}"
            for fault, count in faults["by_fault"].items()
        ) or "none"
        print(
            f"chaos oracle: {'HOLDS' if oracle['holds'] else 'VIOLATED'} "
            f"(identical={str(oracle['identical']).lower()}, "
            f"clean_complete={str(oracle['clean_complete']).lower()}, "
            f"chaos_complete={str(oracle['chaos_complete']).lower()}, "
            f"infra_failed={oracle['infra_failed']})"
        )
        print(f"// {faults['injected']} faults injected: {by_fault}")
    # A violated oracle means the harness lost, duplicated, or corrupted
    # work under infrastructure faults — a failing run.
    return 0 if result["oracle"]["holds"] else 1


def cmd_apps(args: argparse.Namespace) -> int:
    from repro.apps import app_catalog

    catalog = app_catalog(with_sites=not args.no_sites)
    if args.json:
        print(json.dumps(catalog, sort_keys=True))
        return 0
    for entry in catalog:
        sites = entry.get("sites")
        extent = (
            f"{entry['nodes']} nodes on {entry['topology']}, "
            f"{entry['scheduler']}, {entry['rounds']} rounds"
            if entry["kind"] == "distributed"
            else f"{entry['iterations']} iterations"
        )
        sites_text = f"  sites {sites:5d}" if sites is not None else ""
        print(
            f"{entry['name']:<18} {entry['kind']:<12}{sites_text}  "
            f"{extent}  devices: {', '.join(entry['devices'])}"
        )
    print(f"// {len(catalog)} registered apps", file=sys.stderr)
    return 0


def cmd_dist_run(args: argparse.Namespace) -> int:
    from repro.dist import dist_app_experiment
    from repro.obs.events import get_event_log
    from repro.runtime.interpreter import state_digest

    with _observed(args, "repro.dist.run", app=args.app):
        try:
            experiment = dist_app_experiment(
                args.app,
                args.rounds,
                topology=args.topology,
                scheduler=args.scheduler,
                seed=args.seed,
                step_budget_factor=args.step_budget_factor,
            )
        except (KeyError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        reference = experiment.reference()
        events = get_event_log()
        for round_index, states in enumerate(reference.trajectory):
            events.emit(
                "dist.round",
                level="debug",
                app=args.app,
                round=round_index,
                digest=state_digest([c for s in states for c in s]),
            )
        if args.inject is not None:
            trial = experiment.trial_at(args.inject, seed=args.seed)
            from repro.runtime.campaign import verdict_of

            print(
                f"site {trial.target_step} (node {trial.node}): "
                f"{verdict_of(trial)}"
                + (
                    f", recovered in {trial.recovery_iterations} rounds"
                    if trial.recovery_iterations is not None
                    else ""
                )
            )
            return 1 if trial.diverged else 0
        topo = experiment.topology
        print(
            f"// {args.app}: {topo.nodes} nodes on {topo.spec} "
            f"(diameter {topo.diameter}), scheduler "
            f"{experiment.scheduler.name}, {len(reference.trajectory)} rounds, "
            f"{reference.steps} steps, {experiment.total_steps()} "
            f"injectable sites",
            file=sys.stderr,
        )
        for node in range(topo.nodes):
            trace = reference.node_trace(node)
            print(
                f"node {node}: final={trace[-1]} "
                f"digest={reference.node_digest(node)}"
            )
        return 0


def cmd_dist_campaign(args: argparse.Namespace) -> int:
    from repro.apps import DIST_APP_NAMES

    apps = (
        tuple(DIST_APP_NAMES) if args.apps == "all"
        else tuple(name.strip() for name in args.apps.split(",") if name.strip())
    )
    with _observed(
        args, "repro.dist.campaign", mode=args.mode, jobs=args.jobs
    ):
        status = _run_campaign(args, apps)
    _merge_worker_traces(args)
    return status


def cmd_lattices(args: argparse.Namespace) -> int:
    info = _load(args.file)
    world = LocationWorld(info, DiagnosticSink())
    items = [
        (f"class {name}", lattice)
        for name, lattice in sorted(world.field_lattices.items())
    ] + [
        (f"method {key[0]}.{key[1]}", env.lattice)
        for key, env in sorted(world.method_envs.items())
    ]
    for name, lattice in items:
        if not lattice.user_elements():
            continue
        metrics = lattice_metrics(name, lattice)
        print(f"== {name} ({metrics.locations} locations, "
              f"{metrics.paths} paths) ==")
        print(render_lattice(lattice, fmt=args.format))
        print()
    return 0


def _batch_cache(args: argparse.Namespace) -> ResultCache | None:
    if args.no_cache:
        return None
    disk = Path(args.cache_dir) if args.cache_dir else default_disk_dir()
    return ResultCache(disk_dir=disk)


def _collect_sj_files(targets: list[str]) -> list[Path]:
    files: list[Path] = []
    for target in targets:
        path = Path(target)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.sj")))
        else:
            files.append(path)
    return files


def cmd_batch(args: argparse.Namespace) -> int:
    files = _collect_sj_files(args.targets)
    if not files:
        print("batch: no .sj files found", file=sys.stderr)
        return 2
    pool = CheckerPool(
        max_workers=args.jobs,
        task_timeout=args.timeout,
        cache=_batch_cache(args),
    )
    with _observed(args, "repro.batch", files=len(files), jobs=args.jobs):
        start = time.perf_counter()
        results = pool.check_paths(files)
        elapsed = time.perf_counter() - start
    if args.json:
        print(protocol.dumps({
            "version": protocol.PROTOCOL_VERSION,
            "kind": "batch",
            "elapsed_seconds": elapsed,
            "results": [r.to_dict() for r in results],
            "stats": pool.stats(),
        }))
    else:
        width = max(len(r.path) for r in results)
        for r in results:
            cached = "  (cached)" if r.cached else ""
            detail = f"  {r.message}" if r.message else ""
            print(f"{r.path:<{width}}  {r.verdict:<16} "
                  f"{r.elapsed_seconds * 1000:8.1f} ms{cached}{detail}")
        passed = sum(1 for r in results if r.ok)
        cached = sum(1 for r in results if r.cached)
        print(f"// {passed}/{len(results)} self-stabilizing, "
              f"{cached} from cache, {elapsed:.3f}s total")
        if pool.cache is not None:
            stats = pool.cache.stats
            print(f"// cache: {stats.memory_hits} memory hits, "
                  f"{stats.disk_hits} disk hits, {stats.misses} misses, "
                  f"{stats.stores} stores, {stats.evictions} evictions")
    return 0 if all(r.ok for r in results) else 1


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.obs.exporter import ExporterError
    from repro.service.server import ReproServer

    cache = None
    if not args.no_cache:
        disk = Path(args.cache_dir) if args.cache_dir else default_disk_dir()
        cache = ResultCache(disk_dir=disk)
    try:
        server = ReproServer(
            args.socket,
            cache=cache,
            http_port=args.http_port,
            http_host=args.http_host,
        )
    except ExporterError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"repro daemon listening on {args.socket}", file=sys.stderr)
    if server.exporter.enabled:
        # exporter.port is the *bound* port — --http-port 0 resolves to
        # the ephemeral port the kernel actually picked.
        print(
            f"// observability plane on "
            f"http://{args.http_host}:{server.exporter.port} "
            f"(/metrics /healthz /events)",
            file=sys.stderr,
        )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    if (args.trace is None) == (args.socket is None):
        print(
            "error: metrics needs exactly one of --trace FILE or "
            "--socket PATH",
            file=sys.stderr,
        )
        return 2
    if args.trace is not None:
        if args.format == "prometheus":
            print(
                "error: --format prometheus needs a running daemon "
                "(--socket); a trace file has spans, not a registry",
                file=sys.stderr,
            )
            return 2
        try:
            events = validate_trace(args.trace)
        except TraceError as exc:
            print(f"error: invalid trace: {exc}", file=sys.stderr)
            return 2
        if args.tree:
            print(f"// {len(events)} span events in {args.trace}")
            print(format_forest(events))
            return 0
        rows = aggregate_trace(events)
        if args.format == "json":
            print(json.dumps({"events": len(events), "spans": rows}))
            return 0
        print(f"// {len(events)} span events in {args.trace}")
        print(format_aggregate_table(rows))
        return 0
    from repro.service.client import ReproClient, ServiceError

    try:
        with ReproClient(args.socket) as client:
            if args.format == "prometheus":
                print(client.metrics(format="prometheus")["metrics_text"], end="")
                return 0
            snapshot = client.metrics()["metrics"]
    except (ServiceError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(snapshot))
        return 0
    for name, value in sorted(snapshot["counters"].items()):
        print(f"{name:<40} {value}")
    for name, value in sorted(snapshot["gauges"].items()):
        print(f"{name:<40} {value}")
    for name, hist in sorted(snapshot["histograms"].items()):
        # p50/p95/p99 are bucket-interpolated *estimates* (snapshot
        # schema >= 2); older daemons simply don't report them.
        quantiles = "".join(
            f" {key}={hist[key]:.6f}"
            for key in ("p50", "p95", "p99")
            if hist.get(key) is not None
        )
        print(
            f"{name:<40} count={hist['count']} sum={hist['sum']:.6f}"
            f"{quantiles}"
        )
    return 0


def cmd_events(args: argparse.Namespace) -> int:
    if (args.file is None) == (args.socket is None):
        print(
            "error: events needs exactly one of FILE or --socket PATH",
            file=sys.stderr,
        )
        return 2
    if args.follow:
        if args.file is None:
            print(
                "error: --follow tails a FILE, not a daemon "
                "(the daemon's ring is a snapshot; poll it instead)",
                file=sys.stderr,
            )
            return 2
        return _follow_events_loop(args)
    if args.file is not None:
        try:
            records = read_events(args.file)
        except EventError as exc:
            print(f"error: invalid event stream: {exc}", file=sys.stderr)
            return 2
    else:
        from repro.service.client import ReproClient, ServiceError

        try:
            with ReproClient(args.socket) as client:
                records = client.events()["events"]
        except (ServiceError, OSError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    selected = filter_events(
        records,
        min_level=args.level,
        name=args.name,
        trace_id=args.trace_id,
        span_id=args.span_id,
        tail=args.tail,
    )
    if args.json:
        for record in selected:
            print(json.dumps(record, sort_keys=True))
    else:
        for record in selected:
            print(format_event(record))
        print(
            f"// {len(selected)}/{len(records)} events shown",
            file=sys.stderr,
        )
    return 0


def _follow_events_loop(args: argparse.Namespace) -> int:
    """``repro events FILE --follow``: stream records as a live campaign
    (or any ``--events`` writer) appends them, ``tail -f``-style.
    Filters apply per record; Ctrl-C ends the tail cleanly."""
    try:
        for record in follow_events(args.file, poll_seconds=args.poll):
            if not filter_events(
                [record],
                min_level=args.level,
                name=args.name,
                trace_id=args.trace_id,
                span_id=args.span_id,
            ):
                continue
            if args.json:
                print(json.dumps(record, sort_keys=True), flush=True)
            else:
                print(format_event(record), flush=True)
    except EventError as exc:
        print(f"error: invalid event stream: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        pass
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    if not (args.campaign or args.events or args.bench or args.history):
        print(
            "error: report needs at least one input "
            "(--campaign / --events / --bench / --history)",
            file=sys.stderr,
        )
        return 2
    try:
        write_report(
            args.html,
            campaign_path=args.campaign,
            events_path=args.events,
            bench_paths=args.bench or (),
            history_dir=args.history,
            trend_threshold=args.trend_threshold,
            title=args.title,
            generated_at=args.generated_at,
        )
    except EventError as exc:
        print(f"error: invalid event stream: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: unreadable input: {exc}", file=sys.stderr)
        return 2
    print(f"// report written to {args.html}", file=sys.stderr)
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.obs.bench import (
        BenchError,
        attribute_benchmarks,
        bench_payload,
        compare_benchmarks,
        format_attribution,
        format_bench_table,
        format_comparison,
        get_scenario,
        read_bench,
        run_scenarios,
        scenario_names,
        write_bench,
    )

    def emit_comparison(comparison: dict) -> None:
        if args.json:
            print(protocol.dumps({
                "version": protocol.PROTOCOL_VERSION,
                "kind": "bench-compare",
                **comparison,
            }))
        else:
            print(format_comparison(comparison))
        if comparison["missing"]:
            # The gate is about to fail; name the scenarios that
            # vanished where the CI log reader will look first.
            print(
                "error: scenario(s) missing from the new run: "
                + ", ".join(comparison["missing"]),
                file=sys.stderr,
            )

    try:
        if args.action == "trend":
            from repro.obs.history import bench_trend, format_trend_table

            trend = bench_trend(
                args.history, threshold_pct=args.threshold,
                scenarios=args.scenario,
            )
            if args.json:
                print(protocol.dumps({
                    "version": protocol.PROTOCOL_VERSION,
                    "kind": "bench-trend",
                    **trend,
                }))
            else:
                print(format_trend_table(trend))
            return 0
        if args.attribute is not None:
            old_path, new_path = args.attribute
            attribution = attribute_benchmarks(
                read_bench(old_path), read_bench(new_path),
                threshold_pct=args.threshold,
            )
            if args.json:
                print(protocol.dumps({
                    "version": protocol.PROTOCOL_VERSION,
                    "kind": "bench-attribution",
                    **attribution,
                }))
            else:
                print(format_attribution(attribution))
            return 0
        if args.report is not None:
            if args.compare or args.against:
                print("error: --report does not combine with --compare",
                      file=sys.stderr)
                return 2
            try:
                events = validate_trace(args.report)
            except TraceError as exc:
                print(f"error: invalid trace: {exc}", file=sys.stderr)
                return 2
            rows = aggregate_trace(events)
            total = trace_root_seconds(events)
            print(f"// {len(events)} span events in {args.report}, "
                  f"root wall {total * 1000:.2f}ms")
            print(format_aggregate_table(rows, total_seconds=total))
            return 0
        if args.against is not None:
            if args.compare is None:
                print("error: --against needs --compare OLD.json",
                      file=sys.stderr)
                return 2
            comparison = compare_benchmarks(
                read_bench(args.compare), read_bench(args.against),
                args.threshold,
            )
            emit_comparison(comparison)
            return 0 if comparison["ok"] else 1
        if args.list:
            for name in scenario_names(args.suite):
                scenario = get_scenario(name)
                print(f"{name:<32} kind={scenario.kind:<17} "
                      f"suites={','.join(scenario.suites)}")
            return 0
        names = args.scenario or scenario_names(args.suite)
        for name in names:
            get_scenario(name)  # fail fast on typos, before any timing
        with_memory = bool(args.mem or args.mem_json)
        with contextlib.ExitStack() as stack:
            monitor = None
            if with_memory:
                from repro.obs.resources import (
                    ResourceMonitor,
                    installed_resource_monitor,
                    write_resources,
                )

                # One monitor for the whole run: scenarios share it so
                # the instrumented anchors (interpreter.step,
                # checker.check, infer.fixpoint) attribute their
                # allocations to it, and --mem-json gets a run-wide
                # payload.  Per-rep peaks still reset per repetition.
                monitor = stack.enter_context(ResourceMonitor())
                stack.enter_context(installed_resource_monitor(monitor))
            with _observed(args, "repro.bench", suite=args.suite,
                           scenarios=len(names)):
                results = run_scenarios(
                    names,
                    warmup=args.warmup,
                    repetitions=args.repetitions,
                    progress=lambda line: print(f"// {line}",
                                                file=sys.stderr),
                    span_table=args.spans,
                    memory=with_memory,
                    monitor=monitor,
                )
        payload = bench_payload(
            results,
            suite=None if args.scenario else args.suite,
            warmup=args.warmup,
            repetitions=args.repetitions,
        )
        out_path = write_bench(payload, args.output)
        if args.mem_json is not None:
            mem_path = write_resources(monitor.payload(), args.mem_json)
            print(f"// resources written to {mem_path}", file=sys.stderr)
        if args.json:
            print(protocol.dumps(protocol.bench_payload(payload)))
        else:
            print(format_bench_table(payload))
        print(f"// bench written to {out_path}", file=sys.stderr)
        if args.compare is not None:
            comparison = compare_benchmarks(
                read_bench(args.compare), payload, args.threshold
            )
            emit_comparison(comparison)
            return 0 if comparison["ok"] else 1
        return 0
    except BenchError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _add_campaign_arguments(campaign: argparse.ArgumentParser) -> None:
    """Flags shared by the single-node and distributed campaign drivers."""
    campaign.add_argument("--mode",
                          choices=("exhaustive", "stratified", "uniform"),
                          default="stratified",
                          help="corruption-site plan (default: stratified)")
    campaign.add_argument("--trials", type=int, default=64,
                          help="per-app trials (stratified/uniform modes)")
    campaign.add_argument("--strata", type=int, default=8,
                          help="site-space slices for stratified mode")
    campaign.add_argument("--max-sites", type=int, default=None,
                          help="evenly thin exhaustive sweeps to this many "
                               "sites per app")
    campaign.add_argument("--iterations", type=int, default=None,
                          help="event-loop iterations per run (fabric rounds "
                               "for distributed apps; default: per-app "
                               "registered length)")
    campaign.add_argument("--burst", type=int, default=1,
                          help="consecutive sites corrupted per trial")
    campaign.add_argument("--seed", type=int, default=0)
    campaign.add_argument("--jobs", type=int, default=1,
                          help="worker processes (1 = in-process)")
    campaign.add_argument("--shard-size", type=int, default=16,
                          help="trials per shard (checkpoint granularity)")
    campaign.add_argument("--shard-timeout", type=float, default=120.0,
                          help="wall-clock seconds per shard (needs --jobs > 1)")
    campaign.add_argument("--step-budget-factor", type=int, default=64,
                          help="watchdog: injected runs may use this multiple "
                               "of the clean run's steps before counting as "
                               "timeout")
    campaign.add_argument("--checkpoint", default=None,
                          help="manifest path; an interrupted campaign "
                               "resumes from it")
    campaign.add_argument("--fresh", action="store_true",
                          help="discard an existing checkpoint")
    campaign.add_argument("--report", default=None,
                          help="also write the JSON report to this file")
    campaign.add_argument("--json", action="store_true",
                          help="emit the versioned JSON report on stdout")
    campaign.add_argument("--http-port", type=int, default=None,
                          metavar="PORT",
                          help="serve GET /metrics and /healthz over HTTP "
                               "on 127.0.0.1:PORT while the sweep runs "
                               "(0 = ephemeral)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Self-Stabilizing Java (PLDI 2012) reproduction",
    )
    parser.add_argument(
        "--log-level", choices=LEVELS, default=None,
        help="enable structured events at this severity and bridge "
             "them into stdlib logging on stderr (default: events off)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="check self-stabilization")
    check.add_argument("file")
    check.add_argument("--json", action="store_true",
                       help="emit the versioned JSON protocol payload")
    _add_obs_arguments(check)
    check.set_defaults(func=cmd_check)

    infer = sub.add_parser("infer", help="infer location annotations")
    infer.add_argument("file")
    infer.add_argument("--mode", choices=("sinfer", "naive"), default="sinfer")
    infer.add_argument("--no-verify", action="store_true",
                       help="skip re-checking the inferred annotations")
    infer.add_argument("--quiet", action="store_true",
                       help="suppress the annotated source")
    infer.add_argument("--json", action="store_true",
                       help="emit the versioned JSON summary payload")
    _add_obs_arguments(infer)
    infer.set_defaults(func=cmd_infer)

    run = sub.add_parser("run", help="execute on synthetic inputs")
    run.add_argument("file")
    run.add_argument("--iterations", type=int, default=20)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--ignore-errors", action="store_true",
                     help="crash-avoidance mode (Section 4.4)")
    run.set_defaults(func=cmd_run)

    inject = sub.add_parser("inject", help="fault-injection trials")
    inject.add_argument("file")
    inject.add_argument("--trials", type=int, default=25)
    inject.add_argument("--iterations", type=int, default=30)
    inject.add_argument("--seed", type=int, default=0)
    inject.add_argument("--bin", type=int, default=8,
                        help="histogram bin size in output samples")
    _add_obs_arguments(inject)
    inject.set_defaults(func=cmd_inject)

    campaign = sub.add_parser(
        "campaign",
        help="parallel, resumable fault-injection sweep across the apps",
    )
    campaign.add_argument("--apps", default="all",
                          help="comma-separated registered app names "
                               "(default: all single-node apps)")
    _add_campaign_arguments(campaign)
    _add_obs_arguments(campaign)
    campaign.set_defaults(func=cmd_campaign)

    chaos = sub.add_parser(
        "chaos",
        help="run a campaign/batch under deterministic infrastructure "
             "fault injection and assert the convergence oracle",
    )
    chaos.add_argument("--faults", default="all",
                       help="comma-separated fault classes, or 'all' "
                            "(worker-crash, worker-hang, torn-manifest, "
                            "cache-corrupt, socket-drop, duplicate-shard, "
                            "slow-io)")
    chaos.add_argument("--rate", type=float, default=1.0,
                       help="injection probability per fault opportunity "
                            "(default: 1.0)")
    chaos.add_argument("--seed", type=int, default=0,
                       help="one seed pins both the campaign plan and the "
                            "fault plan")
    chaos.add_argument("--sites", default=None, metavar="PREFIX,...",
                       help="restrict injection to sites with these "
                            "prefixes (default: everywhere)")
    chaos.add_argument("--max-fires", type=int, default=None,
                       help="total fault budget (default: unbounded)")
    chaos.add_argument("--hang-seconds", type=float, default=8.0,
                       help="how long a hung worker sleeps; set above "
                            "--shard-timeout so hangs are observed")
    chaos.add_argument("--slow-io-seconds", type=float, default=0.01,
                       help="latency per injected slow-io fault")
    chaos.add_argument("--work-dir", default=".repro-chaos",
                       help="scratch directory for manifests, the disk "
                            "cache, and the fault ledger")
    chaos.add_argument("--state-dir", default=None,
                       help="exactly-once fault ledger directory "
                            "(default: WORK_DIR/ledger; wiped at start)")
    chaos.add_argument("--batch", nargs="+", default=None,
                       metavar="DIR_OR_FILE",
                       help="exercise the batch/cache path over these .sj "
                            "files instead of running a campaign")
    chaos.add_argument("--apps", default="all",
                       help="comma-separated app names, single-node or "
                            "distributed (default: all)")
    chaos.add_argument("--mode",
                       choices=("exhaustive", "stratified", "uniform"),
                       default="stratified")
    chaos.add_argument("--trials", type=int, default=16,
                       help="per-app trials (default: 16 — chaos runs "
                            "everything twice)")
    chaos.add_argument("--strata", type=int, default=8)
    chaos.add_argument("--iterations", type=int, default=None)
    chaos.add_argument("--burst", type=int, default=1)
    chaos.add_argument("--shard-size", type=int, default=8)
    chaos.add_argument("--jobs", type=int, default=1,
                       help="worker processes; worker-crash/hang need "
                            "--jobs > 1 to fire")
    chaos.add_argument("--shard-timeout", type=float, default=None,
                       help="wall-clock seconds per shard (needs --jobs > 1)")
    chaos.add_argument("--max-retries", type=int, default=6,
                       help="shard retry budget under chaos (default: 6)")
    chaos.add_argument("--step-budget-factor", type=int, default=64)
    chaos.add_argument("--report", default=None,
                       help="also write the JSON chaos report to this file")
    chaos.add_argument("--json", action="store_true",
                       help="emit the versioned JSON chaos report on stdout")
    _add_obs_arguments(chaos)
    chaos.set_defaults(func=cmd_chaos)

    apps_cmd = sub.add_parser(
        "apps", help="list registered apps (single-node and distributed)"
    )
    apps_cmd.add_argument("--json", action="store_true",
                          help="emit the catalog as JSON")
    apps_cmd.add_argument("--no-sites", action="store_true",
                          help="skip counting injectable corruption sites "
                               "(faster: no reference runs)")
    apps_cmd.set_defaults(func=cmd_apps)

    dist = sub.add_parser(
        "dist",
        help="distributed fabric: run a multi-node app or campaign it",
    )
    dist_sub = dist.add_subparsers(dest="dist_command", required=True)
    dist_run = dist_sub.add_parser(
        "run", help="simulate one distributed app on the fabric"
    )
    dist_run.add_argument("--app", required=True,
                          help="a distributed app name (see repro apps)")
    dist_run.add_argument("--topology", default=None,
                          help="topology spec, e.g. ring:5, line:7, grid:3x3 "
                               "(default: the app's registered topology)")
    dist_run.add_argument("--scheduler", default=None,
                          help="synchronous, round-robin, random, or biased "
                               "(default: the app's registered scheduler)")
    dist_run.add_argument("--rounds", type=int, default=None,
                          help="fabric rounds in the injection horizon "
                               "(default: the app's registered horizon)")
    dist_run.add_argument("--seed", type=int, default=0)
    dist_run.add_argument("--step-budget-factor", type=int, default=64)
    dist_run.add_argument("--inject", type=int, default=None, metavar="SITE",
                          help="run one injected trial at this composite "
                               "site instead of printing the reference")
    _add_obs_arguments(dist_run)
    dist_run.set_defaults(func=cmd_dist_run)
    dist_campaign = dist_sub.add_parser(
        "campaign",
        help="resumable fault-injection sweep across distributed apps",
    )
    dist_campaign.add_argument("--apps", default="all",
                               help="comma-separated distributed app names "
                                    "(default: all distributed apps)")
    _add_campaign_arguments(dist_campaign)
    _add_obs_arguments(dist_campaign)
    dist_campaign.set_defaults(func=cmd_dist_campaign)

    lattices = sub.add_parser("lattices", help="render location lattices")
    lattices.add_argument("file")
    lattices.add_argument("--format", choices=("ascii", "dot"),
                          default="ascii")
    lattices.set_defaults(func=cmd_lattices)

    batch = sub.add_parser(
        "batch", help="batch-check files/directories (cached, parallel)"
    )
    batch.add_argument("targets", nargs="+", metavar="DIR_OR_FILE",
                       help=".sj files or directories to scan recursively")
    batch.add_argument("--jobs", type=int, default=1,
                       help="worker processes (1 = in-process, the default)")
    batch.add_argument("--timeout", type=float, default=None,
                       help="per-file timeout in seconds (needs --jobs > 1)")
    batch.add_argument("--cache-dir", default=None,
                       help="on-disk result cache directory "
                            "(default: $REPRO_CACHE_DIR or ~/.cache/repro)")
    batch.add_argument("--no-cache", action="store_true",
                       help="disable the result cache")
    batch.add_argument("--json", action="store_true",
                       help="emit one JSON object with all results")
    _add_obs_arguments(batch)
    batch.set_defaults(func=cmd_batch)

    serve = sub.add_parser(
        "serve", help="run the checking daemon on a Unix socket"
    )
    serve.add_argument("--socket", default=str(default_disk_dir() / "repro.sock"),
                       help="Unix socket path to listen on")
    serve.add_argument("--cache-dir", default=None,
                       help="on-disk result cache directory")
    serve.add_argument("--no-cache", action="store_true",
                       help="disable the result cache")
    serve.add_argument("--http-port", type=int, default=None, metavar="PORT",
                       help="also serve GET /metrics, /healthz and /events "
                            "over HTTP on this port (0 = ephemeral)")
    serve.add_argument("--http-host", default="127.0.0.1", metavar="ADDR",
                       help="bind address for --http-port "
                            "(default: 127.0.0.1)")
    serve.set_defaults(func=cmd_serve)

    metrics = sub.add_parser(
        "metrics",
        help="render a metrics/trace snapshot from a trace file or daemon",
    )
    metrics.add_argument("--trace", metavar="FILE", default=None,
                         help="aggregate a JSON-lines trace written by "
                              "--trace")
    metrics.add_argument("--socket", metavar="PATH", default=None,
                         help="query a running daemon's metrics registry")
    metrics.add_argument("--format", choices=("text", "json", "prometheus"),
                         default="text",
                         help="output format (prometheus needs --socket)")
    metrics.add_argument("--tree", action="store_true",
                         help="with --trace: print the span forest "
                              "(multi-process traces group per pid) "
                              "instead of the aggregate table")
    metrics.set_defaults(func=cmd_metrics)

    events = sub.add_parser(
        "events",
        help="tail/filter a structured event stream (file or daemon)",
    )
    events.add_argument("file", nargs="?", default=None,
                        help="JSONL event stream written by --events")
    events.add_argument("--socket", metavar="PATH", default=None,
                        help="read the in-memory buffer of a running "
                             "daemon instead of a file")
    events.add_argument("--level", choices=LEVELS, default=None,
                        help="minimum severity to show")
    events.add_argument("--name", metavar="SUBSTR", default=None,
                        help="only events whose name contains SUBSTR")
    events.add_argument("--trace-id", metavar="ID", default=None,
                        help="only events correlated with this trace")
    events.add_argument("--span-id", metavar="ID", type=int, default=None,
                        help="only events correlated with this span")
    events.add_argument("--tail", metavar="N", type=int, default=None,
                        help="show only the last N matching events")
    events.add_argument("--follow", action="store_true",
                        help="keep the FILE open and stream records as "
                             "they are appended (tail -f); Ctrl-C stops")
    events.add_argument("--poll", metavar="SECONDS", type=float, default=0.5,
                        help="idle re-read interval for --follow "
                             "(default: 0.5)")
    events.add_argument("--json", action="store_true",
                        help="print raw JSON envelopes, one per line")
    events.set_defaults(func=cmd_events)

    report = sub.add_parser(
        "report",
        help="render the single-file HTML campaign dashboard",
    )
    report.add_argument("--campaign", metavar="MANIFEST.json", default=None,
                        help="campaign checkpoint manifest "
                             "(written by campaign --checkpoint)")
    report.add_argument("--events", metavar="FILE", default=None,
                        help="JSONL event stream to summarize")
    report.add_argument("--bench", metavar="BENCH.json", action="append",
                        default=None,
                        help="bench payload for the trend table "
                             "(repeatable, in trend order)")
    report.add_argument("--history", metavar="DIR", default=None,
                        help="bench history directory; renders the perf-"
                             "trajectory sparkline panel with changepoints")
    report.add_argument("--trend-threshold", type=float, default=10.0,
                        help="changepoint threshold percentage for "
                             "--history (default: 10)")
    report.add_argument("--html", metavar="OUT.html", required=True,
                        help="output path for the dashboard")
    report.add_argument("--title", default="Stabilization report")
    report.add_argument("--generated-at", metavar="STAMP", default=None,
                        help="embed this generation timestamp (omitted "
                             "by default so reports are byte-stable)")
    report.set_defaults(func=cmd_report)

    bench = sub.add_parser(
        "bench",
        help="run the benchmark suite, compare runs, report a trace, "
             "attribute a shift, or render the perf trajectory",
    )
    bench.add_argument("action", nargs="?", choices=("trend",),
                       default=None,
                       help="'trend': aggregate the bench history "
                            "directory into per-scenario trend series "
                            "with changepoints, instead of running")
    bench.add_argument("--history", metavar="DIR",
                       default="benchmarks/history",
                       help="bench history directory for 'trend' "
                            "(default: benchmarks/history)")
    bench.add_argument("--attribute", nargs=2,
                       metavar=("OLD.json", "NEW.json"), default=None,
                       help="rank which spans account for each "
                            "scenario's median shift between two bench "
                            "payloads carrying span tables (--spans)")
    bench.add_argument("--spans", action="store_true",
                       help="collect a per-scenario span self-time table "
                            "into the payload (feeds --attribute)")
    bench.add_argument("--suite", choices=("small", "full"), default="small",
                       help="scenario suite to run (default: small)")
    bench.add_argument("--scenario", action="append", metavar="NAME",
                       help="run only this scenario (repeatable; overrides "
                            "--suite); with 'trend', filter the history to "
                            "these scenario series")
    bench.add_argument("--list", action="store_true",
                       help="list the suite's scenarios and exit")
    bench.add_argument("--warmup", type=int, default=1,
                       help="untimed runs per scenario (default: 1)")
    bench.add_argument("--repetitions", type=int, default=5,
                       help="timed runs per scenario (default: 5)")
    bench.add_argument("--output", metavar="FILE", default=None,
                       help="write the bench JSON here (default: "
                            "BENCH_<UTCSTAMP>.json in the current "
                            "directory)")
    bench.add_argument("--compare", metavar="OLD.json", default=None,
                       help="compare against this baseline after running; "
                            "exit 1 on regressions or missing scenarios")
    bench.add_argument("--against", metavar="NEW.json", default=None,
                       help="with --compare: skip running and compare the "
                            "two existing bench files instead")
    bench.add_argument("--threshold", type=float, default=10.0,
                       help="median shift percentage counted as a "
                            "regression when outside noise (default: 10)")
    bench.add_argument("--report", metavar="TRACE.jsonl", default=None,
                       help="print a flamegraph-style self-time table for "
                            "an existing JSONL trace instead of running")
    bench.add_argument("--mem", action="store_true",
                       help="collect memory telemetry while running: "
                            "per-rep allocation peaks (tracemalloc), peak "
                            "RSS, and GC pauses, into each scenario's "
                            "'memory' section")
    bench.add_argument("--mem-json", metavar="FILE", default=None,
                       help="also write the run-wide MEM_*.json resources "
                            "payload here (implies --mem)")
    bench.add_argument("--json", action="store_true",
                       help="emit the versioned JSON bench payload")
    _add_obs_arguments(bench)
    bench.set_defaults(func=cmd_bench)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.log_level:
        # The LoggingBridge emits under the "repro" logger; a basicConfig
        # root handler on stderr makes `--log-level debug` work out of
        # the box while embedders keep whatever handlers they installed.
        logging.basicConfig(
            level=PY_LEVELS[args.log_level],
            stream=sys.stderr,
            format="%(levelname)s %(name)s: %(message)s",
        )
    try:
        return args.func(args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ProfileError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except (LexError, ParseError, ResolveError, JavaTypeError) as exc:
        print(f"front-end error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # stdout was closed downstream (e.g. `repro batch | head`);
        # redirect to devnull so interpreter shutdown doesn't complain.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
