"""Deterministic infrastructure fault injection.

:class:`~repro.runtime.injection.ErrorInjector` corrupts *program*
state; this module corrupts the *execution substrate* underneath it —
worker processes, checkpoint manifests, the disk cache, the daemon
socket — so the harness's own hardening is exercised the way the paper
exercises checked programs.  The "ideal stabilization" standard applies:
every reachable infrastructure state is a possible initial state, and a
seeded chaos run must converge to statistics identical to a fault-free
run (the convergence oracle in :mod:`repro.chaos.oracle`).

Fault classes (:data:`FAULTS`):

==================  ========================================================
``worker-crash``    SIGKILL a pool worker mid-shard (breaks the process pool)
``worker-hang``     a worker sleeps past its per-task timeout
``torn-manifest``   checkpoint write crashes mid-write (truncated final
                    file) or between write and rename (stale target)
``cache-corrupt``   a just-written disk-cache entry is truncated
``socket-drop``     the daemon connection is reset mid-request
``duplicate-shard`` a settled shard is delivered to the driver twice
``slow-io``         latency injected at an I/O site
==================  ========================================================

Every decision is a **pure function of** ``(seed, fault, site, key)`` —
a SHA-256 roll against ``rate`` — so the same chaos config plans the
same faults no matter how retries interleave.  Execution is
**exactly-once** per ``(fault, site, key)``: a marker ledger (an
in-memory set, or one file per fault under ``state_dir`` when faults
must survive the process boundary, e.g. a SIGKILLed worker's retry)
guarantees a planned fault fires on the first delivery only, which is
what lets a crashed shard's retry complete.

Like :class:`~repro.obs.trace.NullTracer` and
:class:`~repro.obs.events.NullEventLog`, the default injector is
:class:`NullChaosInjector` whose probes are no-ops — instrumented
infrastructure paths pay one global read and a predicate call when
chaos is off, pinned by a micro-benchmark in
``tests/chaos/test_injector.py``.

Every injected fault emits a ``chaos.<fault>`` event (level ``warn``)
and bumps ``repro_chaos_injected_total``; every recovery action the
hardened layers take emits ``chaos.recovery`` (via
:func:`chaos_recovery`, which fires whether or not an injector is
installed — a *real* torn manifest deserves the same telemetry as an
injected one).  See ``docs/ROBUSTNESS.md`` for the fault matrix and
``docs/OBSERVABILITY.md`` for the event schema.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator, Optional, Sequence

from repro.obs import global_registry
from repro.obs.events import get_event_log

#: The fault classes the injector can plan.
FAULTS = (
    "worker-crash",
    "worker-hang",
    "torn-manifest",
    "cache-corrupt",
    "socket-drop",
    "duplicate-shard",
    "slow-io",
)

#: Faults that must fire inside a pool *worker* process (and therefore
#: need a ``state_dir`` ledger so the retry after a kill sees the
#: marker the dying worker left behind).
WORKER_FAULTS = ("worker-crash", "worker-hang")


class ChaosError(ValueError):
    """A chaos configuration is invalid."""


def parse_faults(spec: str) -> tuple[str, ...]:
    """Parse a ``--faults`` value: ``all`` or a comma-separated subset
    of :data:`FAULTS`; unknown names fail loudly."""
    if spec.strip() == "all":
        return FAULTS
    names = tuple(name.strip() for name in spec.split(",") if name.strip())
    unknown = [name for name in names if name not in FAULTS]
    if unknown:
        raise ChaosError(f"unknown fault classes {unknown}; known: {FAULTS}")
    if not names:
        raise ChaosError("--faults needs at least one fault class (or 'all')")
    return names


@dataclass(frozen=True)
class ChaosConfig:
    """Everything that determines which faults fire where.

    Two equal configs plan identical faults: the plan is a pure function
    of the config, never of wall clock, pid, or retry order.
    """

    seed: int = 0
    #: Probability (per ``(fault, site, key)`` opportunity) in [0, 1].
    rate: float = 1.0
    faults: tuple[str, ...] = FAULTS
    #: Site prefixes to restrict injection to (empty: everywhere).
    sites: tuple[str, ...] = ()
    #: Cross-process exactly-once ledger directory; required for
    #: :data:`WORKER_FAULTS` to survive the pickle/SIGKILL boundary.
    state_dir: Optional[str] = None
    #: Total fault budget per injector (None: unbounded).
    max_fires: Optional[int] = None
    #: How long a hung worker sleeps; must exceed the pool's task
    #: timeout for the hang to be observed as one.
    hang_seconds: float = 30.0
    #: Injected latency per ``slow-io`` fault.
    slow_io_seconds: float = 0.05

    def __post_init__(self) -> None:
        unknown = [name for name in self.faults if name not in FAULTS]
        if unknown:
            raise ChaosError(
                f"unknown fault classes {unknown}; known: {FAULTS}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ChaosError(f"rate must be in [0, 1], got {self.rate!r}")

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "rate": self.rate,
            "faults": list(self.faults),
            "sites": list(self.sites),
            "state_dir": self.state_dir,
            "max_fires": self.max_fires,
            "hang_seconds": self.hang_seconds,
            "slow_io_seconds": self.slow_io_seconds,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ChaosConfig":
        return cls(**{
            **data,
            "faults": tuple(data.get("faults", FAULTS)),
            "sites": tuple(data.get("sites", ())),
        })


def _event_name(fault: str) -> str:
    return "chaos." + fault.replace("-", "_")


def chaos_recovery(action: str, site: str, **attrs) -> None:
    """Record one recovery action: a ``chaos.recovery`` event plus the
    ``repro_chaos_recovered_total`` counter.  Hardened layers call this
    on *every* recovery, injected or organic, so the chaos report panel
    sees the full picture."""
    get_event_log().emit(
        "chaos.recovery", level="info", action=action, site=site, **attrs
    )
    global_registry().counter(
        "repro_chaos_recovered_total", "infrastructure recovery actions"
    ).inc()


class ChaosInjector:
    """Plans and executes infrastructure faults.

    The probe methods (:meth:`crash_point`, :meth:`hang_point`,
    :meth:`slow_point`, :meth:`corrupt_bytes`, :meth:`torn_write`,
    :meth:`fire`) are the instrumentation sites' whole API; each decides
    (purely), claims (exactly-once), records, and executes.  ``sleep``
    is injectable so tests never wait on real latency.
    """

    enabled = True

    def __init__(
        self,
        config: ChaosConfig,
        *,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.config = config
        self.sleep = sleep
        self._fired_local: set[str] = set()
        self._records: list[dict] = []
        self._fires = 0
        self._lock = threading.Lock()
        if config.state_dir is not None:
            Path(config.state_dir).mkdir(parents=True, exist_ok=True)

    # -- the pure plan ---------------------------------------------------

    def _roll(self, fault: str, site: str, key: str) -> float:
        blob = f"{self.config.seed}|{fault}|{site}|{key}".encode("utf-8")
        digest = hashlib.sha256(blob).digest()
        return int.from_bytes(digest[:8], "big") / 2.0 ** 64

    def decide(self, fault: str, site: str, key: str) -> bool:
        """Whether the plan includes this fault at this site/occurrence —
        a pure function of ``(seed, fault, site, key)``."""
        if fault not in self.config.faults:
            return False
        if self.config.sites and not any(
            site.startswith(prefix) for prefix in self.config.sites
        ):
            return False
        return self._roll(fault, site, key) < self.config.rate

    # -- exactly-once execution ------------------------------------------

    def _marker(self, fault: str, site: str, key: str) -> str:
        blob = f"{fault}|{site}|{key}".encode("utf-8")
        return hashlib.sha256(blob).hexdigest()[:32]

    def _claim(self, fault: str, site: str, key: str) -> bool:
        """Claim the right to execute this fault; False when a previous
        delivery (possibly in another process) already did."""
        marker = self._marker(fault, site, key)
        record = {"fault": fault, "site": site, "key": key, "pid": os.getpid()}
        if self.config.state_dir is None:
            with self._lock:
                if marker in self._fired_local:
                    return False
                if (
                    self.config.max_fires is not None
                    and self._fires >= self.config.max_fires
                ):
                    return False
                self._fired_local.add(marker)
                self._fires += 1
                self._records.append(record)
            return True
        with self._lock:
            if (
                self.config.max_fires is not None
                and self._fires >= self.config.max_fires
            ):
                return False
            path = Path(self.config.state_dir) / f"{marker}.json"
            try:
                with open(path, "x", encoding="utf-8") as fh:
                    fh.write(json.dumps(record))
                    fh.flush()
                    os.fsync(fh.fileno())
            except FileExistsError:
                return False
            except OSError:
                # An unwritable ledger must not break the harness; the
                # fault simply does not fire.
                return False
            self._fires += 1
            self._records.append(record)
        return True

    def fire(self, fault: str, site: str, key, **attrs) -> bool:
        """True when the caller must execute ``fault`` here and now:
        the plan includes it and no earlier delivery claimed it.  The
        ledger marker is durable *before* this returns, so even a fault
        that kills the process (``worker-crash``) is never re-executed
        on retry."""
        key = str(key)
        if not self.decide(fault, site, key):
            return False
        if not self._claim(fault, site, key):
            return False
        get_event_log().emit(
            _event_name(fault),
            level="warn",
            fault=fault,
            site=site,
            key=key,
            **attrs,
        )
        registry = global_registry()
        registry.counter(
            "repro_chaos_injected_total", "infrastructure faults injected"
        ).inc()
        registry.counter(
            f"repro_chaos_{fault.replace('-', '_')}_total",
            f"{fault} faults injected",
        ).inc()
        return True

    # -- probe helpers (the instrumentation-site API) --------------------

    def crash_point(self, site: str, key) -> None:
        """SIGKILL the current process when a ``worker-crash`` is
        planned here — the hard kill a real OOM/CRIU/preemption event
        delivers, not an exception the worker could catch."""
        if self.fire("worker-crash", site, key):
            os.kill(os.getpid(), signal.SIGKILL)

    def hang_point(self, site: str, key) -> None:
        """Sleep past the per-task timeout when a ``worker-hang`` is
        planned here."""
        if self.fire("worker-hang", site, key, seconds=self.config.hang_seconds):
            self.sleep(self.config.hang_seconds)

    def slow_point(self, site: str, key) -> None:
        """Inject ``slow_io_seconds`` of latency when planned."""
        if self.fire("slow-io", site, key, seconds=self.config.slow_io_seconds):
            self.sleep(self.config.slow_io_seconds)

    def corrupt_bytes(self, site: str, key, data: bytes) -> Optional[bytes]:
        """The truncated replacement for ``data`` when a
        ``cache-corrupt`` is planned here, else None."""
        if self.fire("cache-corrupt", site, key, size=len(data)):
            return data[: max(1, len(data) // 2)]
        return None

    def torn_write(self, site: str, key) -> Optional[str]:
        """How a ``torn-manifest`` should tear this write, when planned:
        ``"truncate"`` (crash mid-write of the final file) or
        ``"no-rename"`` (crash between write and rename — the target
        keeps its stale previous content).  The variant is itself a pure
        function of the plan."""
        key = str(key)
        if not self.fire("torn-manifest", site, key):
            return None
        variant = (
            "truncate"
            if self._roll("torn-manifest-variant", site, key) < 0.5
            else "no-rename"
        )
        get_event_log().emit(
            "chaos.torn_manifest_variant",
            level="debug",
            site=site,
            key=key,
            variant=variant,
        )
        return variant

    def duplicate_point(self, site: str, key) -> bool:
        """True when a settled delivery should be replayed once."""
        return self.fire("duplicate-shard", site, key)

    def drop_point(self, site: str, key) -> bool:
        """True when the connection should be reset here."""
        return self.fire("socket-drop", site, key)

    # -- introspection ---------------------------------------------------

    def fired(self) -> list[dict]:
        """Every fault this injector (and, with a ``state_dir``, every
        process sharing its ledger) has executed, as
        ``{"fault", "site", "key", "pid"}`` records sorted for
        determinism."""
        if self.config.state_dir is None:
            with self._lock:
                records = list(self._records)
        else:
            records = []
            for path in sorted(Path(self.config.state_dir).glob("*.json")):
                try:
                    records.append(
                        json.loads(path.read_text(encoding="utf-8"))
                    )
                except (OSError, ValueError):
                    continue  # a marker torn by the kill it recorded
        return sorted(
            records, key=lambda r: (r["fault"], r["site"], r["key"])
        )

    def summary(self) -> dict:
        """Fired-fault counts by class (the chaos report's numbers)."""
        counts: dict[str, int] = {}
        for record in self.fired():
            counts[record["fault"]] = counts.get(record["fault"], 0) + 1
        return {
            "injected": sum(counts.values()),
            "by_fault": dict(sorted(counts.items())),
        }

    def worker_payload(self) -> Optional[dict]:
        """The config dict shipped inside shard payloads so pool workers
        rebuild the injector on their side of the pickle boundary —
        None when no worker fault could ever fire (no worker faults
        enabled, or no cross-process ledger to keep them exactly-once)."""
        if self.config.state_dir is None:
            return None
        if not any(fault in self.config.faults for fault in WORKER_FAULTS):
            return None
        worker_faults = tuple(
            fault for fault in self.config.faults
            if fault in WORKER_FAULTS or fault == "slow-io"
        )
        return ChaosConfig(
            seed=self.config.seed,
            rate=self.config.rate,
            faults=worker_faults,
            sites=self.config.sites,
            state_dir=self.config.state_dir,
            hang_seconds=self.config.hang_seconds,
            slow_io_seconds=self.config.slow_io_seconds,
        ).to_dict()


class NullChaosInjector:
    """The disabled injector: every probe is a no-op.  Kept trivial —
    these probes sit on manifest writes, cache lookups, and the daemon
    request path, and must cost ~nothing when chaos is off."""

    enabled = False

    def decide(self, fault: str, site: str, key: str) -> bool:
        return False

    def fire(self, fault: str, site: str, key, **attrs) -> bool:
        return False

    def crash_point(self, site: str, key) -> None:
        return None

    def hang_point(self, site: str, key) -> None:
        return None

    def slow_point(self, site: str, key) -> None:
        return None

    def corrupt_bytes(self, site: str, key, data: bytes) -> Optional[bytes]:
        return None

    def torn_write(self, site: str, key) -> Optional[str]:
        return None

    def duplicate_point(self, site: str, key) -> bool:
        return False

    def drop_point(self, site: str, key) -> bool:
        return False

    def fired(self) -> list[dict]:
        return []

    def summary(self) -> dict:
        return {"injected": 0, "by_fault": {}}

    def worker_payload(self) -> Optional[dict]:
        return None


_NULL_CHAOS = NullChaosInjector()
_chaos_lock = threading.Lock()
_current_chaos: ChaosInjector | NullChaosInjector = _NULL_CHAOS


def get_chaos() -> ChaosInjector | NullChaosInjector:
    """The process-wide injector instrumented infrastructure probes."""
    return _current_chaos


def set_chaos(
    injector: Optional[ChaosInjector | NullChaosInjector],
) -> ChaosInjector | NullChaosInjector:
    """Install ``injector`` (None restores the no-op default); returns
    the previously installed one so callers can restore it."""
    global _current_chaos
    with _chaos_lock:
        previous = _current_chaos
        _current_chaos = injector if injector is not None else _NULL_CHAOS
    return previous


@contextmanager
def installed_chaos(
    injector: ChaosInjector | NullChaosInjector,
) -> Iterator[ChaosInjector | NullChaosInjector]:
    """Scoped :func:`set_chaos` — the previous injector is restored on
    exit, so tests and CLI commands cannot leak fault injection."""
    previous = set_chaos(injector)
    try:
        yield injector
    finally:
        set_chaos(previous)
