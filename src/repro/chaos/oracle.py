"""The convergence oracle: chaos must not change the answer.

A checked sjava program driven by fresh inputs recovers *exactly* from
arbitrary state corruption — that is the paper's legitimacy predicate.
The harness's own legitimacy predicate is the same statement one level
down: a campaign (or batch) run under seeded infrastructure fault
injection must terminate with statistics **identical** to the
fault-free run — zero lost shards, zero double-counted duplicates, and
a manifest that is resumable at every checkpoint.  This module runs
both sides and compares.

``repro chaos`` is the CLI face; see ``docs/ROBUSTNESS.md``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Optional, Sequence

from repro.chaos.injector import (
    ChaosConfig,
    ChaosInjector,
    NullChaosInjector,
    _event_name,
    installed_chaos,
)
from repro.obs.events import get_event_log

#: Bump when the chaos report layout changes.
CHAOS_SCHEMA = 1


def replay_worker_faults(injector: ChaosInjector) -> int:
    """Re-emit ``chaos.*`` events for faults that fired in *worker*
    processes (their event logs are process-local, so the only durable
    record is the ledger marker the dying worker wrote).  Returns the
    number of events replayed; the driver's own fires are skipped —
    they were emitted live."""
    import os

    events = get_event_log()
    replayed = 0
    for record in injector.fired():
        if record.get("pid") == os.getpid():
            continue
        events.emit(
            _event_name(record["fault"]),
            "replayed from the cross-process chaos ledger",
            level="warn",
            fault=record["fault"],
            site=record["site"],
            key=record["key"],
            worker_pid=record.get("pid"),
        )
        replayed += 1
    return replayed


def _verdict(identical: bool, clean: dict, chaos: dict) -> dict:
    shards = chaos.get("shards", {})
    return {
        "identical": identical,
        "clean_complete": bool(clean.get("complete")),
        "chaos_complete": bool(chaos.get("complete")),
        "infra_failed": int(shards.get("infra_failed", 0)),
        "holds": (
            identical
            and bool(clean.get("complete"))
            and bool(chaos.get("complete"))
            and int(shards.get("infra_failed", 0)) == 0
        ),
    }


def run_campaign_oracle(
    config,
    chaos_config: ChaosConfig,
    *,
    work_dir: Path,
    max_workers: int = 1,
    shard_timeout: Optional[float] = None,
    max_retries: int = 6,
    progress: Optional[Callable[[str], None]] = None,
) -> dict:
    """Run one campaign fault-free and once under ``chaos_config``;
    return the chaos report (oracle verdict, fault summary, both
    aggregate reports).

    Both runs checkpoint into ``work_dir`` (separate manifests), so the
    chaos run additionally exercises the torn-manifest write path and
    every resume is against a real file.  Trials are pure functions of
    the campaign config, which is what makes byte-identical ``apps``
    statistics the correct expectation rather than a lucky one.
    """
    from repro.runtime.campaign import CampaignRunner

    work_dir = Path(work_dir)
    work_dir.mkdir(parents=True, exist_ok=True)
    with installed_chaos(NullChaosInjector()):
        clean = CampaignRunner(
            config=config,
            checkpoint_path=work_dir / "clean.json",
            max_workers=max_workers,
            shard_timeout=shard_timeout,
            max_retries=max_retries,
            fresh=True,
            progress=progress,
        ).run()
    injector = ChaosInjector(chaos_config)
    with installed_chaos(injector):
        chaotic = CampaignRunner(
            config=config,
            checkpoint_path=work_dir / "chaos.json",
            max_workers=max_workers,
            shard_timeout=shard_timeout,
            max_retries=max_retries,
            fresh=True,
            progress=progress,
        ).run()
    replay_worker_faults(injector)
    identical = json.dumps(clean["apps"], sort_keys=True) == json.dumps(
        chaotic["apps"], sort_keys=True
    )
    oracle = _verdict(identical, clean, chaotic)
    get_event_log().emit(
        "chaos.oracle",
        level="info" if oracle["holds"] else "error",
        **oracle,
    )
    return {
        "schema": CHAOS_SCHEMA,
        "kind_detail": "campaign",
        "chaos_config": chaos_config.to_dict(),
        "oracle": oracle,
        "faults": injector.summary(),
        "clean": clean,
        "chaos": chaotic,
    }


def run_batch_oracle(
    paths: Sequence[str | Path],
    chaos_config: ChaosConfig,
    *,
    cache_dir: Path,
    progress: Optional[Callable[[str], None]] = None,
) -> dict:
    """Batch-check ``paths`` fault-free, then twice under chaos against
    a disk cache at ``cache_dir`` — the first chaotic pass populates
    (and corrupts) entries, the second reads them back through the
    quarantine path — and compare per-file verdicts."""
    from repro.service.cache import ResultCache
    from repro.service.pool import CheckerPool

    def verdicts(results) -> list[dict]:
        return [
            {"path": r.path, "verdict": r.verdict,
             "error_count": r.error_count}
            for r in results
        ]

    with installed_chaos(NullChaosInjector()):
        clean_pool = CheckerPool(max_workers=1, cache=None)
        clean = verdicts(clean_pool.check_paths(paths))
    injector = ChaosInjector(chaos_config)
    with installed_chaos(injector):
        cache = ResultCache(disk_dir=Path(cache_dir))
        chaos_pool = CheckerPool(max_workers=1, cache=cache)
        first = verdicts(chaos_pool.check_paths(paths))
        second = verdicts(chaos_pool.check_paths(paths))
    if progress is not None:
        progress(
            f"batch oracle: {len(clean)} files, "
            f"{injector.summary()['injected']} faults injected"
        )
    identical = clean == first == second
    oracle = {
        "identical": identical,
        "clean_complete": True,
        "chaos_complete": True,
        "infra_failed": 0,
        "holds": identical,
    }
    get_event_log().emit(
        "chaos.oracle",
        level="info" if oracle["holds"] else "error",
        **oracle,
    )
    return {
        "schema": CHAOS_SCHEMA,
        "kind_detail": "batch",
        "chaos_config": chaos_config.to_dict(),
        "oracle": oracle,
        "faults": injector.summary(),
        "clean": {"files": clean},
        "chaos": {"files": second},
    }
