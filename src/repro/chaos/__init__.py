"""repro.chaos — deterministic infrastructure fault injection.

The execution substrate's analogue of
:class:`~repro.runtime.injection.ErrorInjector`: a seeded injector
whose fault plan is a pure function of ``(seed, fault, site, key)``,
threaded through the pool, the campaign manifest path, the daemon
client/server, and the disk cache behind a zero-cost
:class:`NullChaosInjector` default.  ``repro chaos`` runs a campaign or
batch under injection and asserts the **convergence oracle**: chaotic
statistics must be identical to fault-free ones.  See
``docs/ROBUSTNESS.md``.
"""

from repro.chaos.injector import (
    FAULTS,
    WORKER_FAULTS,
    ChaosConfig,
    ChaosError,
    ChaosInjector,
    NullChaosInjector,
    chaos_recovery,
    get_chaos,
    installed_chaos,
    parse_faults,
    set_chaos,
)
from repro.chaos.oracle import (
    CHAOS_SCHEMA,
    replay_worker_faults,
    run_batch_oracle,
    run_campaign_oracle,
)

__all__ = [
    "CHAOS_SCHEMA",
    "FAULTS",
    "WORKER_FAULTS",
    "ChaosConfig",
    "ChaosError",
    "ChaosInjector",
    "NullChaosInjector",
    "chaos_recovery",
    "get_chaos",
    "installed_chaos",
    "parse_faults",
    "replay_worker_faults",
    "run_batch_oracle",
    "run_campaign_oracle",
    "set_chaos",
]
