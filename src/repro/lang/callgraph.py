"""Call graph construction over resolved programs.

Used to determine the checked scope (everything callable from the main
event loop), to order interprocedural analyses, and to detect recursion
(prohibited by the termination analysis, Section 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.lang import ast
from repro.lang.symtab import MethodCall, ProgramInfo

MethodKey = tuple[str, str]  # (class name, method name)


@dataclass
class CallGraph:
    #: edges[caller] = set of callees (dynamic dispatch expanded)
    edges: dict[MethodKey, set[MethodKey]] = field(default_factory=dict)
    #: call sites per caller: (Call expr, static target key)
    sites: dict[MethodKey, list[tuple[ast.Call, MethodKey]]] = field(
        default_factory=dict
    )

    def callees(self, caller: MethodKey) -> set[MethodKey]:
        return self.edges.get(caller, set())

    def reachable_from(self, start: MethodKey) -> set[MethodKey]:
        seen: set[MethodKey] = set()
        stack = [start]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self.edges.get(node, ()))
        return seen

    def find_recursive_cycle(
        self, scope: Optional[set[MethodKey]] = None
    ) -> Optional[list[MethodKey]]:
        """Return one recursive call chain within ``scope``, or None."""
        state: dict[MethodKey, int] = {}

        def visit(node: MethodKey, stack: list[MethodKey]) -> Optional[list[MethodKey]]:
            mark = state.get(node, 0)
            if mark == 1:
                return stack[stack.index(node):] + [node]
            if mark == 2:
                return None
            state[node] = 1
            stack.append(node)
            for callee in sorted(self.edges.get(node, ())):
                if scope is not None and callee not in scope:
                    continue
                cycle = visit(callee, stack)
                if cycle is not None:
                    return cycle
            stack.pop()
            state[node] = 2
            return None

        nodes = sorted(scope) if scope is not None else sorted(self.edges)
        for node in nodes:
            cycle = visit(node, [])
            if cycle is not None:
                return cycle
        return None

    def topological_order(self, scope: set[MethodKey]) -> list[MethodKey]:
        """Callees before callers (valid only when recursion-free)."""
        order: list[MethodKey] = []
        seen: set[MethodKey] = set()

        def visit(node: MethodKey) -> None:
            if node in seen:
                return
            seen.add(node)
            for callee in sorted(self.edges.get(node, ())):
                if callee in scope:
                    visit(callee)
            order.append(node)

        for node in sorted(scope):
            visit(node)
        return order


def _iter_calls(stmt: ast.Stmt) -> Iterator[ast.Call]:
    def from_expr(expr: ast.Expr) -> Iterator[ast.Call]:
        if isinstance(expr, ast.Call):
            yield expr
        for child in ast.iter_child_exprs(expr):
            yield from from_expr(child)

    if isinstance(stmt, ast.Block):
        for child in stmt.stmts:
            yield from _iter_calls(child)
    elif isinstance(stmt, ast.VarDecl):
        if stmt.init is not None:
            yield from from_expr(stmt.init)
    elif isinstance(stmt, ast.Assign):
        yield from from_expr(stmt.target)
        yield from from_expr(stmt.value)
    elif isinstance(stmt, ast.If):
        yield from from_expr(stmt.cond)
        yield from _iter_calls(stmt.then_body)
        if stmt.else_body is not None:
            yield from _iter_calls(stmt.else_body)
    elif isinstance(stmt, ast.While):
        yield from from_expr(stmt.cond)
        yield from _iter_calls(stmt.body)
    elif isinstance(stmt, ast.For):
        if stmt.init is not None:
            yield from _iter_calls(stmt.init)
        if stmt.cond is not None:
            yield from from_expr(stmt.cond)
        if stmt.update is not None:
            yield from _iter_calls(stmt.update)
        yield from _iter_calls(stmt.body)
    elif isinstance(stmt, ast.Return):
        if stmt.value is not None:
            yield from from_expr(stmt.value)
    elif isinstance(stmt, ast.ExprStmt):
        yield from from_expr(stmt.expr)


def build_call_graph(info: ProgramInfo) -> CallGraph:
    """Build the program call graph with dynamic dispatch expanded: a call
    whose static receiver type is C may reach the override in any subclass
    of C."""
    graph = CallGraph()
    for cls in info.program.classes:
        for method in cls.methods:
            caller: MethodKey = (cls.name, method.name)
            graph.edges.setdefault(caller, set())
            graph.sites.setdefault(caller, [])
            for call in _iter_calls(method.body):
                target = info.call_targets.get(call.uid)
                if not isinstance(target, MethodCall):
                    continue
                static_key: MethodKey = (target.owner, target.decl.name)
                graph.sites[caller].append((call, static_key))
                for owner, decl in info.overriding_decls(
                    target.receiver_class, target.decl.name
                ):
                    graph.edges[caller].add((owner, decl.name))
    return graph
