"""Token definitions for the sjava mini-language."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto


class TokenKind(Enum):
    """Lexical categories produced by the lexer."""

    IDENT = auto()
    INT_LIT = auto()
    FLOAT_LIT = auto()
    STRING_LIT = auto()
    KEYWORD = auto()
    ANNOTATION = auto()  # '@' followed by an identifier, e.g. @LATTICE

    # Punctuation.
    LPAREN = auto()
    RPAREN = auto()
    LBRACE = auto()
    RBRACE = auto()
    LBRACKET = auto()
    RBRACKET = auto()
    COMMA = auto()
    SEMI = auto()
    COLON = auto()
    DOT = auto()

    # Operators.
    ASSIGN = auto()  # =
    PLUS = auto()
    MINUS = auto()
    STAR = auto()
    SLASH = auto()
    PERCENT = auto()
    LT = auto()
    GT = auto()
    LE = auto()
    GE = auto()
    EQ = auto()
    NE = auto()
    AND = auto()
    OR = auto()
    NOT = auto()
    PLUS_ASSIGN = auto()
    MINUS_ASSIGN = auto()
    STAR_ASSIGN = auto()
    SLASH_ASSIGN = auto()
    INCREMENT = auto()  # ++
    DECREMENT = auto()  # --

    EOF = auto()


KEYWORDS = frozenset(
    {
        "class",
        "extends",
        "public",
        "private",
        "protected",
        "static",
        "final",
        "void",
        "int",
        "float",
        "boolean",
        "String",
        "new",
        "if",
        "else",
        "while",
        "for",
        "return",
        "true",
        "false",
        "null",
        "break",
        "continue",
        "this",
    }
)


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    ``value`` holds the source text for identifiers and keywords, the
    parsed payload for literals (``int``/``float``/``str``), and the
    annotation name (without ``@``) for annotation tokens.
    """

    kind: TokenKind
    value: object
    line: int
    col: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.name}, {self.value!r}, {self.line}:{self.col})"
