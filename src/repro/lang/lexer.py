"""Lexer for the sjava mini-language."""

from __future__ import annotations

from repro.lang.tokens import KEYWORDS, Token, TokenKind


class LexError(Exception):
    """Raised when the lexer encounters an invalid character sequence."""

    def __init__(self, message: str, line: int, col: int) -> None:
        super().__init__(f"{line}:{col}: {message}")
        self.line = line
        self.col = col


_TWO_CHAR_OPS = {
    "<=": TokenKind.LE,
    ">=": TokenKind.GE,
    "==": TokenKind.EQ,
    "!=": TokenKind.NE,
    "&&": TokenKind.AND,
    "||": TokenKind.OR,
    "+=": TokenKind.PLUS_ASSIGN,
    "-=": TokenKind.MINUS_ASSIGN,
    "*=": TokenKind.STAR_ASSIGN,
    "/=": TokenKind.SLASH_ASSIGN,
    "++": TokenKind.INCREMENT,
    "--": TokenKind.DECREMENT,
}

_ONE_CHAR_OPS = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    ",": TokenKind.COMMA,
    ";": TokenKind.SEMI,
    ":": TokenKind.COLON,
    ".": TokenKind.DOT,
    "=": TokenKind.ASSIGN,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "/": TokenKind.SLASH,
    "%": TokenKind.PERCENT,
    "<": TokenKind.LT,
    ">": TokenKind.GT,
    "!": TokenKind.NOT,
}


class _Lexer:
    def __init__(self, source: str) -> None:
        self.source = source
        self.pos = 0
        self.line = 1
        self.col = 1
        self.tokens: list[Token] = []

    def error(self, message: str) -> LexError:
        return LexError(message, self.line, self.col)

    def peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        if index < len(self.source):
            return self.source[index]
        return "\0"

    def advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos < len(self.source):
                if self.source[self.pos] == "\n":
                    self.line += 1
                    self.col = 1
                else:
                    self.col += 1
                self.pos += 1

    def emit(self, kind: TokenKind, value: object, line: int, col: int) -> None:
        self.tokens.append(Token(kind, value, line, col))

    def run(self) -> list[Token]:
        while self.pos < len(self.source):
            char = self.peek()
            if char in " \t\r\n":
                self.advance()
            elif char == "/" and self.peek(1) == "/":
                self._skip_line_comment()
            elif char == "/" and self.peek(1) == "*":
                self._skip_block_comment()
            elif char.isdigit():
                self._lex_number()
            elif char.isalpha() or char == "_":
                self._lex_word()
            elif char == '"':
                self._lex_string()
            elif char == "@":
                self._lex_annotation()
            else:
                self._lex_operator()
        self.emit(TokenKind.EOF, None, self.line, self.col)
        return self.tokens

    def _skip_line_comment(self) -> None:
        while self.pos < len(self.source) and self.peek() != "\n":
            self.advance()

    def _skip_block_comment(self) -> None:
        start_line, start_col = self.line, self.col
        self.advance(2)
        while self.pos < len(self.source):
            if self.peek() == "*" and self.peek(1) == "/":
                self.advance(2)
                return
            self.advance()
        raise LexError("unterminated block comment", start_line, start_col)

    def _lex_number(self) -> None:
        line, col = self.line, self.col
        start = self.pos
        while self.peek().isdigit():
            self.advance()
        is_float = False
        if self.peek() == "." and self.peek(1).isdigit():
            is_float = True
            self.advance()
            while self.peek().isdigit():
                self.advance()
        if self.peek() in "eE" and (
            self.peek(1).isdigit()
            or (self.peek(1) in "+-" and self.peek(2).isdigit())
        ):
            is_float = True
            self.advance()
            if self.peek() in "+-":
                self.advance()
            while self.peek().isdigit():
                self.advance()
        text = self.source[start : self.pos]
        if self.peek() in "fF":
            is_float = True
            self.advance()
        if is_float:
            self.emit(TokenKind.FLOAT_LIT, float(text), line, col)
        else:
            self.emit(TokenKind.INT_LIT, int(text), line, col)

    def _lex_word(self) -> None:
        line, col = self.line, self.col
        start = self.pos
        while self.peek().isalnum() or self.peek() == "_":
            self.advance()
        word = self.source[start : self.pos]
        if word in KEYWORDS:
            self.emit(TokenKind.KEYWORD, word, line, col)
        else:
            self.emit(TokenKind.IDENT, word, line, col)

    def _lex_string(self) -> None:
        line, col = self.line, self.col
        self.advance()  # opening quote
        chars: list[str] = []
        while True:
            char = self.peek()
            if char == "\0":
                raise LexError("unterminated string literal", line, col)
            if char == '"':
                self.advance()
                break
            if char == "\\":
                self.advance()
                escape = self.peek()
                mapping = {"n": "\n", "t": "\t", '"': '"', "\\": "\\", "r": "\r"}
                if escape not in mapping:
                    raise self.error(f"invalid escape sequence \\{escape}")
                chars.append(mapping[escape])
                self.advance()
            else:
                chars.append(char)
                self.advance()
        self.emit(TokenKind.STRING_LIT, "".join(chars), line, col)

    def _lex_annotation(self) -> None:
        line, col = self.line, self.col
        self.advance()  # '@'
        if not (self.peek().isalpha() or self.peek() == "_"):
            raise self.error("expected annotation name after '@'")
        start = self.pos
        while self.peek().isalnum() or self.peek() == "_":
            self.advance()
        name = self.source[start : self.pos]
        self.emit(TokenKind.ANNOTATION, name, line, col)

    def _lex_operator(self) -> None:
        line, col = self.line, self.col
        two = self.source[self.pos : self.pos + 2]
        if two in _TWO_CHAR_OPS:
            self.emit(_TWO_CHAR_OPS[two], two, line, col)
            self.advance(2)
            return
        one = self.peek()
        if one in _ONE_CHAR_OPS:
            self.emit(_ONE_CHAR_OPS[one], one, line, col)
            self.advance()
            return
        raise self.error(f"unexpected character {one!r}")


def tokenize(source: str) -> list[Token]:
    """Tokenize ``source`` into a list of tokens ending with EOF."""
    return _Lexer(source).run()
