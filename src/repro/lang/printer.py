"""Pretty-printer: render an AST back to sjava source.

Used by the inference engine to emit inferred annotations (the paper's
Fig. 5.15 shows exactly this round trip) so the result can be re-parsed
and verified by the SJava type checker.
"""

from __future__ import annotations

from repro.lang import ast

_INDENT = "  "


def print_program(program: ast.Program) -> str:
    parts = [_print_class(cls) for cls in program.classes]
    return "\n\n".join(parts) + "\n"


def _ann(annotations: list[ast.Annotation], indent: str = "") -> str:
    lines = []
    for annotation in annotations:
        if annotation.value is None:
            lines.append(f"{indent}@{annotation.name}")
        elif isinstance(annotation.value, int):
            lines.append(f"{indent}@{annotation.name}({annotation.value})")
        else:
            lines.append(f'{indent}@{annotation.name}("{annotation.value}")')
    return "\n".join(lines) + ("\n" if lines else "")


def _inline_ann(annotations: list[ast.Annotation]) -> str:
    parts = []
    for annotation in annotations:
        if annotation.value is None:
            parts.append(f"@{annotation.name}")
        elif isinstance(annotation.value, int):
            parts.append(f"@{annotation.name}({annotation.value})")
        else:
            parts.append(f'@{annotation.name}("{annotation.value}")')
    return (" ".join(parts) + " ") if parts else ""


def _print_class(cls: ast.ClassDecl) -> str:
    header = _ann(cls.annotations)
    extends = f" extends {cls.superclass}" if cls.superclass else ""
    lines = [f"{header}class {cls.name}{extends} {{"]
    for fld in cls.fields:
        mods = ""
        if fld.is_static:
            mods += "static "
        if fld.is_final:
            mods += "final "
        init = f" = {print_expr(fld.init)}" if fld.init is not None else ""
        lines.append(
            f"{_INDENT}{_inline_ann(fld.annotations)}{mods}"
            f"{fld.decl_type} {fld.name}{init};"
        )
    for method in cls.methods:
        lines.append("")
        lines.append(_print_method(method))
    lines.append("}")
    return "\n".join(lines)


def _print_method(method: ast.MethodDecl) -> str:
    header = _ann(method.annotations, _INDENT)
    mods = "static " if method.is_static else ""
    params = ", ".join(
        f"{_inline_ann(p.annotations)}{p.decl_type} {p.name}"
        for p in method.params
    )
    body = _print_block(method.body, _INDENT)
    return (
        f"{header}{_INDENT}{mods}{method.return_type} "
        f"{method.name}({params}) {body}"
    )


def _print_block(block: ast.Block, indent: str) -> str:
    inner = indent + _INDENT
    lines = ["{"]
    for stmt in block.stmts:
        lines.append(print_stmt(stmt, inner))
    lines.append(indent + "}")
    return "\n".join(lines)


def print_stmt(stmt: ast.Stmt, indent: str = "") -> str:
    if isinstance(stmt, ast.Block):
        return indent + _print_block(stmt, indent)
    if isinstance(stmt, ast.VarDecl):
        init = f" = {print_expr(stmt.init)}" if stmt.init is not None else ""
        return (
            f"{indent}{_inline_ann(stmt.annotations)}"
            f"{stmt.decl_type} {stmt.name}{init};"
        )
    if isinstance(stmt, ast.Assign):
        if stmt.was_increment:
            op = "++" if stmt.op == "+=" else "--"
            return f"{indent}{print_expr(stmt.target)}{op};"
        return f"{indent}{print_expr(stmt.target)} {stmt.op} {print_expr(stmt.value)};"
    if isinstance(stmt, ast.If):
        text = f"{indent}if ({print_expr(stmt.cond)}) "
        text += _print_stmt_as_block(stmt.then_body, indent)
        if stmt.else_body is not None:
            text += " else " + _print_stmt_as_block(stmt.else_body, indent)
        return text
    if isinstance(stmt, ast.While):
        label = f"{stmt.label}:\n{indent}" if stmt.label else ""
        head = f"{indent}{_inline_ann(stmt.annotations)}"
        return (
            f"{head}{label}while ({print_expr(stmt.cond)}) "
            + _print_stmt_as_block(stmt.body, indent)
        )
    if isinstance(stmt, ast.For):
        label = f"{stmt.label}:\n{indent}" if stmt.label else ""
        init = _print_for_clause(stmt.init)
        cond = print_expr(stmt.cond) if stmt.cond is not None else ""
        update = _print_for_clause(stmt.update, trailing=False)
        head = f"{indent}{_inline_ann(stmt.annotations)}"
        return (
            f"{head}{label}for ({init}; {cond}; {update}) "
            + _print_stmt_as_block(stmt.body, indent)
        )
    if isinstance(stmt, ast.Return):
        if stmt.value is None:
            return f"{indent}return;"
        return f"{indent}return {print_expr(stmt.value)};"
    if isinstance(stmt, ast.Break):
        return f"{indent}break;"
    if isinstance(stmt, ast.Continue):
        return f"{indent}continue;"
    if isinstance(stmt, ast.ExprStmt):
        return f"{indent}{print_expr(stmt.expr)};"
    raise TypeError(f"unhandled statement {type(stmt).__name__}")


def _print_for_clause(stmt, trailing: bool = True) -> str:
    if stmt is None:
        return ""
    text = print_stmt(stmt, "")
    return text[:-1] if text.endswith(";") else text


def _print_stmt_as_block(stmt: ast.Stmt, indent: str) -> str:
    if isinstance(stmt, ast.Block):
        return _print_block(stmt, indent)
    inner = print_stmt(stmt, indent + _INDENT)
    return "{\n" + inner + "\n" + indent + "}"


_PRECEDENCE = {
    "||": 1, "&&": 2, "==": 3, "!=": 3,
    "<": 4, ">": 4, "<=": 4, ">=": 4,
    "+": 5, "-": 5, "*": 6, "/": 6, "%": 6,
}


def print_expr(expr: ast.Expr, parent_prec: int = 0) -> str:
    if isinstance(expr, ast.IntLit):
        return str(expr.value)
    if isinstance(expr, ast.FloatLit):
        return repr(expr.value)
    if isinstance(expr, ast.BoolLit):
        return "true" if expr.value else "false"
    if isinstance(expr, ast.StringLit):
        escaped = expr.value.replace("\\", "\\\\").replace('"', '\\"')
        escaped = escaped.replace("\n", "\\n").replace("\t", "\\t")
        return f'"{escaped}"'
    if isinstance(expr, ast.NullLit):
        return "null"
    if isinstance(expr, ast.VarRef):
        return expr.name
    if isinstance(expr, ast.ThisRef):
        return "this"
    if isinstance(expr, ast.FieldAccess):
        return f"{print_expr(expr.obj, 99)}.{expr.field_name}"
    if isinstance(expr, ast.ArrayAccess):
        return f"{print_expr(expr.array, 99)}[{print_expr(expr.index)}]"
    if isinstance(expr, ast.ArrayLength):
        return f"{print_expr(expr.array, 99)}.length"
    if isinstance(expr, ast.Unary):
        if expr.op.startswith("cast:"):
            target = expr.op.split(":", 1)[1]
            return f"({target}) {print_expr(expr.operand, 98)}"
        return f"{expr.op}{print_expr(expr.operand, 98)}"
    if isinstance(expr, ast.Binary):
        prec = _PRECEDENCE[expr.op]
        text = (
            f"{print_expr(expr.left, prec)} {expr.op} "
            f"{print_expr(expr.right, prec + 1)}"
        )
        if prec < parent_prec:
            return f"({text})"
        return text
    if isinstance(expr, ast.Call):
        receiver = f"{print_expr(expr.receiver, 99)}." if expr.receiver else ""
        args = ", ".join(print_expr(a) for a in expr.args)
        return f"{receiver}{expr.method}({args})"
    if isinstance(expr, ast.New):
        args = ", ".join(print_expr(a) for a in expr.args)
        return f"new {expr.class_name}({args})"
    if isinstance(expr, ast.NewArray):
        return f"new {expr.element}[{print_expr(expr.size)}]"
    raise TypeError(f"unhandled expression {type(expr).__name__}")
