"""Conventional (Java-level) type checking for sjava programs.

SJava's location type checking is *independent* of standard Java typing
(Section 4.1); this module provides the standard half.  It runs two
passes:

1. a normalization pass that resolves bare identifiers — rewriting
   ``fieldName`` to ``this.fieldName`` (Java's implicit ``this``) — and
   enforces the mini-language's no-shadowing rule;
2. a type checking pass that assigns a semantic type to every expression,
   resolves calls and field accesses, and validates standard typing
   rules.

Both passes record their results into the shared
:class:`repro.lang.symtab.ProgramInfo`.
"""

from __future__ import annotations

from repro.lang import ast
from repro.lang import types as st
from repro.lang.builtins import (
    BUILTIN_CLASSES,
    NAMESPACES,
    lookup_builtin_method,
    lookup_namespace_function,
)
from repro.lang.symtab import BuiltinCall, MethodCall, ProgramInfo


class JavaTypeError(Exception):
    """A conventional typing error, with source position."""

    def __init__(self, message: str, node: ast.Node) -> None:
        super().__init__(f"{node.line}:{node.col}: {message}")
        self.node = node


# ---------------------------------------------------------------------------
# Pass 1: identifier normalization
# ---------------------------------------------------------------------------


class _Normalizer:
    """Rewrites bare field references to explicit ``this.field`` accesses."""

    def __init__(self, info: ProgramInfo, class_name: str, method: ast.MethodDecl):
        self.info = info
        self.class_name = class_name
        self.method = method
        self.declared: set[str] = set()
        self.scopes: list[set[str]] = [set()]

    def run(self) -> None:
        for param in self.method.params:
            self._declare(param.name, param)
        self._normalize_stmt(self.method.body)

    def _declare(self, name: str, node: ast.Node) -> None:
        if name in self.declared:
            raise JavaTypeError(
                f"variable {name!r} is declared more than once in "
                f"method {self.method.name!r} (shadowing is not supported)",
                node,
            )
        self.declared.add(name)
        self.scopes[-1].add(name)

    def _in_scope(self, name: str) -> bool:
        return any(name in scope for scope in self.scopes)

    def _push(self) -> None:
        self.scopes.append(set())

    def _pop(self) -> None:
        for name in self.scopes.pop():
            self.declared.discard(name)

    # Note: names are unique per method, so popping a scope re-permits the
    # name only for *later* declarations, preserving Java semantics for
    # straight-line code while keeping analyses name-keyed.

    def _normalize_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self._push()
            for child in stmt.stmts:
                self._normalize_stmt(child)
            self._pop()
        elif isinstance(stmt, ast.VarDecl):
            if stmt.init is not None:
                stmt.init = self._normalize_expr(stmt.init)
            self._declare(stmt.name, stmt)
        elif isinstance(stmt, ast.Assign):
            stmt.target = self._normalize_expr(stmt.target)
            stmt.value = self._normalize_expr(stmt.value)
        elif isinstance(stmt, ast.If):
            stmt.cond = self._normalize_expr(stmt.cond)
            self._normalize_stmt(stmt.then_body)
            if stmt.else_body is not None:
                self._normalize_stmt(stmt.else_body)
        elif isinstance(stmt, ast.While):
            stmt.cond = self._normalize_expr(stmt.cond)
            self._normalize_stmt(stmt.body)
        elif isinstance(stmt, ast.For):
            self._push()
            if stmt.init is not None:
                self._normalize_stmt(stmt.init)
            if stmt.cond is not None:
                stmt.cond = self._normalize_expr(stmt.cond)
            if stmt.update is not None:
                self._normalize_stmt(stmt.update)
            self._normalize_stmt(stmt.body)
            self._pop()
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                stmt.value = self._normalize_expr(stmt.value)
        elif isinstance(stmt, ast.ExprStmt):
            stmt.expr = self._normalize_expr(stmt.expr)
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            pass
        else:  # pragma: no cover - defensive
            raise JavaTypeError(f"unhandled statement {type(stmt).__name__}", stmt)

    def _normalize_expr(self, expr: ast.Expr) -> ast.Expr:
        if isinstance(expr, ast.VarRef):
            if self._in_scope(expr.name):
                return expr
            if self.info.find_field(self.class_name, expr.name) is not None:
                this = ast.ThisRef(line=expr.line, col=expr.col)
                return ast.FieldAccess(
                    obj=this, field_name=expr.name, line=expr.line, col=expr.col
                )
            raise JavaTypeError(f"unknown identifier {expr.name!r}", expr)
        if isinstance(expr, ast.FieldAccess):
            expr.obj = self._normalize_expr(expr.obj)
            return expr
        if isinstance(expr, ast.ArrayAccess):
            expr.array = self._normalize_expr(expr.array)
            expr.index = self._normalize_expr(expr.index)
            return expr
        if isinstance(expr, ast.ArrayLength):
            expr.array = self._normalize_expr(expr.array)
            return expr
        if isinstance(expr, ast.Unary):
            expr.operand = self._normalize_expr(expr.operand)
            return expr
        if isinstance(expr, ast.Binary):
            expr.left = self._normalize_expr(expr.left)
            expr.right = self._normalize_expr(expr.right)
            return expr
        if isinstance(expr, ast.Call):
            receiver = expr.receiver
            if isinstance(receiver, ast.VarRef) and not self._in_scope(receiver.name):
                if receiver.name in NAMESPACES or receiver.name in self.info.classes:
                    pass  # namespace / static call target, left intact
                else:
                    expr.receiver = self._normalize_expr(receiver)
            elif receiver is not None:
                expr.receiver = self._normalize_expr(receiver)
            expr.args = [self._normalize_expr(arg) for arg in expr.args]
            return expr
        if isinstance(expr, ast.New):
            expr.args = [self._normalize_expr(arg) for arg in expr.args]
            return expr
        if isinstance(expr, ast.NewArray):
            expr.size = self._normalize_expr(expr.size)
            return expr
        return expr


# ---------------------------------------------------------------------------
# Pass 2: type checking
# ---------------------------------------------------------------------------


class _MethodChecker:
    def __init__(self, info: ProgramInfo, class_name: str, method: ast.MethodDecl):
        self.info = info
        self.class_name = class_name
        self.method = method
        self.builtin_classes = frozenset(BUILTIN_CLASSES)
        self.return_type = st.from_type_node(method.return_type, self.builtin_classes)
        self.vars: dict[str, tuple[st.SType, ast.Node]] = {}

    def semantic(self, node: ast.TypeNode) -> st.SType:
        stype = st.from_type_node(node, self.builtin_classes)
        self._validate_type(stype, node)
        return stype

    def assignable(self, target: st.SType, value: st.SType) -> bool:
        """Java assignability, including subclass-to-superclass widening."""
        if st.assignable(target, value):
            return True
        if isinstance(target, st.ClassT) and isinstance(value, st.ClassT):
            return self.info.is_subclass(value.name, target.name)
        return False

    def _validate_type(self, stype: st.SType, node: ast.Node) -> None:
        if isinstance(stype, st.ClassT) and stype.name not in self.info.classes:
            raise JavaTypeError(f"unknown class {stype.name!r}", node)
        if isinstance(stype, st.ArrayT):
            self._validate_type(stype.element, node)

    def run(self) -> None:
        for param in self.method.params:
            stype = self.semantic(param.decl_type)
            self.vars[param.name] = (stype, param)
        self.check_stmt(self.method.body)

    # -- statements ----------------------------------------------------

    def check_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            for child in stmt.stmts:
                self.check_stmt(child)
        elif isinstance(stmt, ast.VarDecl):
            declared = self.semantic(stmt.decl_type)
            if stmt.init is not None:
                init_type = self.check_expr(stmt.init)
                if not self.assignable(declared, init_type):
                    raise JavaTypeError(
                        f"cannot initialize {declared} variable "
                        f"{stmt.name!r} with {init_type}",
                        stmt,
                    )
            self.vars[stmt.name] = (declared, stmt)
        elif isinstance(stmt, ast.Assign):
            target_type = self.check_expr(stmt.target)
            value_type = self.check_expr(stmt.value)
            if stmt.op == "=":
                if not self.assignable(target_type, value_type):
                    raise JavaTypeError(
                        f"cannot assign {value_type} to {target_type}", stmt
                    )
            else:
                if stmt.op == "+=" and target_type == st.STRING:
                    pass  # string concatenation
                elif st.numeric_join(target_type, value_type) is None:
                    raise JavaTypeError(
                        f"operator {stmt.op} requires numeric operands, "
                        f"found {target_type} and {value_type}",
                        stmt,
                    )
                elif target_type == st.INT and value_type == st.FLOAT:
                    raise JavaTypeError(
                        "possible lossy conversion from float to int", stmt
                    )
        elif isinstance(stmt, ast.If):
            self._check_cond(stmt.cond)
            self.check_stmt(stmt.then_body)
            if stmt.else_body is not None:
                self.check_stmt(stmt.else_body)
        elif isinstance(stmt, ast.While):
            self._check_cond(stmt.cond)
            self.check_stmt(stmt.body)
        elif isinstance(stmt, ast.For):
            if stmt.init is not None:
                self.check_stmt(stmt.init)
            if stmt.cond is not None:
                self._check_cond(stmt.cond)
            if stmt.update is not None:
                self.check_stmt(stmt.update)
            self.check_stmt(stmt.body)
        elif isinstance(stmt, ast.Return):
            if stmt.value is None:
                if self.return_type != st.VOID:
                    raise JavaTypeError(
                        f"method {self.method.name!r} must return "
                        f"{self.return_type}",
                        stmt,
                    )
            else:
                value_type = self.check_expr(stmt.value)
                if self.return_type == st.VOID:
                    raise JavaTypeError(
                        f"void method {self.method.name!r} cannot return a value",
                        stmt,
                    )
                if not self.assignable(self.return_type, value_type):
                    raise JavaTypeError(
                        f"cannot return {value_type} from a method declared "
                        f"to return {self.return_type}",
                        stmt,
                    )
        elif isinstance(stmt, ast.ExprStmt):
            self.check_expr(stmt.expr)
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            pass
        else:  # pragma: no cover - defensive
            raise JavaTypeError(f"unhandled statement {type(stmt).__name__}", stmt)

    def _check_cond(self, cond: ast.Expr) -> None:
        cond_type = self.check_expr(cond)
        if cond_type != st.BOOLEAN:
            raise JavaTypeError(f"condition must be boolean, found {cond_type}", cond)

    # -- expressions -----------------------------------------------------

    def check_expr(self, expr: ast.Expr) -> st.SType:
        stype = self._infer(expr)
        self.info.expr_types[expr.uid] = stype
        return stype

    def _infer(self, expr: ast.Expr) -> st.SType:
        if isinstance(expr, ast.IntLit):
            return st.INT
        if isinstance(expr, ast.FloatLit):
            return st.FLOAT
        if isinstance(expr, ast.BoolLit):
            return st.BOOLEAN
        if isinstance(expr, ast.StringLit):
            return st.STRING
        if isinstance(expr, ast.NullLit):
            return st.NULL
        if isinstance(expr, ast.ThisRef):
            if self.method.is_static:
                raise JavaTypeError("'this' used in a static method", expr)
            return st.ClassT(self.class_name)
        if isinstance(expr, ast.VarRef):
            if expr.name not in self.vars:
                raise JavaTypeError(f"unknown variable {expr.name!r}", expr)
            stype, decl = self.vars[expr.name]
            if isinstance(decl, (ast.VarDecl, ast.Param)):
                self.info.var_decls[expr.uid] = decl
            return stype
        if isinstance(expr, ast.FieldAccess):
            return self._infer_field_access(expr)
        if isinstance(expr, ast.ArrayAccess):
            array_type = self.check_expr(expr.array)
            index_type = self.check_expr(expr.index)
            if not isinstance(array_type, st.ArrayT):
                raise JavaTypeError(f"cannot index into {array_type}", expr)
            if index_type != st.INT:
                raise JavaTypeError(
                    f"array index must be int, found {index_type}", expr
                )
            return array_type.element
        if isinstance(expr, ast.ArrayLength):
            array_type = self.check_expr(expr.array)
            if not isinstance(array_type, st.ArrayT):
                raise JavaTypeError(f"{array_type} has no length", expr)
            return st.INT
        if isinstance(expr, ast.Unary):
            return self._infer_unary(expr)
        if isinstance(expr, ast.Binary):
            return self._infer_binary(expr)
        if isinstance(expr, ast.Call):
            return self._infer_call(expr)
        if isinstance(expr, ast.New):
            return self._infer_new(expr)
        if isinstance(expr, ast.NewArray):
            size_type = self.check_expr(expr.size)
            if size_type != st.INT:
                raise JavaTypeError(f"array size must be int, found {size_type}", expr)
            return st.ArrayT(self.semantic(expr.element))
        raise JavaTypeError(f"unhandled expression {type(expr).__name__}", expr)

    def _infer_field_access(self, expr: ast.FieldAccess) -> st.SType:
        obj_type = self.check_expr(expr.obj)
        if not isinstance(obj_type, st.ClassT):
            raise JavaTypeError(
                f"cannot access field {expr.field_name!r} on {obj_type}", expr
            )
        found = self.info.find_field(obj_type.name, expr.field_name)
        if found is None:
            raise JavaTypeError(
                f"class {obj_type.name!r} has no field {expr.field_name!r}", expr
            )
        owner, decl = found
        self.info.field_refs[expr.uid] = (owner, decl)
        return self.semantic(decl.decl_type)

    def _infer_unary(self, expr: ast.Unary) -> st.SType:
        operand = self.check_expr(expr.operand)
        if expr.op == "-":
            if not st.is_numeric(operand):
                raise JavaTypeError(f"cannot negate {operand}", expr)
            return operand
        if expr.op == "!":
            if operand != st.BOOLEAN:
                raise JavaTypeError(f"'!' requires boolean, found {operand}", expr)
            return st.BOOLEAN
        if expr.op.startswith("cast:"):
            target_name = expr.op.split(":", 1)[1]
            if target_name in ("int", "float") and st.is_numeric(operand):
                return st.INT if target_name == "int" else st.FLOAT
            raise JavaTypeError(
                f"unsupported cast from {operand} to {target_name}", expr
            )
        raise JavaTypeError(f"unknown unary operator {expr.op!r}", expr)

    def _infer_binary(self, expr: ast.Binary) -> st.SType:
        left = self.check_expr(expr.left)
        right = self.check_expr(expr.right)
        op = expr.op
        if op in ("+", "-", "*", "/", "%"):
            if op == "+" and st.STRING in (left, right):
                return st.STRING
            result = st.numeric_join(left, right)
            if result is None:
                raise JavaTypeError(
                    f"operator {op!r} requires numeric operands, "
                    f"found {left} and {right}",
                    expr,
                )
            return result
        if op in ("<", ">", "<=", ">="):
            if st.numeric_join(left, right) is None:
                raise JavaTypeError(
                    f"operator {op!r} requires numeric operands, "
                    f"found {left} and {right}",
                    expr,
                )
            return st.BOOLEAN
        if op in ("==", "!="):
            comparable = (
                st.numeric_join(left, right) is not None
                or left == right
                or (st.is_reference(left) and isinstance(right, st.NullT))
                or (st.is_reference(right) and isinstance(left, st.NullT))
                or left == st.BOOLEAN == right
            )
            if not comparable:
                raise JavaTypeError(f"cannot compare {left} with {right}", expr)
            return st.BOOLEAN
        if op in ("&&", "||"):
            if left != st.BOOLEAN or right != st.BOOLEAN:
                raise JavaTypeError(
                    f"operator {op!r} requires boolean operands", expr
                )
            return st.BOOLEAN
        raise JavaTypeError(f"unknown binary operator {op!r}", expr)

    def _infer_call(self, expr: ast.Call) -> st.SType:
        receiver = expr.receiver

        # Builtin namespace call: Device.readTemp(), SJ.broadcast(x), ...
        if isinstance(receiver, ast.VarRef) and receiver.name in NAMESPACES:
            sig = lookup_namespace_function(receiver.name, expr.method)
            if sig is None:
                raise JavaTypeError(
                    f"unknown builtin {receiver.name}.{expr.method}", expr
                )
            arg_types = [self.check_expr(arg) for arg in expr.args]
            result = sig.check(arg_types)
            if result is None:
                raise JavaTypeError(
                    f"bad arguments to {receiver.name}.{expr.method}: "
                    f"{[str(t) for t in arg_types]}",
                    expr,
                )
            expr.is_builtin = True
            self.info.call_targets[expr.uid] = BuiltinCall(receiver.name, sig)
            return result

        # Static call: ClassName.method(args).
        if isinstance(receiver, ast.VarRef) and receiver.name in self.info.classes:
            found = self.info.find_method(receiver.name, expr.method)
            if found is None or not found[1].is_static:
                raise JavaTypeError(
                    f"class {receiver.name!r} has no static method "
                    f"{expr.method!r}",
                    expr,
                )
            owner, decl = found
            self._check_user_args(expr, decl)
            self.info.call_targets[expr.uid] = MethodCall(owner, decl, receiver.name)
            return self.semantic(decl.return_type)

        # Instance call — explicit receiver or implicit this.
        if receiver is None:
            if self.method.is_static:
                raise JavaTypeError(
                    f"unqualified call to {expr.method!r} in a static method", expr
                )
            receiver_type: st.SType = st.ClassT(self.class_name)
        else:
            receiver_type = self.check_expr(receiver)

        if isinstance(receiver_type, st.BuiltinClassT):
            sig = lookup_builtin_method(receiver_type.name, expr.method)
            if sig is None:
                raise JavaTypeError(
                    f"{receiver_type.name} has no method {expr.method!r}", expr
                )
            arg_types = [self.check_expr(arg) for arg in expr.args]
            result = sig.check(arg_types)
            if result is None:
                raise JavaTypeError(
                    f"bad arguments to {receiver_type.name}.{expr.method}", expr
                )
            expr.is_builtin = True
            self.info.call_targets[expr.uid] = BuiltinCall(receiver_type.name, sig)
            return result

        if not isinstance(receiver_type, st.ClassT):
            raise JavaTypeError(
                f"cannot call method {expr.method!r} on {receiver_type}", expr
            )
        found = self.info.find_method(receiver_type.name, expr.method)
        if found is None:
            raise JavaTypeError(
                f"class {receiver_type.name!r} has no method {expr.method!r}", expr
            )
        owner, decl = found
        self._check_user_args(expr, decl)
        self.info.call_targets[expr.uid] = MethodCall(owner, decl, receiver_type.name)
        return self.semantic(decl.return_type)

    def _check_user_args(self, expr: ast.Call, decl: ast.MethodDecl) -> None:
        if len(expr.args) != len(decl.params):
            raise JavaTypeError(
                f"method {decl.name!r} expects {len(decl.params)} argument(s), "
                f"got {len(expr.args)}",
                expr,
            )
        for arg, param in zip(expr.args, decl.params):
            arg_type = self.check_expr(arg)
            param_type = st.from_type_node(param.decl_type, self.builtin_classes)
            if not self.assignable(param_type, arg_type):
                raise JavaTypeError(
                    f"argument for parameter {param.name!r} has type "
                    f"{arg_type}, expected {param_type}",
                    arg,
                )

    def _infer_new(self, expr: ast.New) -> st.SType:
        if expr.class_name in BUILTIN_CLASSES:
            arg_types = [self.check_expr(arg) for arg in expr.args]
            if arg_types != [st.INT]:
                raise JavaTypeError(
                    f"new {expr.class_name}(capacity) expects one int argument",
                    expr,
                )
            return st.BuiltinClassT(expr.class_name)
        if expr.class_name not in self.info.classes:
            raise JavaTypeError(f"unknown class {expr.class_name!r}", expr)
        if expr.args:
            raise JavaTypeError(
                "user classes have no constructors; use field initializers", expr
            )
        return st.ClassT(expr.class_name)


def typecheck_program(info: ProgramInfo) -> None:
    """Normalize and type check every method in the program.

    Also checks standard field-initializer typing.  Mutates ``info`` with
    resolution results; raises :class:`JavaTypeError` on failure.
    """
    for cls in info.program.classes:
        for method in cls.methods:
            _Normalizer(info, cls.name, method).run()
    for cls in info.program.classes:
        for fld in cls.fields:
            if fld.init is not None:
                checker = _MethodChecker(
                    info, cls.name, ast.MethodDecl(name="<init>", is_static=False,
                                                   return_type=ast.PrimType(name="void"),
                                                   body=ast.Block())
                )
                declared = checker.semantic(fld.decl_type)
                init_type = checker.check_expr(fld.init)
                if not checker.assignable(declared, init_type):
                    raise JavaTypeError(
                        f"cannot initialize {declared} field {fld.name!r} "
                        f"with {init_type}",
                        fld,
                    )
        for method in cls.methods:
            _MethodChecker(info, cls.name, method).run()
