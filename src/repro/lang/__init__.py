"""The ``sjava`` mini-language substrate.

The paper's artifact is a compiler front end for Java.  This package
implements, from scratch, the Java-like language that all of the SJava
machinery (the location type system, the static analyses, and the
annotation inference algorithm) operates on: a lexer, a parser producing a
typed AST, symbol tables, a conventional type checker, control-flow
graphs, and a call graph.

The public entry point is :func:`repro.lang.parse_program`.
"""

from repro.lang.ast import Program
from repro.lang.lexer import LexError, tokenize
from repro.lang.parser import ParseError, parse_program
from repro.lang.symtab import ProgramInfo, resolve_program
from repro.lang.typecheck import JavaTypeError, typecheck_program

__all__ = [
    "JavaTypeError",
    "LexError",
    "ParseError",
    "Program",
    "ProgramInfo",
    "parse_program",
    "resolve_program",
    "tokenize",
    "typecheck_program",
]
