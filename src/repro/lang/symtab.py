"""Symbol tables and name resolution for sjava programs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Union

from repro.lang import ast
from repro.lang import types as st
from repro.lang.builtins import BUILTIN_CLASSES, BuiltinSig

EVENT_LOOP_LABELS = ("SSJAVA", "SJAVA")
TERMINATE_LABEL_PREFIX = "TERMINATE_"


class ResolveError(Exception):
    """Raised for class-structure errors (duplicates, unknown names, ...)."""


@dataclass(frozen=True)
class BuiltinCall:
    """A resolved call to a builtin namespace function or builtin method."""

    namespace: str  # 'Device', 'SJ', 'Math', or a builtin class name
    sig: BuiltinSig


@dataclass(frozen=True)
class MethodCall:
    """A resolved call to a user-defined method."""

    owner: str  # class that declares (or overrides) the method
    decl: ast.MethodDecl
    receiver_class: str  # static class of the receiver expression


CallTarget = Union[BuiltinCall, MethodCall]

Declaration = Union[ast.VarDecl, ast.Param]


@dataclass
class EventLoop:
    class_name: str
    method: ast.MethodDecl
    loop: Union[ast.While, ast.For]


@dataclass
class ProgramInfo:
    """All resolution results for a program, shared by every analysis."""

    program: ast.Program
    classes: dict[str, ast.ClassDecl] = field(default_factory=dict)
    #: Filled in by the conventional type checker.
    expr_types: dict[int, st.SType] = field(default_factory=dict)
    call_targets: dict[int, CallTarget] = field(default_factory=dict)
    var_decls: dict[int, Declaration] = field(default_factory=dict)
    #: Resolved field accesses: FieldAccess uid -> (owner class, decl).
    field_refs: dict[int, tuple[str, ast.FieldDecl]] = field(default_factory=dict)
    #: Enclosing (class name, method) for each method body statement uid.
    event_loops: list[EventLoop] = field(default_factory=list)

    # -- class structure helpers --------------------------------------

    def class_named(self, name: str) -> ast.ClassDecl:
        try:
            return self.classes[name]
        except KeyError:
            raise ResolveError(f"unknown class {name!r}") from None

    def superclass_of(self, name: str) -> Optional[str]:
        return self.class_named(name).superclass

    def ancestry(self, name: str) -> Iterator[str]:
        """Yield ``name`` and then each superclass, root last."""
        current: Optional[str] = name
        while current is not None:
            yield current
            current = self.class_named(current).superclass

    def is_subclass(self, sub: str, sup: str) -> bool:
        return sup in self.ancestry(sub)

    def all_fields(self, class_name: str) -> list[tuple[str, ast.FieldDecl]]:
        """All fields of ``class_name`` including inherited, supers first."""
        chain = list(self.ancestry(class_name))
        result: list[tuple[str, ast.FieldDecl]] = []
        for owner in reversed(chain):
            for fld in self.classes[owner].fields:
                result.append((owner, fld))
        return result

    def find_field(
        self, class_name: str, field_name: str
    ) -> Optional[tuple[str, ast.FieldDecl]]:
        for owner in self.ancestry(class_name):
            fld = self.classes[owner].field_named(field_name)
            if fld is not None:
                return owner, fld
        return None

    def find_method(
        self, class_name: str, method_name: str
    ) -> Optional[tuple[str, ast.MethodDecl]]:
        for owner in self.ancestry(class_name):
            method = self.classes[owner].method_named(method_name)
            if method is not None:
                return owner, method
        return None

    def overriding_decls(
        self, class_name: str, method_name: str
    ) -> list[tuple[str, ast.MethodDecl]]:
        """All declarations that a dynamic dispatch on ``class_name`` may
        reach: the statically found one plus every subclass override."""
        found = self.find_method(class_name, method_name)
        if found is None:
            return []
        result = [found]
        for name in self.classes:
            if name != class_name and self.is_subclass(name, class_name):
                decl = self.classes[name].method_named(method_name)
                if decl is not None:
                    result.append((name, decl))
        return result

    @property
    def event_loop(self) -> Optional[EventLoop]:
        if len(self.event_loops) == 1:
            return self.event_loops[0]
        return None


def _check_no_inheritance_cycle(info: ProgramInfo) -> None:
    for name in info.classes:
        seen = set()
        current: Optional[str] = name
        while current is not None:
            if current in seen:
                raise ResolveError(f"inheritance cycle involving class {name!r}")
            seen.add(current)
            current = info.classes[current].superclass


def _find_event_loops(info: ProgramInfo) -> None:
    for cls in info.program.classes:
        for method in cls.methods:
            for loop in _iter_loops(method.body):
                if loop.label in EVENT_LOOP_LABELS:
                    info.event_loops.append(EventLoop(cls.name, method, loop))


def _iter_loops(stmt: ast.Stmt) -> Iterator[Union[ast.While, ast.For]]:
    if isinstance(stmt, (ast.While, ast.For)):
        yield stmt
        yield from _iter_loops(stmt.body)
    elif isinstance(stmt, ast.Block):
        for child in stmt.stmts:
            yield from _iter_loops(child)
    elif isinstance(stmt, ast.If):
        yield from _iter_loops(stmt.then_body)
        if stmt.else_body is not None:
            yield from _iter_loops(stmt.else_body)


def resolve_program(program: ast.Program) -> ProgramInfo:
    """Build the class table and run structural checks.

    Raises :class:`ResolveError` on duplicate classes/members, unknown
    superclasses, inheritance cycles, or collisions with builtin class
    names.
    """
    info = ProgramInfo(program=program)
    for cls in program.classes:
        if cls.name in info.classes:
            raise ResolveError(f"duplicate class {cls.name!r}")
        if cls.name in BUILTIN_CLASSES:
            raise ResolveError(f"class {cls.name!r} shadows a builtin class")
        info.classes[cls.name] = cls

    for cls in program.classes:
        if cls.superclass is not None and cls.superclass not in info.classes:
            raise ResolveError(
                f"class {cls.name!r} extends unknown class {cls.superclass!r}"
            )
        seen_fields: set[str] = set()
        for fld in cls.fields:
            if fld.name in seen_fields:
                raise ResolveError(
                    f"duplicate field {fld.name!r} in class {cls.name!r}"
                )
            seen_fields.add(fld.name)
        seen_methods: set[str] = set()
        for method in cls.methods:
            if method.name in seen_methods:
                raise ResolveError(
                    f"duplicate method {method.name!r} in class {cls.name!r}"
                )
            seen_methods.add(method.name)

    _check_no_inheritance_cycle(info)
    _find_event_loops(info)
    return info
