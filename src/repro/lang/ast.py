"""Abstract syntax tree for the sjava mini-language.

Every node carries a source position and a process-unique ``uid`` that the
static analyses use as a stable key (e.g. for per-statement dataflow
facts).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional, Union

_UID_COUNTER = itertools.count(1)


def _next_uid() -> int:
    return next(_UID_COUNTER)


@dataclass
class Node:
    line: int = field(default=0, kw_only=True)
    col: int = field(default=0, kw_only=True)
    uid: int = field(default_factory=_next_uid, kw_only=True, compare=False)


# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------


@dataclass
class TypeNode(Node):
    pass


@dataclass
class PrimType(TypeNode):
    """``int``, ``float``, ``boolean``, ``String`` or ``void``."""

    name: str = ""

    def __str__(self) -> str:
        return self.name


@dataclass
class ClassType(TypeNode):
    name: str = ""

    def __str__(self) -> str:
        return self.name


@dataclass
class ArrayType(TypeNode):
    element: TypeNode = None  # type: ignore[assignment]

    def __str__(self) -> str:
        return f"{self.element}[]"


# ---------------------------------------------------------------------------
# Annotations
# ---------------------------------------------------------------------------


@dataclass
class Annotation(Node):
    """An SJava annotation such as ``@LATTICE("A<B")`` or ``@DELEGATE``.

    ``value`` is the raw argument: a string for most annotations, an int
    for ``@MAXLOOP``, or ``None`` for marker annotations.
    """

    name: str = ""
    value: Union[str, int, None] = None


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr(Node):
    pass


@dataclass
class IntLit(Expr):
    value: int = 0


@dataclass
class FloatLit(Expr):
    value: float = 0.0


@dataclass
class BoolLit(Expr):
    value: bool = False


@dataclass
class StringLit(Expr):
    value: str = ""


@dataclass
class NullLit(Expr):
    pass


@dataclass
class VarRef(Expr):
    name: str = ""


@dataclass
class ThisRef(Expr):
    pass


@dataclass
class FieldAccess(Expr):
    obj: Expr = None  # type: ignore[assignment]
    field_name: str = ""


@dataclass
class ArrayAccess(Expr):
    array: Expr = None  # type: ignore[assignment]
    index: Expr = None  # type: ignore[assignment]


@dataclass
class Unary(Expr):
    op: str = ""
    operand: Expr = None  # type: ignore[assignment]


@dataclass
class Binary(Expr):
    op: str = ""
    left: Expr = None  # type: ignore[assignment]
    right: Expr = None  # type: ignore[assignment]


@dataclass
class Call(Expr):
    """A method invocation.

    ``receiver`` is ``None`` for unqualified calls (implicit ``this``).
    Calls on builtin namespaces (``Device.readTemp()``, ``SJ.broadcast(x)``)
    parse with a :class:`VarRef` receiver naming the namespace; symbol
    resolution marks them via :attr:`is_builtin`.
    """

    receiver: Optional[Expr] = None
    method: str = ""
    args: list[Expr] = field(default_factory=list)
    is_builtin: bool = field(default=False, compare=False)


@dataclass
class New(Expr):
    class_name: str = ""
    args: list[Expr] = field(default_factory=list)


@dataclass
class NewArray(Expr):
    element: TypeNode = None  # type: ignore[assignment]
    size: Expr = None  # type: ignore[assignment]


@dataclass
class ArrayLength(Expr):
    array: Expr = None  # type: ignore[assignment]


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt(Node):
    pass


@dataclass
class Block(Stmt):
    stmts: list[Stmt] = field(default_factory=list)


@dataclass
class VarDecl(Stmt):
    name: str = ""
    decl_type: TypeNode = None  # type: ignore[assignment]
    annotations: list[Annotation] = field(default_factory=list)
    init: Optional[Expr] = None


@dataclass
class Assign(Stmt):
    """Assignment; ``op`` is one of ``=``, ``+=``, ``-=``, ``*=``, ``/=``.

    ``i++``/``i--`` are desugared by the parser to ``+=``/``-=`` with an
    ``IntLit(1)`` right-hand side (``was_increment`` records the sugar so
    the termination analysis can report precisely).
    """

    target: Expr = None  # type: ignore[assignment]
    op: str = "="
    value: Expr = None  # type: ignore[assignment]
    was_increment: bool = field(default=False, compare=False)


@dataclass
class If(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    then_body: Stmt = None  # type: ignore[assignment]
    else_body: Optional[Stmt] = None


@dataclass
class While(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    body: Stmt = None  # type: ignore[assignment]
    label: Optional[str] = None
    annotations: list[Annotation] = field(default_factory=list)


@dataclass
class For(Stmt):
    init: Optional[Stmt] = None
    cond: Optional[Expr] = None
    update: Optional[Stmt] = None
    body: Stmt = None  # type: ignore[assignment]
    label: Optional[str] = None
    annotations: list[Annotation] = field(default_factory=list)


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class ExprStmt(Stmt):
    expr: Expr = None  # type: ignore[assignment]


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


@dataclass
class Param(Node):
    name: str = ""
    decl_type: TypeNode = None  # type: ignore[assignment]
    annotations: list[Annotation] = field(default_factory=list)


@dataclass
class FieldDecl(Node):
    name: str = ""
    decl_type: TypeNode = None  # type: ignore[assignment]
    annotations: list[Annotation] = field(default_factory=list)
    is_static: bool = False
    is_final: bool = False
    init: Optional[Expr] = None


@dataclass
class MethodDecl(Node):
    name: str = ""
    return_type: TypeNode = None  # type: ignore[assignment]
    params: list[Param] = field(default_factory=list)
    body: Block = None  # type: ignore[assignment]
    annotations: list[Annotation] = field(default_factory=list)
    is_static: bool = False


@dataclass
class ClassDecl(Node):
    name: str = ""
    superclass: Optional[str] = None
    annotations: list[Annotation] = field(default_factory=list)
    fields: list[FieldDecl] = field(default_factory=list)
    methods: list[MethodDecl] = field(default_factory=list)

    def field_named(self, name: str) -> Optional[FieldDecl]:
        for fld in self.fields:
            if fld.name == name:
                return fld
        return None

    def method_named(self, name: str) -> Optional[MethodDecl]:
        for method in self.methods:
            if method.name == name:
                return method
        return None


@dataclass
class Program(Node):
    classes: list[ClassDecl] = field(default_factory=list)

    def class_named(self, name: str) -> Optional[ClassDecl]:
        for cls in self.classes:
            if cls.name == name:
                return cls
        return None


def annotation_named(
    annotations: list[Annotation], name: str
) -> Optional[Annotation]:
    """Return the first annotation with ``name`` (case-sensitive)."""
    for ann in annotations:
        if ann.name == name:
            return ann
    return None


def iter_child_exprs(expr: Expr) -> list[Expr]:
    """Return the direct sub-expressions of ``expr`` in evaluation order."""
    if isinstance(expr, FieldAccess):
        return [expr.obj]
    if isinstance(expr, ArrayAccess):
        return [expr.array, expr.index]
    if isinstance(expr, Unary):
        return [expr.operand]
    if isinstance(expr, Binary):
        return [expr.left, expr.right]
    if isinstance(expr, Call):
        children = [] if expr.receiver is None else [expr.receiver]
        return children + list(expr.args)
    if isinstance(expr, New):
        return list(expr.args)
    if isinstance(expr, NewArray):
        return [expr.size]
    if isinstance(expr, ArrayLength):
        return [expr.array]
    return []
