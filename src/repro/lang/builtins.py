"""The built-in SJava library visible to mini-language programs.

Three namespaces of static functions are available:

* ``Device`` — input sources.  Every call returns a fresh value for the
  current event-loop iteration, so the location type system assigns the
  results the ⊤ location.
* ``SJ`` — output sinks and utilities.  ``SJ.broadcast`` / ``SJ.print``
  send values out of the program (a flow to ⊥, always permitted).
  ``SJ.fill(array, v)`` overwrites every element of an array; the
  shared-location analysis recognizes it as a simultaneous clear.
* ``Math`` — pure numeric functions whose results take the GLB of the
  argument locations.

One builtin class family is provided: ``OrderedBuffer`` (float elements)
and ``OrderedIntBuffer`` (int elements) — the paper's "SJava library
array" whose ``insert`` shifts all elements down one position and writes
the new value at the head (Section 4.1.3).  The eviction analysis treats
``insert`` as a must-write of the buffer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.lang import types as st

NAMESPACES = frozenset({"Device", "SJ", "Math"})

BUILTIN_CLASSES = frozenset({"OrderedBuffer", "OrderedIntBuffer"})


@dataclass(frozen=True)
class BuiltinSig:
    """Type signature of a builtin function or method.

    ``check`` receives the argument types and returns the result type, or
    ``None`` if the arguments are ill-typed.
    """

    name: str
    check: Callable[[list[st.SType]], Optional[st.SType]]
    #: 'input' (⊤ result), 'output' (sink), 'pure' (GLB of args),
    #: 'fill' (clears an array), or a buffer-method kind.
    kind: str = "pure"


def _fixed(result: st.SType, *params: st.SType) -> Callable:
    expected = list(params)

    def check(args: list[st.SType]) -> Optional[st.SType]:
        if len(args) != len(expected):
            return None
        for got, want in zip(args, expected):
            if not st.assignable(want, got):
                return None
        return result

    return check


def _any_one(result: st.SType) -> Callable:
    def check(args: list[st.SType]) -> Optional[st.SType]:
        if len(args) != 1:
            return None
        return result

    return check


def _numeric_unary(args: list[st.SType]) -> Optional[st.SType]:
    if len(args) == 1 and st.is_numeric(args[0]):
        return args[0]
    return None


def _numeric_binary(args: list[st.SType]) -> Optional[st.SType]:
    if len(args) == 2:
        return st.numeric_join(args[0], args[1])
    return None


def _float_unary(args: list[st.SType]) -> Optional[st.SType]:
    if len(args) == 1 and st.is_numeric(args[0]):
        return st.FLOAT
    return None


def _fill_check(args: list[st.SType]) -> Optional[st.SType]:
    if len(args) != 2:
        return None
    array, value = args
    if isinstance(array, st.ArrayT) and st.assignable(array.element, value):
        return st.VOID
    return None


DEVICE_FUNCTIONS: dict[str, BuiltinSig] = {
    name: BuiltinSig(name, _fixed(result), kind="input")
    for name, result in {
        "readSensor": st.INT,
        "readTemp": st.FLOAT,
        "readHumidity": st.FLOAT,
        "readImage": st.INT,
        "readPixel": st.INT,
        "readSonar": st.INT,
        "readLine": st.INT,
        "readFrame": st.INT,
        "readInt": st.INT,
        "readFloat": st.FLOAT,
        "readSample": st.FLOAT,
        "readScale": st.FLOAT,
        "readHeader": st.INT,
        # Distributed-node inputs (repro.dist): each node's view of the
        # fabric arrives through the same DeviceBus mechanism as sensor
        # input, so distributed programs stay pure sjava.
        "readSelf": st.INT,
        "readLeft": st.INT,
        "readNeighbor": st.INT,
        "readCoin": st.INT,
        "readFlag": st.INT,
        "readParam": st.INT,
    }.items()
}

SJ_FUNCTIONS: dict[str, BuiltinSig] = {
    "broadcast": BuiltinSig("broadcast", _any_one(st.VOID), kind="output"),
    "print": BuiltinSig("print", _any_one(st.VOID), kind="output"),
    "emit": BuiltinSig("emit", _any_one(st.VOID), kind="output"),
    "toStr": BuiltinSig("toStr", _any_one(st.STRING), kind="pure"),
    "fill": BuiltinSig("fill", _fill_check, kind="fill"),
}

MATH_FUNCTIONS: dict[str, BuiltinSig] = {
    "abs": BuiltinSig("abs", _numeric_unary),
    "min": BuiltinSig("min", _numeric_binary),
    "max": BuiltinSig("max", _numeric_binary),
    "sqrt": BuiltinSig("sqrt", _float_unary),
    "sin": BuiltinSig("sin", _float_unary),
    "cos": BuiltinSig("cos", _float_unary),
    "exp": BuiltinSig("exp", _float_unary),
    "pow": BuiltinSig("pow", _fixed(st.FLOAT, st.FLOAT, st.FLOAT)),
    "floor": BuiltinSig("floor", _fixed(st.INT, st.FLOAT)),
    "round": BuiltinSig("round", _fixed(st.INT, st.FLOAT)),
}

NAMESPACE_FUNCTIONS: dict[str, dict[str, BuiltinSig]] = {
    "Device": DEVICE_FUNCTIONS,
    "SJ": SJ_FUNCTIONS,
    "Math": MATH_FUNCTIONS,
}


def _buffer_methods(element: st.SType) -> dict[str, BuiltinSig]:
    return {
        "insert": BuiltinSig("insert", _fixed(st.VOID, element), kind="buffer-insert"),
        "get": BuiltinSig("get", _fixed(element, st.INT), kind="buffer-get"),
        "size": BuiltinSig("size", _fixed(st.INT), kind="buffer-size"),
    }


BUILTIN_CLASS_METHODS: dict[str, dict[str, BuiltinSig]] = {
    "OrderedBuffer": _buffer_methods(st.FLOAT),
    "OrderedIntBuffer": _buffer_methods(st.INT),
}

BUILTIN_CLASS_ELEMENT: dict[str, st.SType] = {
    "OrderedBuffer": st.FLOAT,
    "OrderedIntBuffer": st.INT,
}


def lookup_namespace_function(namespace: str, name: str) -> Optional[BuiltinSig]:
    return NAMESPACE_FUNCTIONS.get(namespace, {}).get(name)


def lookup_builtin_method(class_name: str, name: str) -> Optional[BuiltinSig]:
    return BUILTIN_CLASS_METHODS.get(class_name, {}).get(name)
