"""Semantic types used by the conventional type checker.

These are distinct from the syntactic :class:`repro.lang.ast.TypeNode`
nodes: semantic types are hashable values with structural equality and no
source positions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.lang import ast


@dataclass(frozen=True)
class SType:
    """Base class for semantic types."""


@dataclass(frozen=True)
class PrimT(SType):
    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class ClassT(SType):
    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class ArrayT(SType):
    element: SType

    def __str__(self) -> str:
        return f"{self.element}[]"


@dataclass(frozen=True)
class NullT(SType):
    def __str__(self) -> str:
        return "null"


@dataclass(frozen=True)
class BuiltinClassT(SType):
    """A builtin library class such as ``OrderedBuffer``."""

    name: str

    def __str__(self) -> str:
        return self.name


INT = PrimT("int")
FLOAT = PrimT("float")
BOOLEAN = PrimT("boolean")
STRING = PrimT("String")
VOID = PrimT("void")
NULL = NullT()

_PRIMS = {"int": INT, "float": FLOAT, "boolean": BOOLEAN, "String": STRING,
          "void": VOID}


def is_numeric(stype: SType) -> bool:
    return stype in (INT, FLOAT)


def is_reference(stype: SType) -> bool:
    return isinstance(stype, (ClassT, ArrayT, NullT, BuiltinClassT)) or stype == STRING


def numeric_join(left: SType, right: SType) -> Optional[SType]:
    """The result type of an arithmetic op, or None if non-numeric."""
    if not (is_numeric(left) and is_numeric(right)):
        return None
    if FLOAT in (left, right):
        return FLOAT
    return INT


def from_type_node(node: ast.TypeNode, known_builtin_classes: frozenset[str]) -> SType:
    """Convert a syntactic type to a semantic type.

    Class names in ``known_builtin_classes`` become
    :class:`BuiltinClassT`; all other class names become :class:`ClassT`
    (existence is validated by the resolver).
    """
    if isinstance(node, ast.PrimType):
        return _PRIMS[node.name]
    if isinstance(node, ast.ClassType):
        if node.name in known_builtin_classes:
            return BuiltinClassT(node.name)
        return ClassT(node.name)
    if isinstance(node, ast.ArrayType):
        return ArrayT(from_type_node(node.element, known_builtin_classes))
    raise TypeError(f"unknown type node {node!r}")


def assignable(target: SType, value: SType) -> bool:
    """Conventional (Java-level) assignability: ``target x = value``."""
    if target == value:
        return True
    if target == FLOAT and value == INT:
        return True
    if isinstance(value, NullT) and is_reference(target):
        return True
    return False
