"""Recursive-descent parser for the sjava mini-language.

The grammar is a Java subset extended with SJava's annotation forms
(Fig. 3.3 of the paper) and labeled loops (``SSJAVA:`` marks the main
event loop, ``TERMINATE_x:`` marks developer-verified terminating loops).
"""

from __future__ import annotations

from typing import Optional

from repro.lang import ast
from repro.lang.lexer import tokenize
from repro.lang.tokens import Token, TokenKind


class ParseError(Exception):
    """Raised on a syntax error, with source position."""

    def __init__(self, message: str, token: Token) -> None:
        super().__init__(f"{token.line}:{token.col}: {message}")
        self.token = token


_PRIM_TYPES = {"int", "float", "boolean", "String", "void"}

_ASSIGN_OPS = {
    TokenKind.ASSIGN: "=",
    TokenKind.PLUS_ASSIGN: "+=",
    TokenKind.MINUS_ASSIGN: "-=",
    TokenKind.STAR_ASSIGN: "*=",
    TokenKind.SLASH_ASSIGN: "/=",
}

# Binary operator precedence levels, lowest first.
_BINARY_LEVELS = [
    {TokenKind.OR: "||"},
    {TokenKind.AND: "&&"},
    {TokenKind.EQ: "==", TokenKind.NE: "!="},
    {
        TokenKind.LT: "<",
        TokenKind.GT: ">",
        TokenKind.LE: "<=",
        TokenKind.GE: ">=",
    },
    {TokenKind.PLUS: "+", TokenKind.MINUS: "-"},
    {TokenKind.STAR: "*", TokenKind.SLASH: "/", TokenKind.PERCENT: "%"},
]


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- token helpers ------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def at(self, kind: TokenKind, value: object = None) -> bool:
        token = self.peek()
        if token.kind is not kind:
            return False
        return value is None or token.value == value

    def at_keyword(self, *words: str) -> bool:
        token = self.peek()
        return token.kind is TokenKind.KEYWORD and token.value in words

    def advance(self) -> Token:
        token = self.peek()
        if token.kind is not TokenKind.EOF:
            self.pos += 1
        return token

    def expect(self, kind: TokenKind, value: object = None) -> Token:
        token = self.peek()
        if not self.at(kind, value):
            want = value if value is not None else kind.name
            raise ParseError(f"expected {want}, found {token.value!r}", token)
        return self.advance()

    def expect_keyword(self, word: str) -> Token:
        token = self.peek()
        if not self.at_keyword(word):
            raise ParseError(f"expected '{word}', found {token.value!r}", token)
        return self.advance()

    def pos_of(self, token: Token) -> dict:
        return {"line": token.line, "col": token.col}

    # -- annotations ----------------------------------------------------

    def parse_annotations(self) -> list[ast.Annotation]:
        annotations: list[ast.Annotation] = []
        while self.at(TokenKind.ANNOTATION):
            token = self.advance()
            value: object = None
            if self.at(TokenKind.LPAREN):
                self.advance()
                arg = self.peek()
                if arg.kind is TokenKind.STRING_LIT:
                    value = arg.value
                    self.advance()
                elif arg.kind is TokenKind.INT_LIT:
                    value = arg.value
                    self.advance()
                else:
                    raise ParseError(
                        "annotation argument must be a string or int literal", arg
                    )
                self.expect(TokenKind.RPAREN)
            annotations.append(
                ast.Annotation(name=str(token.value), value=value, **self.pos_of(token))
            )
        return annotations

    # -- types ----------------------------------------------------------

    def looks_like_type(self) -> bool:
        token = self.peek()
        if token.kind is TokenKind.KEYWORD and token.value in _PRIM_TYPES:
            return True
        return token.kind is TokenKind.IDENT

    def parse_type(self) -> ast.TypeNode:
        token = self.peek()
        if token.kind is TokenKind.KEYWORD and token.value in _PRIM_TYPES:
            self.advance()
            base: ast.TypeNode = ast.PrimType(
                name=str(token.value), **self.pos_of(token)
            )
        elif token.kind is TokenKind.IDENT:
            self.advance()
            base = ast.ClassType(name=str(token.value), **self.pos_of(token))
        else:
            raise ParseError(f"expected a type, found {token.value!r}", token)
        while self.at(TokenKind.LBRACKET) and self.peek(1).kind is TokenKind.RBRACKET:
            self.advance()
            self.advance()
            base = ast.ArrayType(element=base, **self.pos_of(token))
        return base

    # -- program / declarations ------------------------------------------

    def parse_program(self) -> ast.Program:
        first = self.peek()
        classes: list[ast.ClassDecl] = []
        while not self.at(TokenKind.EOF):
            classes.append(self.parse_class())
        return ast.Program(classes=classes, **self.pos_of(first))

    def parse_class(self) -> ast.ClassDecl:
        annotations = self.parse_annotations()
        while self.at_keyword("public", "private", "protected", "final"):
            self.advance()
        token = self.expect_keyword("class")
        name = self.expect(TokenKind.IDENT)
        superclass: Optional[str] = None
        if self.at_keyword("extends"):
            self.advance()
            superclass = str(self.expect(TokenKind.IDENT).value)
        self.expect(TokenKind.LBRACE)
        fields: list[ast.FieldDecl] = []
        methods: list[ast.MethodDecl] = []
        while not self.at(TokenKind.RBRACE):
            member = self.parse_member()
            if isinstance(member, ast.FieldDecl):
                fields.append(member)
            else:
                methods.append(member)
        self.expect(TokenKind.RBRACE)
        return ast.ClassDecl(
            name=str(name.value),
            superclass=superclass,
            annotations=annotations,
            fields=fields,
            methods=methods,
            **self.pos_of(token),
        )

    def parse_member(self):
        annotations = self.parse_annotations()
        is_static = False
        is_final = False
        while self.at_keyword("public", "private", "protected", "static", "final"):
            word = self.advance().value
            if word == "static":
                is_static = True
            elif word == "final":
                is_final = True
        # Method return annotations can also appear between modifiers and
        # the return type in real-world SJava code.
        annotations += self.parse_annotations()
        decl_type = self.parse_type()
        name = self.expect(TokenKind.IDENT)
        if self.at(TokenKind.LPAREN):
            return self.parse_method_rest(
                annotations, is_static, decl_type, name
            )
        init: Optional[ast.Expr] = None
        if self.at(TokenKind.ASSIGN):
            self.advance()
            init = self.parse_expr()
        self.expect(TokenKind.SEMI)
        return ast.FieldDecl(
            name=str(name.value),
            decl_type=decl_type,
            annotations=annotations,
            is_static=is_static,
            is_final=is_final,
            init=init,
            **self.pos_of(name),
        )

    def parse_method_rest(
        self,
        annotations: list[ast.Annotation],
        is_static: bool,
        return_type: ast.TypeNode,
        name: Token,
    ) -> ast.MethodDecl:
        self.expect(TokenKind.LPAREN)
        params: list[ast.Param] = []
        if not self.at(TokenKind.RPAREN):
            while True:
                param_annotations = self.parse_annotations()
                param_type = self.parse_type()
                param_name = self.expect(TokenKind.IDENT)
                params.append(
                    ast.Param(
                        name=str(param_name.value),
                        decl_type=param_type,
                        annotations=param_annotations,
                        **self.pos_of(param_name),
                    )
                )
                if self.at(TokenKind.COMMA):
                    self.advance()
                else:
                    break
        self.expect(TokenKind.RPAREN)
        body = self.parse_block()
        return ast.MethodDecl(
            name=str(name.value),
            return_type=return_type,
            params=params,
            body=body,
            annotations=annotations,
            is_static=is_static,
            **self.pos_of(name),
        )

    # -- statements ------------------------------------------------------

    def parse_block(self) -> ast.Block:
        open_brace = self.expect(TokenKind.LBRACE)
        stmts: list[ast.Stmt] = []
        while not self.at(TokenKind.RBRACE):
            stmts.append(self.parse_stmt())
        self.expect(TokenKind.RBRACE)
        return ast.Block(stmts=stmts, **self.pos_of(open_brace))

    def parse_stmt(self) -> ast.Stmt:
        annotations = self.parse_annotations()
        token = self.peek()

        if token.kind is TokenKind.LBRACE:
            return self.parse_block()
        if self.at_keyword("if"):
            return self.parse_if()
        if self.at_keyword("while"):
            return self.parse_while(annotations=annotations)
        if self.at_keyword("for"):
            return self.parse_for(annotations=annotations)
        if self.at_keyword("return"):
            self.advance()
            value = None if self.at(TokenKind.SEMI) else self.parse_expr()
            self.expect(TokenKind.SEMI)
            return ast.Return(value=value, **self.pos_of(token))
        if self.at_keyword("break"):
            self.advance()
            self.expect(TokenKind.SEMI)
            return ast.Break(**self.pos_of(token))
        if self.at_keyword("continue"):
            self.advance()
            self.expect(TokenKind.SEMI)
            return ast.Continue(**self.pos_of(token))

        # Loop label: IDENT ':' loop-statement.
        if token.kind is TokenKind.IDENT and self.peek(1).kind is TokenKind.COLON:
            label = str(self.advance().value)
            self.advance()  # ':'
            inner = self.parse_stmt()
            if isinstance(inner, (ast.While, ast.For)):
                inner.label = label
                return inner
            raise ParseError(f"label {label!r} must precede a loop", token)

        # Variable declaration?
        if self._stmt_starts_var_decl():
            return self.parse_var_decl(annotations)

        return self.parse_expr_or_assign_stmt()

    def _stmt_starts_var_decl(self) -> bool:
        token = self.peek()
        if token.kind is TokenKind.KEYWORD and token.value in _PRIM_TYPES:
            return True
        if token.kind is not TokenKind.IDENT:
            return False
        # `Foo x`, `Foo[] x` are declarations; `foo.x = ...`, `foo(` are not.
        nxt = self.peek(1)
        if nxt.kind is TokenKind.IDENT:
            return True
        if nxt.kind is TokenKind.LBRACKET and self.peek(2).kind is TokenKind.RBRACKET:
            return True
        return False

    def parse_var_decl(self, annotations: list[ast.Annotation]) -> ast.VarDecl:
        decl_type = self.parse_type()
        name = self.expect(TokenKind.IDENT)
        init: Optional[ast.Expr] = None
        if self.at(TokenKind.ASSIGN):
            self.advance()
            init = self.parse_expr()
        self.expect(TokenKind.SEMI)
        return ast.VarDecl(
            name=str(name.value),
            decl_type=decl_type,
            annotations=annotations,
            init=init,
            **self.pos_of(name),
        )

    def parse_if(self) -> ast.If:
        token = self.expect_keyword("if")
        self.expect(TokenKind.LPAREN)
        cond = self.parse_expr()
        self.expect(TokenKind.RPAREN)
        then_body = self.parse_stmt()
        else_body: Optional[ast.Stmt] = None
        if self.at_keyword("else"):
            self.advance()
            else_body = self.parse_stmt()
        return ast.If(
            cond=cond, then_body=then_body, else_body=else_body, **self.pos_of(token)
        )

    def parse_while(self, annotations: list[ast.Annotation]) -> ast.While:
        token = self.expect_keyword("while")
        self.expect(TokenKind.LPAREN)
        cond = self.parse_expr()
        self.expect(TokenKind.RPAREN)
        body = self.parse_stmt()
        return ast.While(
            cond=cond, body=body, annotations=annotations, **self.pos_of(token)
        )

    def parse_for(self, annotations: list[ast.Annotation]) -> ast.For:
        token = self.expect_keyword("for")
        self.expect(TokenKind.LPAREN)
        init: Optional[ast.Stmt] = None
        if not self.at(TokenKind.SEMI):
            init_annotations = self.parse_annotations()
            if self._stmt_starts_var_decl():
                init = self.parse_var_decl(init_annotations)  # consumes ';'
            else:
                if init_annotations:
                    raise ParseError(
                        "annotations in a for-init require a declaration",
                        self.peek(),
                    )
                init = self.parse_simple_assign()
                self.expect(TokenKind.SEMI)
        else:
            self.advance()
        cond: Optional[ast.Expr] = None
        if not self.at(TokenKind.SEMI):
            cond = self.parse_expr()
        self.expect(TokenKind.SEMI)
        update: Optional[ast.Stmt] = None
        if not self.at(TokenKind.RPAREN):
            update = self.parse_simple_assign()
        self.expect(TokenKind.RPAREN)
        body = self.parse_stmt()
        return ast.For(
            init=init,
            cond=cond,
            update=update,
            body=body,
            annotations=annotations,
            **self.pos_of(token),
        )

    def parse_simple_assign(self) -> ast.Stmt:
        """Parse an assignment / increment / call without trailing ';'."""
        token = self.peek()
        expr = self.parse_unary()
        if self.peek().kind in _ASSIGN_OPS:
            op = _ASSIGN_OPS[self.advance().kind]
            value = self.parse_expr()
            self._check_lvalue(expr, token)
            return ast.Assign(target=expr, op=op, value=value, **self.pos_of(token))
        if self.at(TokenKind.INCREMENT) or self.at(TokenKind.DECREMENT):
            op_token = self.advance()
            op = "+=" if op_token.kind is TokenKind.INCREMENT else "-="
            self._check_lvalue(expr, token)
            return ast.Assign(
                target=expr,
                op=op,
                value=ast.IntLit(value=1, **self.pos_of(op_token)),
                was_increment=True,
                **self.pos_of(token),
            )
        if isinstance(expr, (ast.Call, ast.New)):
            return ast.ExprStmt(expr=expr, **self.pos_of(token))
        raise ParseError("expected an assignment or call", token)

    def parse_expr_or_assign_stmt(self) -> ast.Stmt:
        stmt = self.parse_simple_assign()
        self.expect(TokenKind.SEMI)
        return stmt

    @staticmethod
    def _check_lvalue(expr: ast.Expr, token: Token) -> None:
        if not isinstance(expr, (ast.VarRef, ast.FieldAccess, ast.ArrayAccess)):
            raise ParseError("invalid assignment target", token)

    # -- expressions -------------------------------------------------------

    def parse_expr(self) -> ast.Expr:
        return self._parse_binary(0)

    def _parse_binary(self, level: int) -> ast.Expr:
        if level >= len(_BINARY_LEVELS):
            return self.parse_unary()
        ops = _BINARY_LEVELS[level]
        left = self._parse_binary(level + 1)
        while self.peek().kind in ops:
            token = self.advance()
            right = self._parse_binary(level + 1)
            left = ast.Binary(
                op=ops[token.kind], left=left, right=right, **self.pos_of(token)
            )
        return left

    def parse_unary(self) -> ast.Expr:
        token = self.peek()
        if token.kind is TokenKind.MINUS:
            self.advance()
            return ast.Unary(op="-", operand=self.parse_unary(), **self.pos_of(token))
        if token.kind is TokenKind.NOT:
            self.advance()
            return ast.Unary(op="!", operand=self.parse_unary(), **self.pos_of(token))
        if token.kind is TokenKind.LPAREN and self._looks_like_cast():
            self.advance()
            target = self.parse_type()
            self.expect(TokenKind.RPAREN)
            operand = self.parse_unary()
            return ast.Unary(
                op=f"cast:{target}", operand=operand, **self.pos_of(token)
            )
        return self.parse_postfix()

    def _looks_like_cast(self) -> bool:
        # '(' primtype ')' is unambiguously a cast; we do not support
        # class-type casts (the linear type system would forbid the
        # interesting uses anyway).
        nxt = self.peek(1)
        return (
            nxt.kind is TokenKind.KEYWORD
            and nxt.value in {"int", "float", "boolean"}
            and self.peek(2).kind is TokenKind.RPAREN
        )

    def parse_postfix(self) -> ast.Expr:
        expr = self.parse_primary()
        while True:
            if self.at(TokenKind.DOT):
                self.advance()
                name = self.expect(TokenKind.IDENT)
                if self.at(TokenKind.LPAREN):
                    args = self.parse_args()
                    expr = ast.Call(
                        receiver=expr,
                        method=str(name.value),
                        args=args,
                        **self.pos_of(name),
                    )
                elif name.value == "length":
                    expr = ast.ArrayLength(array=expr, **self.pos_of(name))
                else:
                    expr = ast.FieldAccess(
                        obj=expr, field_name=str(name.value), **self.pos_of(name)
                    )
            elif self.at(TokenKind.LBRACKET):
                token = self.advance()
                index = self.parse_expr()
                self.expect(TokenKind.RBRACKET)
                expr = ast.ArrayAccess(array=expr, index=index, **self.pos_of(token))
            else:
                return expr

    def parse_args(self) -> list[ast.Expr]:
        self.expect(TokenKind.LPAREN)
        args: list[ast.Expr] = []
        if not self.at(TokenKind.RPAREN):
            while True:
                args.append(self.parse_expr())
                if self.at(TokenKind.COMMA):
                    self.advance()
                else:
                    break
        self.expect(TokenKind.RPAREN)
        return args

    def parse_primary(self) -> ast.Expr:
        token = self.peek()
        pos = self.pos_of(token)
        if token.kind is TokenKind.INT_LIT:
            self.advance()
            return ast.IntLit(value=int(token.value), **pos)
        if token.kind is TokenKind.FLOAT_LIT:
            self.advance()
            return ast.FloatLit(value=float(token.value), **pos)
        if token.kind is TokenKind.STRING_LIT:
            self.advance()
            return ast.StringLit(value=str(token.value), **pos)
        if self.at_keyword("true"):
            self.advance()
            return ast.BoolLit(value=True, **pos)
        if self.at_keyword("false"):
            self.advance()
            return ast.BoolLit(value=False, **pos)
        if self.at_keyword("null"):
            self.advance()
            return ast.NullLit(**pos)
        if self.at_keyword("this"):
            self.advance()
            return ast.ThisRef(**pos)
        if self.at_keyword("new"):
            return self.parse_new()
        if token.kind is TokenKind.LPAREN:
            self.advance()
            expr = self.parse_expr()
            self.expect(TokenKind.RPAREN)
            return expr
        if token.kind is TokenKind.IDENT:
            self.advance()
            if self.at(TokenKind.LPAREN):
                args = self.parse_args()
                return ast.Call(receiver=None, method=str(token.value), args=args, **pos)
            return ast.VarRef(name=str(token.value), **pos)
        raise ParseError(f"unexpected token {token.value!r}", token)

    def parse_new(self) -> ast.Expr:
        token = self.expect_keyword("new")
        pos = self.pos_of(token)
        type_token = self.peek()
        if type_token.kind is TokenKind.KEYWORD and type_token.value in _PRIM_TYPES:
            self.advance()
            element: ast.TypeNode = ast.PrimType(
                name=str(type_token.value), **self.pos_of(type_token)
            )
            self.expect(TokenKind.LBRACKET)
            size = self.parse_expr()
            self.expect(TokenKind.RBRACKET)
            return ast.NewArray(element=element, size=size, **pos)
        name = self.expect(TokenKind.IDENT)
        if self.at(TokenKind.LBRACKET):
            self.advance()
            size = self.parse_expr()
            self.expect(TokenKind.RBRACKET)
            element = ast.ClassType(name=str(name.value), **self.pos_of(name))
            return ast.NewArray(element=element, size=size, **pos)
        args = self.parse_args()
        return ast.New(class_name=str(name.value), args=args, **pos)


def parse_program(source: str) -> ast.Program:
    """Parse sjava ``source`` text into a :class:`repro.lang.ast.Program`."""
    return _Parser(tokenize(source)).parse_program()
