"""repro.dist — distributed self-stabilization on a simulated fabric.

N pure-sjava program instances (one per node) execute on the unchanged
single-node backends; a message-passing fabric with pluggable topologies
(ring, line, grid) and schedulers (synchronous, round-robin, random,
adversarially biased) delivers each node's view of its neighborhood
through the ordinary DeviceBus.  Composite corruption sites (node x
local site) make the whole fabric sweepable by the existing campaign
machinery.  See docs/DISTRIBUTED.md.
"""

from repro.dist.harness import (
    DistAppSpec,
    DistExperiment,
    NodeView,
    SimResult,
    coin_bit,
)
from repro.dist.registry import (
    DIST_APP_NAMES,
    dist_app_experiment,
    dist_app_spec,
)
from repro.dist.scheduler import SCHEDULER_NAMES, Scheduler, make_scheduler
from repro.dist.topology import (
    TOPOLOGY_KINDS,
    Topology,
    TopologyError,
    make_topology,
)

__all__ = [
    "DIST_APP_NAMES",
    "DistAppSpec",
    "DistExperiment",
    "NodeView",
    "SCHEDULER_NAMES",
    "Scheduler",
    "SimResult",
    "TOPOLOGY_KINDS",
    "Topology",
    "TopologyError",
    "coin_bit",
    "dist_app_experiment",
    "dist_app_spec",
    "make_scheduler",
    "make_topology",
]
