"""The bundled distributed apps and their fabric wiring.

Every entry pairs a pure-sjava program (under
``src/repro/apps/programs/``, checked self-stabilizing by the static
checker like every single-node app) with the fabric-side facts the
harness needs: state width, initial states, the device view (how
``Device.readX`` calls map onto fabric state), the legitimacy predicate
its verdicts are decided against, and the topology/scheduler/horizon
defaults.  Everything is derivable from the app name alone, which is
what lets campaign pool workers reconstruct an experiment from a plain
string.

Convergence-bound expectations (documented in docs/DISTRIBUTED.md):

* ``herman_bit`` / ``herman_pass`` — odd ring, expected O(N^2) rounds;
* ``dijkstra_ring`` — K-state ring (K = N + 2), O(N) round-robin sweeps;
* ``gradient_field`` — at most diameter + 1 synchronous rounds after a
  single-node corruption of a converged field;
* ``gradient_channel`` — three stacked gradients; the composite
  re-stabilizes from every corruption (compositionality).
"""

from __future__ import annotations

from typing import Optional

from repro.apps.registry import DIST_APP_NAMES, load_app
from repro.dist.harness import MAX_DEGREE, PAD, DistAppSpec, DistExperiment, NodeView
from repro.dist.scheduler import make_scheduler
from repro.dist.topology import Topology, make_topology

__all__ = [
    "DIST_APP_NAMES",
    "dist_app_spec",
    "dist_app_experiment",
]


def _bit(value: int) -> int:
    return 1 if value != 0 else 0


def _fold(value: int, k: int) -> int:
    return ((value % k) + k) % k


# -- Herman's token ring ----------------------------------------------------


def _herman_init(node: int, topo: Topology) -> tuple:
    return (0,)


def _herman_read(view: NodeView, name: str, index: int) -> int:
    if name == "readSelf":
        return view.state[0]
    if name == "readLeft":
        return view.left_state[0]
    if name == "readCoin":
        return view.coin
    return 0


def _herman_legitimate(
    states: list, reference: list, topo: Topology, params: dict
) -> bool:
    bits = [_bit(s[0]) for s in states]
    tokens = sum(
        1 for i in range(len(bits)) if bits[i] == bits[i - 1]
    )
    return tokens == 1


# -- Dijkstra's K-state ring ------------------------------------------------


def _dijkstra_params(topo: Topology) -> dict:
    return {"k": topo.nodes + 2}


def _dijkstra_read(view: NodeView, name: str, index: int) -> int:
    if name == "readSelf":
        return view.state[0]
    if name == "readLeft":
        return view.left_state[0]
    if name == "readParam":
        return view.params["k"]
    if name == "readFlag":
        return 1 if view.node == 0 else 0
    return 0


def _dijkstra_legitimate(
    states: list, reference: list, topo: Topology, params: dict
) -> bool:
    k = params["k"]
    values = [_fold(s[0], k) for s in states]
    privileged = sum(
        1 for i in range(len(values))
        if (values[i] == values[i - 1]) == (i == 0)
    )
    return privileged == 1


# -- Gradient (hop-count) field ---------------------------------------------


def _gradient_read(view: NodeView, name: str, index: int) -> int:
    if name == "readFlag":
        return 1 if view.node == 0 else 0
    if name == "readNeighbor":
        if index < len(view.neighbor_states):
            return view.neighbor_states[index][0]
        return PAD
    return 0


def _trajectory_legitimate(
    states: list, reference: list, topo: Topology, params: dict
) -> bool:
    return list(states) == list(reference)


# -- Composed gradients (the channel) ---------------------------------------


def _channel_source_b(topo: Topology) -> int:
    # Off-center on purpose: with B at the far end of a symmetric
    # topology every node sits on a shortest A-B path and the channel
    # degenerates to the whole graph.
    return (2 * (topo.nodes - 1)) // 3


def _channel_params(topo: Topology) -> dict:
    return {"limit": topo.distance(0, _channel_source_b(topo))}


def _channel_read(view: NodeView, name: str, index: int) -> int:
    if name == "readFlag":
        if index == 0:
            return 1 if view.node == 0 else 0
        return 1 if view.node == _channel_source_b(view.topology) else 0
    if name == "readParam":
        return view.params["limit"]
    if name == "readNeighbor":
        slot, component = divmod(index, 3)
        if slot < len(view.neighbor_states):
            return view.neighbor_states[slot][component]
        return PAD
    return 0


_SPECS: dict[str, DistAppSpec] = {
    "herman_bit": DistAppSpec(
        name="herman_bit",
        program="herman_bit.sj",
        state_width=1,
        topology="ring:5",
        scheduler="synchronous",
        rounds=16,
        recovery_window=32,
        init=_herman_init,
        read=_herman_read,
        legitimate=_herman_legitimate,
        params=lambda topo: {},
        summary="Herman token ring, random-bit interpretation",
    ),
    "herman_pass": DistAppSpec(
        name="herman_pass",
        program="herman_pass.sj",
        state_width=1,
        topology="ring:5",
        scheduler="synchronous",
        rounds=16,
        recovery_window=32,
        init=_herman_init,
        read=_herman_read,
        legitimate=_herman_legitimate,
        params=lambda topo: {},
        summary="Herman token ring, random-pass interpretation",
    ),
    "dijkstra_ring": DistAppSpec(
        name="dijkstra_ring",
        program="dijkstra_ring.sj",
        state_width=1,
        topology="ring:5",
        scheduler="round-robin",
        rounds=12,
        recovery_window=24,
        init=lambda node, topo: (0,),
        read=_dijkstra_read,
        legitimate=_dijkstra_legitimate,
        params=_dijkstra_params,
        summary="Dijkstra K-state token ring (K = N + 2)",
    ),
    "gradient_field": DistAppSpec(
        name="gradient_field",
        program="gradient_field.sj",
        state_width=1,
        topology="grid:3x3",
        scheduler="synchronous",
        rounds=10,
        recovery_window=10,
        init=lambda node, topo: (0,),
        read=_gradient_read,
        legitimate=_trajectory_legitimate,
        params=lambda topo: {},
        summary="hop-count gradient field from a single source",
    ),
    "gradient_channel": DistAppSpec(
        name="gradient_channel",
        program="gradient_channel.sj",
        state_width=3,
        topology="line:7",
        scheduler="synchronous",
        rounds=12,
        recovery_window=20,
        init=lambda node, topo: (0, 0, 0),
        read=_channel_read,
        legitimate=_trajectory_legitimate,
        params=_channel_params,
        summary="three stacked gradients (compositionality channel)",
    ),
}

assert tuple(_SPECS) == DIST_APP_NAMES


def dist_app_spec(name: str) -> DistAppSpec:
    if name not in _SPECS:
        raise KeyError(
            f"unknown distributed app {name!r}; available: {DIST_APP_NAMES}"
        )
    return _SPECS[name]


def dist_app_experiment(
    name: str,
    iterations: Optional[int] = None,
    *,
    step_budget: Optional[int] = None,
    step_budget_factor: Optional[int] = None,
    topology: Optional[str] = None,
    scheduler: Optional[str] = None,
    seed: int = 0,
    engine: Optional[type] = None,
) -> DistExperiment:
    """A ready-to-run distributed experiment, derivable from the app
    name alone (campaign workers reconstruct it from a string, exactly
    like :func:`repro.apps.registry.app_experiment`).  ``iterations``
    maps onto fabric *rounds* (the injection horizon)."""
    spec = dist_app_spec(name)
    topo = make_topology(topology or spec.topology)
    if spec.name.startswith(("herman", "dijkstra")) and topo.kind != "ring":
        raise ValueError(f"{name} needs a ring topology, got {topo.spec!r}")
    if spec.name.startswith("herman") and topo.nodes % 2 == 0:
        raise ValueError(f"{name} needs an odd ring (token-count parity)")
    bundle = load_app(name)
    kwargs = {}
    if engine is not None:
        kwargs["engine"] = engine
    return DistExperiment(
        spec=spec,
        info=bundle.info,
        topology=topo,
        scheduler=make_scheduler(scheduler or spec.scheduler, seed=seed),
        rounds=iterations if iterations is not None else spec.rounds,
        recovery_window=spec.recovery_window,
        step_budget=step_budget,
        step_budget_factor=step_budget_factor,
        seed=seed,
        **kwargs,
    )
