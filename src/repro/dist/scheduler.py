"""Activation schedulers — the fabric's daemon.

Self-stabilization proofs quantify over the scheduler (the "daemon"),
so the fabric makes it pluggable:

* ``synchronous`` — every node activates each round on a snapshot of the
  previous round's states (double-buffered commit); the model the
  gradient diameter bound and synchronous Herman are stated in.
* ``round-robin`` — one full sweep 0..N-1 per round with immediate
  commits; the classic central-daemon model Dijkstra's ring assumes.
* ``random`` — a seeded random permutation per round, immediate commits.
* ``biased`` — an adversarially unfair daemon: N weighted draws (with
  replacement, low node ids strongly favored) per round, so some nodes
  can starve for many rounds.

Schedules depend only on ``(seed, round)``, never on history, so the
reference run and every injected run see the identical daemon — the
property that makes trials comparable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

SCHEDULER_NAMES = ("synchronous", "round-robin", "random", "biased")


class SchedulerError(ValueError):
    """An unknown scheduler was requested."""


@dataclass(frozen=True)
class Scheduler:
    name: str
    #: Synchronous rounds snapshot states before activating anyone;
    #: asynchronous rounds commit each activation immediately.
    synchronous: bool
    seed: int = 0

    def order(self, round_index: int, nodes: int) -> list[int]:
        """Activation order for one round."""
        if self.name in ("synchronous", "round-robin"):
            return list(range(nodes))
        rng = random.Random(f"{self.seed}:{self.name}:{round_index}")
        if self.name == "random":
            order = list(range(nodes))
            rng.shuffle(order)
            return order
        # biased: weighted draws with replacement favoring low ids
        weights = [1.0 / (1 + i) ** 2 for i in range(nodes)]
        return rng.choices(range(nodes), weights=weights, k=nodes)


def make_scheduler(name: str, seed: int = 0) -> Scheduler:
    if name not in SCHEDULER_NAMES:
        raise SchedulerError(
            f"unknown scheduler {name!r}; available: {SCHEDULER_NAMES}"
        )
    return Scheduler(name=name, synchronous=(name == "synchronous"), seed=seed)
