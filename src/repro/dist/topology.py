"""Fabric topologies for distributed stabilization experiments.

A topology is a small immutable graph: node count, per-node ordered
neighbor lists, and the metric facts (diameter, pairwise distances) the
convergence bounds are stated against.  Specs are compact strings so
they fit in CLI flags and campaign configs:

* ``ring:5``   — bidirectional ring of 5 nodes (``left`` is defined);
* ``line:7``   — path graph of 7 nodes;
* ``grid:3x3`` — 4-connected grid, row-major node numbering.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from functools import lru_cache

TOPOLOGY_KINDS = ("ring", "line", "grid")


class TopologyError(ValueError):
    """A topology spec could not be parsed or is unusable."""


@dataclass(frozen=True)
class Topology:
    """An immutable fabric graph."""

    kind: str
    spec: str
    nodes: int
    #: Per-node ordered neighbor ids; order is the contract the
    #: ``Device.readNeighbor`` slot numbering follows.
    neighbors: tuple[tuple[int, ...], ...]

    @property
    def max_degree(self) -> int:
        return max(len(n) for n in self.neighbors)

    def left(self, node: int) -> int:
        """The ring predecessor (token-ring programs read it as
        ``Device.readLeft``)."""
        if self.kind != "ring":
            raise TopologyError(f"left() needs a ring, not {self.kind!r}")
        return (node - 1) % self.nodes

    def distances_from(self, start: int) -> tuple[int, ...]:
        """BFS hop distances from ``start`` to every node."""
        dist = [-1] * self.nodes
        dist[start] = 0
        queue = deque([start])
        while queue:
            u = queue.popleft()
            for v in self.neighbors[u]:
                if dist[v] < 0:
                    dist[v] = dist[u] + 1
                    queue.append(v)
        return tuple(dist)

    def distance(self, a: int, b: int) -> int:
        return self.distances_from(a)[b]

    @property
    def diameter(self) -> int:
        return max(max(self.distances_from(u)) for u in range(self.nodes))


def _ring(n: int) -> tuple[tuple[int, ...], ...]:
    return tuple(((i - 1) % n, (i + 1) % n) for i in range(n))


def _line(n: int) -> tuple[tuple[int, ...], ...]:
    return tuple(
        tuple(j for j in (i - 1, i + 1) if 0 <= j < n) for i in range(n)
    )


def _grid(rows: int, cols: int) -> tuple[tuple[int, ...], ...]:
    def at(r: int, c: int) -> int:
        return r * cols + c

    out = []
    for r in range(rows):
        for c in range(cols):
            cell = []
            for dr, dc in ((-1, 0), (1, 0), (0, -1), (0, 1)):
                rr, cc = r + dr, c + dc
                if 0 <= rr < rows and 0 <= cc < cols:
                    cell.append(at(rr, cc))
            out.append(tuple(cell))
    return tuple(out)


@lru_cache(maxsize=None)
def make_topology(spec: str) -> Topology:
    """Parse a topology spec string (``ring:5``, ``line:7``, ``grid:3x3``)."""
    kind, _, arg = spec.partition(":")
    if kind not in TOPOLOGY_KINDS or not arg:
        raise TopologyError(
            f"bad topology spec {spec!r}; expected one of "
            f"ring:N, line:N, grid:RxC"
        )
    try:
        if kind == "grid":
            rows_s, _, cols_s = arg.partition("x")
            rows, cols = int(rows_s), int(cols_s)
            if rows < 1 or cols < 1:
                raise ValueError
            neighbors = _grid(rows, cols)
            n = rows * cols
        else:
            n = int(arg)
            if n < 2 or (kind == "ring" and n < 3):
                raise ValueError
            neighbors = _ring(n) if kind == "ring" else _line(n)
    except ValueError as exc:
        raise TopologyError(f"bad topology spec {spec!r}") from exc
    return Topology(kind=kind, spec=spec, nodes=n, neighbors=neighbors)
