"""The distributed node harness and message-passing fabric.

N independent sjava program instances — one per fabric node — executed
by the *unchanged* single-node backends (tree-walking interpreter or the
closure compiler).  Each activation runs one node's program for exactly
one event-loop iteration on an :class:`IterationKeyedDevice` whose
generator exposes that node's view of the fabric (own state, neighbor
states, coins, role flags, protocol parameters); the values the program
``SJ.broadcast``-s become the node's next state.  Programs therefore
stay pure sjava and every one of them passes the static
self-stabilization checker.

Fault injection reuses :class:`~repro.runtime.injection.ErrorInjector`
unchanged: a *composite site* is ``(node, local step)`` where local
steps are the injectable sites of that node's activations concatenated
in schedule order.  :class:`DistExperiment` mirrors the
:class:`~repro.runtime.stabilization.StabilizationExperiment` interface
(``total_steps`` / ``trial_at`` / ``trial``), which is what lets
``repro.runtime.campaign`` sweep distributed apps with no new worker
protocol.

Verdicts are decided against a per-app *legitimacy predicate* (a closed
set of states) rather than exact reference-trajectory matching, because
randomized protocols (Herman) recover to the legitimate set, not to the
reference trajectory; deterministic apps (gradient) use trajectory
equality as their predicate, which coincides with the classic notion.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.lang.symtab import ProgramInfo
from repro.obs import get_tracer
from repro.obs.events import get_event_log
from repro.runtime.devices import IterationKeyedDevice
from repro.runtime.injection import ErrorInjector, StepCounter
from repro.runtime.interpreter import (
    Interpreter,
    RuntimeOptions,
    StepBudgetExceeded,
    state_digest,
)
from repro.runtime.stabilization import InjectionTrial

from repro.dist.scheduler import Scheduler
from repro.dist.topology import Topology

#: Neighbor slots a program reads; absent slots are padded by the spec.
MAX_DEGREE = 4

#: Value padding absent neighbor slots in min-gradient reads (neutral
#: for the min because programs clamp reads into [0, 9998]).
PAD = 9998


def coin_bit(seed: int, round_index: int, node: int) -> int:
    """Deterministic fair coin, a pure function of (seed, round, node) —
    never of history, so reference and injected runs draw the identical
    coin sequence.  SHA-256, not CRC32: CRC is linear over GF(2), and
    its low bit across near-identical keys is so correlated that Herman
    tokens march in lockstep and never annihilate."""
    key = f"{seed}:{round_index}:{node}".encode("ascii")
    return hashlib.sha256(key).digest()[0] & 1


@dataclass
class NodeView:
    """What one activation of one node can observe."""

    node: int
    nodes: int
    round_index: int
    state: tuple
    left_state: tuple
    neighbor_states: list[tuple]
    coin: int
    params: dict
    topology: Topology


class _RoundInjector:
    """Adapts an :class:`ErrorInjector` to the fabric's round clock.

    Every activation is iteration 0 of a fresh engine run, so the
    interpreter's own ``begin_iteration(0)`` calls are dropped and the
    fabric advances the inner injector's clock once per round —
    ``injection_iteration`` then records the fabric *round*.
    """

    def __init__(self, inner: ErrorInjector) -> None:
        self.inner = inner

    def begin_round(self, round_index: int) -> None:
        self.inner.begin_iteration(round_index)

    def begin_iteration(self, iteration: int) -> None:  # noqa: ARG002
        pass

    def site(self, value: object, node: object) -> object:
        return self.inner.site(value, node)


@dataclass
class SimResult:
    """One fabric simulation: committed states per round, plus meters."""

    #: ``trajectory[r][i]`` — node ``i``'s state tuple after round ``r``.
    trajectory: list[tuple[tuple, ...]]
    steps: int
    errors: int

    def node_trace(self, node: int) -> list[tuple]:
        return [states[node] for states in self.trajectory]

    def node_digest(self, node: int) -> str:
        flat = [c for states in self.trajectory for c in states[node]]
        return state_digest(flat)


@dataclass(frozen=True)
class DistAppSpec:
    """Everything that defines one distributed app (see
    :mod:`repro.dist.registry` for the bundled ones)."""

    name: str
    program: str
    state_width: int
    topology: str
    scheduler: str
    #: Rounds whose activations are injectable (the site horizon).
    rounds: int
    #: Extra rounds simulated past the horizon so a fault injected in
    #: the last injectable round still has room to recover.
    recovery_window: int
    init: Callable[[int, Topology], tuple]
    read: Callable[[NodeView, str, int], int]
    #: legitimate(states, reference_states_same_round, topology, params)
    legitimate: Callable[[list, list, Topology, dict], bool]
    params: Callable[[Topology], dict]
    summary: str = ""


@dataclass
class DistExperiment:
    """Reference + injected fabric simulations of one distributed app.

    Interface-compatible with
    :class:`~repro.runtime.stabilization.StabilizationExperiment` where
    campaigns touch it: ``total_steps()``, ``trial_at(site, seed,
    burst)``, ``trial(seed, burst)``, ``run_trials(...)``.
    """

    spec: DistAppSpec
    info: ProgramInfo
    topology: Topology
    scheduler: Scheduler
    rounds: int
    recovery_window: int
    engine: type = Interpreter
    step_budget: Optional[int] = None
    step_budget_factor: Optional[int] = None
    seed: int = 0
    _reference: Optional[SimResult] = field(default=None, repr=False)
    _site_counts: Optional[list[int]] = None

    # -- fabric simulation ------------------------------------------------

    @property
    def nodes(self) -> int:
        return self.topology.nodes

    def horizon(self) -> int:
        return self.rounds + self.recovery_window

    def _view(
        self, node: int, round_index: int, states: list[tuple]
    ) -> NodeView:
        topo = self.topology
        left = topo.left(node) if topo.kind == "ring" else node
        return NodeView(
            node=node,
            nodes=topo.nodes,
            round_index=round_index,
            state=states[node],
            left_state=states[left],
            neighbor_states=[states[j] for j in topo.neighbors[node]],
            coin=coin_bit(self.seed, round_index, node),
            params=self.spec.params(topo),
            topology=topo,
        )

    def _activate(
        self,
        node: int,
        round_index: int,
        states: list[tuple],
        injector: Optional[object],
        budget: Optional[int],
    ):
        view = self._view(node, round_index, states)
        read = self.spec.read

        def generator(name: str, iteration: int, index: int) -> object:
            return read(view, name, index)

        engine = self.engine(
            self.info,
            IterationKeyedDevice(generator, iterations=1),
            options=RuntimeOptions(ignore_errors=True, step_budget=budget),
            injector=injector,
        )
        engine.run()
        width = self.spec.state_width
        out = engine.sink.values[-width:]
        if len(out) == width and all(
            isinstance(v, (bool, int)) for v in out
        ):
            new_state = tuple(int(v) for v in out)
        else:
            # A crash-avoided activation that lost its broadcasts keeps
            # the previous state (an omission fault, not a new value).
            new_state = states[node]
        return new_state, engine.steps, len(engine.error_log)

    def simulate(
        self,
        rounds: int,
        initial: Optional[list[tuple]] = None,
        injector: Optional[object] = None,
        inject_node: Optional[int] = None,
        step_budget: Optional[int] = None,
        start_round: int = 0,
    ) -> SimResult:
        """Run the fabric for ``rounds`` rounds.  ``injector`` (if any)
        is attached to ``inject_node``'s activations only; pass a
        :class:`_RoundInjector`-wrapped injector so its iteration clock
        tracks fabric rounds.  Raises :class:`StepBudgetExceeded` when
        the cumulative step budget runs out."""
        topo = self.topology
        states: list[tuple] = list(
            initial
            if initial is not None
            else [self.spec.init(i, topo) for i in range(topo.nodes)]
        )
        trajectory: list[tuple[tuple, ...]] = []
        steps = 0
        errors = 0
        for r in range(start_round, start_round + rounds):
            if injector is not None:
                injector.begin_round(r)
            order = self.scheduler.order(r, topo.nodes)
            source = list(states) if self.scheduler.synchronous else states
            staged: dict[int, tuple] = {}
            for node in order:
                budget = (
                    step_budget - steps if step_budget is not None else None
                )
                node_injector = injector if node == inject_node else None
                new_state, used, errs = self._activate(
                    node, r, source, node_injector, budget
                )
                steps += used
                errors += errs
                if self.scheduler.synchronous:
                    staged[node] = new_state
                else:
                    states[node] = new_state
            if self.scheduler.synchronous:
                for node, new_state in staged.items():
                    states[node] = new_state
            trajectory.append(tuple(states))
        return SimResult(trajectory=trajectory, steps=steps, errors=errors)

    # -- reference + site bookkeeping ------------------------------------

    def reference(self) -> SimResult:
        if self._reference is None:
            self._reference = self.simulate(self.horizon())
        return self._reference

    def reference_steps(self) -> int:
        return self.reference().steps

    def node_site_counts(self) -> list[int]:
        """Injectable sites per node across the injection horizon."""
        if self._site_counts is None:
            counters = [StepCounter() for _ in range(self.nodes)]

            class _Fanout:
                def __init__(self, counters):
                    self.counters = counters
                    self.node: Optional[int] = None

                def begin_round(self, r):  # noqa: ARG002
                    pass

                def begin_iteration(self, i):  # noqa: ARG002
                    pass

                def site(self, value, node):
                    self.counters[self.node].site(value, node)
                    return value

            fanout = _Fanout(counters)
            # Run the counting simulation manually so every node gets
            # its own counter: reuse simulate() per-node attachment by
            # swapping the fanout's target inside _activate order.
            topo = self.topology
            states = [self.spec.init(i, topo) for i in range(topo.nodes)]
            for r in range(self.rounds):
                order = self.scheduler.order(r, topo.nodes)
                source = (
                    list(states) if self.scheduler.synchronous else states
                )
                staged: dict[int, tuple] = {}
                for node in order:
                    fanout.node = node
                    new_state, _, _ = self._activate(
                        node, r, source, fanout, None
                    )
                    if self.scheduler.synchronous:
                        staged[node] = new_state
                    else:
                        states[node] = new_state
                if self.scheduler.synchronous:
                    for node, new_state in staged.items():
                        states[node] = new_state
            self._site_counts = [c.step for c in counters]
        return self._site_counts

    def total_steps(self) -> int:
        """Composite injectable sites: sum over nodes of per-node sites."""
        return sum(self.node_site_counts())

    def site_location(self, site: int) -> tuple[int, int]:
        """Map a composite site to ``(node, local step)``."""
        remaining = site
        for node, count in enumerate(self.node_site_counts()):
            if remaining < count:
                return node, remaining
            remaining -= count
        # Out-of-range sites degrade to a never-firing local step on the
        # last node (the trial reports not-injected), mirroring how the
        # single-node injector treats an over-large target.
        return self.nodes - 1, remaining + self.node_site_counts()[-1]

    def site_of(self, node: int, local_step: int) -> int:
        """Inverse of :meth:`site_location` (for tests and tools)."""
        return sum(self.node_site_counts()[:node]) + local_step

    # -- trials -----------------------------------------------------------

    def _trial_budget(self) -> Optional[int]:
        if self.step_budget is not None:
            return self.step_budget
        if self.step_budget_factor is not None:
            return max(1000, self.step_budget_factor * self.reference_steps())
        return None

    def trial(self, seed: int, burst: int = 1) -> InjectionTrial:
        rng = random.Random(seed)
        target = rng.randrange(max(1, self.total_steps()))
        return self.trial_at(target, seed=seed, burst=burst)

    def run_trials(
        self, count: int, seed: int = 0, burst: int = 1
    ) -> list[InjectionTrial]:
        return [self.trial(seed + i, burst=burst) for i in range(count)]

    def trial_at(
        self, target_step: int, seed: int, burst: int = 1
    ) -> InjectionTrial:
        node, local = self.site_location(target_step)
        with get_tracer().span(
            "dist_trial",
            app=self.spec.name,
            site=target_step,
            node=node,
            seed=seed,
            burst=burst,
        ) as span:
            trial = self._trial_at(node, local, target_step, seed, burst)
            span.set_attr("timed_out", trial.timed_out)
            span.set_attr("diverged", trial.diverged)
        return trial

    def _trial_at(
        self, node: int, local: int, target_step: int, seed: int, burst: int
    ) -> InjectionTrial:
        events = get_event_log()
        if local >= self.node_site_counts()[node]:
            # The composite site space covers the injection horizon
            # (``self.rounds``) only; an over-large target must never
            # fire — not even inside the recovery window the trial
            # simulation appends after the horizon.
            events.emit(
                "trial.not_injected", level="debug",
                app=self.spec.name, site=target_step, node=node, seed=seed,
            )
            return InjectionTrial(
                target_step=target_step,
                injection_iteration=None,
                corrupted_output=False,
                recovery_samples=None,
                recovery_iterations=None,
                error_log_size=self.reference().errors,
                node=node,
            )
        inner = ErrorInjector(target_step=local, seed=seed + 1, burst=burst)
        injector = _RoundInjector(inner)
        try:
            sim = self.simulate(
                self.horizon(),
                injector=injector,
                inject_node=node,
                step_budget=self._trial_budget(),
            )
        except StepBudgetExceeded:
            events.emit(
                "trial.timeout",
                "step-budget watchdog stopped a runaway injected fabric",
                level="warn",
                app=self.spec.name,
                site=target_step,
                node=node,
                seed=seed,
            )
            return InjectionTrial(
                target_step=target_step,
                injection_iteration=inner.injection_iteration,
                corrupted_output=True,
                recovery_samples=None,
                recovery_iterations=None,
                timed_out=True,
                node=node,
            )
        injection_round = inner.injection_iteration
        if injection_round is None:
            events.emit(
                "trial.not_injected", level="debug",
                app=self.spec.name, site=target_step, node=node, seed=seed,
            )
            return InjectionTrial(
                target_step=target_step,
                injection_iteration=None,
                corrupted_output=False,
                recovery_samples=None,
                recovery_iterations=None,
                error_log_size=sim.errors,
                node=node,
            )
        events.emit(
            "trial.corrupted",
            "fault injected into fabric node",
            level="info",
            app=self.spec.name,
            site=target_step,
            node=node,
            seed=seed,
            iteration=injection_round,
        )
        return self._classify(sim, node, target_step, injection_round, events)

    def _classify(
        self, sim: SimResult, node: int, target_step: int,
        injection_round: int, events,
    ) -> InjectionTrial:
        reference = self.reference()
        horizon = len(sim.trajectory)
        n = self.nodes
        params = self.spec.params(self.topology)
        node_divergence = [
            [
                int(sim.trajectory[r][i] != reference.trajectory[r][i])
                for i in range(n)
            ]
            for r in range(horizon)
        ]
        divergence = [sum(row) for row in node_divergence]
        legit = [
            self.spec.legitimate(
                list(sim.trajectory[r]),
                list(reference.trajectory[r]),
                self.topology,
                params,
            )
            for r in range(horizon)
        ]
        illegitimate = [
            r for r in range(injection_round, horizon) if not legit[r]
        ]
        node_digests = [sim.node_digest(i) for i in range(n)]
        corrupted = any(divergence[injection_round:])
        if not illegitimate:
            # Never left the legitimate set: the fault was masked (even
            # if the trajectory drifted to a different legitimate path).
            events.emit(
                "trial.masked", level="debug",
                app=self.spec.name, site=target_step, node=node,
                iteration=injection_round,
            )
            return InjectionTrial(
                target_step=target_step,
                injection_iteration=injection_round,
                corrupted_output=corrupted,
                recovery_samples=None,
                recovery_iterations=None,
                error_log_size=sim.errors,
                divergence=divergence,
                node=node,
                node_divergence=node_divergence,
                node_digests=node_digests,
            )
        if illegitimate[-1] == horizon - 1:
            events.emit(
                "trial.diverged",
                "fabric never returned to the legitimate set",
                level="error",
                app=self.spec.name,
                site=target_step,
                node=node,
                iteration=injection_round,
            )
            return InjectionTrial(
                target_step=target_step,
                injection_iteration=injection_round,
                corrupted_output=True,
                recovery_samples=None,
                recovery_iterations=None,
                diverged=True,
                error_log_size=sim.errors,
                divergence=divergence,
                node=node,
                node_divergence=node_divergence,
                node_digests=node_digests,
            )
        recovery_round = illegitimate[-1] + 1
        recovery_iterations = recovery_round - injection_round
        recovery_samples = recovery_iterations * n
        convergence: list[int] = []
        total = 0
        for r in range(injection_round, horizon):
            if r < recovery_round:
                total += n
            convergence.append(total)
        events.emit(
            "trial.recovered",
            "fabric re-entered the legitimate set",
            level="info",
            app=self.spec.name,
            site=target_step,
            node=node,
            iteration=injection_round,
            recovery_samples=recovery_samples,
            recovery_iterations=recovery_iterations,
        )
        return InjectionTrial(
            target_step=target_step,
            injection_iteration=injection_round,
            corrupted_output=True,
            recovery_samples=recovery_samples,
            recovery_iterations=recovery_iterations,
            error_log_size=sim.errors,
            divergence=divergence,
            convergence=convergence,
            node=node,
            node_divergence=node_divergence,
            node_digests=node_digests,
        )
