"""Termination of event-loop iterations (Section 4.3).

Self-stabilization requires every iteration of the main event loop to
terminate, so corrupt values actually leave.  The analysis:

* prohibits recursive call chains in the checked scope;
* verifies each inner loop against the common terminating pattern — an
  induction variable incremented (or decremented) by a constant on every
  iteration, guarded by an inequality against a loop-invariant bound;
* accepts two escape hatches (Section 4.3.2): ``@MAXLOOP(n)`` (the
  runtime enforces the bound — see
  :class:`repro.runtime.interpreter.Interpreter`) and ``TERMINATE_*:``
  loop labels (the developer manually verified termination).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Union

from repro.core.errors import Check, DiagnosticSink, Severity
from repro.lang import ast
from repro.lang.callgraph import CallGraph, MethodKey
from repro.lang.symtab import (
    EVENT_LOOP_LABELS,
    ProgramInfo,
    TERMINATE_LABEL_PREFIX,
)

Loop = Union[ast.While, ast.For]


@dataclass
class LoopVerdict:
    loop: Loop
    ok: bool
    how: str  # 'induction', 'maxloop', 'trusted-label', 'event-loop', 'failed'
    detail: str = ""


class TerminationAnalysis:
    def __init__(
        self,
        info: ProgramInfo,
        call_graph: CallGraph,
        scope: set[MethodKey],
        sink: DiagnosticSink,
    ) -> None:
        self.info = info
        self.call_graph = call_graph
        self.scope = scope
        self.sink = sink
        self.verdicts: list[LoopVerdict] = []

    def run(self) -> None:
        self._check_recursion()
        for key in sorted(self.scope):
            cls = self.info.classes.get(key[0])
            method = cls.method_named(key[1]) if cls else None
            if method is None:
                continue
            for loop in _loops_in(method.body):
                self._check_loop(loop, context=f"{key[0]}.{key[1]}")

    def _check_recursion(self) -> None:
        cycle = self.call_graph.find_recursive_cycle(self.scope)
        if cycle is not None:
            chain = " → ".join(f"{c}.{m}" for c, m in cycle)
            self.sink.report(
                Check.TERMINATION,
                f"recursive call chain {chain}: the termination analysis "
                "prohibits recursion inside the event loop",
            )

    def _check_loop(self, loop: Loop, context: str) -> None:
        if loop.label in EVENT_LOOP_LABELS:
            self.verdicts.append(LoopVerdict(loop, True, "event-loop"))
            return
        if loop.label is not None and loop.label.startswith(TERMINATE_LABEL_PREFIX):
            self.verdicts.append(LoopVerdict(loop, True, "trusted-label"))
            self.sink.report(
                Check.TERMINATION,
                f"loop {loop.label!r} trusted to terminate (developer "
                "verified)",
                node=loop,
                context=context,
                severity=Severity.INFO,
            )
            return
        maxloop = ast.annotation_named(loop.annotations, "MAXLOOP")
        if maxloop is not None:
            if isinstance(maxloop.value, int) and maxloop.value > 0:
                self.verdicts.append(LoopVerdict(loop, True, "maxloop"))
            else:
                self.sink.report(
                    Check.TERMINATION,
                    "@MAXLOOP requires a positive integer bound",
                    node=loop,
                    context=context,
                )
            return
        verdict = self._check_induction(loop)
        self.verdicts.append(verdict)
        if not verdict.ok:
            self.sink.report(
                Check.TERMINATION,
                f"cannot prove that this loop terminates ({verdict.detail}); "
                "annotate it with @MAXLOOP(n) or a TERMINATE_ label",
                node=loop,
                context=context,
            )

    # -- induction-variable pattern ---------------------------------------

    def _check_induction(self, loop: Loop) -> LoopVerdict:
        cond = loop.cond
        if cond is None:
            return LoopVerdict(loop, False, "failed", "loop has no condition")
        body_stmts: list[ast.Stmt] = [loop.body]
        if isinstance(loop, ast.For) and loop.update is not None:
            body_stmts.append(loop.update)

        assigned = _assigned_vars(body_stmts)
        assigned_fields = _assigned_fields(body_stmts)
        directions = _induction_directions(body_stmts, assigned)
        if not directions:
            return LoopVerdict(
                loop, False, "failed",
                "no variable is updated by a constant step on every path",
            )

        for conjunct in _conjuncts(cond):
            check = self._conjunct_guards(
                conjunct, directions, assigned, assigned_fields
            )
            if check is not None:
                return LoopVerdict(loop, True, "induction", check)
        return LoopVerdict(
            loop, False, "failed",
            "no loop-exit inequality relates an induction variable to a "
            "loop-invariant bound",
        )

    def _conjunct_guards(
        self,
        expr: ast.Expr,
        directions: dict[str, int],
        assigned: set[str],
        assigned_fields: set[str],
    ) -> Optional[str]:
        if not isinstance(expr, ast.Binary) or expr.op not in ("<", "<=", ">", ">="):
            return None
        for var_side, bound_side, op in (
            (expr.left, expr.right, expr.op),
            (expr.right, expr.left, _flip(expr.op)),
        ):
            if not isinstance(var_side, ast.VarRef):
                continue
            direction = directions.get(var_side.name)
            if direction is None:
                continue
            if not _is_invariant(bound_side, assigned, assigned_fields):
                continue
            if direction > 0 and op in ("<", "<="):
                return f"{var_side.name} increases toward an upper bound"
            if direction < 0 and op in (">", ">="):
                return f"{var_side.name} decreases toward a lower bound"
        return None


def _flip(op: str) -> str:
    return {"<": ">", "<=": ">=", ">": "<", ">=": "<="}[op]


def _conjuncts(expr: ast.Expr) -> Iterator[ast.Expr]:
    if isinstance(expr, ast.Binary) and expr.op == "&&":
        yield from _conjuncts(expr.left)
        yield from _conjuncts(expr.right)
    else:
        yield expr


def _loops_in(stmt: ast.Stmt) -> Iterator[Loop]:
    if isinstance(stmt, (ast.While, ast.For)):
        yield stmt
        yield from _loops_in(stmt.body)
    elif isinstance(stmt, ast.Block):
        for child in stmt.stmts:
            yield from _loops_in(child)
    elif isinstance(stmt, ast.If):
        yield from _loops_in(stmt.then_body)
        if stmt.else_body is not None:
            yield from _loops_in(stmt.else_body)


def _assigned_vars(stmts: list[ast.Stmt]) -> set[str]:
    names: set[str] = set()

    def walk(stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            for child in stmt.stmts:
                walk(child)
        elif isinstance(stmt, ast.VarDecl):
            names.add(stmt.name)
        elif isinstance(stmt, ast.Assign):
            if isinstance(stmt.target, ast.VarRef):
                names.add(stmt.target.name)
        elif isinstance(stmt, ast.If):
            walk(stmt.then_body)
            if stmt.else_body is not None:
                walk(stmt.else_body)
        elif isinstance(stmt, (ast.While, ast.For)):
            if isinstance(stmt, ast.For):
                if stmt.init is not None:
                    walk(stmt.init)
                if stmt.update is not None:
                    walk(stmt.update)
            walk(stmt.body)

    for stmt in stmts:
        walk(stmt)
    return names


def _induction_directions(
    stmts: list[ast.Stmt], assigned: set[str]
) -> dict[str, int]:
    """Variables whose only assignments in the loop are constant steps of
    a consistent sign, and that are stepped on every iteration (i.e. not
    under a conditional)."""
    steps: dict[str, list[int]] = {}
    conditional: set[str] = set()

    def step_of(stmt: ast.Assign) -> Optional[int]:
        if not isinstance(stmt.target, ast.VarRef):
            return None
        name = stmt.target.name
        if stmt.op in ("+=", "-="):
            if isinstance(stmt.value, ast.IntLit) and stmt.value.value > 0:
                return stmt.value.value if stmt.op == "+=" else -stmt.value.value
            return None
        if stmt.op == "=":
            # i = i + c / i = i - c
            value = stmt.value
            if (
                isinstance(value, ast.Binary)
                and value.op in ("+", "-")
                and isinstance(value.left, ast.VarRef)
                and value.left.name == name
                and isinstance(value.right, ast.IntLit)
                and value.right.value > 0
            ):
                return value.right.value if value.op == "+" else -value.right.value
        return None

    def walk(stmt: ast.Stmt, under_branch: bool) -> None:
        if isinstance(stmt, ast.Block):
            for child in stmt.stmts:
                walk(child, under_branch)
        elif isinstance(stmt, ast.Assign) and isinstance(stmt.target, ast.VarRef):
            step = step_of(stmt)
            name = stmt.target.name
            if step is None:
                conditional.add(name)  # irregular update disqualifies
            else:
                if under_branch:
                    conditional.add(name)
                steps.setdefault(name, []).append(step)
        elif isinstance(stmt, ast.VarDecl):
            conditional.add(stmt.name)
        elif isinstance(stmt, ast.If):
            walk(stmt.then_body, True)
            if stmt.else_body is not None:
                walk(stmt.else_body, True)
        elif isinstance(stmt, (ast.While, ast.For)):
            # Updates inside a nested loop are not "every iteration" of
            # *this* loop in a usable way; treat as conditional.
            if isinstance(stmt, ast.For):
                if stmt.init is not None:
                    walk(stmt.init, True)
                if stmt.update is not None:
                    walk(stmt.update, True)
            walk(stmt.body, True)

    for stmt in stmts:
        walk(stmt, False)

    directions: dict[str, int] = {}
    for name, deltas in steps.items():
        if name in conditional:
            continue
        if all(d > 0 for d in deltas):
            directions[name] = 1
        elif all(d < 0 for d in deltas):
            directions[name] = -1
    return directions


def _is_invariant(
    expr: ast.Expr, assigned: set[str], assigned_fields: set[str]
) -> bool:
    """Conservatively loop-invariant: built from literals, unassigned
    variables, lengths of arrays whose references are stable, and static
    finals."""
    if isinstance(expr, (ast.IntLit, ast.FloatLit)):
        return True
    if isinstance(expr, ast.VarRef):
        return expr.name not in assigned
    if isinstance(expr, ast.ArrayLength):
        # Array lengths are fixed at allocation; the bound can only move
        # if the array *reference* itself is replaced inside the loop, so
        # require the reference expression to be stable.
        return _ref_stable(expr.array, assigned, assigned_fields)
    if isinstance(expr, ast.FieldAccess):
        # A heap write anywhere in the loop could change a field-based
        # bound, so plain field reads are conservatively non-invariant.
        return False
    if isinstance(expr, ast.Binary):
        return _is_invariant(expr.left, assigned, assigned_fields) and _is_invariant(
            expr.right, assigned, assigned_fields
        )
    if isinstance(expr, ast.Unary):
        return _is_invariant(expr.operand, assigned, assigned_fields)
    return False


def _ref_stable(
    expr: ast.Expr, assigned: set[str], assigned_fields: set[str]
) -> bool:
    """The reference produced by ``expr`` cannot change across the loop's
    iterations (no assignment to the variable or any field on the path
    inside this loop body; reassignments through callees are out of scope
    for the simple analysis — the paper's escape hatches cover them)."""
    if isinstance(expr, ast.VarRef):
        return expr.name not in assigned
    if isinstance(expr, ast.ThisRef):
        return True
    if isinstance(expr, ast.FieldAccess):
        return expr.field_name not in assigned_fields and _ref_stable(
            expr.obj, assigned, assigned_fields
        )
    return False


def _assigned_fields(stmts: list[ast.Stmt]) -> set[str]:
    """Names of fields assigned (directly) anywhere in the loop body."""
    names: set[str] = set()

    def walk(stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            for child in stmt.stmts:
                walk(child)
        elif isinstance(stmt, ast.Assign):
            if isinstance(stmt.target, ast.FieldAccess):
                names.add(stmt.target.field_name)
        elif isinstance(stmt, ast.If):
            walk(stmt.then_body)
            if stmt.else_body is not None:
                walk(stmt.else_body)
        elif isinstance(stmt, (ast.While, ast.For)):
            if isinstance(stmt, ast.For):
                if stmt.init is not None:
                    walk(stmt.init)
                if stmt.update is not None:
                    walk(stmt.update)
            walk(stmt.body)

    for stmt in stmts:
        walk(stmt)
    return names
