"""Diagnostics produced by the SJava checker."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class Severity(enum.Enum):
    ERROR = "error"
    WARNING = "warning"
    INFO = "info"


class Check(enum.Enum):
    """Which component of the system produced a diagnostic."""

    ANNOTATION = "annotation"
    LATTICE = "lattice"
    FLOW_DOWN = "flow-down"
    IMPLICIT_FLOW = "implicit-flow"
    CALL_SITE = "call-site"
    LINEAR = "linear"
    EVICTION = "eviction"
    SHARED = "shared"
    TERMINATION = "termination"
    INHERITANCE = "inheritance"
    STRUCTURE = "structure"


@dataclass(frozen=True)
class Diagnostic:
    severity: Severity
    check: Check
    message: str
    line: int = 0
    col: int = 0
    context: str = ""  # e.g. "WDSensor.calculate"

    def __str__(self) -> str:
        where = f"{self.line}:{self.col}" if self.line else "-"
        ctx = f" [{self.context}]" if self.context else ""
        return f"{self.severity.value}({self.check.value}) {where}{ctx}: {self.message}"

    def sort_key(self) -> tuple:
        """Stable ordering for reports: position first, then check kind."""
        return (self.line, self.col, self.check.value,
                self.severity.value, self.message)

    def to_dict(self) -> dict:
        """JSON-serializable form (see :mod:`repro.service.protocol`)."""
        return {
            "severity": self.severity.value,
            "check": self.check.value,
            "message": self.message,
            "line": self.line,
            "col": self.col,
            "context": self.context,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Diagnostic":
        try:
            severity = Severity(data["severity"])
            check = Check(data["check"])
        except (KeyError, ValueError) as exc:
            raise ValueError(f"malformed diagnostic payload: {exc}") from exc
        return cls(
            severity=severity,
            check=check,
            message=str(data.get("message", "")),
            line=int(data.get("line", 0)),
            col=int(data.get("col", 0)),
            context=str(data.get("context", "")),
        )


@dataclass
class DiagnosticSink:
    """Collects diagnostics during checking."""

    diagnostics: list[Diagnostic] = field(default_factory=list)

    def report(
        self,
        check: Check,
        message: str,
        *,
        node=None,
        context: str = "",
        severity: Severity = Severity.ERROR,
    ) -> None:
        line = getattr(node, "line", 0) if node is not None else 0
        col = getattr(node, "col", 0) if node is not None else 0
        self.diagnostics.append(
            Diagnostic(severity, check, message, line, col, context)
        )

    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        return not self.errors()

    def extend(self, other: "DiagnosticSink") -> None:
        self.diagnostics.extend(other.diagnostics)


def first_error(sink: DiagnosticSink) -> Optional[Diagnostic]:
    errors = sink.errors()
    return errors[0] if errors else None
