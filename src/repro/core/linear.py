"""Linear types: alias restriction and ownership transfer (Section 4.1.6).

Unrestricted aliasing could subvert the flow-down rule: two references to
one object at different locations would let values climb the lattice.
SJava therefore keeps the event-loop heap a *forest* — at most one heap
reference per object — and allows only limited, same-location aliasing
through local variables.

The per-method discipline implemented here tracks an ownership state for
every reference-typed variable:

* ``OWNED`` — the variable holds the unique reference (fresh allocation,
  ``@DELEGATE`` parameter, or a method-call result: methods may only
  return owned references);
* ``ALIAS`` — the variable borrows a reference that the heap (or another
  scope) owns: heap loads, ordinary parameters, and variable copies;
* ``CONSUMED`` — ownership has been surrendered (stored into the heap or
  delegated to a callee); any further use is an error.

Heap stores (``x.f = y``) and arguments to ``@DELEGATE`` parameters
require ``OWNED`` and consume it.  Storing a heap-loaded reference into
the heap would create a second heap reference and is rejected.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.core.environment import LocationWorld, MethodLocEnv
from repro.core.errors import Check, DiagnosticSink
from repro.lang import ast
from repro.lang import types as stypes
from repro.lang.callgraph import MethodKey
from repro.lang.symtab import BuiltinCall, MethodCall, ProgramInfo


class Own(enum.Enum):
    OWNED = "owned"
    ALIAS = "alias"
    CONSUMED = "consumed"


def _meet(first: Own, second: Own) -> Own:
    order = {Own.OWNED: 0, Own.ALIAS: 1, Own.CONSUMED: 2}
    return first if order[first] >= order[second] else second


class LinearTypeChecker:
    """Checks the alias/ownership discipline for every method in scope."""

    def __init__(
        self,
        info: ProgramInfo,
        world: LocationWorld,
        scope: set[MethodKey],
        sink: DiagnosticSink,
    ) -> None:
        self.info = info
        self.world = world
        self.scope = scope
        self.sink = sink

    def run(self) -> None:
        for key in sorted(self.scope):
            env = self.world.env_of(*key)
            if env is None or env.trusted:
                continue
            _MethodLinearChecker(self, env).check()


class _MethodLinearChecker:
    def __init__(self, parent: LinearTypeChecker, env: MethodLocEnv) -> None:
        self.parent = parent
        self.info = parent.info
        self.sink = parent.sink
        self.env = env
        self.states: dict[str, Own] = {}

    def report(self, message: str, node: ast.Node) -> None:
        self.sink.report(
            Check.LINEAR, message, node=node, context=self.env.name
        )

    def _is_ref(self, expr: ast.Expr) -> bool:
        return isinstance(
            self.info.expr_types.get(expr.uid),
            (stypes.ClassT, stypes.ArrayT, stypes.BuiltinClassT),
        )

    def _is_ref_type(self, node: ast.TypeNode) -> bool:
        return isinstance(node, (ast.ClassType, ast.ArrayType))

    def check(self) -> None:
        for param in self.env.method.params:
            if self._is_ref_type(param.decl_type):
                owned = param.name in self.env.delegated
                self.states[param.name] = Own.OWNED if owned else Own.ALIAS
        self.check_stmt(self.env.method.body)

    # -- expression ownership -------------------------------------------------

    def value_state(self, expr: ast.Expr) -> Optional[Own]:
        """Ownership state of a reference-valued expression (None for
        non-references), also flagging uses of consumed variables."""
        if not self._is_ref(expr):
            self.walk_uses(expr)
            return None
        if isinstance(expr, ast.VarRef):
            state = self.states.get(expr.name, Own.ALIAS)
            if state is Own.CONSUMED:
                self.report(
                    f"variable {expr.name!r} is used after its ownership was "
                    "transferred",
                    expr,
                )
            return state
        if isinstance(expr, (ast.New, ast.NewArray)):
            for child in ast.iter_child_exprs(expr):
                self.walk_uses(child)
            return Own.OWNED
        if isinstance(expr, ast.FieldAccess):
            self.walk_uses(expr.obj)
            return Own.ALIAS  # borrowed from the heap
        if isinstance(expr, ast.ThisRef):
            return Own.ALIAS
        if isinstance(expr, ast.Call):
            self.check_call(expr)
            return Own.OWNED  # methods may only return owned references
        if isinstance(expr, ast.NullLit):
            return Own.OWNED  # null carries no object
        self.walk_uses(expr)
        return Own.ALIAS

    def walk_uses(self, expr: ast.Expr) -> None:
        """Flag reads of consumed variables inside arbitrary expressions."""
        if isinstance(expr, ast.VarRef):
            if self.states.get(expr.name) is Own.CONSUMED:
                self.report(
                    f"variable {expr.name!r} is used after its ownership was "
                    "transferred",
                    expr,
                )
            return
        if isinstance(expr, ast.Call):
            self.check_call(expr)
            return
        for child in ast.iter_child_exprs(expr):
            self.walk_uses(child)

    # -- statements --------------------------------------------------------------

    def check_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            for child in stmt.stmts:
                self.check_stmt(child)
        elif isinstance(stmt, ast.VarDecl):
            if stmt.init is not None:
                state = self.value_state(stmt.init)
                if self._is_ref_type(stmt.decl_type):
                    self._bind_var(stmt.name, stmt.init, state)
        elif isinstance(stmt, ast.Assign):
            self._check_assign(stmt)
        elif isinstance(stmt, ast.If):
            self.walk_uses(stmt.cond)
            before = dict(self.states)
            self.check_stmt(stmt.then_body)
            then_states = self.states
            self.states = dict(before)
            if stmt.else_body is not None:
                self.check_stmt(stmt.else_body)
            self._merge(then_states)
        elif isinstance(stmt, ast.While):
            self.walk_uses(stmt.cond)
            before = dict(self.states)
            self.check_stmt(stmt.body)
            self._merge(before)
        elif isinstance(stmt, ast.For):
            if stmt.init is not None:
                self.check_stmt(stmt.init)
            if stmt.cond is not None:
                self.walk_uses(stmt.cond)
            before = dict(self.states)
            self.check_stmt(stmt.body)
            if stmt.update is not None:
                self.check_stmt(stmt.update)
            self._merge(before)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None and self._is_ref(stmt.value):
                state = self.value_state(stmt.value)
                if state is Own.ALIAS:
                    self.report(
                        "methods may only return owned references "
                        "(Section 4.1.6)",
                        stmt,
                    )
            elif stmt.value is not None:
                self.walk_uses(stmt.value)
        elif isinstance(stmt, ast.ExprStmt):
            self.walk_uses(stmt.expr)
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            pass

    def _merge(self, other: dict[str, Own]) -> None:
        for name, state in other.items():
            self.states[name] = _meet(self.states.get(name, state), state)

    def _bind_var(
        self, name: str, value: ast.Expr, state: Optional[Own]
    ) -> None:
        self.states[name] = state if state is not None else Own.ALIAS
        # Copying a variable creates an alias: neither copy is uniquely
        # owned afterwards.
        if isinstance(value, ast.VarRef):
            self.states[name] = Own.ALIAS
            if self.states.get(value.name) is Own.OWNED:
                self.states[value.name] = Own.ALIAS

    def _check_assign(self, stmt: ast.Assign) -> None:
        if isinstance(stmt.target, ast.VarRef) and self._is_ref(stmt.target):
            state = self.value_state(stmt.value)
            self._bind_var(stmt.target.name, stmt.value, state)
            return
        if isinstance(stmt.target, ast.FieldAccess) and self._is_ref(stmt.target):
            self.walk_uses(stmt.target.obj)
            state = self.value_state(stmt.value)
            if state is Own.ALIAS:
                self.report(
                    "storing a borrowed reference into the heap would create "
                    "a second heap reference to the same object (the heap "
                    "must remain a forest)",
                    stmt,
                )
            elif state is Own.OWNED and isinstance(stmt.value, ast.VarRef):
                self.states[stmt.value.name] = Own.CONSUMED
            return
        # Primitive or array-element assignment: just scan for uses.
        if isinstance(stmt.target, (ast.FieldAccess, ast.ArrayAccess)):
            for child in ast.iter_child_exprs(stmt.target):
                self.walk_uses(child)
        self.walk_uses(stmt.value)

    # -- calls --------------------------------------------------------------------

    def check_call(self, call: ast.Call) -> None:
        target = self.info.call_targets.get(call.uid)
        if call.receiver is not None and not (
            isinstance(call.receiver, ast.VarRef)
            and call.receiver.name in self.info.classes
        ):
            self.walk_uses(call.receiver)
        if isinstance(target, BuiltinCall) or target is None:
            for arg in call.args:
                self.walk_uses(arg)
            return
        assert isinstance(target, MethodCall)
        callee_env = self.parent.world.env_of(target.owner, target.decl.name)
        delegated = callee_env.delegated if callee_env is not None else frozenset()
        for param, arg in zip(target.decl.params, call.args):
            if param.name in delegated and self._is_ref(arg):
                state = self.value_state(arg)
                if state is Own.ALIAS:
                    self.report(
                        f"argument for @DELEGATE parameter {param.name!r} "
                        "must be an owned (unaliased) reference",
                        arg,
                    )
                elif state is Own.OWNED and isinstance(arg, ast.VarRef):
                    self.states[arg.name] = Own.CONSUMED
            else:
                self.walk_uses(arg)
