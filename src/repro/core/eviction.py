"""The definitely-written (eviction) analysis (Section 4.2, Figs 4.4-4.5).

The flow-down rule alone lets a corrupt value sit in one location forever;
this analysis guarantees every value read inside the event loop is either

1. loop invariant (its heap path is never written in the loop),
2. overwritten earlier in the *current* iteration, or
3. overwritten in *every* iteration (so the stale value survives at most
   one iteration).

Memory locations are abstracted as **heap paths**: tuples of names rooted
at ``this`` or a method parameter (``('this', 'bin', 'dir0')``), with the
pseudo-element ``'[]'`` for array/buffer contents and ``'%x'`` heads for
the event-loop method's own local variables (which, unlike callee locals,
live across iterations).

Per-method summaries hold the paper's three sets — the read set ``R``,
the may-write set ``OW`` and the must-write set ``WT`` (plus ``WT_h``,
must-writes whose source was strictly higher, feeding the shared-location
extension of Section 4.2.2).  Methods are analyzed callees-first (the
checked scope is recursion-free) and summaries are bound into callers by
substituting argument heap paths for parameter heads (the ⊙ operator).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.errors import Check, DiagnosticSink
from repro.lang import ast
from repro.lang import types as stypes
from repro.lang.callgraph import CallGraph, MethodKey
from repro.lang.symtab import BuiltinCall, EventLoop, MethodCall, ProgramInfo

Path = tuple[str, ...]

ELEMENT = "[]"
VAR_PREFIX = "%"
NEW_PREFIX = "<new"
PRE_PREFIX = "<pre"


def covered(path: Path, writes: set[Path]) -> bool:
    """True if ``writes`` contains ``path`` or one of its prefixes
    (the paper's ``∃p' ∈ WT. Pre(p, p')``)."""
    return any(path[: len(q)] == q for q in writes)


@dataclass(frozen=True)
class MethodSummary:
    """The interprocedural effect of one method (heads: 'this', params)."""

    reads: frozenset[Path] = frozenset()
    may_writes: frozenset[Path] = frozenset()
    must_writes: frozenset[Path] = frozenset()
    must_writes_higher: frozenset[Path] = frozenset()


EMPTY_SUMMARY = MethodSummary()


@dataclass(frozen=True)
class ReadRecord:
    path: Path
    node: ast.Node
    covered_at_read: bool
    context: str


@dataclass
class LoopFacts:
    """Results of analyzing the main event loop body."""

    reads: list[ReadRecord] = field(default_factory=list)
    may_writes: set[Path] = field(default_factory=set)
    must_writes_end: set[Path] = field(default_factory=set)
    must_writes_higher_end: set[Path] = field(default_factory=set)


class _State:
    """Per-program-point dataflow state."""

    __slots__ = ("wt", "wt_h", "hp")

    def __init__(
        self,
        wt: Optional[set[Path]] = None,
        wt_h: Optional[set[Path]] = None,
        hp: Optional[dict[str, frozenset[Path]]] = None,
    ) -> None:
        self.wt: set[Path] = set() if wt is None else wt
        self.wt_h: set[Path] = set() if wt_h is None else wt_h
        self.hp: dict[str, frozenset[Path]] = {} if hp is None else hp

    def copy(self) -> "_State":
        return _State(set(self.wt), set(self.wt_h), dict(self.hp))

    def meet(self, other: "_State") -> "_State":
        """Control-flow join: must-writes intersect, alias maps union."""
        hp = dict(self.hp)
        for name, paths in other.hp.items():
            hp[name] = hp.get(name, frozenset()) | paths
        return _State(self.wt & other.wt, self.wt_h & other.wt_h, hp)


class EvictionAnalysis:
    """Runs the definitely-written analysis over the checked scope."""

    def __init__(
        self,
        info: ProgramInfo,
        call_graph: CallGraph,
        scope: set[MethodKey],
        via_shared_stmts: set[int],
        sink: DiagnosticSink,
        trusted: Optional[set[MethodKey]] = None,
    ) -> None:
        self.info = info
        self.call_graph = call_graph
        self.scope = scope
        self.via_shared_stmts = via_shared_stmts
        self.sink = sink
        self.trusted = trusted or set()
        self.summaries: dict[MethodKey, MethodSummary] = {}
        self.loop_facts: Optional[LoopFacts] = None

    def run(self) -> Optional[LoopFacts]:
        loop = self.info.event_loop
        if loop is None:
            return None
        for key in self.call_graph.topological_order(self.scope):
            if key in self.trusted:
                self.summaries[key] = EMPTY_SUMMARY
                continue
            cls = self.info.classes.get(key[0])
            method = cls.method_named(key[1]) if cls else None
            if method is None:
                self.summaries[key] = EMPTY_SUMMARY
                continue
            analyzer = _MethodAnalyzer(self, key[0], method, loop)
            self.summaries[key] = analyzer.summarize()
            if analyzer.loop_facts is not None:
                self.loop_facts = analyzer.loop_facts
        if self.loop_facts is not None:
            self._check_loop(self.loop_facts)
        return self.loop_facts

    def summary_for(self, key: MethodKey) -> MethodSummary:
        return self.summaries.get(key, EMPTY_SUMMARY)

    def _check_loop(self, facts: LoopFacts) -> None:
        reported: set[Path] = set()
        for record in facts.reads:
            path = record.path
            if path[0].startswith(NEW_PREFIX):
                continue  # freshly allocated this iteration
            if not covered(path, facts.may_writes):
                continue  # (1) loop invariant
            if record.covered_at_read:
                continue  # (2) overwritten before the read, this iteration
            if covered(path, facts.must_writes_end):
                continue  # (3) overwritten in every iteration
            if path in reported:
                continue
            reported.add(path)
            self.sink.report(
                Check.EVICTION,
                f"memory location {_format_path(path)} may hold a stale value "
                "across event-loop iterations: it is written somewhere in the "
                "loop but is neither overwritten before this read nor "
                "overwritten on every iteration",
                node=record.node,
                context=record.context,
            )


def _format_path(path: Path) -> str:
    pretty = [p[1:] if p.startswith(VAR_PREFIX) else p for p in path]
    return ".".join(pretty).replace(".[]", "[]")


def _declared_vars(stmt: ast.Stmt) -> set[str]:
    """Names of variables declared (anywhere) inside ``stmt``."""
    names: set[str] = set()

    def walk(node: ast.Stmt) -> None:
        if isinstance(node, ast.Block):
            for child in node.stmts:
                walk(child)
        elif isinstance(node, ast.VarDecl):
            names.add(node.name)
        elif isinstance(node, ast.If):
            walk(node.then_body)
            if node.else_body is not None:
                walk(node.else_body)
        elif isinstance(node, ast.While):
            walk(node.body)
        elif isinstance(node, ast.For):
            if node.init is not None:
                walk(node.init)
            if node.update is not None:
                walk(node.update)
            walk(node.body)

    walk(stmt)
    return names


class _MethodAnalyzer:
    """Abstract interpretation of one method body."""

    def __init__(
        self,
        parent: EvictionAnalysis,
        class_name: str,
        method: ast.MethodDecl,
        loop: EventLoop,
    ) -> None:
        self.parent = parent
        self.info = parent.info
        self.class_name = class_name
        self.method = method
        self.loop = loop
        self.context = f"{class_name}.{method.name}"
        self.is_loop_method = (
            class_name == loop.class_name and method.name == loop.method.name
        )
        self.loop_facts: Optional[LoopFacts] = None

        self.reads: set[Path] = set()
        self.may_writes: set[Path] = set()
        self.exit_states: list[_State] = []

        #: active when analyzing the event-loop body
        self._loop_mode = False
        self._recording = True
        self._loop_local_vars: set[str] = set()

    def _fresh_head(self, node: ast.Node) -> str:
        """Root name for an allocation: in-loop allocations are always
        fresh this iteration (reads never stale); pre-loop allocations in
        the event-loop method persist across iterations and are tracked."""
        if self._loop_mode:
            return f"{NEW_PREFIX}{node.uid}>"
        return f"{PRE_PREFIX}{node.uid}>"

    # -- entry ---------------------------------------------------------------

    def summarize(self) -> MethodSummary:
        state = _State()
        for param in self.method.params:
            if self._is_tracked_type(param.decl_type):
                state.hp[param.name] = frozenset({(param.name,)})
        final = self.analyze_stmt(self.method.body, state)
        for exit_state in self.exit_states:
            final = final.meet(exit_state)
        return MethodSummary(
            reads=frozenset(self._summary_paths(self.reads)),
            may_writes=frozenset(self._summary_paths(self.may_writes)),
            must_writes=frozenset(self._summary_paths(final.wt)),
            must_writes_higher=frozenset(self._summary_paths(final.wt_h)),
        )

    @staticmethod
    def _summary_paths(paths: set[Path]) -> set[Path]:
        """Drop local-variable and fresh-allocation paths: they die with
        the method activation (Section 4.2.1)."""
        return {
            p
            for p in paths
            if not p[0].startswith((VAR_PREFIX, NEW_PREFIX, PRE_PREFIX))
        }

    @staticmethod
    def _is_tracked_type(node: ast.TypeNode) -> bool:
        """Types whose values name heap storage: objects, arrays, buffers."""
        return isinstance(node, (ast.ClassType, ast.ArrayType))

    def _expr_is_tracked_ref(self, expr: ast.Expr) -> bool:
        stype = self.info.expr_types.get(expr.uid)
        return isinstance(
            stype, (stypes.ClassT, stypes.ArrayT, stypes.BuiltinClassT)
        )

    # -- recording -----------------------------------------------------------

    def _record_read(self, path: Path, node: ast.Node, state: _State) -> None:
        if path[0].startswith(NEW_PREFIX):
            return  # allocated in the current loop iteration: always fresh
        is_covered = covered(path, state.wt)
        if not is_covered:
            self.reads.add(path)
        if self._loop_mode and self._recording and self.loop_facts is not None:
            if path[0].startswith(VAR_PREFIX):
                name = path[0][len(VAR_PREFIX):]
                if name in self._loop_local_vars:
                    return  # declared inside the loop body: fresh each iteration
            self.loop_facts.reads.append(
                ReadRecord(path, node, is_covered, self.context)
            )

    def _record_write(
        self,
        paths: frozenset[Path],
        node: ast.Node,
        state: _State,
        *,
        definite: bool,
    ) -> None:
        from_higher = node.uid not in self.parent.via_shared_stmts
        for path in paths:
            self.may_writes.add(path)
            if self._loop_mode and self.loop_facts is not None:
                self.loop_facts.may_writes.add(path)
        if definite and len(paths) == 1:
            path = next(iter(paths))
            state.wt.add(path)
            if from_higher:
                state.wt_h.add(path)

    # -- statements ------------------------------------------------------------

    def analyze_stmt(self, stmt: ast.Stmt, state: _State) -> _State:
        if isinstance(stmt, ast.Block):
            for child in stmt.stmts:
                state = self.analyze_stmt(child, state)
            return state
        if isinstance(stmt, ast.VarDecl):
            return self._analyze_var_write(
                stmt.name, stmt.init, stmt, state, compound=False
            )
        if isinstance(stmt, ast.Assign):
            return self._analyze_assign(stmt, state)
        if isinstance(stmt, ast.If):
            self.eval_expr(stmt.cond, state)
            then_state = self.analyze_stmt(stmt.then_body, state.copy())
            if stmt.else_body is not None:
                else_state = self.analyze_stmt(stmt.else_body, state.copy())
            else:
                else_state = state
            return then_state.meet(else_state)
        if isinstance(stmt, ast.While):
            if (
                self.is_loop_method
                and stmt.label in ("SSJAVA", "SJAVA")
                and stmt is self.loop.loop
            ):
                return self._analyze_event_loop(stmt, state)
            return self._analyze_inner_loop(stmt, state)
        if isinstance(stmt, ast.For):
            return self._analyze_inner_loop(stmt, state)
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.eval_expr(stmt.value, state)
            self.exit_states.append(state.copy())
            return state
        if isinstance(stmt, ast.ExprStmt):
            self.eval_expr(stmt.expr, state)
            return state
        if isinstance(stmt, (ast.Break, ast.Continue)):
            return state
        raise AssertionError(f"unhandled statement {type(stmt).__name__}")

    def _analyze_var_write(
        self,
        name: str,
        value: Optional[ast.Expr],
        node: ast.Stmt,
        state: _State,
        *,
        compound: bool,
    ) -> _State:
        var_path: Path = (VAR_PREFIX + name,)
        if compound:
            self._record_read(var_path, node, state)
        value_paths: frozenset[Path] = frozenset()
        if value is not None:
            value_paths = self.eval_expr(value, state)
        is_ref = False
        if isinstance(node, ast.VarDecl):
            is_ref = self._is_tracked_type(node.decl_type)
        elif isinstance(node, ast.Assign) and isinstance(node.target, ast.VarRef):
            is_ref = self._expr_is_tracked_ref(node.target)
        if is_ref and value is not None:
            state.hp[name] = value_paths or frozenset({(self._fresh_head(node),)})
        self._record_write(frozenset({var_path}), node, state, definite=True)
        return state

    def _analyze_assign(self, stmt: ast.Assign, state: _State) -> _State:
        target = stmt.target
        compound = stmt.op != "="
        if isinstance(target, ast.VarRef):
            return self._analyze_var_write(
                target.name, stmt.value, stmt, state, compound=compound
            )
        if isinstance(target, ast.FieldAccess):
            base_paths = self.eval_expr(target.obj, state)
            write_paths = frozenset(p + (target.field_name,) for p in base_paths)
            if compound:
                for path in write_paths:
                    self._record_read(path, stmt, state)
            self.eval_expr(stmt.value, state)
            self._record_write(write_paths, stmt, state, definite=True)
            return state
        if isinstance(target, ast.ArrayAccess):
            base_paths = self.eval_expr(target.array, state)
            self.eval_expr(target.index, state)
            element_paths = frozenset(p + (ELEMENT,) for p in base_paths)
            if compound:
                for path in element_paths:
                    self._record_read(path, stmt, state)
            self.eval_expr(stmt.value, state)
            # A single-element store is never a definite overwrite of the
            # whole array; fill loops and SJ.fill are (see below).
            self._record_write(element_paths, stmt, state, definite=False)
            return state
        raise AssertionError("invalid assignment target")

    # -- loops ------------------------------------------------------------------

    def _analyze_event_loop(self, stmt: ast.While, state: _State) -> _State:
        self.loop_facts = LoopFacts()
        self._loop_local_vars = _declared_vars(stmt.body)
        # Fixed point on the alias map across iterations (reads are not
        # recorded until the final pass so records reflect stable aliases).
        self._loop_mode = True
        self._recording = False
        hp_entry = dict(state.hp)
        for _ in range(8):
            trial = _State(set(), set(), dict(hp_entry))
            out = self.analyze_stmt(stmt.body, trial)
            merged = dict(hp_entry)
            changed = False
            for name, paths in out.hp.items():
                combined = merged.get(name, frozenset()) | paths
                if combined != merged.get(name):
                    merged[name] = combined
                    changed = True
            hp_entry = merged
            if not changed:
                break
        self._recording = True
        final = self.analyze_stmt(
            stmt.body, _State(set(), set(), dict(hp_entry))
        )
        self.loop_facts.must_writes_end = set(final.wt)
        self.loop_facts.must_writes_higher_end = set(final.wt_h)
        self._loop_mode = False
        # The event loop never exits normally; following code is dead.
        return state

    def _analyze_inner_loop(self, stmt, state: _State) -> _State:
        entry = state
        if isinstance(stmt, ast.For):
            if stmt.init is not None:
                entry = self.analyze_stmt(stmt.init, entry)
            if stmt.cond is not None:
                self.eval_expr(stmt.cond, entry)
            body_state = self.analyze_stmt(stmt.body, entry.copy())
            if stmt.update is not None:
                body_state = self.analyze_stmt(stmt.update, body_state)
            result = entry.meet(body_state)
            fill = self._detect_fill_loop(stmt, entry)
            if fill is not None:
                path, from_higher = fill
                result.wt.add(path)
                if from_higher:
                    result.wt_h.add(path)
                self.may_writes.add(path)
                if self._loop_mode and self.loop_facts is not None:
                    self.loop_facts.may_writes.add(path)
            return result
        # while
        self.eval_expr(stmt.cond, entry)
        body_state = self.analyze_stmt(stmt.body, entry.copy())
        return entry.meet(body_state)

    def _detect_fill_loop(
        self, stmt: ast.For, entry: _State
    ) -> Optional[tuple[Path, bool]]:
        """Recognize ``for (i = 0; i < a.length; i++) a[i] = v;`` as a
        definite overwrite of the entire array (the paper's simultaneous
        clearing of a shared-location array, Section 4.1.8)."""
        if stmt.cond is None or stmt.update is None or stmt.init is None:
            return None
        # induction variable from init
        if isinstance(stmt.init, ast.VarDecl):
            index_name = stmt.init.name
            start = stmt.init.init
        elif isinstance(stmt.init, ast.Assign) and isinstance(
            stmt.init.target, ast.VarRef
        ):
            index_name = stmt.init.target.name
            start = stmt.init.value
        else:
            return None
        if not (isinstance(start, ast.IntLit) and start.value == 0):
            return None
        cond = stmt.cond
        if not (
            isinstance(cond, ast.Binary)
            and cond.op == "<"
            and isinstance(cond.left, ast.VarRef)
            and cond.left.name == index_name
            and isinstance(cond.right, ast.ArrayLength)
        ):
            return None
        if not (
            isinstance(stmt.update, ast.Assign)
            and isinstance(stmt.update.target, ast.VarRef)
            and stmt.update.target.name == index_name
            and stmt.update.op == "+="
            and isinstance(stmt.update.value, ast.IntLit)
            and stmt.update.value.value == 1
        ):
            return None
        bound_paths = self.eval_expr(cond.right.array, entry.copy())
        if len(bound_paths) != 1:
            return None
        array_path = next(iter(bound_paths))

        # The body (possibly a block) must contain an unconditional
        # top-level write a[i] = ... to the same array.
        body_stmts = (
            stmt.body.stmts if isinstance(stmt.body, ast.Block) else [stmt.body]
        )
        for child in body_stmts:
            if not (
                isinstance(child, ast.Assign)
                and child.op == "="
                and isinstance(child.target, ast.ArrayAccess)
                and isinstance(child.target.index, ast.VarRef)
                and child.target.index.name == index_name
            ):
                continue
            target_paths = self.eval_expr(child.target.array, entry.copy())
            if target_paths == bound_paths:
                from_higher = child.uid not in self.parent.via_shared_stmts
                return array_path + (ELEMENT,), from_higher
        return None

    # -- expressions ---------------------------------------------------------------

    def eval_expr(self, expr: ast.Expr, state: _State) -> frozenset[Path]:
        """Record the reads performed by ``expr`` and return the heap
        paths the expression's value may name (empty for primitives)."""
        if isinstance(
            expr,
            (ast.IntLit, ast.FloatLit, ast.BoolLit, ast.StringLit, ast.NullLit),
        ):
            return frozenset()
        if isinstance(expr, ast.VarRef):
            if self._expr_is_tracked_ref(expr):
                # Parameters root their own heap paths; locals resolve
                # through the alias map.
                return state.hp.get(expr.name, frozenset({(expr.name,)}))
            self._record_read((VAR_PREFIX + expr.name,), expr, state)
            return frozenset()
        if isinstance(expr, ast.ThisRef):
            return frozenset({("this",)})
        if isinstance(expr, ast.FieldAccess):
            resolved = self.info.field_refs.get(expr.uid)
            if resolved is not None and resolved[1].is_static:
                return frozenset()  # statics are constants
            base_paths = self.eval_expr(expr.obj, state)
            paths = frozenset(p + (expr.field_name,) for p in base_paths)
            for path in paths:
                self._record_read(path, expr, state)
            if self._expr_is_tracked_ref(expr):
                return paths
            return frozenset()
        if isinstance(expr, ast.ArrayAccess):
            base_paths = self.eval_expr(expr.array, state)
            self.eval_expr(expr.index, state)
            for path in base_paths:
                self._record_read(path + (ELEMENT,), expr, state)
            return frozenset()
        if isinstance(expr, ast.ArrayLength):
            self.eval_expr(expr.array, state)
            return frozenset()
        if isinstance(expr, ast.Unary):
            return self.eval_expr(expr.operand, state)
        if isinstance(expr, ast.Binary):
            self.eval_expr(expr.left, state)
            self.eval_expr(expr.right, state)
            return frozenset()
        if isinstance(expr, ast.New):
            for arg in expr.args:
                self.eval_expr(arg, state)
            return frozenset({(self._fresh_head(expr),)})
        if isinstance(expr, ast.NewArray):
            self.eval_expr(expr.size, state)
            return frozenset({(self._fresh_head(expr),)})
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, state)
        raise AssertionError(f"unhandled expression {type(expr).__name__}")

    def _eval_call(self, call: ast.Call, state: _State) -> frozenset[Path]:
        target = self.info.call_targets.get(call.uid)
        if isinstance(target, BuiltinCall):
            return self._eval_builtin_call(call, target, state)
        if isinstance(target, MethodCall):
            return self._eval_user_call(call, target, state)
        return frozenset()

    def _eval_builtin_call(
        self, call: ast.Call, target: BuiltinCall, state: _State
    ) -> frozenset[Path]:
        kind = target.sig.kind
        if kind == "fill":
            array_paths = self.eval_expr(call.args[0], state)
            self.eval_expr(call.args[1], state)
            element_paths = frozenset(p + (ELEMENT,) for p in array_paths)
            self._record_write(element_paths, call, state, definite=True)
            return frozenset()
        if kind == "buffer-insert":
            receiver_paths = self.eval_expr(call.receiver, state)
            self.eval_expr(call.args[0], state)
            element_paths = frozenset(p + (ELEMENT,) for p in receiver_paths)
            # insert() shifts every element down and writes the head: the
            # type system models it as moving all values one step, so one
            # insert per iteration evicts the whole buffer.
            self._record_write(element_paths, call, state, definite=True)
            return frozenset()
        if kind == "buffer-get":
            receiver_paths = self.eval_expr(call.receiver, state)
            for arg in call.args:
                self.eval_expr(arg, state)
            for path in receiver_paths:
                self._record_read(path + (ELEMENT,), call, state)
            return frozenset()
        if call.receiver is not None and not isinstance(call.receiver, ast.VarRef):
            self.eval_expr(call.receiver, state)
        for arg in call.args:
            self.eval_expr(arg, state)
        return frozenset()

    def _eval_user_call(
        self, call: ast.Call, target: MethodCall, state: _State
    ) -> frozenset[Path]:
        # Receiver paths.
        if target.decl.is_static:
            receiver_paths: frozenset[Path] = frozenset()
        elif call.receiver is None or (
            isinstance(call.receiver, ast.VarRef)
            and call.receiver.name in self.info.classes
        ):
            receiver_paths = frozenset({("this",)})
        else:
            receiver_paths = self.eval_expr(call.receiver, state)

        binding: dict[str, frozenset[Path]] = {"this": receiver_paths}
        for param, arg in zip(target.decl.params, call.args):
            binding[param.name] = self.eval_expr(arg, state)

        callees = self.info.overriding_decls(target.receiver_class, target.decl.name)
        if not callees:
            return frozenset()

        def bind(paths: frozenset[Path]) -> set[Path]:
            bound: set[Path] = set()
            for path in paths:
                for head_path in binding.get(path[0], frozenset()):
                    bound.add(head_path + path[1:])
            return bound

        # Must-writes transfer only when the parameter's binding is a
        # single caller path: an ambiguous alias set makes the write
        # indefinite (it hits one of several possible locations).
        unique_heads = {head for head, paths in binding.items() if len(paths) == 1}

        def bind_definite(paths: frozenset[Path]) -> set[Path]:
            return bind(frozenset(p for p in paths if p[0] in unique_heads))

        reads_bound: set[Path] = set()
        must: Optional[set[Path]] = None
        must_h: Optional[set[Path]] = None
        for owner, decl in callees:
            summary = self.parent.summary_for((owner, decl.name))
            reads_bound |= bind(summary.reads)
            for path in bind(summary.may_writes):
                self.may_writes.add(path)
                if self._loop_mode and self.loop_facts is not None:
                    self.loop_facts.may_writes.add(path)
            wt = bind_definite(summary.must_writes)
            wt_h = bind_definite(summary.must_writes_higher)
            must = wt if must is None else must & wt
            must_h = wt_h if must_h is None else must_h & wt_h
        for path in sorted(reads_bound):
            self._record_read(path, call, state)
        state.wt |= must or set()
        state.wt_h |= must_h or set()
        return frozenset()
